// Ablation: fault-injection rates vs the retry/backoff ladder. Arms every
// fault kind (src/faults) at the same per-opportunity rate and compares the
// scheduler with its recovery ladder enabled (bounded retry + exponential
// backoff + graceful degradation, the default RetryPolicy) against a
// retries-off arm that drops the failed operation on the floor. The claim
// under test: injected infrastructure faults are survivable noise with the
// ladder, and catastrophic without it. The fault plan is not part of the
// trace identity, so all seven arms share one memoized trace set per seed.
#include "bench_common.hpp"

using namespace spothost;

namespace {

double mean_over_runs(const metrics::AggregatedMetrics& agg,
                      double (*get)(const metrics::RunMetrics&)) {
  double sum = 0.0;
  for (const auto& r : agg.per_run) sum += get(r);
  return sum / static_cast<double>(agg.per_run.size());
}

}  // namespace

int main() {
  const auto home = bench::market("us-east-1a", "small");
  auto sweep = bench::default_sweep();

  struct ArmSpec {
    double rate;
    bool ladder;
    int arm;
  };
  std::vector<ArmSpec> specs;
  for (const double rate : {0.0, 0.02, 0.05, 0.10}) {
    for (const bool ladder : {true, false}) {
      if (rate == 0.0 && !ladder) continue;  // identical to the row above
      sched::Scenario scenario = bench::region_scenario("us-east-1a");
      for (const faults::FaultKind kind : faults::kAllFaultKinds) {
        scenario.fault_plan.with_rate(kind, rate);
      }
      sched::SchedulerConfig cfg = sched::proactive_config(home);
      cfg.scope = sched::MarketScope::kMultiMarket;
      if (!ladder) {
        cfg.retry = sched::RetryPolicy{.max_attempts = 0,
                                       .graceful_degradation = false};
      }
      const int arm = sweep.add_arm(
          "rate=" + metrics::fmt(rate, 2) + (ladder ? "/on" : "/off"), scenario,
          cfg);
      specs.push_back({rate, ladder, arm});
    }
  }
  const auto results = sweep.run_all();

  metrics::print_banner(std::cout,
                        "Ablation: fault rate x retry/backoff ladder");
  metrics::TextTable table({"fault rate", "retries", "cost %",
                            "unavailability %", "faults/run", "retries/run",
                            "degraded/run"});

  double baseline_unavail = 0.0;  // fault-free, ladder on
  for (const auto& spec : specs) {
    const auto& agg = results[static_cast<std::size_t>(spec.arm)];
    if (spec.rate == 0.0) baseline_unavail = agg.unavailability_pct.mean;
    table.add_row(
        {metrics::fmt(spec.rate, 2), spec.ladder ? "on" : "off",
         metrics::fmt(agg.normalized_cost_pct.mean, 1),
         metrics::fmt(agg.unavailability_pct.mean, 4),
         metrics::fmt(mean_over_runs(agg,
                                     [](const metrics::RunMetrics& r) {
                                       return static_cast<double>(
                                           r.faults_injected);
                                     }),
                      1),
         metrics::fmt(mean_over_runs(agg,
                                     [](const metrics::RunMetrics& r) {
                                       return static_cast<double>(r.retries);
                                     }),
                      1),
         metrics::fmt(mean_over_runs(agg,
                                     [](const metrics::RunMetrics& r) {
                                       return static_cast<double>(
                                           r.degraded_entries);
                                     }),
                      1)});
  }
  table.print(std::cout);
  std::cout << "fault-free unavailability (ladder on): "
            << metrics::fmt(baseline_unavail, 4)
            << " %\nexpected: with the ladder on, unavailability stays within "
               "~10x of the\nfault-free baseline at moderate rates; with it "
               "off, a single unlucky\ncapacity fault strands the service and "
               "unavailability explodes\n";
  return 0;
}
