// Ablation: fleet hosting. A single market's spike revokes *every* spot
// server in it simultaneously; spreading the fleet's home markets buys
// failure independence. Reports the "someone is paging" metric (fraction of
// time >= 1 service is down) and the worst concurrent-outage depth.
#include "bench_common.hpp"

using namespace spothost;

int main() {
  sched::Scenario scenario = bench::full_scenario();
  scenario.regions = {"us-east-1a", "us-east-1b", "us-west-1a"};
  scenario.seed = bench::kBaseSeed;

  metrics::print_banner(std::cout,
                        "Ablation: 6-service fleet, concentrated vs spread homes");
  metrics::TextTable table({"placement", "cost %", "mean unavail %",
                            "any-service-down %", "max concurrent down",
                            "forced total"});

  const std::vector<std::pair<std::string, std::vector<cloud::MarketId>>> plans{
      {"all in us-east-1a", {bench::market("us-east-1a", "small")}},
      {"two zones",
       {bench::market("us-east-1a", "small"), bench::market("us-east-1b", "small")}},
      {"three regions",
       {bench::market("us-east-1a", "small"), bench::market("us-east-1b", "small"),
        bench::market("us-west-1a", "small")}},
  };

  for (const auto& [label, homes] : plans) {
    sched::FleetConfig cfg;
    cfg.num_services = 6;
    cfg.service_template =
        sched::proactive_config(bench::market("us-east-1a", "small"));
    cfg.home_markets = homes;
    const auto m = metrics::run_fleet_scenario(scenario, cfg);
    table.add_row({label, metrics::fmt(m.normalized_cost_pct, 1),
                   metrics::fmt(m.mean_unavailability_pct, 4),
                   metrics::fmt(m.any_down_pct, 4),
                   std::to_string(m.max_concurrent_down),
                   std::to_string(m.total_forced)});
  }
  table.print(std::cout);
  std::cout << "expected: same per-service unavailability, but spreading homes\n"
               "caps how many services one market spike can take down at once\n";
  return 0;
}
