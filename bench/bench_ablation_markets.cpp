// Ablation: price-model robustness. The headline results should not hinge
// on the regime-switching generator's particulars — re-run the Fig. 6
// comparison on prices produced by the *auction* model (endogenous
// supply/demand clearing) and compare the two models' trace fingerprints.
#include "bench_common.hpp"
#include "simcore/simulation.hpp"

using namespace spothost;

namespace {

metrics::RunMetrics run_on_trace(trace::PriceTrace price_trace,
                                 const sched::SchedulerConfig& cfg,
                                 std::uint64_t seed) {
  sim::RngFactory rng(seed);
  sim::Simulation simulation;
  cloud::CloudProvider provider(simulation, rng);
  const sim::SimTime horizon = price_trace.end();
  provider.set_allocation_latency("us-east-1a",
                                  sched::table1_allocation_latency("us-east-1a"));
  provider.add_market(cfg.home_market, std::move(price_trace), 0.06);
  provider.start();
  workload::AlwaysOnService service("svc", virt::VmSpec{});
  sched::CloudScheduler scheduler(simulation, provider, service, cfg,
                                  rng.stream("timing"));
  scheduler.start();
  simulation.run_until(horizon);
  provider.finalize(horizon);
  scheduler.finalize(horizon);
  return metrics::compute_run_metrics(provider, scheduler, service, horizon, 0.06);
}

}  // namespace

int main() {
  const auto home = bench::market("us-east-1a", "small");
  constexpr sim::SimTime kMonth = 30 * sim::kDay;
  constexpr int kRuns = 5;

  metrics::print_banner(std::cout,
                        "Ablation: regime-switching vs auction price models");

  // --- fingerprints -------------------------------------------------------
  sim::RngFactory factory(bench::kBaseSeed);
  auto rng_a = factory.stream("fingerprint/regime");
  const auto regime_trace = trace::SyntheticSpotModel::generate(
      trace::profile_for("us-east-1a", "small"), 0.06, kMonth, rng_a);
  auto rng_b = factory.stream("fingerprint/auction");
  trace::AuctionMarketParams auction_params;
  // A pool tight enough that peak demand occasionally outbids p_on — the
  // regime the hosting scheduler is designed for.
  auction_params.capacity_units = 78.0;
  const auto auction_trace =
      trace::generate_auction_market(auction_params, 0.06, kMonth, rng_b);

  const auto fa = trace::extract_features(regime_trace, 0.06);
  const auto fb = trace::extract_features(auction_trace, 0.06);
  metrics::TextTable fp({"feature", "regime-switching", "auction"});
  fp.add_row({"mean $/hr", metrics::fmt(fa.mean_price, 4),
              metrics::fmt(fb.mean_price, 4)});
  fp.add_row({"stddev $/hr", metrics::fmt(fa.stddev, 4),
              metrics::fmt(fb.stddev, 4)});
  fp.add_row({"changes/day", metrics::fmt(fa.changes_per_day, 1),
              metrics::fmt(fb.changes_per_day, 1)});
  fp.add_row({"frac below p_on", metrics::fmt(fa.fraction_below_reference, 3),
              metrics::fmt(fb.fraction_below_reference, 3)});
  fp.add_row({"excursions above p_on",
              std::to_string(fa.excursions_above_reference),
              std::to_string(fb.excursions_above_reference)});
  fp.add_row({"mean excursion (min)", metrics::fmt(fa.mean_excursion_minutes, 1),
              metrics::fmt(fb.mean_excursion_minutes, 1)});
  fp.add_row({"max / p_on", metrics::fmt(fa.max_over_reference, 2),
              metrics::fmt(fb.max_over_reference, 2)});
  fp.print(std::cout);
  std::cout << "fingerprint distance: "
            << metrics::fmt(trace::feature_distance(fa, fb), 3) << "\n";

  // --- hosting outcomes on each model --------------------------------------
  metrics::TextTable table({"model / policy", "cost %", "unavailability %",
                            "forced/hr"});
  for (const bool auction : {false, true}) {
    for (const bool proactive : {true, false}) {
      double cost = 0.0, unavail = 0.0, forced = 0.0;
      for (int i = 0; i < kRuns; ++i) {
        const std::uint64_t seed = bench::kBaseSeed + static_cast<std::uint64_t>(i);
        sim::RngFactory f(seed);
        auto rng = f.stream("model");
        trace::PriceTrace price_trace =
            auction ? trace::generate_auction_market(auction_params, 0.06,
                                                     kMonth, rng)
                    : trace::SyntheticSpotModel::generate(
                          trace::profile_for("us-east-1a", "small"), 0.06,
                          kMonth, rng);
        const auto cfg = proactive ? sched::proactive_config(home)
                                   : sched::reactive_config(home);
        const auto m = run_on_trace(std::move(price_trace), cfg, seed);
        cost += m.normalized_cost_pct;
        unavail += m.unavailability_pct;
        forced += m.forced_per_hour;
      }
      table.add_row({std::string(auction ? "auction" : "regime") + " / " +
                         (proactive ? "proactive" : "reactive"),
                     metrics::fmt(cost / kRuns, 1),
                     metrics::fmt(unavail / kRuns, 4),
                     metrics::fmt(forced / kRuns, 4)});
    }
  }
  table.print(std::cout);
  std::cout << "expected: the proactive-beats-reactive ordering and the 1/3-1/5\n"
               "cost band survive a completely different price-formation model\n";
  return 0;
}
