// Policy-zoo frontier: every shipped placement/bid policy on the
// cost-vs-unavailability plane, across two market regimes (volatile
// us-east, stable us-west/eu-west). Five policies per regime:
//
//   reactive          bid = p_on, cheapest qualifying market (Sec. 3.1)
//   proactive         bid = 4 p_on + voluntary migrations (Sec. 3.1)
//   portfolio         proactive bid, PortfolioPlacementPolicy placement
//   revocation-aware  reactive bid, RevocationAwarePolicy placement
//                     (avoid revocations instead of planning around them)
//   forecast-bid      ForecastBidPolicy: EWMA bid over trailing history
//
// Output: a per-regime table (Pareto-efficient rows starred), a
// serial-vs-parallel bit-identity check over the whole sweep, and
// BENCH_policies.json in the working directory.
//
// Knobs: SPOTHOST_RUNS (seeds per arm; CI smoke uses 1), SPOTHOST_SEED.
#include <fstream>
#include <vector>

#include "bench_common.hpp"

using namespace spothost;

namespace {

struct Arm {
  std::string regime;
  std::string policy;
  metrics::AggregatedMetrics agg;
  bool pareto = false;
};

/// Pareto efficiency on (cost, unavailability), lower is better on both.
void mark_pareto(std::vector<Arm>& arms, const std::string& regime) {
  for (auto& a : arms) {
    if (a.regime != regime) continue;
    a.pareto = true;
    for (const auto& b : arms) {
      if (b.regime != regime || &a == &b) continue;
      const double ac = a.agg.normalized_cost_pct.mean;
      const double au = a.agg.unavailability_pct.mean;
      const double bc = b.agg.normalized_cost_pct.mean;
      const double bu = b.agg.unavailability_pct.mean;
      if (bc <= ac && bu <= au && (bc < ac || bu < au)) {
        a.pareto = false;
        break;
      }
    }
  }
}

void write_json(const std::vector<Arm>& arms, const char* path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"ablation_policies\",\n  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const Arm& a = arms[i];
    out << "    {\"regime\": \"" << a.regime << "\", \"policy\": \""
        << a.policy << "\", \"cost_pct\": " << a.agg.normalized_cost_pct.mean
        << ", \"unavailability_pct\": " << a.agg.unavailability_pct.mean
        << ", \"forced_per_hour\": " << a.agg.forced_per_hour.mean
        << ", \"planned_reverse_per_hour\": "
        << a.agg.planned_reverse_per_hour.mean
        << ", \"pareto\": " << (a.pareto ? "true" : "false") << "}"
        << (i + 1 < arms.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

/// The five policy arms of one regime, added to `sweep` in a fixed order.
void add_policy_arms(metrics::SweepRunner& sweep, const std::string& regime,
                     const sched::Scenario& scenario,
                     const sched::SchedulerConfig& base) {
  auto reactive = base;
  reactive.bid = {.mode = sched::BiddingMode::kReactive};
  sweep.add_arm(regime + "/reactive", scenario, reactive);

  sweep.add_arm(regime + "/proactive", scenario, base);

  auto portfolio = base;
  portfolio.placement = std::make_shared<const sched::PortfolioPlacementPolicy>();
  sweep.add_arm(regime + "/portfolio", scenario, portfolio);

  // Reactive bid: crossings of the bid are exactly revocations, the
  // statistic the policy predicts. Avoid revocations instead of planning
  // migrations around them.
  auto revocation = reactive;
  revocation.placement = std::make_shared<const sched::RevocationAwarePolicy>();
  sweep.add_arm(regime + "/revocation-aware", scenario, revocation);

  auto forecast = base;
  forecast.bidding = std::make_shared<const sched::ForecastBidPolicy>();
  sweep.add_arm(regime + "/forecast-bid", scenario, forecast);
}

std::vector<Arm> run_sweep(metrics::Execution execution) {
  metrics::SweepRunner sweep(bench::env_runs(), bench::env_seed(), execution);

  // Regime 1: cheap, volatile, spiky us-east (two markets).
  sched::Scenario volatile_scenario = bench::full_scenario();
  volatile_scenario.regions = {"us-east-1a", "us-east-1b"};
  auto volatile_base = sched::proactive_config(bench::market("us-east-1a", "small"));
  volatile_base.scope = sched::MarketScope::kMultiRegion;
  add_policy_arms(sweep, "volatile", volatile_scenario, volatile_base);

  // Regime 2: pricier but stable us-west/eu-west pair.
  sched::Scenario stable_scenario = bench::full_scenario();
  stable_scenario.regions = {"us-west-1a", "eu-west-1a"};
  auto stable_base = sched::proactive_config(bench::market("us-west-1a", "small"));
  stable_base.scope = sched::MarketScope::kMultiRegion;
  add_policy_arms(sweep, "stable", stable_scenario, stable_base);

  const auto results = sweep.run_all();
  std::vector<Arm> arms;
  for (int a = 0; a < sweep.arm_count(); ++a) {
    const std::string& label = sweep.arm(a).label;
    const auto slash = label.find('/');
    arms.push_back({label.substr(0, slash), label.substr(slash + 1),
                    results[static_cast<std::size_t>(a)], false});
  }
  return arms;
}

}  // namespace

int main() {
  const auto arms = run_sweep(metrics::Execution::kParallel);

  // The frontier must not depend on how the sweep was scheduled: rerun
  // serially and require bit-identical per-run metrics.
  const auto serial = run_sweep(metrics::Execution::kSerial);
  for (std::size_t a = 0; a < arms.size(); ++a) {
    for (std::size_t r = 0; r < arms[a].agg.per_run.size(); ++r) {
      const auto& p = arms[a].agg.per_run[r];
      const auto& s = serial[a].agg.per_run[r];
      if (p.total_cost != s.total_cost ||
          p.unavailability_pct != s.unavailability_pct) {
        std::cerr << "serial/parallel mismatch in arm " << arms[a].regime
                  << "/" << arms[a].policy << " run " << r << "\n";
        return 1;
      }
    }
  }

  std::vector<Arm> marked = arms;
  mark_pareto(marked, "volatile");
  mark_pareto(marked, "stable");

  metrics::print_banner(std::cout,
                        "Policy zoo: cost vs unavailability frontier");
  for (const char* regime : {"volatile", "stable"}) {
    std::cout << "regime: " << regime << "\n";
    metrics::TextTable table({"policy", "cost %", "unavailability %",
                              "forced/hr", "planned+reverse/hr", "frontier"});
    for (const auto& arm : marked) {
      if (arm.regime != regime) continue;
      auto row = bench::hosting_row(arm.policy, arm.agg);
      row.push_back(arm.pareto ? "*" : "");
      table.add_row(row);
    }
    table.print(std::cout);
  }
  std::cout << "serial == parallel: OK\n"
            << "'*' rows are Pareto-efficient within their regime (no policy\n"
            << "is cheaper AND more available). Reproduce:\n"
            << "  SPOTHOST_RUNS=5 ./build/bench/bench_ablation_policies\n";

  write_json(marked, "BENCH_policies.json");
  std::cout << "wrote BENCH_policies.json (" << marked.size() << " arms)\n";
  return 0;
}
