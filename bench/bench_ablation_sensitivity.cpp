// Ablation: sensitivity of the headline results to the design constants —
// checkpoint bound tau, revocation grace period, planned-migration timing,
// and the proactive bid multiple k. All four sub-tables are declared as arms
// of ONE sweep, so every arm over the unmodified scenario shares one memoized
// trace set per seed (the grace-period arms differ only in grace_period,
// which is not part of the trace identity, so they share it too).
#include "bench_common.hpp"

using namespace spothost;

int main() {
  auto sweep = bench::default_sweep();
  const auto home = bench::market("us-east-1a", "small");
  const auto scenario = bench::region_scenario("us-east-1a");

  std::vector<int> tau_arms;
  for (const double tau : {2.0, 5.0, 10.0, 30.0, 60.0}) {
    auto cfg = sched::proactive_config(home);
    cfg.mech.checkpoint.bound_tau_s = tau;
    tau_arms.push_back(sweep.add_arm(metrics::fmt(tau, 0), scenario, cfg));
  }

  std::vector<int> grace_arms;
  for (const int grace_s : {30, 60, 120, 300}) {
    sched::Scenario s = scenario;
    s.grace_period = grace_s * sim::kSecond;
    grace_arms.push_back(
        sweep.add_arm(std::to_string(grace_s), s, sched::reactive_config(home)));
  }

  std::vector<int> timing_arms;
  for (const bool hour_end : {true, false}) {
    auto cfg = sched::proactive_config(home);
    cfg.planned_timing = hour_end ? sched::PlannedTiming::kHourEnd
                                  : sched::PlannedTiming::kImmediate;
    timing_arms.push_back(
        sweep.add_arm(hour_end ? "hour-end" : "immediate", scenario, cfg));
  }

  std::vector<int> k_arms;
  for (const double k : {1.5, 2.0, 4.0, 8.0}) {
    auto cfg = sched::proactive_config(home);
    cfg.bid.proactive_multiple = k;
    k_arms.push_back(sweep.add_arm(metrics::fmt(k, 1), scenario, cfg));
  }

  const auto results = sweep.run_all();
  auto print_block = [&](const char* title, const char* key_col,
                         const std::vector<int>& arms, const char* note) {
    metrics::print_banner(std::cout, title);
    metrics::TextTable table({key_col, "cost %", "unavailability %", "forced/hr",
                              "planned+reverse/hr"});
    for (const int a : arms) {
      table.add_row(bench::hosting_row(sweep.arm(a).label,
                                       results[static_cast<std::size_t>(a)]));
    }
    table.print(std::cout);
    std::cout << note;
  };

  print_block("Ablation: checkpoint bound tau (proactive)", "tau (s)", tau_arms,
              "expected: larger tau => longer flushes => more downtime per\n"
              "forced migration (the 2-minute grace caps what is usable)\n");
  print_block("Ablation: revocation grace period (reactive)", "grace (s)",
              grace_arms,
              "expected: a short grace leaves the on-demand replacement\n"
              "unready at termination => reactive downtime grows\n");
  print_block("Ablation: planned-migration timing (proactive)", "timing",
              timing_arms,
              "expected: hour-end timing (the paper's rule) shaves cost by\n"
              "riding out the already-paid hour, at slightly higher forced\n"
              "risk; immediate is the availability-greedy variant\n");
  print_block("Ablation: proactive bid multiple k", "k", k_arms,
              "expected: higher k => fewer spikes clear the bid => fewer\n"
              "forced migrations (EC2 capped k at 4)\n");
  return 0;
}
