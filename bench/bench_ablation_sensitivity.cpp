// Ablation: sensitivity of the headline results to the design constants —
// checkpoint bound tau, revocation grace period, planned-migration timing,
// and the proactive bid multiple k.
#include "bench_common.hpp"

using namespace spothost;

int main() {
  const auto runner = bench::default_runner();
  const auto home = bench::market("us-east-1a", "small");
  const auto scenario = bench::region_scenario("us-east-1a");

  metrics::print_banner(std::cout, "Ablation: checkpoint bound tau (proactive)");
  {
    metrics::TextTable table({"tau (s)", "cost %", "unavailability %", "forced/hr",
                              "planned+reverse/hr"});
    for (const double tau : {2.0, 5.0, 10.0, 30.0, 60.0}) {
      auto cfg = sched::proactive_config(home);
      cfg.mech.checkpoint.bound_tau_s = tau;
      table.add_row(
          bench::hosting_row(metrics::fmt(tau, 0), runner.run(scenario, cfg)));
    }
    table.print(std::cout);
    std::cout << "expected: larger tau => longer flushes => more downtime per\n"
                 "forced migration (the 2-minute grace caps what is usable)\n";
  }

  metrics::print_banner(std::cout, "Ablation: revocation grace period (reactive)");
  {
    metrics::TextTable table({"grace (s)", "cost %", "unavailability %",
                              "forced/hr", "planned+reverse/hr"});
    for (const int grace_s : {30, 60, 120, 300}) {
      sched::Scenario s = scenario;
      s.grace_period = grace_s * sim::kSecond;
      table.add_row(bench::hosting_row(
          std::to_string(grace_s),
          runner.run(s, sched::reactive_config(home))));
    }
    table.print(std::cout);
    std::cout << "expected: a short grace leaves the on-demand replacement\n"
                 "unready at termination => reactive downtime grows\n";
  }

  metrics::print_banner(std::cout, "Ablation: planned-migration timing (proactive)");
  {
    metrics::TextTable table({"timing", "cost %", "unavailability %", "forced/hr",
                              "planned+reverse/hr"});
    for (const bool hour_end : {true, false}) {
      auto cfg = sched::proactive_config(home);
      cfg.planned_timing = hour_end ? sched::PlannedTiming::kHourEnd
                                    : sched::PlannedTiming::kImmediate;
      table.add_row(bench::hosting_row(hour_end ? "hour-end" : "immediate",
                                       runner.run(scenario, cfg)));
    }
    table.print(std::cout);
    std::cout << "expected: hour-end timing (the paper's rule) shaves cost by\n"
                 "riding out the already-paid hour, at slightly higher forced\n"
                 "risk; immediate is the availability-greedy variant\n";
  }

  metrics::print_banner(std::cout, "Ablation: proactive bid multiple k");
  {
    metrics::TextTable table({"k", "cost %", "unavailability %", "forced/hr",
                              "planned+reverse/hr"});
    for (const double k : {1.5, 2.0, 4.0, 8.0}) {
      auto cfg = sched::proactive_config(home);
      cfg.bid.proactive_multiple = k;
      table.add_row(
          bench::hosting_row(metrics::fmt(k, 1), runner.run(scenario, cfg)));
    }
    table.print(std::cout);
    std::cout << "expected: higher k => fewer spikes clear the bid => fewer\n"
                 "forced migrations (EC2 capped k at 4)\n";
  }
  return 0;
}
