// Ablation (paper Sec. 8 future work): stability-aware market selection —
// penalise volatile markets when choosing a migration destination — versus
// the paper's greedy cheapest-market rule, in the multi-region setting where
// Fig. 9(c) showed greedy chasing cheap-but-volatile regions.
#include "bench_common.hpp"

using namespace spothost;

int main() {
  auto sweep = bench::default_sweep();
  sched::Scenario scenario = bench::full_scenario();
  scenario.regions = {"us-east-1a", "eu-west-1a"};

  auto base = sched::proactive_config(bench::market("us-east-1a", "small"));
  base.scope = sched::MarketScope::kMultiRegion;
  base.allowed_regions = {"us-east-1a", "eu-west-1a"};

  sweep.add_arm("greedy cheapest", scenario, base);
  for (const double weight : {0.5, 1.0, 2.0, 4.0}) {
    auto cfg = base;
    cfg.stability = sched::StabilityPolicy::kPenalizeVolatility;
    cfg.stability_penalty_weight = weight;
    sweep.add_arm("stability w=" + metrics::fmt(weight, 1), scenario, cfg);
  }
  const auto results = sweep.run_all();

  metrics::print_banner(
      std::cout, "Ablation: greedy vs stability-aware multi-region selection");
  metrics::TextTable table({"policy", "cost %", "unavailability %", "forced/hr",
                            "planned+reverse/hr"});
  for (int a = 0; a < sweep.arm_count(); ++a) {
    table.add_row(bench::hosting_row(sweep.arm(a).label,
                                     results[static_cast<std::size_t>(a)]));
  }
  table.print(std::cout);
  std::cout << "expected: increasing the stability penalty trades a little\n"
               "cost for fewer migrations/disruptions (the paper's conjecture)\n";
  return 0;
}
