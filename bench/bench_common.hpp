// Shared helpers for the experiment harness binaries. Each bench reproduces
// one table or figure of the paper and prints the same rows/series the paper
// reports, with the paper's value quoted alongside where applicable.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "spothost.hpp"

namespace spothost::bench {

inline constexpr int kDefaultRuns = 5;
inline constexpr std::uint64_t kBaseSeed = 20150615;  // HPDC'15 opening day

// All env knobs parse through exec::env_int / env_u64: a set-but-garbage
// value ("3abc", which atoi would accept) warns on stderr and falls back
// instead of silently changing the experiment. SPOTHOST_THREADS — the
// worker-pool size — is read the same way by exec::ThreadPool.

/// Seed fan-out count: SPOTHOST_RUNS env var, else `fallback`. Lets CI run
/// the figure benches cheaply (SPOTHOST_RUNS=1) without editing sources.
inline int env_runs(int fallback = kDefaultRuns) {
  return static_cast<int>(exec::env_int("SPOTHOST_RUNS", fallback, 1, 1000000));
}

/// Base seed: SPOTHOST_SEED env var, else `fallback`.
inline std::uint64_t env_seed(std::uint64_t fallback = kBaseSeed) {
  return exec::env_u64("SPOTHOST_SEED", fallback);
}

/// Scenario with the canonical four regions and four sizes, 30 days.
inline sched::Scenario full_scenario() {
  sched::Scenario s;
  s.horizon = 30 * sim::kDay;
  return s;
}

/// Scenario restricted to one region (all four sizes).
inline sched::Scenario region_scenario(const std::string& region) {
  sched::Scenario s = full_scenario();
  s.regions = {region};
  return s;
}

/// Sweep harness under the env knobs: declare arms, then run_all(). Seeds
/// and aggregation match `ExperimentRunner(env_runs(), env_seed())`
/// exactly, so converting a bench from per-arm runner calls to a sweep
/// never changes its table.
inline metrics::SweepRunner default_sweep() {
  return metrics::SweepRunner(env_runs(), env_seed());
}

inline cloud::MarketId market(const std::string& region, const char* size) {
  return cloud::MarketId{region, cloud::size_from_string(size)};
}

/// Column block shared by the hosting benches.
inline std::vector<std::string> hosting_row(
    const std::string& label, const metrics::AggregatedMetrics& agg) {
  return {label,
          metrics::fmt(agg.normalized_cost_pct.mean, 1),
          metrics::fmt(agg.unavailability_pct.mean, 4),
          metrics::fmt(agg.forced_per_hour.mean, 4),
          metrics::fmt(agg.planned_reverse_per_hour.mean, 4)};
}

}  // namespace spothost::bench
