// Shared helpers for the experiment harness binaries. Each bench reproduces
// one table or figure of the paper and prints the same rows/series the paper
// reports, with the paper's value quoted alongside where applicable.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "spothost.hpp"

namespace spothost::bench {

inline constexpr int kDefaultRuns = 5;
inline constexpr std::uint64_t kBaseSeed = 20150615;  // HPDC'15 opening day

/// Seed fan-out count: SPOTHOST_RUNS env var, else `fallback`. Lets CI run
/// the figure benches cheaply (SPOTHOST_RUNS=1) without editing sources.
/// Anything that is not a whole positive decimal number (atoi would accept
/// "3abc" and silently map "abc" to 0) warns on stderr and falls back.
inline int env_runs(int fallback = kDefaultRuns) {
  if (const char* v = std::getenv("SPOTHOST_RUNS")) {
    char* end = nullptr;
    const long n = std::strtol(v, &end, 10);
    if (end != v && *end == '\0' && n > 0 && n <= 1000000) {
      return static_cast<int>(n);
    }
    std::cerr << "warning: SPOTHOST_RUNS=\"" << v
              << "\" is not a positive integer; using " << fallback << " runs\n";
  }
  return fallback;
}

/// Base seed: SPOTHOST_SEED env var, else `fallback`.
inline std::uint64_t env_seed(std::uint64_t fallback = kBaseSeed) {
  if (const char* v = std::getenv("SPOTHOST_SEED")) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (end != v && *end == '\0') return n;
  }
  return fallback;
}

/// Scenario with the canonical four regions and four sizes, 30 days.
inline sched::Scenario full_scenario() {
  sched::Scenario s;
  s.horizon = 30 * sim::kDay;
  return s;
}

/// Scenario restricted to one region (all four sizes).
inline sched::Scenario region_scenario(const std::string& region) {
  sched::Scenario s = full_scenario();
  s.regions = {region};
  return s;
}

inline metrics::ExperimentRunner default_runner() {
  return metrics::ExperimentRunner(env_runs(), env_seed());
}

inline cloud::MarketId market(const std::string& region, const char* size) {
  return cloud::MarketId{region, cloud::size_from_string(size)};
}

/// Column block shared by the hosting benches.
inline std::vector<std::string> hosting_row(
    const std::string& label, const metrics::AggregatedMetrics& agg) {
  return {label,
          metrics::fmt(agg.normalized_cost_pct.mean, 1),
          metrics::fmt(agg.unavailability_pct.mean, 4),
          metrics::fmt(agg.forced_per_hour.mean, 4),
          metrics::fmt(agg.planned_reverse_per_hour.mean, 4)};
}

}  // namespace spothost::bench
