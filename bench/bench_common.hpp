// Shared helpers for the experiment harness binaries. Each bench reproduces
// one table or figure of the paper and prints the same rows/series the paper
// reports, with the paper's value quoted alongside where applicable.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "spothost.hpp"

namespace spothost::bench {

inline constexpr int kDefaultRuns = 5;
inline constexpr std::uint64_t kBaseSeed = 20150615;  // HPDC'15 opening day

/// Scenario with the canonical four regions and four sizes, 30 days.
inline sched::Scenario full_scenario() {
  sched::Scenario s;
  s.horizon = 30 * sim::kDay;
  return s;
}

/// Scenario restricted to one region (all four sizes).
inline sched::Scenario region_scenario(const std::string& region) {
  sched::Scenario s = full_scenario();
  s.regions = {region};
  return s;
}

inline metrics::ExperimentRunner default_runner() {
  return metrics::ExperimentRunner(kDefaultRuns, kBaseSeed);
}

inline cloud::MarketId market(const std::string& region, const char* size) {
  return cloud::MarketId{region, cloud::size_from_string(size)};
}

/// Column block shared by the hosting benches.
inline std::vector<std::string> hosting_row(
    const std::string& label, const metrics::AggregatedMetrics& agg) {
  return {label,
          metrics::fmt(agg.normalized_cost_pct.mean, 1),
          metrics::fmt(agg.unavailability_pct.mean, 4),
          metrics::fmt(agg.forced_per_hour.mean, 4),
          metrics::fmt(agg.planned_reverse_per_hour.mean, 4)};
}

}  // namespace spothost::bench
