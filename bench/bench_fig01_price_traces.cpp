// Figure 1: spot prices over a month-long period in us-east-1 for a small
// and a large server. Prints a daily min/mean/max series plus the summary
// features the figure illustrates (long cheap stretches, sharp spikes).
#include "bench_common.hpp"

using namespace spothost;

namespace {

void print_trace_series(const trace::PriceTrace& t, double pon,
                        const std::string& label) {
  metrics::print_banner(std::cout, "Fig 1: " + label + " (p_on = $" +
                                       metrics::fmt(pon, 2) + "/hr)");
  metrics::TextTable table({"day", "min $", "mean $", "max $", "frac < p_on"});
  for (int day = 0; day < 30; ++day) {
    const sim::SimTime from = day * sim::kDay;
    const sim::SimTime to = (day + 1) * sim::kDay;
    table.add_row({std::to_string(day + 1),
                   metrics::fmt(t.min_price(from, to), 3),
                   metrics::fmt(t.time_average(from, to), 3),
                   metrics::fmt(t.max_price(from, to), 3),
                   metrics::fmt(t.fraction_below(pon, from, to), 3)});
  }
  table.print(std::cout);
  std::cout << "month: mean $" << metrics::fmt(t.time_average(0, 30 * sim::kDay), 4)
            << "/hr, max $" << metrics::fmt(t.max_price(0, 30 * sim::kDay), 3)
            << "/hr (" << metrics::fmt(t.max_price(0, 30 * sim::kDay) / pon, 1)
            << "x p_on), below p_on "
            << metrics::fmt(100.0 * t.fraction_below(pon, 0, 30 * sim::kDay), 1)
            << "% of the time\n";
  std::cout << "paper shape: small stays under ~$0.5 with occasional bumps;\n"
               "             large idles at cents and spikes to ~$3 (>10x p_on)\n";
}

}  // namespace

int main() {
  sched::World world(bench::full_scenario());
  const auto& small =
      world.provider().market(bench::market("us-east-1a", "small")).price_trace();
  const auto& large =
      world.provider().market(bench::market("us-east-1a", "large")).price_trace();
  print_trace_series(small, 0.06, "small server, us-east-1a");
  print_trace_series(large, 0.24, "large server, us-east-1a");
  return 0;
}
