// Figure 6(a-d): proactive versus reactive bidding across the four sizes in
// us-east-1a — normalized cost, unavailability, forced migrations/hour and
// planned+reverse migrations/hour.
#include "bench_common.hpp"

using namespace spothost;

int main() {
  auto sweep = bench::default_sweep();
  const auto scenario = bench::region_scenario("us-east-1a");

  // All 8 arms share the scenario, so each seed's market traces are
  // generated once and shared across the whole sweep.
  for (const char* size : {"small", "medium", "large", "xlarge"}) {
    const auto home = bench::market("us-east-1a", size);
    for (const bool proactive : {false, true}) {
      sweep.add_arm(std::string(size) + " / " +
                        (proactive ? "proactive" : "reactive"),
                    scenario,
                    proactive ? sched::proactive_config(home)
                              : sched::reactive_config(home));
    }
  }
  const auto results = sweep.run_all();

  metrics::print_banner(std::cout, "Fig 6: proactive vs reactive (us-east-1a)");
  metrics::TextTable table({"size / policy", "cost % of on-demand",
                            "unavailability %", "forced/hr",
                            "planned+reverse/hr"});
  for (int a = 0; a < sweep.arm_count(); ++a) {
    table.add_row(bench::hosting_row(sweep.arm(a).label,
                                     results[static_cast<std::size_t>(a)]));
  }
  table.print(std::cout);
  std::cout
      << "paper: both at 17-33% of baseline cost (a); proactive unavailability\n"
         "2.5-18x lower (b) via fewer forced migrations (c); similar\n"
         "planned/reverse rates (d)\n";
  return 0;
}
