// Figure 6(a-d): proactive versus reactive bidding across the four sizes in
// us-east-1a — normalized cost, unavailability, forced migrations/hour and
// planned+reverse migrations/hour.
#include "bench_common.hpp"

using namespace spothost;

int main() {
  const auto runner = bench::default_runner();
  const auto scenario = bench::region_scenario("us-east-1a");

  metrics::print_banner(std::cout, "Fig 6: proactive vs reactive (us-east-1a)");
  metrics::TextTable table({"size / policy", "cost % of on-demand",
                            "unavailability %", "forced/hr",
                            "planned+reverse/hr"});
  for (const char* size : {"small", "medium", "large", "xlarge"}) {
    const auto home = bench::market("us-east-1a", size);
    for (const bool proactive : {false, true}) {
      auto cfg = proactive ? sched::proactive_config(home)
                           : sched::reactive_config(home);
      const auto agg = runner.run(scenario, cfg);
      table.add_row(bench::hosting_row(
          std::string(size) + " / " + (proactive ? "proactive" : "reactive"),
          agg));
    }
  }
  table.print(std::cout);
  std::cout
      << "paper: both at 17-33% of baseline cost (a); proactive unavailability\n"
         "2.5-18x lower (b) via fewer forced migrations (c); similar\n"
         "planned/reverse rates (d)\n";
  return 0;
}
