// Figure 7: service unavailability of the four mechanism combinations under
// proactive bidding (small servers, us-east-1a), typical and pessimistic.
#include "bench_common.hpp"

using namespace spothost;

int main() {
  auto sweep = bench::default_sweep();
  const auto scenario = bench::region_scenario("us-east-1a");
  const auto home = bench::market("us-east-1a", "small");

  struct PaperRow {
    virt::MechanismCombo combo;
    double paper_typical, paper_pessimistic;
  };
  const std::vector<PaperRow> paper{
      {virt::MechanismCombo::kCkpt, 0.0177, 0.266},
      {virt::MechanismCombo::kCkptLazy, 0.0042, 0.0264},
      {virt::MechanismCombo::kCkptLive, 0.0095, 0.142},
      {virt::MechanismCombo::kCkptLazyLive, 0.0022, 0.0137},
  };

  // Two arms per combo (typical, pessimistic): 8 arms over one scenario,
  // one trace set per seed.
  for (const auto& row : paper) {
    auto cfg = sched::proactive_config(home);
    cfg.combo = row.combo;
    cfg.mech = virt::typical_mechanism_params();
    sweep.add_arm(std::string(virt::to_string(row.combo)) + "/typical",
                  scenario, cfg);
    cfg.mech = virt::pessimistic_mechanism_params();
    sweep.add_arm(std::string(virt::to_string(row.combo)) + "/pessimistic",
                  scenario, cfg);
  }
  const auto results = sweep.run_all();

  metrics::print_banner(
      std::cout, "Fig 7: unavailability % by mechanism combo (small, us-east-1a)");
  metrics::TextTable table({"combo", "typical (sim)", "typical (paper)",
                            "pessimistic (sim)", "pessimistic (paper)"});
  for (std::size_t i = 0; i < paper.size(); ++i) {
    const auto& typical = results[2 * i];
    const auto& pessimistic = results[2 * i + 1];
    table.add_row({std::string(virt::to_string(paper[i].combo)),
                   metrics::fmt(typical.unavailability_pct.mean, 4),
                   metrics::fmt(paper[i].paper_typical, 4),
                   metrics::fmt(pessimistic.unavailability_pct.mean, 4),
                   metrics::fmt(paper[i].paper_pessimistic, 4)});
  }
  table.print(std::cout);
  std::cout << "paper conclusions to check: CKPT alone unacceptable; lazy\n"
               "restore brings it near four-nines; adding live migration\n"
               "roughly halves it again; pessimistic uniformly worse\n";
  return 0;
}
