// Figure 8(a-c): multi-market bidding within a region versus the average of
// the four single-market schemes — cost, intra-region price correlation, and
// unavailability.
#include "bench_common.hpp"

using namespace spothost;

int main() {
  const auto runner = bench::default_runner();

  metrics::print_banner(std::cout, "Fig 8: multi-market vs single-market");
  metrics::TextTable table({"region", "avg single-market cost %",
                            "multi-market cost %", "cost reduction %",
                            "avg single unavail %", "multi unavail %",
                            "mean intra-region corr"});

  for (const auto region_view : trace::canonical_regions()) {
    const std::string region{region_view};
    const auto scenario = bench::region_scenario(region);

    double single_cost = 0.0, single_unavail = 0.0;
    for (const char* size : {"small", "medium", "large", "xlarge"}) {
      const auto agg =
          runner.run(scenario, sched::proactive_config(bench::market(region, size)));
      single_cost += agg.normalized_cost_pct.mean;
      single_unavail += agg.unavailability_pct.mean;
    }
    single_cost /= 4.0;
    single_unavail /= 4.0;

    auto cfg = sched::proactive_config(bench::market(region, "small"));
    cfg.scope = sched::MarketScope::kMultiMarket;
    const auto multi = runner.run(scenario, cfg);

    // Fig 8(b): mean pairwise correlation of the region's four markets.
    sched::World world(scenario);
    std::vector<trace::PriceTrace> traces;
    for (const auto& m : world.provider().markets_in_region(region)) {
      traces.push_back(world.provider().market(m).price_trace());
    }
    const double corr = trace::mean_pairwise_correlation(traces);

    table.add_row(
        {region, metrics::fmt(single_cost, 1),
         metrics::fmt(multi.normalized_cost_pct.mean, 1),
         metrics::fmt(100.0 * (single_cost - multi.normalized_cost_pct.mean) /
                          single_cost,
                      1),
         metrics::fmt(single_unavail, 4),
         metrics::fmt(multi.unavailability_pct.mean, 4), metrics::fmt(corr, 3)});
  }
  table.print(std::cout);
  std::cout << "paper: multi-market cuts cost 8-52% vs the single-market\n"
               "average (a) because intra-region correlation is low (b), and\n"
               "also lowers unavailability (c)\n";
  return 0;
}
