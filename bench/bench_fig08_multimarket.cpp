// Figure 8(a-c): multi-market bidding within a region versus the average of
// the four single-market schemes — cost, intra-region price correlation, and
// unavailability.
#include "bench_common.hpp"

using namespace spothost;

int main() {
  auto sweep = bench::default_sweep();

  // Five arms per region (four single-market + one multi-market) over the
  // same scenario: each (region, seed) trace set is generated once and
  // shared, where the per-arm harness regenerated it per arm.
  struct RegionArms {
    std::string region;
    std::vector<int> single;  // arm indices, one per size
    int multi = 0;
  };
  std::vector<RegionArms> regions;
  for (const auto region_view : trace::canonical_regions()) {
    RegionArms arms;
    arms.region = std::string{region_view};
    const auto scenario = bench::region_scenario(arms.region);
    for (const char* size : {"small", "medium", "large", "xlarge"}) {
      arms.single.push_back(
          sweep.add_arm(arms.region + "/" + size, scenario,
                        sched::proactive_config(bench::market(arms.region, size))));
    }
    auto cfg = sched::proactive_config(bench::market(arms.region, "small"));
    cfg.scope = sched::MarketScope::kMultiMarket;
    arms.multi = sweep.add_arm(arms.region + "/multi", scenario, cfg);
    regions.push_back(std::move(arms));
  }
  const auto results = sweep.run_all();

  metrics::print_banner(std::cout, "Fig 8: multi-market vs single-market");
  metrics::TextTable table({"region", "avg single-market cost %",
                            "multi-market cost %", "cost reduction %",
                            "avg single unavail %", "multi unavail %",
                            "mean intra-region corr"});

  for (const auto& arms : regions) {
    double single_cost = 0.0, single_unavail = 0.0;
    for (const int a : arms.single) {
      const auto& agg = results[static_cast<std::size_t>(a)];
      single_cost += agg.normalized_cost_pct.mean;
      single_unavail += agg.unavailability_pct.mean;
    }
    single_cost /= 4.0;
    single_unavail /= 4.0;
    const auto& multi = results[static_cast<std::size_t>(arms.multi)];

    // Fig 8(b): mean pairwise correlation of the region's four markets,
    // computed on the memoized trace set of the sweep's first seed — the
    // prices the experiment arms actually ran on — instead of generating a
    // whole extra World.
    const auto traces =
        sweep.traces_for(bench::region_scenario(arms.region));
    const double corr =
        trace::mean_pairwise_correlation(traces->region_traces(arms.region));

    table.add_row(
        {arms.region, metrics::fmt(single_cost, 1),
         metrics::fmt(multi.normalized_cost_pct.mean, 1),
         metrics::fmt(100.0 * (single_cost - multi.normalized_cost_pct.mean) /
                          single_cost,
                      1),
         metrics::fmt(single_unavail, 4),
         metrics::fmt(multi.unavailability_pct.mean, 4), metrics::fmt(corr, 3)});
  }
  table.print(std::cout);
  std::cout << "paper: multi-market cuts cost 8-52% vs the single-market\n"
               "average (a) because intra-region correlation is low (b), and\n"
               "also lowers unavailability (c)\n";
  return 0;
}
