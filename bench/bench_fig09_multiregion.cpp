// Figure 9(a-c): multi-region bidding on region pairs versus the single-
// region schemes — normalized cost (baseline: the cheaper region's on-demand
// price), cross-region correlation, and unavailability.
#include "bench_common.hpp"

using namespace spothost;

int main() {
  const auto runner = bench::default_runner();
  const std::vector<std::pair<std::string, std::string>> pairs{
      {"us-east-1a", "us-east-1b"}, {"us-east-1a", "us-west-1a"},
      {"us-east-1a", "eu-west-1a"}, {"us-east-1b", "us-west-1a"},
      {"us-east-1b", "eu-west-1a"}, {"us-west-1a", "eu-west-1a"}};

  metrics::print_banner(std::cout, "Fig 9: multi-region vs single-region pairs");
  metrics::TextTable table({"pair", "avg single-region cost %",
                            "multi-region cost %", "avg single unavail %",
                            "multi unavail %", "cross-region corr"});

  for (const auto& [ra, rb] : pairs) {
    sched::Scenario scenario = bench::full_scenario();
    scenario.regions = {ra, rb};

    // Single-region schemes: multi-market within each region.
    double single_cost = 0.0, single_unavail = 0.0;
    for (const auto& region : {ra, rb}) {
      auto cfg = sched::proactive_config(bench::market(region, "small"));
      cfg.scope = sched::MarketScope::kMultiMarket;
      const auto agg = runner.run(scenario, cfg);
      single_cost += agg.normalized_cost_pct.mean;
      single_unavail += agg.unavailability_pct.mean;
    }
    single_cost /= 2.0;
    single_unavail /= 2.0;

    auto cfg = sched::proactive_config(bench::market(ra, "small"));
    cfg.scope = sched::MarketScope::kMultiRegion;
    cfg.allowed_regions = {ra, rb};
    const auto multi = runner.run(scenario, cfg);

    // Fig 9(b): correlation of the small markets across the two regions.
    sched::World world(scenario);
    const double corr = trace::trace_correlation(
        world.provider().market(bench::market(ra, "small")).price_trace(),
        world.provider().market(bench::market(rb, "small")).price_trace());

    table.add_row({ra + " + " + rb, metrics::fmt(single_cost, 1),
                   metrics::fmt(multi.normalized_cost_pct.mean, 1),
                   metrics::fmt(single_unavail, 4),
                   metrics::fmt(multi.unavailability_pct.mean, 4),
                   metrics::fmt(corr, 3)});
  }
  table.print(std::cout);
  std::cout << "paper: multi-region lands at 12-17% of the (cheaper) baseline,\n"
               "5-28% below the single-region average (a); cross-region\n"
               "correlation is low (b); unavailability can INCREASE when the\n"
               "cheaper region is also the more volatile one (c)\n";
  return 0;
}
