// Figure 9(a-c): multi-region bidding on region pairs versus the single-
// region schemes — normalized cost (baseline: the cheaper region's on-demand
// price), cross-region correlation, and unavailability.
#include "bench_common.hpp"

using namespace spothost;

int main() {
  auto sweep = bench::default_sweep();
  const std::vector<std::pair<std::string, std::string>> pairs{
      {"us-east-1a", "us-east-1b"}, {"us-east-1a", "us-west-1a"},
      {"us-east-1a", "eu-west-1a"}, {"us-east-1b", "us-west-1a"},
      {"us-east-1b", "eu-west-1a"}, {"us-west-1a", "eu-west-1a"}};

  // Three arms per pair (two single-region + one multi-region), all declared
  // up front; the pair's two-region trace set is generated once per seed.
  struct PairArms {
    sched::Scenario scenario;
    std::vector<int> single;
    int multi = 0;
  };
  std::vector<PairArms> pair_arms;
  for (const auto& [ra, rb] : pairs) {
    PairArms arms;
    arms.scenario = bench::full_scenario();
    arms.scenario.regions = {ra, rb};
    for (const auto& region : {ra, rb}) {
      auto cfg = sched::proactive_config(bench::market(region, "small"));
      cfg.scope = sched::MarketScope::kMultiMarket;
      arms.single.push_back(
          sweep.add_arm(ra + "+" + rb + "/" + region, arms.scenario, cfg));
    }
    auto cfg = sched::proactive_config(bench::market(ra, "small"));
    cfg.scope = sched::MarketScope::kMultiRegion;
    cfg.allowed_regions = {ra, rb};
    arms.multi = sweep.add_arm(ra + "+" + rb + "/multi", arms.scenario, cfg);
    pair_arms.push_back(std::move(arms));
  }
  const auto results = sweep.run_all();

  metrics::print_banner(std::cout, "Fig 9: multi-region vs single-region pairs");
  metrics::TextTable table({"pair", "avg single-region cost %",
                            "multi-region cost %", "avg single unavail %",
                            "multi unavail %", "cross-region corr"});

  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const auto& [ra, rb] = pairs[p];
    const auto& arms = pair_arms[p];
    double single_cost = 0.0, single_unavail = 0.0;
    for (const int a : arms.single) {
      const auto& agg = results[static_cast<std::size_t>(a)];
      single_cost += agg.normalized_cost_pct.mean;
      single_unavail += agg.unavailability_pct.mean;
    }
    single_cost /= 2.0;
    single_unavail /= 2.0;
    const auto& multi = results[static_cast<std::size_t>(arms.multi)];

    // Fig 9(b): correlation of the small markets across the two regions,
    // from the memoized trace set the arms ran on. Querying the shared set
    // in place is safe: PriceTrace const queries are pure reads, and the
    // sampling walk inside trace_correlation keeps its own PriceCursors.
    const auto traces = sweep.traces_for(arms.scenario);
    const double corr = trace::trace_correlation(
        traces->prices(bench::market(ra, "small")),
        traces->prices(bench::market(rb, "small")));

    table.add_row({ra + " + " + rb, metrics::fmt(single_cost, 1),
                   metrics::fmt(multi.normalized_cost_pct.mean, 1),
                   metrics::fmt(single_unavail, 4),
                   metrics::fmt(multi.unavailability_pct.mean, 4),
                   metrics::fmt(corr, 3)});
  }
  table.print(std::cout);
  std::cout << "paper: multi-region lands at 12-17% of the (cheaper) baseline,\n"
               "5-28% below the single-region average (a); cross-region\n"
               "correlation is low (b); unavailability can INCREASE when the\n"
               "cheaper region is also the more volatile one (c)\n";
  return 0;
}
