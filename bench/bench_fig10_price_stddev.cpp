// Figure 10: standard deviation of spot prices per region and size —
// us-east's markets are more variable than us-west's or eu-west's.
#include "bench_common.hpp"

using namespace spothost;

int main() {
  sched::World world(bench::full_scenario());

  metrics::print_banner(std::cout,
                        "Fig 10: price standard deviation ($/hr) by region & size");
  metrics::TextTable table({"region", "small", "medium", "large", "xlarge"});
  for (const auto region_view : trace::canonical_regions()) {
    const std::string region{region_view};
    std::vector<std::string> row{region};
    for (const char* size : {"small", "medium", "large", "xlarge"}) {
      const auto& t =
          world.provider().market(bench::market(region, size)).price_trace();
      row.push_back(
          metrics::fmt(trace::trace_stddev(t, 0, world.horizon()), 4));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "paper: us-east columns dominate us-west/eu-west; stddev grows\n"
               "with instance size\n";
  return 0;
}
