// Figure 10: standard deviation of spot prices per region and size —
// us-east's markets are more variable than us-west's or eu-west's.
#include "bench_common.hpp"

using namespace spothost;

int main() {
  // Pure trace statistics: generate the market trace set directly instead of
  // wiring a full World (provider, simulation, fault injector) around it.
  const auto scenario = bench::full_scenario();
  const auto traces = sched::MarketTraceSet::generate(scenario);

  metrics::print_banner(std::cout,
                        "Fig 10: price standard deviation ($/hr) by region & size");
  metrics::TextTable table({"region", "small", "medium", "large", "xlarge"});
  for (const auto region_view : trace::canonical_regions()) {
    const std::string region{region_view};
    std::vector<std::string> row{region};
    for (const char* size : {"small", "medium", "large", "xlarge"}) {
      // In-place query of the shared set: trace_stddev's segment walk owns
      // its PriceCursor, so the shared PriceTrace is never mutated.
      const auto& t = traces->prices(bench::market(region, size));
      row.push_back(metrics::fmt(trace::trace_stddev(t, 0, scenario.horizon), 4));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "paper: us-east columns dominate us-west/eu-west; stddev grows\n"
               "with instance size\n";
  return 0;
}
