// Figure 11(a-b): the proactive scheduler versus using spot instances alone
// (no on-demand fallback) — cost and unavailability per size, us-east-1a.
#include "bench_common.hpp"

using namespace spothost;

int main() {
  auto sweep = bench::default_sweep();
  const auto scenario = bench::region_scenario("us-east-1a");

  for (const char* size : {"small", "medium", "large", "xlarge"}) {
    const auto home = bench::market("us-east-1a", size);
    sweep.add_arm(std::string(size) + "/proactive", scenario,
                  sched::proactive_config(home));
    sweep.add_arm(std::string(size) + "/pure-spot", scenario,
                  sched::pure_spot_config(home));
  }
  const auto results = sweep.run_all();

  metrics::print_banner(std::cout, "Fig 11: proactive vs pure spot (us-east-1a)");
  metrics::TextTable table({"size", "proactive cost %", "pure-spot cost %",
                            "proactive unavail %", "pure-spot unavail %",
                            "longest pure-spot outage (min)"});
  const std::vector<const char*> sizes{"small", "medium", "large", "xlarge"};
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto& pro = results[2 * i];
    const auto& spot = results[2 * i + 1];
    double longest_s = 0.0;
    for (const auto& run : spot.per_run) {
      longest_s = std::max(longest_s, run.longest_outage_s);
    }
    table.add_row({sizes[i], metrics::fmt(pro.normalized_cost_pct.mean, 1),
                   metrics::fmt(spot.normalized_cost_pct.mean, 1),
                   metrics::fmt(pro.unavailability_pct.mean, 4),
                   metrics::fmt(spot.unavailability_pct.mean, 3),
                   metrics::fmt(longest_s / 60.0, 1)});
  }
  table.print(std::cout);
  std::cout << "paper: pure spot only slightly cheaper (a) but unavailability\n"
               "exceeds 1% in most markets, with outages lasting hours (b) —\n"
               "unusable for always-on services\n";
  return 0;
}
