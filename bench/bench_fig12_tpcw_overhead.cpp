// Figure 12(a-b): TPC-W average response time vs number of emulated
// browsers, Amazon VM vs nested VM, for both workload configurations.
#include "bench_common.hpp"

using namespace spothost;

namespace {

void print_scenario(const workload::TpcwModel& model,
                    workload::TpcwScenario scenario, const std::string& title,
                    const std::string& paper_note) {
  metrics::print_banner(std::cout, title);
  metrics::TextTable table({"EBs", "Amazon VM (ms)", "Nested VM (ms)",
                            "nested/native"});
  for (int eb = 100; eb <= 400; eb += 50) {
    const double native =
        model.response_time_ms(eb, scenario, workload::HostKind::kNativeVm);
    const double nested =
        model.response_time_ms(eb, scenario, workload::HostKind::kNestedVm);
    table.add_row({std::to_string(eb), metrics::fmt(native, 0),
                   metrics::fmt(nested, 0), metrics::fmt(nested / native, 2)});
  }
  table.print(std::cout);
  std::cout << paper_note << "\n";
}

}  // namespace

int main() {
  const workload::TpcwModel model;
  print_scenario(model, workload::TpcwScenario::kWithImages,
                 "Fig 12(a): TPC-W, browsers fetch images (I/O-bound)",
                 "paper: nested VM no worse than the Amazon VM — xen-blanket "
                 "I/O is efficient");
  print_scenario(model, workload::TpcwScenario::kNoImages,
                 "Fig 12(b): TPC-W, images served by a CDN (CPU-bound)",
                 "paper: nested VM up to 50% worse under load — the CPU "
                 "overhead is load-dependent");
  return 0;
}
