// Fleet-scale event-core benchmark: how many scheduler events per second the
// simulation core sustains as the fleet grows 1k -> 1M services, per queue
// backend (timing wheel vs binary heap), serial and sharded.
//
// The workload is the fleet pattern distilled: every service keeps a
// periodic hour-tick chain alive (schedule-next-inside-the-callback, the
// MarketWatcher::schedule_hour_tick shape), and every tick schedules a poll
// event of which half are cancelled before firing (the planned-migration
// cancel churn in CloudScheduler). Services are staggered across a few
// hundred launch cohorts but share the billing period, so events arrive in
// synchronized same-millisecond bursts — the shape real fleets produce
// (billing hours align to launch waves, planned migrations to market price
// steps), and the shape the batched trigger fan-out exists for.
//
// The sharded arms run the same per-service pattern on a ShardedSimulation
// with services partitioned across K shard lanes by shard_of_key, plus the
// cross-shard coupling the paper's market structure implies: a global
// "price step" chain every 5 simulated minutes that fans one mailbox
// message out to every shard (the MarketWatcher batch-post shape). Shard
// counts sweep 1/2/4/8 per backend; each arm reports the barrier-stall
// fraction (idle window capacity) and per-shard throughput next to the
// aggregate, so the Amdahl term is visible, not inferred.
//
// Output: a human table on stdout plus BENCH_fleet.json (schema 2) in the
// working directory. events_per_sec counts FIRED events against the
// wall-clock time of the run loop (setup excluded); rss_mb samples VmRSS
// while the queue still holds the fleet's pending events, peak_rss_mb is
// the process-wide VmHWM high-water mark (monotone across arms — sizes run
// ascending so each arm's peak is its own). hardware_threads records the
// machine so sharded speedups are read in context: on a 1-core runner the
// sweep measures barrier/merge overhead, not parallelism.
//
// Knobs: SPOTHOST_RUNS=1 selects the CI smoke sizes and a trimmed shard
// sweep; SPOTHOST_FLEET_EVENTS overrides the ~per-arm fired-event budget.
// SPOTHOST_THREADS sizes the shared pool the sharded arms run windows on.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "simcore/sharded_sim.hpp"
#include "simcore/simulation.hpp"

namespace {

using namespace spothost;

constexpr sim::SimTime kPeriod = sim::kHour;
constexpr sim::SimTime kPulsePeriod = 5 * sim::kMinute;

struct Service {
  sim::Clock* clock = nullptr;  // the service's lane (or the one serial clock)
  std::uint32_t shard = 0;
  std::uint32_t ticks_done = 0;
  sim::EventHandle tick;
  sim::EventHandle poll;
};

// N services running periodic tick chains with poll-and-cancel churn.
// Engine-agnostic: the serial arm maps every service to the one Simulation
// clock; the sharded arm maps service i to shard_of_key(i, K)'s lane.
class SyntheticFleet {
 public:
  // Launch waves: services within a cohort share their tick millisecond,
  // and all cohorts share the billing period, so the bursts persist.
  static constexpr std::size_t kCohorts = 512;

  SyntheticFleet(std::size_t n, std::size_t lanes, std::uint32_t ticks_each)
      : ticks_each_(ticks_each), services_(n), fired_(lanes) {}

  void place(std::size_t i, sim::Clock& clock, std::size_t lane) {
    Service& svc = services_[i];
    svc.clock = &clock;
    svc.shard = static_cast<std::uint32_t>(lane);
    svc.tick = clock.at(1 + cohort(i), [this, i] { on_tick(i); });
  }

  /// One cross-shard pulse delivery (runs on the lane's thread).
  void on_pulse(std::size_t lane) { ++fired_[lane].v; }

  [[nodiscard]] std::uint64_t fired() const noexcept {
    std::uint64_t total = 0;
    for (const auto& lane : fired_) total += lane.v;
    return total;
  }

  [[nodiscard]] sim::SimTime horizon() const noexcept {
    return static_cast<sim::SimTime>(ticks_each_ + 3) * kPeriod;
  }

 private:
  // One counter per lane, cacheline-padded: window callbacks on different
  // lanes must not share a write target.
  struct alignas(64) LaneCount {
    std::uint64_t v = 0;
  };

  static sim::SimTime cohort(std::size_t i) noexcept {
    return static_cast<sim::SimTime>((i * 2654435761u) % kCohorts);
  }

  void on_tick(std::size_t i) {
    Service& svc = services_[i];
    ++fired_[svc.shard].v;
    // Half the polls are cancelled while pending (poll delay exceeds one
    // period, so the previous tick's poll is still live here); the other
    // half fire and count. Deterministic parity, no RNG in the hot loop.
    if (((svc.ticks_done ^ i) & 1u) == 0) svc.poll.cancel();
    // Polls land on the cohort grid shortly after the next tick burst —
    // planned-migration checks align to the same hour/price-step boundaries
    // the ticks do.
    const auto poll_delay = kPeriod + 1 + 2 * cohort(i) +
                            static_cast<sim::SimTime>(i & 1u);
    svc.poll = svc.clock->after(poll_delay, [this, i] {
      Service& done = services_[i];
      ++fired_[done.shard].v;
      done.poll.reset();
    });
    if (++svc.ticks_done < ticks_each_) {
      svc.tick = svc.clock->after(kPeriod, [this, i] { on_tick(i); });
    }
  }

  std::uint32_t ticks_each_;
  std::vector<Service> services_;
  std::vector<LaneCount> fired_;
};

/// /proc/self/status field in kB -> MB (0.0 when unavailable).
double proc_status_mb(const std::string& field) {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(field, 0) == 0) {
      return std::stod(line.substr(field.size() + 1)) / 1024.0;
    }
  }
  return 0.0;
}

struct ArmResult {
  std::string mode;  // "serial" | "sharded"
  std::string backend;
  std::size_t services = 0;
  std::size_t shards = 0;  // 0 for the serial engine
  std::uint64_t events = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  double per_shard_events_per_sec = 0.0;
  std::uint64_t windows = 0;
  double barrier_stall = 0.0;
  double rss_mb = 0.0;
  double peak_rss_mb = 0.0;
};

std::uint32_t ticks_for_budget(std::size_t n, std::uint64_t event_budget) {
  // ticks_each * n * 1.5 fired events ~= the budget, floor of 2 so every
  // service exercises the reschedule path at least once.
  return static_cast<std::uint32_t>(std::max<std::uint64_t>(
      2, event_budget / std::max<std::uint64_t>(1, n + n / 2)));
}

ArmResult run_serial_arm(sim::QueueBackend backend, std::size_t n,
                         std::uint64_t event_budget) {
  const std::uint32_t ticks_each = ticks_for_budget(n, event_budget);
  sim::Simulation s(backend);
  SyntheticFleet fleet(n, 1, ticks_each);
  for (std::size_t i = 0; i < n; ++i) fleet.place(i, s, 0);
  const auto t0 = std::chrono::steady_clock::now();
  s.run_until(fleet.horizon());
  const auto t1 = std::chrono::steady_clock::now();

  ArmResult r;
  r.mode = "serial";
  r.backend = sim::to_string(backend);
  r.services = n;
  r.events = fleet.fired();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_sec =
      r.seconds > 0 ? static_cast<double>(r.events) / r.seconds : 0.0;
  r.rss_mb = proc_status_mb("VmRSS:");
  r.peak_rss_mb = proc_status_mb("VmHWM:");
  return r;
}

ArmResult run_sharded_arm(sim::QueueBackend backend, std::size_t n,
                          std::size_t shards, std::uint64_t event_budget) {
  const std::uint32_t ticks_each = ticks_for_budget(n, event_budget);
  sim::ShardedSimulation eng(shards, backend);
  SyntheticFleet fleet(n, shards, ticks_each);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = sim::shard_of_key(i, shards);
    fleet.place(i, eng.shard_clock(s), s);
  }
  // The market coupling: a global chain every 5 sim-minutes posting one
  // mailbox message per shard (the MarketWatcher batch fan-out shape).
  // Every pulse is a barrier the windows synchronize on.
  struct Pulser {
    sim::ShardedSimulation* eng;
    SyntheticFleet* fleet;
    std::size_t shards;
    void fire() {
      for (std::size_t s = 0; s < shards; ++s) {
        SyntheticFleet* f = fleet;
        eng->post(s, [f, s] { f->on_pulse(s); });
      }
      eng->after(kPulsePeriod, [this] { fire(); });
    }
  };
  Pulser pulser{&eng, &fleet, shards};
  eng.at(kPulsePeriod, [&pulser] { pulser.fire(); });

  const auto t0 = std::chrono::steady_clock::now();
  eng.run_until(fleet.horizon());
  const auto t1 = std::chrono::steady_clock::now();

  ArmResult r;
  r.mode = "sharded";
  r.backend = sim::to_string(backend);
  r.services = n;
  r.shards = shards;
  r.events = fleet.fired();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_sec =
      r.seconds > 0 ? static_cast<double>(r.events) / r.seconds : 0.0;
  r.per_shard_events_per_sec =
      r.events_per_sec / static_cast<double>(shards);
  const auto stats = eng.stats();
  r.windows = stats.windows;
  r.barrier_stall = stats.barrier_stall(shards);
  r.rss_mb = proc_status_mb("VmRSS:");
  r.peak_rss_mb = proc_status_mb("VmHWM:");
  return r;
}

void write_json(const std::vector<ArmResult>& arms, const char* path) {
  std::ofstream out(path);
  out << "{\n  \"schema\": 2,\n  \"bench\": \"fleet_scale\",\n"
      << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const ArmResult& a = arms[i];
    out << "    {\"mode\": \"" << a.mode << "\", \"backend\": \"" << a.backend
        << "\", \"services\": " << a.services << ", \"shards\": " << a.shards
        << ", \"events\": " << a.events << ", \"seconds\": " << a.seconds
        << ", \"events_per_sec\": " << a.events_per_sec
        << ", \"per_shard_events_per_sec\": " << a.per_shard_events_per_sec
        << ", \"windows\": " << a.windows
        << ", \"barrier_stall\": " << a.barrier_stall
        << ", \"rss_mb\": " << a.rss_mb << ", \"peak_rss_mb\": "
        << a.peak_rss_mb << "}" << (i + 1 < arms.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

void print_arm(const ArmResult& r) {
  std::printf("%-7s %-8s %9zu %6zu %12" PRIu64 " %9.3f %13.0f %8.2f %9.1f\n",
              r.mode.c_str(), r.backend.c_str(), r.services, r.shards,
              r.events, r.seconds, r.events_per_sec, r.barrier_stall,
              r.rss_mb);
}

}  // namespace

int main() {
  const bool smoke = bench::env_runs() <= 1;
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{1000, 10000}
            : std::vector<std::size_t>{1000, 10000, 100000, 1000000};
  // The shard sweep runs at fleet scale only — small fleets measure barrier
  // overhead, not partitioned throughput.
  const std::vector<std::size_t> shard_sizes =
      smoke ? std::vector<std::size_t>{10000}
            : std::vector<std::size_t>{100000, 1000000};
  // The smoke's sharded arm width follows the SPOTHOST_SHARDS knob (the
  // same one that shards World-based fleet runs), so CI pins the exact
  // configuration it exercises; the full sweep stays fixed.
  const std::size_t smoke_shards =
      std::max<std::uint64_t>(2, exec::env_u64("SPOTHOST_SHARDS", 2));
  const std::vector<std::size_t> shard_counts =
      smoke ? std::vector<std::size_t>{1, smoke_shards}
            : std::vector<std::size_t>{1, 2, 4, 8};
  const std::uint64_t budget = exec::env_u64("SPOTHOST_FLEET_EVENTS", 2000000);

  std::printf("fleet-scale event core (budget ~%" PRIu64
              " fired events/arm, %u hw threads)%s\n",
              budget, std::thread::hardware_concurrency(),
              smoke ? " [smoke]" : "");
  std::printf("%-7s %-8s %9s %6s %12s %9s %13s %8s %9s\n", "mode", "backend",
              "services", "shards", "events", "seconds", "events/sec",
              "stall", "rss MB");

  std::vector<ArmResult> arms;
  for (const std::size_t n : sizes) {  // ascending: VmHWM stays per-arm honest
    for (const auto backend :
         {sim::QueueBackend::kBinaryHeap, sim::QueueBackend::kTimingWheel}) {
      const ArmResult r = run_serial_arm(backend, n, budget);
      print_arm(r);
      arms.push_back(r);
    }
    // Same size, both backends just ran: print the wheel/heap ratio.
    const double heap = arms[arms.size() - 2].events_per_sec;
    const double wheel = arms.back().events_per_sec;
    if (heap > 0) {
      std::printf("%-7s %-8s %9zu %6s wheel/heap = %.2fx\n", "", "", n, "",
                  wheel / heap);
    }
  }
  for (const std::size_t n : shard_sizes) {
    for (const auto backend :
         {sim::QueueBackend::kBinaryHeap, sim::QueueBackend::kTimingWheel}) {
      double base = 0.0;
      for (const std::size_t shards : shard_counts) {
        const ArmResult r = run_sharded_arm(backend, n, shards, budget);
        print_arm(r);
        if (shards == 1) base = r.events_per_sec;
        if (shards > 1 && base > 0) {
          std::printf("%-7s %-8s %9zu %6zu %dx-vs-1-shard = %.2fx\n", "", "",
                      n, shards, static_cast<int>(shards),
                      r.events_per_sec / base);
        }
        arms.push_back(r);
      }
    }
  }
  write_json(arms, "BENCH_fleet.json");
  std::printf("wrote BENCH_fleet.json (schema 2, %zu arms)\n", arms.size());
  return 0;
}
