// Fleet-scale event-core benchmark: how many scheduler events per second the
// simulation core sustains as the fleet grows 1k -> 1M services, per queue
// backend (timing wheel vs binary heap).
//
// The workload is the fleet pattern distilled: every service keeps a
// periodic hour-tick chain alive (schedule-next-inside-the-callback, the
// MarketWatcher::schedule_hour_tick shape), and every tick schedules a poll
// event of which half are cancelled before firing (the planned-migration
// cancel churn in CloudScheduler). Services are staggered across a few
// hundred launch cohorts but share the billing period, so events arrive in
// synchronized same-millisecond bursts — the shape real fleets produce
// (billing hours align to launch waves, planned migrations to market price
// steps), and the shape the batched trigger fan-out exists for.
//
// Output: a human table on stdout plus BENCH_fleet.json in the working
// directory. events_per_sec counts FIRED events against the wall-clock time
// of the run loop (setup excluded); rss_mb samples VmRSS while the queue
// still holds the fleet's pending events, peak_rss_mb is the process-wide
// VmHWM high-water mark (monotone across arms — sizes run ascending so each
// arm's peak is its own).
//
// Knobs: SPOTHOST_RUNS=1 selects the CI smoke size list (1k/10k);
// SPOTHOST_FLEET_EVENTS overrides the ~per-arm fired-event budget.
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "simcore/simulation.hpp"

namespace {

using namespace spothost;

constexpr sim::SimTime kPeriod = sim::kHour;

struct Service {
  sim::EventHandle tick;
  sim::EventHandle poll;
  std::uint32_t ticks_done = 0;
};

// N services running periodic tick chains with poll-and-cancel churn.
class SyntheticFleet {
 public:
  // Launch waves: services within a cohort share their tick millisecond,
  // and all cohorts share the billing period, so the bursts persist.
  static constexpr std::size_t kCohorts = 512;

  SyntheticFleet(sim::Simulation& s, std::size_t n, std::uint32_t ticks_each)
      : sim_(s), ticks_each_(ticks_each), services_(n) {
    for (std::size_t i = 0; i < n; ++i) {
      services_[i].tick =
          sim_.at(1 + cohort(i), [this, i] { on_tick(i); });
    }
  }

  [[nodiscard]] std::uint64_t fired() const noexcept { return fired_; }

  [[nodiscard]] sim::SimTime horizon() const noexcept {
    return static_cast<sim::SimTime>(ticks_each_ + 3) * kPeriod;
  }

 private:
  static sim::SimTime cohort(std::size_t i) noexcept {
    return static_cast<sim::SimTime>((i * 2654435761u) % kCohorts);
  }

  void on_tick(std::size_t i) {
    ++fired_;
    Service& svc = services_[i];
    // Half the polls are cancelled while pending (poll delay exceeds one
    // period, so the previous tick's poll is still live here); the other
    // half fire and count. Deterministic parity, no RNG in the hot loop.
    if (((svc.ticks_done ^ i) & 1u) == 0) svc.poll.cancel();
    // Polls land on the cohort grid shortly after the next tick burst —
    // planned-migration checks align to the same hour/price-step boundaries
    // the ticks do.
    const auto poll_delay = kPeriod + 1 + 2 * cohort(i) +
                            static_cast<sim::SimTime>(i & 1u);
    svc.poll = sim_.after(poll_delay, [this, i] {
      ++fired_;
      services_[i].poll.reset();
    });
    if (++svc.ticks_done < ticks_each_) {
      svc.tick = sim_.after(kPeriod, [this, i] { on_tick(i); });
    }
  }

  sim::Simulation& sim_;
  std::uint32_t ticks_each_;
  std::vector<Service> services_;
  std::uint64_t fired_ = 0;
};

/// /proc/self/status field in kB -> MB (0.0 when unavailable).
double proc_status_mb(const std::string& field) {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(field, 0) == 0) {
      return std::stod(line.substr(field.size() + 1)) / 1024.0;
    }
  }
  return 0.0;
}

struct ArmResult {
  std::string backend;
  std::size_t services = 0;
  std::uint64_t events = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  double rss_mb = 0.0;
  double peak_rss_mb = 0.0;
};

ArmResult run_arm(sim::QueueBackend backend, std::size_t n,
                  std::uint64_t event_budget) {
  // ticks_each * n * 1.5 fired events ~= the budget, floor of 2 so every
  // service exercises the reschedule path at least once.
  const auto ticks_each = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(2, event_budget / std::max<std::uint64_t>(
                                      1, n + n / 2)));
  sim::Simulation s(backend);
  SyntheticFleet fleet(s, n, ticks_each);
  const auto t0 = std::chrono::steady_clock::now();
  s.run_until(fleet.horizon());
  const auto t1 = std::chrono::steady_clock::now();

  ArmResult r;
  r.backend = sim::to_string(backend);
  r.services = n;
  r.events = fleet.fired();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_sec = r.seconds > 0 ? static_cast<double>(r.events) / r.seconds
                                   : 0.0;
  r.rss_mb = proc_status_mb("VmRSS:");
  r.peak_rss_mb = proc_status_mb("VmHWM:");
  return r;
}

void write_json(const std::vector<ArmResult>& arms, const char* path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"fleet_scale\",\n  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const ArmResult& a = arms[i];
    out << "    {\"backend\": \"" << a.backend << "\", \"services\": "
        << a.services << ", \"events\": " << a.events << ", \"seconds\": "
        << a.seconds << ", \"events_per_sec\": " << a.events_per_sec
        << ", \"rss_mb\": " << a.rss_mb << ", \"peak_rss_mb\": "
        << a.peak_rss_mb << "}" << (i + 1 < arms.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main() {
  const bool smoke = bench::env_runs() <= 1;
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{1000, 10000}
            : std::vector<std::size_t>{1000, 10000, 100000, 1000000};
  const std::uint64_t budget = exec::env_u64("SPOTHOST_FLEET_EVENTS", 2000000);

  std::printf("fleet-scale event core (budget ~%" PRIu64
              " fired events/arm)%s\n",
              budget, smoke ? " [smoke]" : "");
  std::printf("%-8s %10s %12s %10s %14s %10s\n", "backend", "services",
              "events", "seconds", "events/sec", "rss MB");

  std::vector<ArmResult> arms;
  for (const std::size_t n : sizes) {  // ascending: VmHWM stays per-arm honest
    for (const auto backend :
         {sim::QueueBackend::kBinaryHeap, sim::QueueBackend::kTimingWheel}) {
      const ArmResult r = run_arm(backend, n, budget);
      std::printf("%-8s %10zu %12" PRIu64 " %10.3f %14.0f %10.1f\n",
                  r.backend.c_str(), r.services, r.events, r.seconds,
                  r.events_per_sec, r.rss_mb);
      arms.push_back(r);
    }
    // Same size, both backends just ran: print the wheel/heap ratio.
    const double heap = arms[arms.size() - 2].events_per_sec;
    const double wheel = arms.back().events_per_sec;
    if (heap > 0) {
      std::printf("%-8s %10zu %*s wheel/heap = %.2fx\n", "", n, 12, "",
                  wheel / heap);
    }
  }
  write_json(arms, "BENCH_fleet.json");
  std::printf("wrote BENCH_fleet.json (%zu arms)\n", arms.size());
  return 0;
}
