// Engine performance microbenchmarks (google-benchmark): event-queue
// throughput, synthetic trace generation, and complete hosting runs.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "spothost.hpp"

namespace {

using namespace spothost;

sim::QueueBackend bench_backend(const benchmark::State& state) {
  return state.range(0) == 0 ? sim::QueueBackend::kBinaryHeap
                             : sim::QueueBackend::kTimingWheel;
}

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    auto q = sim::make_event_queue(bench_backend(state));
    std::uint64_t rng_state = 42;
    for (std::size_t i = 0; i < n; ++i) {
      q->schedule(static_cast<sim::SimTime>(sim::splitmix64(rng_state) % 1000000),
                  [] {});
    }
    while (!q->empty()) benchmark::DoNotOptimize(q->pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  state.SetLabel(std::string(sim::to_string(bench_backend(state))));
}
BENCHMARK(BM_EventQueueScheduleAndPop)
    ->ArgsProduct({{0, 1}, {1000, 10000, 100000}});

void BM_EventQueueCancellation(benchmark::State& state) {
  const std::size_t n = 10000;
  for (auto _ : state) {
    auto q = sim::make_event_queue(bench_backend(state));
    std::vector<sim::EventId> ids;
    ids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(q->schedule(static_cast<sim::SimTime>(i), [] {}));
    }
    for (std::size_t i = 0; i < n; i += 2) q->cancel(ids[i]);
    while (!q->empty()) benchmark::DoNotOptimize(q->pop().time);
  }
  state.SetLabel(std::string(sim::to_string(bench_backend(state))));
}
BENCHMARK(BM_EventQueueCancellation)->Arg(0)->Arg(1);

void BM_SyntheticTraceMonth(benchmark::State& state) {
  sim::RngFactory factory(7);
  const auto profile = trace::profile_for("us-east-1a", "small");
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto rng = factory.stream("bench", i++);
    const auto t = trace::SyntheticSpotModel::generate(profile, 0.06,
                                                       30 * sim::kDay, rng);
    benchmark::DoNotOptimize(t.size());
  }
}
BENCHMARK(BM_SyntheticTraceMonth);

// Monotone forward scan over a month of prices, the access pattern of the
// billing meter and the scheduler's periodic re-evaluation. The baseline
// re-runs a binary search per query (what the cursorless price_at overload
// does); the PriceCursor variant answers the same queries amortized O(1).
trace::PriceTrace month_trace() {
  sim::RngFactory factory(7);
  auto rng = factory.stream("bench-trace");
  return trace::SyntheticSpotModel::generate(trace::profile_for("us-east-1a", "small"),
                                             0.06, 30 * sim::kDay, rng);
}

void BM_PriceTraceForwardScanBinarySearch(benchmark::State& state) {
  const auto t = month_trace();
  const auto& pts = t.points();
  const sim::SimTime step = 5 * sim::kMinute;
  for (auto _ : state) {
    double sum = 0.0;
    for (sim::SimTime q = t.start(); q < t.end(); q += step) {
      auto it = std::upper_bound(
          pts.begin(), pts.end(), q,
          [](sim::SimTime v, const trace::PricePoint& p) { return v < p.time; });
      sum += std::prev(it)->price;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>((t.end() - t.start()) / step) * state.iterations());
}
BENCHMARK(BM_PriceTraceForwardScanBinarySearch);

void BM_PriceTraceForwardScanCursor(benchmark::State& state) {
  const auto t = month_trace();
  const sim::SimTime step = 5 * sim::kMinute;
  for (auto _ : state) {
    double sum = 0.0;
    trace::PriceCursor cursor;  // the reader's state, not the trace's
    for (sim::SimTime q = t.start(); q < t.end(); q += step) {
      sum += t.price_at(q, cursor);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>((t.end() - t.start()) / step) * state.iterations());
}
BENCHMARK(BM_PriceTraceForwardScanCursor);

void BM_WorldConstruction(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sched::World world(sched::Scenario{.seed = seed++, .horizon = 30 * sim::kDay});
    benchmark::DoNotOptimize(world.provider().all_markets().size());
  }
}
BENCHMARK(BM_WorldConstruction);

void BM_FullHostingMonth(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sched::Scenario s;
    s.seed = seed++;
    s.horizon = 30 * sim::kDay;
    s.regions = {"us-east-1a"};
    s.sizes = {cloud::InstanceSize::kSmall};
    const auto m = metrics::run_hosting_scenario(
        s, sched::proactive_config({"us-east-1a", cloud::InstanceSize::kSmall}));
    benchmark::DoNotOptimize(m.total_cost);
  }
}
BENCHMARK(BM_FullHostingMonth);

// Fig-08-shaped arm fan-out: five scheduler arms over the SAME (scenario,
// seed). The per-arm baseline regenerates the market traces inside every
// World; the memoized variant generates once per seed via TraceCache and
// shares the set. The "generations" counter makes the >=5x reduction visible
// in the JSON output.
void BM_Fig08ArmsPerArmTraces(benchmark::State& state) {
  sched::Scenario s;
  s.horizon = 30 * sim::kDay;
  s.regions = {"us-east-1a"};
  std::uint64_t generations = 0;
  for (auto _ : state) {
    s.seed += 1;
    for (int arm = 0; arm < 5; ++arm) {
      sched::World world(s);  // regenerates the trace set
      ++generations;
      benchmark::DoNotOptimize(world.provider().all_markets().size());
    }
  }
  state.counters["generations"] =
      benchmark::Counter(static_cast<double>(generations));
}
BENCHMARK(BM_Fig08ArmsPerArmTraces);

void BM_Fig08ArmsMemoizedTraces(benchmark::State& state) {
  sched::Scenario s;
  s.horizon = 30 * sim::kDay;
  s.regions = {"us-east-1a"};
  sched::TraceCache cache;
  for (auto _ : state) {
    s.seed += 1;
    for (int arm = 0; arm < 5; ++arm) {
      sched::World world(s, cache.get(s));
      benchmark::DoNotOptimize(world.provider().all_markets().size());
    }
  }
  state.counters["generations"] =
      benchmark::Counter(static_cast<double>(cache.generations()));
}
BENCHMARK(BM_Fig08ArmsMemoizedTraces);

// End-to-end sweep throughput: 4 arms x 3 seeds of a one-region hosting
// month, fanned across the shared pool with memoized traces.
void BM_SweepThroughput(benchmark::State& state) {
  sched::Scenario s;
  s.horizon = 30 * sim::kDay;
  s.regions = {"us-east-1a"};
  s.sizes = {cloud::InstanceSize::kSmall};
  const cloud::MarketId home{"us-east-1a", cloud::InstanceSize::kSmall};
  std::uint64_t base_seed = 9001;
  for (auto _ : state) {
    metrics::SweepRunner sweep(3, base_seed++);
    sweep.add_arm("reactive", s, sched::reactive_config(home));
    sweep.add_arm("proactive", s, sched::proactive_config(home));
    auto pessimistic = sched::proactive_config(home);
    pessimistic.bid.proactive_multiple = 1.5;
    sweep.add_arm("pessimistic", s, pessimistic);
    sweep.add_arm("pure-spot", s, sched::pure_spot_config(home));
    const auto results = sweep.run_all();
    benchmark::DoNotOptimize(results.size());
    state.counters["generations"] = benchmark::Counter(
        static_cast<double>(sweep.trace_cache()->generations()));
  }
  state.SetItemsProcessed(12 * state.iterations());
}
BENCHMARK(BM_SweepThroughput);

void BM_MvaSolve(benchmark::State& state) {
  const std::array<workload::Station, 2> stations{
      workload::Station{"cpu", 0.022, false}, workload::Station{"io", 0.06, false}};
  for (auto _ : state) {
    const auto r = workload::solve_closed_mva(stations,
                                              static_cast<int>(state.range(0)), 7.0);
    benchmark::DoNotOptimize(r.response_time_s);
  }
}
BENCHMARK(BM_MvaSolve)->Arg(100)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
