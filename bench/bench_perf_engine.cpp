// Engine performance microbenchmarks (google-benchmark): event-queue
// throughput, synthetic trace generation, and complete hosting runs.
#include <benchmark/benchmark.h>

#include "spothost.hpp"

namespace {

using namespace spothost;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    std::uint64_t rng_state = 42;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule(static_cast<sim::SimTime>(sim::splitmix64(rng_state) % 1000000),
                 [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EventQueueCancellation(benchmark::State& state) {
  const std::size_t n = 10000;
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventId> ids;
    ids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(q.schedule(static_cast<sim::SimTime>(i), [] {}));
    }
    for (std::size_t i = 0; i < n; i += 2) q.cancel(ids[i]);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().time);
  }
}
BENCHMARK(BM_EventQueueCancellation);

void BM_SyntheticTraceMonth(benchmark::State& state) {
  sim::RngFactory factory(7);
  const auto profile = trace::profile_for("us-east-1a", "small");
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto rng = factory.stream("bench", i++);
    const auto t = trace::SyntheticSpotModel::generate(profile, 0.06,
                                                       30 * sim::kDay, rng);
    benchmark::DoNotOptimize(t.size());
  }
}
BENCHMARK(BM_SyntheticTraceMonth);

void BM_WorldConstruction(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sched::World world(sched::Scenario{.seed = seed++, .horizon = 30 * sim::kDay});
    benchmark::DoNotOptimize(world.provider().all_markets().size());
  }
}
BENCHMARK(BM_WorldConstruction);

void BM_FullHostingMonth(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sched::Scenario s;
    s.seed = seed++;
    s.horizon = 30 * sim::kDay;
    s.regions = {"us-east-1a"};
    s.sizes = {cloud::InstanceSize::kSmall};
    const auto m = metrics::run_hosting_scenario(
        s, sched::proactive_config({"us-east-1a", cloud::InstanceSize::kSmall}));
    benchmark::DoNotOptimize(m.total_cost);
  }
}
BENCHMARK(BM_FullHostingMonth);

void BM_MvaSolve(benchmark::State& state) {
  const std::array<workload::Station, 2> stations{
      workload::Station{"cpu", 0.022, false}, workload::Station{"io", 0.06, false}};
  for (auto _ : state) {
    const auto r = workload::solve_closed_mva(stations,
                                              static_cast<int>(state.range(0)), 7.0);
    benchmark::DoNotOptimize(r.response_time_s);
  }
}
BENCHMARK(BM_MvaSolve)->Arg(100)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
