// Table 1: average start-up time of on-demand and spot instances per region.
// Samples the provider's allocation-latency model (itself calibrated to the
// paper's measured means) and prints measured-vs-paper.
#include "bench_common.hpp"

using namespace spothost;

int main() {
  sched::World world(bench::full_scenario());
  auto& provider = world.provider();
  auto& engine = world.engine();

  struct Row {
    std::string region;
    double paper_od, paper_spot;
  };
  const std::vector<Row> rows{{"us-east-1a", 94.85, 281.47},
                              {"us-west-1a", 93.63, 219.77},
                              {"eu-west-1a", 98.08, 233.37}};

  metrics::print_banner(std::cout, "Table 1: average start-up time (s)");
  metrics::TextTable table({"region", "on-demand (sim)", "on-demand (paper)",
                            "spot (sim)", "spot (paper)"});

  constexpr int kSamples = 200;
  for (const auto& row : rows) {
    const cloud::MarketId m = bench::market(row.region, "small");
    double od_sum = 0.0, spot_sum = 0.0;
    int od_done = 0, spot_done = 0;
    for (int i = 0; i < kSamples; ++i) {
      const sim::SimTime begun = engine.now();
      provider.request_on_demand(m, [&, begun](cloud::InstanceId iid) {
        od_sum += sim::to_seconds(engine.now() - begun);
        ++od_done;
        provider.terminate(iid);
      });
      provider.request_spot(
          m, /*bid=*/1e9,  // never rejected: we are sampling latency only
          [&, begun](cloud::InstanceId iid) {
            spot_sum += sim::to_seconds(engine.now() - begun);
            ++spot_done;
            provider.terminate(iid);
          },
          [](cloud::AllocFailure) {});
      engine.run_until(engine.now() + sim::kHour);
    }
    table.add_row({row.region, metrics::fmt(od_sum / od_done, 2),
                   metrics::fmt(row.paper_od, 2),
                   metrics::fmt(spot_sum / spot_done, 2),
                   metrics::fmt(row.paper_spot, 2)});
  }
  table.print(std::cout);
  std::cout << "(on-demand ~1.5 min; spot 3.5-4.5 min — Sec. 4.1)\n";
  return 0;
}
