// Table 2: overhead of the migration mechanisms — live-migration latency for
// a 2 GB nested VM within and across regions, memory-checkpointing time, and
// cross-region disk-copy rates.
#include "bench_common.hpp"

using namespace spothost;

namespace {

// The paper's microbenchmark migrates a mostly quiescent 2 GB nested VM.
virt::VmSpec bench_vm() {
  virt::VmSpec s;
  s.memory_gb = 2.0;
  s.disk_gb = 8.0;
  s.dirty_rate_mb_s = 5.0;
  s.working_set_mb = 256.0;
  return s;
}

}  // namespace

int main() {
  const virt::NetworkModel network;
  const virt::VmSpec vm = bench_vm();
  const virt::BoundedCheckpointer ckpt{virt::CheckpointParams{}};

  struct Row {
    std::string label, src, dst;
    double paper_live, paper_ckpt_per_gb, paper_disk_per_gb;
  };
  const std::vector<Row> rows{
      {"Inside US East", "us-east-1a", "us-east-1a", 58.5, 28.9, 0.0},
      {"Inside US West", "us-west-1a", "us-west-1a", 57.1, 28.8, 0.0},
      {"Inside EU West", "eu-west-1a", "eu-west-1a", 58.2, 28.05, 0.0},
      {"US East to US West", "us-east-1a", "us-west-1a", 73.7, 0.0, 122.4},
      {"US East to EU West", "us-east-1a", "eu-west-1a", 74.6, 0.0, 140.5},
      {"US West to EU West", "us-west-1a", "eu-west-1a", 140.2, 0.0, 171.6},
  };

  metrics::print_banner(std::cout,
                        "Table 2: migration mechanism overheads (2 GB nested VM)");
  metrics::TextTable table({"route", "live migrate s (sim)", "(paper)",
                            "ckpt s/GB (sim)", "(paper)", "disk copy s/GB (sim)",
                            "(paper)"});
  for (const auto& row : rows) {
    const auto link = network.link(row.src, row.dst);
    const auto live = virt::simulate_live_migration(vm, link.mem_bandwidth_mb_s);
    const double ckpt_per_gb = ckpt.full_checkpoint_time_s(vm) / vm.memory_gb;
    const double disk_per_gb =
        link.disk_copy_rate_mb_s > 0 ? 1024.0 / link.disk_copy_rate_mb_s : 0.0;
    auto cell = [](double v) { return v > 0 ? metrics::fmt(v, 1) : std::string("-"); };
    table.add_row({row.label, metrics::fmt(live.duration_s, 1),
                   metrics::fmt(row.paper_live, 1),
                   row.paper_ckpt_per_gb > 0 ? metrics::fmt(ckpt_per_gb, 1) : "-",
                   cell(row.paper_ckpt_per_gb), cell(disk_per_gb),
                   cell(row.paper_disk_per_gb)});
  }
  table.print(std::cout);

  const auto lazy = virt::simulate_lazy_restore(vm, virt::RestoreParams{});
  const auto full = virt::simulate_full_restore(vm, virt::RestoreParams{});
  std::cout << "restore: full " << metrics::fmt(full.downtime_s, 1)
            << " s (paper: ~28 s/GB read-back), lazy "
            << metrics::fmt(lazy.downtime_s, 1)
            << " s downtime (paper assumes 20 s, size-independent) + "
            << metrics::fmt(lazy.degraded_s, 1) << " s degraded window\n";
  return 0;
}
