// Table 3: the qualitative cost/availability matrix, computed from actual
// runs — on-demand only, spot only, and the migration-based scheduler.
#include "bench_common.hpp"

using namespace spothost;

int main() {
  auto sweep = bench::default_sweep();
  const auto scenario = bench::region_scenario("us-east-1a");
  const auto home = bench::market("us-east-1a", "small");

  const int pro_arm = sweep.add_arm("proactive", scenario,
                                    sched::proactive_config(home));
  const int spot_arm = sweep.add_arm("pure-spot", scenario,
                                     sched::pure_spot_config(home));
  const auto results = sweep.run_all();
  const auto& pro = results[static_cast<std::size_t>(pro_arm)];
  const auto& spot = results[static_cast<std::size_t>(spot_arm)];

  auto cost_label = [](double pct) {
    return pct > 70.0 ? "High" : "Low";
  };
  auto avail_label = [](double unavail_pct) {
    return unavail_pct < 0.05 ? "High" : "Low";
  };

  metrics::print_banner(std::cout, "Table 3: cost & availability by approach");
  metrics::TextTable table({"approach", "cost", "availability",
                            "cost % (measured)", "unavail % (measured)"});
  table.add_row({"Only on-demand", "High", "High", "100.0", "0.0000"});
  table.add_row({"Only spot", cost_label(spot.normalized_cost_pct.mean),
                 avail_label(spot.unavailability_pct.mean),
                 metrics::fmt(spot.normalized_cost_pct.mean, 1),
                 metrics::fmt(spot.unavailability_pct.mean, 4)});
  table.add_row({"Using migration mechanisms",
                 cost_label(pro.normalized_cost_pct.mean),
                 avail_label(pro.unavailability_pct.mean),
                 metrics::fmt(pro.normalized_cost_pct.mean, 1),
                 metrics::fmt(pro.unavailability_pct.mean, 4)});
  table.print(std::cout);
  std::cout << "paper: on-demand = high cost/high availability; spot = low/low;\n"
               "migration mechanisms = low cost AND high availability\n";
  return 0;
}
