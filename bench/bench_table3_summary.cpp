// Table 3: the qualitative cost/availability matrix, computed from actual
// runs — on-demand only, spot only, and the migration-based scheduler.
#include "bench_common.hpp"

using namespace spothost;

int main() {
  const auto runner = bench::default_runner();
  const auto scenario = bench::region_scenario("us-east-1a");
  const auto home = bench::market("us-east-1a", "small");

  const auto pro = runner.run(scenario, sched::proactive_config(home));
  const auto spot = runner.run(scenario, sched::pure_spot_config(home));

  auto cost_label = [](double pct) {
    return pct > 70.0 ? "High" : "Low";
  };
  auto avail_label = [](double unavail_pct) {
    return unavail_pct < 0.05 ? "High" : "Low";
  };

  metrics::print_banner(std::cout, "Table 3: cost & availability by approach");
  metrics::TextTable table({"approach", "cost", "availability",
                            "cost % (measured)", "unavail % (measured)"});
  table.add_row({"Only on-demand", "High", "High", "100.0", "0.0000"});
  table.add_row({"Only spot", cost_label(spot.normalized_cost_pct.mean),
                 avail_label(spot.unavailability_pct.mean),
                 metrics::fmt(spot.normalized_cost_pct.mean, 1),
                 metrics::fmt(spot.unavailability_pct.mean, 4)});
  table.add_row({"Using migration mechanisms",
                 cost_label(pro.normalized_cost_pct.mean),
                 avail_label(pro.unavailability_pct.mean),
                 metrics::fmt(pro.normalized_cost_pct.mean, 1),
                 metrics::fmt(pro.unavailability_pct.mean, 4)});
  table.print(std::cout);
  std::cout << "paper: on-demand = high cost/high availability; spot = low/low;\n"
               "migration mechanisms = low cost AND high availability\n";
  return 0;
}
