// Table 4: network and disk I/O throughput of nested VMs versus native
// Amazon VMs, via the simulated iperf/dd microbenchmarks.
#include "bench_common.hpp"

using namespace spothost;

int main() {
  const workload::IoBench bench_rig(workload::IoBenchBaselines{},
                                    virt::NestedVirtParams{}, /*jitter_cv=*/0.005);
  sim::RngFactory factory(bench::kBaseSeed);
  auto rng = factory.stream("iobench");

  struct Row {
    workload::IoBenchKind kind;
    std::string label;
    double paper_native, paper_nested;
  };
  const std::vector<Row> rows{
      {workload::IoBenchKind::kNetworkTx, "Network TX (Mbps)", 304.0, 304.0},
      {workload::IoBenchKind::kNetworkRx, "Network RX (Mbps)", 316.0, 314.0},
      {workload::IoBenchKind::kDiskRead, "Disk Read (Mbps)", 304.6, 297.6},
      {workload::IoBenchKind::kDiskWrite, "Disk Write (Mbps)", 280.4, 274.2},
  };

  metrics::print_banner(std::cout, "Table 4: nested vs native VM I/O throughput");
  metrics::TextTable table({"benchmark", "Amazon VM (sim)", "(paper)",
                            "Nested VM (sim)", "(paper)", "penalty %"});
  constexpr int kRuns = 20;
  for (const auto& row : rows) {
    const double native = bench_rig.mean_of_runs(row.kind,
                                                 workload::HostKind::kNativeVm,
                                                 kRuns, rng);
    const double nested = bench_rig.mean_of_runs(row.kind,
                                                 workload::HostKind::kNestedVm,
                                                 kRuns, rng);
    table.add_row({row.label, metrics::fmt(native, 1),
                   metrics::fmt(row.paper_native, 1), metrics::fmt(nested, 1),
                   metrics::fmt(row.paper_nested, 1),
                   metrics::fmt(100.0 * (native - nested) / native, 1)});
  }
  table.print(std::cout);
  std::cout << "paper: network at line rate through the nested NAT path; disk\n"
               "I/O degraded by only ~2%\n";
  return 0;
}
