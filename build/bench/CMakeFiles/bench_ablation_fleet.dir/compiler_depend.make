# Empty compiler generated dependencies file for bench_ablation_fleet.
# This may be replaced when dependencies are built.
