file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_markets.dir/bench_ablation_markets.cpp.o"
  "CMakeFiles/bench_ablation_markets.dir/bench_ablation_markets.cpp.o.d"
  "bench_ablation_markets"
  "bench_ablation_markets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_markets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
