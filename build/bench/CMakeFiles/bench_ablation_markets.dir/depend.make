# Empty dependencies file for bench_ablation_markets.
# This may be replaced when dependencies are built.
