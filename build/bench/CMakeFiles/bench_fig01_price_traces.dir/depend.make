# Empty dependencies file for bench_fig01_price_traces.
# This may be replaced when dependencies are built.
