file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_proactive_vs_reactive.dir/bench_fig06_proactive_vs_reactive.cpp.o"
  "CMakeFiles/bench_fig06_proactive_vs_reactive.dir/bench_fig06_proactive_vs_reactive.cpp.o.d"
  "bench_fig06_proactive_vs_reactive"
  "bench_fig06_proactive_vs_reactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_proactive_vs_reactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
