# Empty compiler generated dependencies file for bench_fig06_proactive_vs_reactive.
# This may be replaced when dependencies are built.
