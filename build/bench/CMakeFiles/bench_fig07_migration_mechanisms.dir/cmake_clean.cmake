file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_migration_mechanisms.dir/bench_fig07_migration_mechanisms.cpp.o"
  "CMakeFiles/bench_fig07_migration_mechanisms.dir/bench_fig07_migration_mechanisms.cpp.o.d"
  "bench_fig07_migration_mechanisms"
  "bench_fig07_migration_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_migration_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
