# Empty dependencies file for bench_fig07_migration_mechanisms.
# This may be replaced when dependencies are built.
