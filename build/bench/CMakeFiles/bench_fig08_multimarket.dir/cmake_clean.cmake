file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_multimarket.dir/bench_fig08_multimarket.cpp.o"
  "CMakeFiles/bench_fig08_multimarket.dir/bench_fig08_multimarket.cpp.o.d"
  "bench_fig08_multimarket"
  "bench_fig08_multimarket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_multimarket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
