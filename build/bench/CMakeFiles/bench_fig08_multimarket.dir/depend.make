# Empty dependencies file for bench_fig08_multimarket.
# This may be replaced when dependencies are built.
