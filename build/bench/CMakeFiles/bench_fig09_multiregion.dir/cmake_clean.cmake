file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_multiregion.dir/bench_fig09_multiregion.cpp.o"
  "CMakeFiles/bench_fig09_multiregion.dir/bench_fig09_multiregion.cpp.o.d"
  "bench_fig09_multiregion"
  "bench_fig09_multiregion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_multiregion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
