file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_price_stddev.dir/bench_fig10_price_stddev.cpp.o"
  "CMakeFiles/bench_fig10_price_stddev.dir/bench_fig10_price_stddev.cpp.o.d"
  "bench_fig10_price_stddev"
  "bench_fig10_price_stddev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_price_stddev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
