# Empty dependencies file for bench_fig10_price_stddev.
# This may be replaced when dependencies are built.
