file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_pure_spot.dir/bench_fig11_pure_spot.cpp.o"
  "CMakeFiles/bench_fig11_pure_spot.dir/bench_fig11_pure_spot.cpp.o.d"
  "bench_fig11_pure_spot"
  "bench_fig11_pure_spot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_pure_spot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
