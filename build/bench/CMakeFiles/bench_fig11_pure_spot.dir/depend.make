# Empty dependencies file for bench_fig11_pure_spot.
# This may be replaced when dependencies are built.
