# Empty dependencies file for bench_fig12_tpcw_overhead.
# This may be replaced when dependencies are built.
