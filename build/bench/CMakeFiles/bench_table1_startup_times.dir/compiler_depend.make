# Empty compiler generated dependencies file for bench_table1_startup_times.
# This may be replaced when dependencies are built.
