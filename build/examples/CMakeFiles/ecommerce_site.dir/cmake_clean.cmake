file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_site.dir/ecommerce_site.cpp.o"
  "CMakeFiles/ecommerce_site.dir/ecommerce_site.cpp.o.d"
  "ecommerce_site"
  "ecommerce_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
