# Empty compiler generated dependencies file for ecommerce_site.
# This may be replaced when dependencies are built.
