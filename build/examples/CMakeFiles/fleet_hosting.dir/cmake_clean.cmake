file(REMOVE_RECURSE
  "CMakeFiles/fleet_hosting.dir/fleet_hosting.cpp.o"
  "CMakeFiles/fleet_hosting.dir/fleet_hosting.cpp.o.d"
  "fleet_hosting"
  "fleet_hosting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_hosting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
