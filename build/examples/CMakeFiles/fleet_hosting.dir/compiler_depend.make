# Empty compiler generated dependencies file for fleet_hosting.
# This may be replaced when dependencies are built.
