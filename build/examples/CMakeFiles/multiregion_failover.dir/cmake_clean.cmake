file(REMOVE_RECURSE
  "CMakeFiles/multiregion_failover.dir/multiregion_failover.cpp.o"
  "CMakeFiles/multiregion_failover.dir/multiregion_failover.cpp.o.d"
  "multiregion_failover"
  "multiregion_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiregion_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
