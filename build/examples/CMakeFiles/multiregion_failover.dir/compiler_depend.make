# Empty compiler generated dependencies file for multiregion_failover.
# This may be replaced when dependencies are built.
