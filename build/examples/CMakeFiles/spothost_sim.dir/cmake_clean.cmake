file(REMOVE_RECURSE
  "CMakeFiles/spothost_sim.dir/spothost_sim.cpp.o"
  "CMakeFiles/spothost_sim.dir/spothost_sim.cpp.o.d"
  "spothost_sim"
  "spothost_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spothost_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
