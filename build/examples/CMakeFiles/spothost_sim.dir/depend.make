# Empty dependencies file for spothost_sim.
# This may be replaced when dependencies are built.
