
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/billing.cpp" "src/CMakeFiles/spothost.dir/cloud/billing.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/cloud/billing.cpp.o.d"
  "/root/repo/src/cloud/instance_types.cpp" "src/CMakeFiles/spothost.dir/cloud/instance_types.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/cloud/instance_types.cpp.o.d"
  "/root/repo/src/cloud/market.cpp" "src/CMakeFiles/spothost.dir/cloud/market.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/cloud/market.cpp.o.d"
  "/root/repo/src/cloud/provider.cpp" "src/CMakeFiles/spothost.dir/cloud/provider.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/cloud/provider.cpp.o.d"
  "/root/repo/src/cloud/volume.cpp" "src/CMakeFiles/spothost.dir/cloud/volume.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/cloud/volume.cpp.o.d"
  "/root/repo/src/metrics/experiment.cpp" "src/CMakeFiles/spothost.dir/metrics/experiment.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/metrics/experiment.cpp.o.d"
  "/root/repo/src/metrics/run_metrics.cpp" "src/CMakeFiles/spothost.dir/metrics/run_metrics.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/metrics/run_metrics.cpp.o.d"
  "/root/repo/src/metrics/table.cpp" "src/CMakeFiles/spothost.dir/metrics/table.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/metrics/table.cpp.o.d"
  "/root/repo/src/sched/analysis.cpp" "src/CMakeFiles/spothost.dir/sched/analysis.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/sched/analysis.cpp.o.d"
  "/root/repo/src/sched/baselines.cpp" "src/CMakeFiles/spothost.dir/sched/baselines.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/sched/baselines.cpp.o.d"
  "/root/repo/src/sched/bid_advisor.cpp" "src/CMakeFiles/spothost.dir/sched/bid_advisor.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/sched/bid_advisor.cpp.o.d"
  "/root/repo/src/sched/bidding.cpp" "src/CMakeFiles/spothost.dir/sched/bidding.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/sched/bidding.cpp.o.d"
  "/root/repo/src/sched/config.cpp" "src/CMakeFiles/spothost.dir/sched/config.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/sched/config.cpp.o.d"
  "/root/repo/src/sched/fleet.cpp" "src/CMakeFiles/spothost.dir/sched/fleet.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/sched/fleet.cpp.o.d"
  "/root/repo/src/sched/market_selection.cpp" "src/CMakeFiles/spothost.dir/sched/market_selection.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/sched/market_selection.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/CMakeFiles/spothost.dir/sched/scheduler.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/sched/scheduler.cpp.o.d"
  "/root/repo/src/simcore/event_queue.cpp" "src/CMakeFiles/spothost.dir/simcore/event_queue.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/simcore/event_queue.cpp.o.d"
  "/root/repo/src/simcore/logging.cpp" "src/CMakeFiles/spothost.dir/simcore/logging.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/simcore/logging.cpp.o.d"
  "/root/repo/src/simcore/rng.cpp" "src/CMakeFiles/spothost.dir/simcore/rng.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/simcore/rng.cpp.o.d"
  "/root/repo/src/simcore/simulation.cpp" "src/CMakeFiles/spothost.dir/simcore/simulation.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/simcore/simulation.cpp.o.d"
  "/root/repo/src/simcore/time.cpp" "src/CMakeFiles/spothost.dir/simcore/time.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/simcore/time.cpp.o.d"
  "/root/repo/src/trace/auction_market.cpp" "src/CMakeFiles/spothost.dir/trace/auction_market.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/trace/auction_market.cpp.o.d"
  "/root/repo/src/trace/csv.cpp" "src/CMakeFiles/spothost.dir/trace/csv.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/trace/csv.cpp.o.d"
  "/root/repo/src/trace/features.cpp" "src/CMakeFiles/spothost.dir/trace/features.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/trace/features.cpp.o.d"
  "/root/repo/src/trace/price_trace.cpp" "src/CMakeFiles/spothost.dir/trace/price_trace.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/trace/price_trace.cpp.o.d"
  "/root/repo/src/trace/profiles.cpp" "src/CMakeFiles/spothost.dir/trace/profiles.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/trace/profiles.cpp.o.d"
  "/root/repo/src/trace/stats.cpp" "src/CMakeFiles/spothost.dir/trace/stats.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/trace/stats.cpp.o.d"
  "/root/repo/src/trace/synthetic.cpp" "src/CMakeFiles/spothost.dir/trace/synthetic.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/trace/synthetic.cpp.o.d"
  "/root/repo/src/virt/checkpoint.cpp" "src/CMakeFiles/spothost.dir/virt/checkpoint.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/virt/checkpoint.cpp.o.d"
  "/root/repo/src/virt/checkpoint_process.cpp" "src/CMakeFiles/spothost.dir/virt/checkpoint_process.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/virt/checkpoint_process.cpp.o.d"
  "/root/repo/src/virt/live_migration.cpp" "src/CMakeFiles/spothost.dir/virt/live_migration.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/virt/live_migration.cpp.o.d"
  "/root/repo/src/virt/mechanisms.cpp" "src/CMakeFiles/spothost.dir/virt/mechanisms.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/virt/mechanisms.cpp.o.d"
  "/root/repo/src/virt/memory_model.cpp" "src/CMakeFiles/spothost.dir/virt/memory_model.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/virt/memory_model.cpp.o.d"
  "/root/repo/src/virt/nested.cpp" "src/CMakeFiles/spothost.dir/virt/nested.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/virt/nested.cpp.o.d"
  "/root/repo/src/virt/network_model.cpp" "src/CMakeFiles/spothost.dir/virt/network_model.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/virt/network_model.cpp.o.d"
  "/root/repo/src/virt/restore.cpp" "src/CMakeFiles/spothost.dir/virt/restore.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/virt/restore.cpp.o.d"
  "/root/repo/src/virt/vm.cpp" "src/CMakeFiles/spothost.dir/virt/vm.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/virt/vm.cpp.o.d"
  "/root/repo/src/workload/availability.cpp" "src/CMakeFiles/spothost.dir/workload/availability.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/workload/availability.cpp.o.d"
  "/root/repo/src/workload/diurnal.cpp" "src/CMakeFiles/spothost.dir/workload/diurnal.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/workload/diurnal.cpp.o.d"
  "/root/repo/src/workload/experience.cpp" "src/CMakeFiles/spothost.dir/workload/experience.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/workload/experience.cpp.o.d"
  "/root/repo/src/workload/group.cpp" "src/CMakeFiles/spothost.dir/workload/group.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/workload/group.cpp.o.d"
  "/root/repo/src/workload/iobench.cpp" "src/CMakeFiles/spothost.dir/workload/iobench.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/workload/iobench.cpp.o.d"
  "/root/repo/src/workload/outage_stats.cpp" "src/CMakeFiles/spothost.dir/workload/outage_stats.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/workload/outage_stats.cpp.o.d"
  "/root/repo/src/workload/queueing.cpp" "src/CMakeFiles/spothost.dir/workload/queueing.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/workload/queueing.cpp.o.d"
  "/root/repo/src/workload/service.cpp" "src/CMakeFiles/spothost.dir/workload/service.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/workload/service.cpp.o.d"
  "/root/repo/src/workload/tpcw.cpp" "src/CMakeFiles/spothost.dir/workload/tpcw.cpp.o" "gcc" "src/CMakeFiles/spothost.dir/workload/tpcw.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
