file(REMOVE_RECURSE
  "libspothost.a"
)
