# Empty compiler generated dependencies file for spothost.
# This may be replaced when dependencies are built.
