file(REMOVE_RECURSE
  "CMakeFiles/test_cloud.dir/cloud/test_billing.cpp.o"
  "CMakeFiles/test_cloud.dir/cloud/test_billing.cpp.o.d"
  "CMakeFiles/test_cloud.dir/cloud/test_instance_types.cpp.o"
  "CMakeFiles/test_cloud.dir/cloud/test_instance_types.cpp.o.d"
  "CMakeFiles/test_cloud.dir/cloud/test_market.cpp.o"
  "CMakeFiles/test_cloud.dir/cloud/test_market.cpp.o.d"
  "CMakeFiles/test_cloud.dir/cloud/test_provider.cpp.o"
  "CMakeFiles/test_cloud.dir/cloud/test_provider.cpp.o.d"
  "CMakeFiles/test_cloud.dir/cloud/test_volume.cpp.o"
  "CMakeFiles/test_cloud.dir/cloud/test_volume.cpp.o.d"
  "test_cloud"
  "test_cloud.pdb"
  "test_cloud[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
