
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sched/test_analysis.cpp" "tests/CMakeFiles/test_sched.dir/sched/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_analysis.cpp.o.d"
  "/root/repo/tests/sched/test_baselines.cpp" "tests/CMakeFiles/test_sched.dir/sched/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_baselines.cpp.o.d"
  "/root/repo/tests/sched/test_bid_advisor.cpp" "tests/CMakeFiles/test_sched.dir/sched/test_bid_advisor.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_bid_advisor.cpp.o.d"
  "/root/repo/tests/sched/test_bidding.cpp" "tests/CMakeFiles/test_sched.dir/sched/test_bidding.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_bidding.cpp.o.d"
  "/root/repo/tests/sched/test_config.cpp" "tests/CMakeFiles/test_sched.dir/sched/test_config.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_config.cpp.o.d"
  "/root/repo/tests/sched/test_fleet.cpp" "tests/CMakeFiles/test_sched.dir/sched/test_fleet.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_fleet.cpp.o.d"
  "/root/repo/tests/sched/test_group_hosting.cpp" "tests/CMakeFiles/test_sched.dir/sched/test_group_hosting.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_group_hosting.cpp.o.d"
  "/root/repo/tests/sched/test_market_selection.cpp" "tests/CMakeFiles/test_sched.dir/sched/test_market_selection.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_market_selection.cpp.o.d"
  "/root/repo/tests/sched/test_scheduler.cpp" "tests/CMakeFiles/test_sched.dir/sched/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_scheduler.cpp.o.d"
  "/root/repo/tests/sched/test_scheduler_edge.cpp" "tests/CMakeFiles/test_sched.dir/sched/test_scheduler_edge.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_scheduler_edge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spothost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
