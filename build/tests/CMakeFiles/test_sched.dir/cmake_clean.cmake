file(REMOVE_RECURSE
  "CMakeFiles/test_sched.dir/sched/test_analysis.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_analysis.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_baselines.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_baselines.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_bid_advisor.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_bid_advisor.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_bidding.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_bidding.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_config.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_config.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_fleet.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_fleet.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_group_hosting.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_group_hosting.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_market_selection.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_market_selection.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_scheduler.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_scheduler.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_scheduler_edge.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_scheduler_edge.cpp.o.d"
  "test_sched"
  "test_sched.pdb"
  "test_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
