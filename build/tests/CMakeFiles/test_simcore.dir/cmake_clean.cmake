file(REMOVE_RECURSE
  "CMakeFiles/test_simcore.dir/simcore/test_event_queue.cpp.o"
  "CMakeFiles/test_simcore.dir/simcore/test_event_queue.cpp.o.d"
  "CMakeFiles/test_simcore.dir/simcore/test_logging.cpp.o"
  "CMakeFiles/test_simcore.dir/simcore/test_logging.cpp.o.d"
  "CMakeFiles/test_simcore.dir/simcore/test_rng.cpp.o"
  "CMakeFiles/test_simcore.dir/simcore/test_rng.cpp.o.d"
  "CMakeFiles/test_simcore.dir/simcore/test_simulation.cpp.o"
  "CMakeFiles/test_simcore.dir/simcore/test_simulation.cpp.o.d"
  "CMakeFiles/test_simcore.dir/simcore/test_time.cpp.o"
  "CMakeFiles/test_simcore.dir/simcore/test_time.cpp.o.d"
  "test_simcore"
  "test_simcore.pdb"
  "test_simcore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
