
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/test_auction_market.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_auction_market.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_auction_market.cpp.o.d"
  "/root/repo/tests/trace/test_csv.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_csv.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_csv.cpp.o.d"
  "/root/repo/tests/trace/test_features.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_features.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_features.cpp.o.d"
  "/root/repo/tests/trace/test_price_trace.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_price_trace.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_price_trace.cpp.o.d"
  "/root/repo/tests/trace/test_profiles.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_profiles.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_profiles.cpp.o.d"
  "/root/repo/tests/trace/test_stats.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_stats.cpp.o.d"
  "/root/repo/tests/trace/test_synthetic.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_synthetic.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spothost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
