file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/trace/test_auction_market.cpp.o"
  "CMakeFiles/test_trace.dir/trace/test_auction_market.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/test_csv.cpp.o"
  "CMakeFiles/test_trace.dir/trace/test_csv.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/test_features.cpp.o"
  "CMakeFiles/test_trace.dir/trace/test_features.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/test_price_trace.cpp.o"
  "CMakeFiles/test_trace.dir/trace/test_price_trace.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/test_profiles.cpp.o"
  "CMakeFiles/test_trace.dir/trace/test_profiles.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/test_stats.cpp.o"
  "CMakeFiles/test_trace.dir/trace/test_stats.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/test_synthetic.cpp.o"
  "CMakeFiles/test_trace.dir/trace/test_synthetic.cpp.o.d"
  "test_trace"
  "test_trace.pdb"
  "test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
