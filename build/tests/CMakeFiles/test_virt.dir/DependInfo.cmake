
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/virt/test_checkpoint.cpp" "tests/CMakeFiles/test_virt.dir/virt/test_checkpoint.cpp.o" "gcc" "tests/CMakeFiles/test_virt.dir/virt/test_checkpoint.cpp.o.d"
  "/root/repo/tests/virt/test_checkpoint_process.cpp" "tests/CMakeFiles/test_virt.dir/virt/test_checkpoint_process.cpp.o" "gcc" "tests/CMakeFiles/test_virt.dir/virt/test_checkpoint_process.cpp.o.d"
  "/root/repo/tests/virt/test_live_migration.cpp" "tests/CMakeFiles/test_virt.dir/virt/test_live_migration.cpp.o" "gcc" "tests/CMakeFiles/test_virt.dir/virt/test_live_migration.cpp.o.d"
  "/root/repo/tests/virt/test_mechanisms.cpp" "tests/CMakeFiles/test_virt.dir/virt/test_mechanisms.cpp.o" "gcc" "tests/CMakeFiles/test_virt.dir/virt/test_mechanisms.cpp.o.d"
  "/root/repo/tests/virt/test_memory_model.cpp" "tests/CMakeFiles/test_virt.dir/virt/test_memory_model.cpp.o" "gcc" "tests/CMakeFiles/test_virt.dir/virt/test_memory_model.cpp.o.d"
  "/root/repo/tests/virt/test_nested.cpp" "tests/CMakeFiles/test_virt.dir/virt/test_nested.cpp.o" "gcc" "tests/CMakeFiles/test_virt.dir/virt/test_nested.cpp.o.d"
  "/root/repo/tests/virt/test_network_model.cpp" "tests/CMakeFiles/test_virt.dir/virt/test_network_model.cpp.o" "gcc" "tests/CMakeFiles/test_virt.dir/virt/test_network_model.cpp.o.d"
  "/root/repo/tests/virt/test_restore.cpp" "tests/CMakeFiles/test_virt.dir/virt/test_restore.cpp.o" "gcc" "tests/CMakeFiles/test_virt.dir/virt/test_restore.cpp.o.d"
  "/root/repo/tests/virt/test_vm.cpp" "tests/CMakeFiles/test_virt.dir/virt/test_vm.cpp.o" "gcc" "tests/CMakeFiles/test_virt.dir/virt/test_vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spothost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
