file(REMOVE_RECURSE
  "CMakeFiles/test_virt.dir/virt/test_checkpoint.cpp.o"
  "CMakeFiles/test_virt.dir/virt/test_checkpoint.cpp.o.d"
  "CMakeFiles/test_virt.dir/virt/test_checkpoint_process.cpp.o"
  "CMakeFiles/test_virt.dir/virt/test_checkpoint_process.cpp.o.d"
  "CMakeFiles/test_virt.dir/virt/test_live_migration.cpp.o"
  "CMakeFiles/test_virt.dir/virt/test_live_migration.cpp.o.d"
  "CMakeFiles/test_virt.dir/virt/test_mechanisms.cpp.o"
  "CMakeFiles/test_virt.dir/virt/test_mechanisms.cpp.o.d"
  "CMakeFiles/test_virt.dir/virt/test_memory_model.cpp.o"
  "CMakeFiles/test_virt.dir/virt/test_memory_model.cpp.o.d"
  "CMakeFiles/test_virt.dir/virt/test_nested.cpp.o"
  "CMakeFiles/test_virt.dir/virt/test_nested.cpp.o.d"
  "CMakeFiles/test_virt.dir/virt/test_network_model.cpp.o"
  "CMakeFiles/test_virt.dir/virt/test_network_model.cpp.o.d"
  "CMakeFiles/test_virt.dir/virt/test_restore.cpp.o"
  "CMakeFiles/test_virt.dir/virt/test_restore.cpp.o.d"
  "CMakeFiles/test_virt.dir/virt/test_vm.cpp.o"
  "CMakeFiles/test_virt.dir/virt/test_vm.cpp.o.d"
  "test_virt"
  "test_virt.pdb"
  "test_virt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
