
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload/test_availability.cpp" "tests/CMakeFiles/test_workload.dir/workload/test_availability.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_availability.cpp.o.d"
  "/root/repo/tests/workload/test_diurnal.cpp" "tests/CMakeFiles/test_workload.dir/workload/test_diurnal.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_diurnal.cpp.o.d"
  "/root/repo/tests/workload/test_experience.cpp" "tests/CMakeFiles/test_workload.dir/workload/test_experience.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_experience.cpp.o.d"
  "/root/repo/tests/workload/test_group.cpp" "tests/CMakeFiles/test_workload.dir/workload/test_group.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_group.cpp.o.d"
  "/root/repo/tests/workload/test_iobench.cpp" "tests/CMakeFiles/test_workload.dir/workload/test_iobench.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_iobench.cpp.o.d"
  "/root/repo/tests/workload/test_outage_stats.cpp" "tests/CMakeFiles/test_workload.dir/workload/test_outage_stats.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_outage_stats.cpp.o.d"
  "/root/repo/tests/workload/test_queueing.cpp" "tests/CMakeFiles/test_workload.dir/workload/test_queueing.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_queueing.cpp.o.d"
  "/root/repo/tests/workload/test_service.cpp" "tests/CMakeFiles/test_workload.dir/workload/test_service.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_service.cpp.o.d"
  "/root/repo/tests/workload/test_tpcw.cpp" "tests/CMakeFiles/test_workload.dir/workload/test_tpcw.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_tpcw.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spothost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
