file(REMOVE_RECURSE
  "CMakeFiles/test_workload.dir/workload/test_availability.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_availability.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_diurnal.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_diurnal.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_experience.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_experience.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_group.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_group.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_iobench.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_iobench.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_outage_stats.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_outage_stats.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_queueing.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_queueing.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_service.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_service.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_tpcw.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_tpcw.cpp.o.d"
  "test_workload"
  "test_workload.pdb"
  "test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
