// Tuning your own bidding policy: sweeps the proactive bid multiple k and
// the mechanism combo to expose the cost/availability trade-off surface, the
// way an operator would calibrate the scheduler for their own SLO.
#include <iostream>

#include "spothost.hpp"

using namespace spothost;

int main() {
  const cloud::MarketId home{"us-east-1a", cloud::InstanceSize::kSmall};
  sched::Scenario scenario;
  scenario.horizon = 30 * sim::kDay;
  scenario.regions = {"us-east-1a"};
  const metrics::ExperimentRunner runner(5, 321);

  std::cout << "== sweep 1: bid multiple k (proactive, CKPT LR + Live) ==\n\n";
  {
    metrics::TextTable table({"k", "cost %", "unavailability %", "forced/hr",
                              "meets 4-nines?"});
    for (const double k : {1.2, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0}) {
      auto cfg = sched::proactive_config(home);
      cfg.bid.proactive_multiple = k;
      const auto agg = runner.run(scenario, cfg);
      table.add_row({metrics::fmt(k, 1),
                     metrics::fmt(agg.normalized_cost_pct.mean, 1),
                     metrics::fmt(agg.unavailability_pct.mean, 4),
                     metrics::fmt(agg.forced_per_hour.mean, 4),
                     agg.unavailability_pct.mean <= 0.01 ? "yes" : "no"});
    }
    table.print(std::cout);
  }

  std::cout << "\n== sweep 2: mechanism combo at k = 4 ==\n\n";
  {
    metrics::TextTable table({"combo", "unavailability %", "degraded s/run"});
    for (const auto combo : virt::kAllCombos) {
      auto cfg = sched::proactive_config(home);
      cfg.combo = combo;
      const auto agg = runner.run(scenario, cfg);
      double degraded = 0.0;
      for (const auto& r : agg.per_run) degraded += r.degraded_s;
      table.add_row({std::string(virt::to_string(combo)),
                     metrics::fmt(agg.unavailability_pct.mean, 4),
                     metrics::fmt(degraded / agg.runs, 0)});
    }
    table.print(std::cout);
    std::cout << "\nnote: lazy restore converts downtime into a degraded-but-up\n"
                 "window — the service answers requests while pages stream in\n";
  }

  std::cout << "\npick the cheapest row that still meets your availability SLO.\n";
  return 0;
}
