// Tuning your own bidding policy: sweeps the proactive bid multiple k and
// the mechanism combo to expose the cost/availability trade-off surface, the
// way an operator would calibrate the scheduler for their own SLO — then
// plugs a hand-written PlacementPolicy into the scheduler to show the
// "where to move" layer is swappable without touching its internals, and
// lines the shipped policy zoo up against it.
//
// PinnedMarketPolicy below is the worked example from docs/POLICIES.md —
// the policy author's guide walks through it line by line.
#include <iostream>
#include <memory>
#include <optional>
#include <vector>

#include "spothost.hpp"

using namespace spothost;

// A deliberately rigid placement strategy: only ever bid in one pinned spot
// market, on-demand fallback in the query's region. Equivalent to
// kSingleMarket scope, but expressed from outside the library — the same
// three virtuals accommodate portfolio selection, latency-aware placement,
// or anything else an operator dreams up (see DESIGN.md section 4).
class PinnedMarketPolicy final : public sched::PlacementPolicy {
 public:
  explicit PinnedMarketPolicy(cloud::MarketId pin) : pin_(std::move(pin)) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "pinned-market";
  }

  [[nodiscard]] std::vector<cloud::MarketId> watched_markets(
      const cloud::CloudProvider&, const sched::SchedulerConfig&) const override {
    return {pin_};
  }

  [[nodiscard]] std::optional<sched::Placement> choose_spot(
      const cloud::CloudProvider& provider, const sched::SchedulerConfig& config,
      const sched::PlacementQuery& query) const override {
    if (query.exclude == pin_) return std::nullopt;
    if (sched::effective_spot_price(provider, pin_, query.units_needed) >=
        query.max_effective_price) {
      return std::nullopt;
    }
    return sched::Placement{pin_, false, config.bid.bid_for(provider, pin_)};
  }

  [[nodiscard]] sched::Placement choose_on_demand(
      const cloud::CloudProvider&, const sched::SchedulerConfig&,
      const sched::PlacementQuery& query) const override {
    return {cloud::MarketId{query.fallback_region, pin_.size}, true, 0.0};
  }

 private:
  cloud::MarketId pin_;
};

int main() {
  const cloud::MarketId home{"us-east-1a", cloud::InstanceSize::kSmall};
  sched::Scenario scenario;
  scenario.horizon = 30 * sim::kDay;
  scenario.regions = {"us-east-1a"};
  const metrics::ExperimentRunner runner(5, 321);

  std::cout << "== sweep 1: bid multiple k (proactive, CKPT LR + Live) ==\n\n";
  {
    metrics::TextTable table({"k", "cost %", "unavailability %", "forced/hr",
                              "meets 4-nines?"});
    for (const double k : {1.2, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0}) {
      auto cfg = sched::proactive_config(home);
      cfg.bid.proactive_multiple = k;
      const auto agg = runner.run(scenario, cfg);
      table.add_row({metrics::fmt(k, 1),
                     metrics::fmt(agg.normalized_cost_pct.mean, 1),
                     metrics::fmt(agg.unavailability_pct.mean, 4),
                     metrics::fmt(agg.forced_per_hour.mean, 4),
                     agg.unavailability_pct.mean <= 0.01 ? "yes" : "no"});
    }
    table.print(std::cout);
  }

  std::cout << "\n== sweep 2: mechanism combo at k = 4 ==\n\n";
  {
    metrics::TextTable table({"combo", "unavailability %", "degraded s/run"});
    for (const auto combo : virt::kAllCombos) {
      auto cfg = sched::proactive_config(home);
      cfg.combo = combo;
      const auto agg = runner.run(scenario, cfg);
      double degraded = 0.0;
      for (const auto& r : agg.per_run) degraded += r.degraded_s;
      table.add_row({std::string(virt::to_string(combo)),
                     metrics::fmt(agg.unavailability_pct.mean, 4),
                     metrics::fmt(degraded / agg.runs, 0)});
    }
    table.print(std::cout);
    std::cout << "\nnote: lazy restore converts downtime into a degraded-but-up\n"
                 "window — the service answers requests while pages stream in\n";
  }

  std::cout << "\n== sweep 3: placement policy (k = 4, CKPT LR + Live) ==\n\n";
  {
    metrics::TextTable table({"placement", "cost %", "unavailability %"});
    auto run_with = [&](std::shared_ptr<const sched::PlacementPolicy> policy,
                        sched::MarketScope scope, std::string_view label) {
      auto cfg = sched::proactive_config(home);
      cfg.scope = scope;
      cfg.placement = std::move(policy);
      const auto agg = runner.run(scenario, cfg);
      table.add_row({std::string(label),
                     metrics::fmt(agg.normalized_cost_pct.mean, 1),
                     metrics::fmt(agg.unavailability_pct.mean, 4)});
    };
    run_with(nullptr, sched::MarketScope::kMultiMarket, "scoped multi-market");
    run_with(std::make_shared<PinnedMarketPolicy>(home),
             sched::MarketScope::kSingleMarket, "pinned-market (custom)");
    table.print(std::cout);
    std::cout << "\nthe custom policy plugs in via SchedulerConfig::placement;\n"
                 "multi-market escapes price spikes the pinned policy must\n"
                 "ride out on the on-demand fallback.\n";
  }

  std::cout << "\n== sweep 4: the shipped policy zoo, two-region world ==\n\n";
  {
    // Same builder seams the custom policy used, stock implementations —
    // docs/POLICIES.md catalogues the knobs on each.
    sched::Scenario zoo_scenario = scenario;
    zoo_scenario.regions = {"us-east-1a", "us-east-1b"};
    metrics::TextTable table({"policy", "cost %", "unavailability %"});
    auto run_zoo = [&](const sched::SchedulerConfig& cfg,
                       std::string_view label) {
      const auto agg = runner.run(zoo_scenario, cfg);
      table.add_row({std::string(label),
                     metrics::fmt(agg.normalized_cost_pct.mean, 1),
                     metrics::fmt(agg.unavailability_pct.mean, 4)});
    };
    auto base = sched::proactive_config(home);
    base.scope = sched::MarketScope::kMultiRegion;
    run_zoo(base, "scoped (default)");
    run_zoo(sched::SchedulerConfigBuilder(home)
                .scope(sched::MarketScope::kMultiRegion)
                .placement(std::make_shared<const sched::PortfolioPlacementPolicy>())
                .build(),
            "portfolio");
    auto revocation = sched::reactive_config(home);
    revocation.scope = sched::MarketScope::kMultiRegion;
    revocation.placement = std::make_shared<const sched::RevocationAwarePolicy>();
    run_zoo(revocation, "revocation-aware");
    auto forecast = base;
    forecast.bidding = std::make_shared<const sched::ForecastBidPolicy>();
    run_zoo(forecast, "forecast-bid");
    table.print(std::cout);
  }

  std::cout << "\npick the cheapest row that still meets your availability SLO.\n";
  return 0;
}
