// E-commerce scenario (the paper's motivating workload): a TPC-W-style
// shopping site that must stay up — every minute of downtime during peak
// hours loses revenue. This example combines the hosting simulation with
// the TPC-W response-time model to answer the business question: what does
// moving from on-demand to the spot scheduler save, and what does the
// residual downtime cost?
#include <iostream>

#include "spothost.hpp"

using namespace spothost;

namespace {

// Revenue at risk per minute of outage, attributed to this one server's
// share of the fleet.
constexpr double kRevenuePerMinuteDown = 25.0;
constexpr int kPeakBrowsers = 150;

double downtime_cost(const metrics::RunMetrics& m) {
  return m.downtime_s / 60.0 * kRevenuePerMinuteDown;
}

}  // namespace

int main() {
  sched::Scenario scenario;
  scenario.seed = 7;
  scenario.horizon = 30 * sim::kDay;
  const cloud::MarketId home{"us-east-1a", cloud::InstanceSize::kMedium};

  std::cout << "== shop.example.com: one month of hosting ==\n\n";

  // --- infrastructure cost under three strategies ------------------------
  const auto proactive =
      metrics::run_hosting_scenario(scenario, sched::proactive_config(home));
  const auto reactive =
      metrics::run_hosting_scenario(scenario, sched::reactive_config(home));
  const auto pure_spot =
      metrics::run_hosting_scenario(scenario, sched::pure_spot_config(home));

  metrics::TextTable table({"strategy", "infra $", "downtime min",
                            "lost revenue $", "total $"});
  auto row = [&](const std::string& label, double infra, double downtime_min,
                 double lost) {
    table.add_row({label, metrics::fmt(infra, 2),
                   metrics::fmt(downtime_min, 1), metrics::fmt(lost, 0),
                   metrics::fmt(infra + lost, 0)});
  };
  row("on-demand only", proactive.baseline_od_cost, 0.0, 0.0);
  row("proactive scheduler", proactive.attributed_cost,
      proactive.downtime_s / 60.0, downtime_cost(proactive));
  row("reactive scheduler", reactive.attributed_cost, reactive.downtime_s / 60.0,
      downtime_cost(reactive));
  row("pure spot", pure_spot.attributed_cost, pure_spot.downtime_s / 60.0,
      downtime_cost(pure_spot));
  table.print(std::cout);

  // --- user-visible performance on the nested VM --------------------------
  std::cout << "\npeak-hour page latency (TPC-W, " << kPeakBrowsers
            << " concurrent browsers):\n";
  const workload::TpcwModel tpcw;
  const double native_ms = tpcw.response_time_ms(
      kPeakBrowsers, workload::TpcwScenario::kWithImages,
      workload::HostKind::kNativeVm);
  const double nested_ms = tpcw.response_time_ms(
      kPeakBrowsers, workload::TpcwScenario::kWithImages,
      workload::HostKind::kNestedVm);
  std::cout << "  native VM:  " << metrics::fmt(native_ms, 0) << " ms\n"
            << "  nested VM:  " << metrics::fmt(nested_ms, 0)
            << " ms  (the nested-virtualization tax on an I/O-bound site)\n";

  // --- what the visitors experienced ---------------------------------------
  // Re-run the proactive month with direct access to the availability books
  // and feed them through the diurnal-traffic experience model.
  {
    sched::World world(scenario);
    workload::AlwaysOnService svc("shop", virt::default_spec_for_memory(3.75, 8.0));
    sched::CloudScheduler scheduler(world.clock(), world.provider(), svc,
                                    sched::proactive_config(home),
                                    world.stream("xp"));
    scheduler.start();
    world.engine().run_until(world.horizon());
    world.provider().finalize(world.horizon());
    scheduler.finalize(world.horizon());

    workload::ExperienceConfig xp;
    xp.peak_browsers = kPeakBrowsers;
    const auto report =
        workload::evaluate_experience(svc.availability(), world.horizon(), xp);
    const auto stats =
        workload::compute_outage_stats(svc.availability(), world.horizon());
    std::cout << "\nvisitor experience over the month (diurnal traffic):\n"
              << "  failed requests:  "
              << metrics::fmt(100.0 * report.failed_fraction, 4) << "%\n"
              << "  served degraded:  "
              << metrics::fmt(100.0 * report.degraded_fraction, 4)
              << "% (lazy-restore windows)\n"
              << "  mean response:    " << metrics::fmt(report.mean_response_ms, 0)
              << " ms, apdex " << metrics::fmt(report.apdex, 3) << "\n"
              << "  reliability:      MTTR " << metrics::fmt(stats.mttr_s, 0)
              << " s, MTBF " << metrics::fmt(stats.mtbf_hours, 0) << " h\n";
  }

  // --- the punchline -------------------------------------------------------
  const double saved = proactive.baseline_od_cost - proactive.attributed_cost -
                       downtime_cost(proactive);
  std::cout << "\nproactive spot hosting "
            << (saved >= 0 ? "nets $" + metrics::fmt(saved, 0) + " saved"
                           : "loses $" + metrics::fmt(-saved, 0))
            << " per server-month after revenue risk ("
            << metrics::fmt(proactive.normalized_cost_pct, 0)
            << "% of on-demand infra cost, "
            << metrics::fmt(proactive.unavailability_pct, 4)
            << "% unavailability)\n";
  std::cout << "pure spot would have LOST $"
            << metrics::fmt(downtime_cost(pure_spot) - downtime_cost(proactive), 0)
            << " more in revenue than it saves — the paper's Table 3 in "
               "dollars\n";
  return 0;
}
