// Fleet hosting walkthrough: an operator runs six always-on services on the
// spot market. Shows the extension APIs working together:
//   * BidAdvisor — pick the bid multiple from the market's history + SLO;
//   * FleetScheduler — run the fleet, spread across availability zones;
//   * ServiceGroup — pack four small tenants onto one shared server;
//   * OutageStats — MTTR / MTBF / percentiles for the month.
#include <iostream>

#include "spothost.hpp"

using namespace spothost;

int main() {
  sched::Scenario scenario;
  scenario.seed = 77;
  scenario.horizon = 30 * sim::kDay;
  scenario.regions = {"us-east-1a", "us-east-1b"};

  // ---- 1. ask the bid advisor ------------------------------------------
  sched::World advisor_world(scenario);
  const cloud::MarketId home{"us-east-1a", cloud::InstanceSize::kSmall};
  const auto rec = sched::recommend_bid(
      advisor_world.provider().market(home).price_trace(),
      advisor_world.provider().od_price(home), /*max_unavailability_pct=*/0.01);
  std::cout << "bid advisor: use " << metrics::fmt(rec.multiple, 1)
            << "x on-demand (estimated cost "
            << metrics::fmt(rec.estimate.normalized_cost_pct, 1)
            << "%, unavailability "
            << metrics::fmt(rec.estimate.unavailability_pct, 4) << "%, SLO "
            << (rec.slo_met ? "met" : "NOT met") << ")\n\n";

  // ---- 2. run the fleet, spread across zones ------------------------------
  sched::World world(scenario);
  sched::FleetConfig fleet_cfg;
  fleet_cfg.num_services = 6;
  fleet_cfg.service_template = sched::proactive_config(home);
  fleet_cfg.service_template.bid.proactive_multiple = rec.multiple;
  fleet_cfg.home_markets = {
      {"us-east-1a", cloud::InstanceSize::kSmall},
      {"us-east-1b", cloud::InstanceSize::kSmall},
  };
  // world.shard_router() pins the fleet onto shard lanes when the engine is
  // sharded (SPOTHOST_SHARDS=K) — same bytes, K cores.
  sched::FleetScheduler fleet(world.clock(), world.provider(), fleet_cfg,
                              world.rng(), world.shard_router());
  fleet.start();
  world.engine().run_until(world.horizon());
  world.provider().finalize(world.horizon());
  fleet.finalize(world.horizon());

  const auto fm = fleet.metrics(world.horizon());
  std::cout << "fleet of " << fm.services << ": cost "
            << metrics::fmt(fm.normalized_cost_pct, 1)
            << "% of on-demand; per-service unavailability mean "
            << metrics::fmt(fm.mean_unavailability_pct, 4) << "% / worst "
            << metrics::fmt(fm.worst_unavailability_pct, 4)
            << "%; >=1 service down "
            << metrics::fmt(fm.any_down_pct, 4) << "% of the month; at worst "
            << fm.max_concurrent_down << " down at once\n";

  const auto s0 =
      workload::compute_outage_stats(fleet.service(0).availability(),
                                     world.horizon());
  std::cout << "svc-0 reliability: " << s0.count << " outages, MTTR "
            << metrics::fmt(s0.mttr_s, 0) << " s, p95 "
            << metrics::fmt(s0.p95_s, 0) << " s, MTBF "
            << metrics::fmt(s0.mtbf_hours, 0) << " h\n\n";

  // ---- 3. pack four tenants onto one shared server -----------------------
  sched::World packed_world(scenario);
  workload::ServiceGroup tenants("tenant", 4,
                                 virt::default_spec_for_memory(1.7, 8.0));
  sched::SchedulerConfig packed_cfg = sched::proactive_config(home);
  packed_cfg.scope = sched::MarketScope::kMultiMarket;
  packed_cfg.capacity_units_override = tenants.size();
  packed_cfg.vm_spec = tenants.aggregate_spec();
  sched::CloudScheduler packed(packed_world.clock(), packed_world.provider(),
                               tenants, packed_cfg,
                               packed_world.stream("packed"));
  packed.start();
  packed_world.engine().run_until(packed_world.horizon());
  packed_world.provider().finalize(packed_world.horizon());
  packed.finalize(packed_world.horizon());

  double packed_cost = 0.0;
  for (const auto& r : packed_world.provider().ledger().records()) {
    const int capacity = cloud::type_info(r.market.size).capacity_units;
    packed_cost += r.cost * std::min(1.0, 4.0 / capacity);
  }
  std::cout << "packed group of " << tenants.size() << " tenants: $"
            << metrics::fmt(packed_cost, 2) << " for the month ($"
            << metrics::fmt(packed_cost / tenants.size(), 2)
            << "/tenant), unavailability "
            << metrics::fmt(tenants.mean_unavailability_percent(), 4) << "%\n";
  std::cout << "(a dedicated on-demand small would be $"
            << metrics::fmt(0.06 * 24 * 30, 2) << "/tenant)\n";
  return 0;
}
