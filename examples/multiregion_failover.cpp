// Multi-region hosting with a live event feed: runs the multi-region
// scheduler across us-east-1a and eu-west-1a and prints the migration
// timeline the scheduler actually executed (captured via the library's
// logging hook), followed by the month's bill.
#include <iostream>
#include <vector>

#include "spothost.hpp"

using namespace spothost;

int main() {
  sched::Scenario scenario;
  scenario.seed = 11;
  scenario.horizon = 30 * sim::kDay;
  scenario.regions = {"us-east-1a", "eu-west-1a"};

  sched::World world(scenario);
  workload::AlwaysOnService service("globalshop",
                                    virt::default_spec_for_memory(3.75, 8.0));

  sched::SchedulerConfig config =
      sched::proactive_config({"us-east-1a", cloud::InstanceSize::kSmall});
  config.scope = sched::MarketScope::kMultiRegion;
  config.allowed_regions = scenario.regions;

  // Capture the scheduler's INFO-level event stream as a timeline.
  std::vector<std::string> timeline;
  auto& logger = sim::Logger::global();
  const auto saved_level = logger.level();
  logger.set_level(sim::LogLevel::kInfo);
  logger.set_sink([&](sim::LogLevel level, const std::string& msg) {
    if (level == sim::LogLevel::kInfo) timeline.push_back(msg);
  });

  sched::CloudScheduler scheduler(world.clock(), world.provider(), service,
                                  config, world.stream("timing"));
  scheduler.start();
  world.engine().run_until(world.horizon());
  world.provider().finalize(world.horizon());
  scheduler.finalize(world.horizon());

  logger.set_level(saved_level);
  logger.set_sink(nullptr);

  std::cout << "== migration timeline (multi-region: us-east-1a + eu-west-1a) ==\n";
  for (const auto& line : timeline) std::cout << "  " << line << '\n';

  const auto& stats = scheduler.stats();
  const auto& avail = service.availability();
  std::cout << "\n== month summary ==\n";
  std::cout << "migrations: " << stats.forced << " forced, " << stats.planned
            << " planned (" << stats.market_switches << " to other spot markets), "
            << stats.reverse << " reverse, " << stats.cancelled_planned
            << " cancelled\n";
  std::cout << "downtime: " << sim::to_seconds(avail.total_downtime())
            << " s across " << avail.outage_count() << " outages ("
            << metrics::fmt(avail.unavailability_percent(), 4) << "%)\n";
  std::cout << "bill: $" << metrics::fmt(world.provider().ledger().total_cost(), 2)
            << " (spot $"
            << metrics::fmt(world.provider().ledger().total_cost(
                                cloud::BillingMode::kSpot),
                            2)
            << " / on-demand $"
            << metrics::fmt(world.provider().ledger().total_cost(
                                cloud::BillingMode::kOnDemand),
                            2)
            << ")\n";
  return 0;
}
