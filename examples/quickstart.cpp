// Quickstart: host an always-on service on the spot market for a month and
// print what it cost and how available it was.
//
//   $ ./quickstart [seed]
//
// Walks through the three public-API steps: build a world, configure the
// scheduler, run and read the metrics.
#include <cstdlib>
#include <iostream>

#include "spothost.hpp"

using namespace spothost;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. A simulated cloud: four regions x four instance sizes, 30 days of
  //    synthetic spot prices seeded deterministically.
  sched::Scenario scenario;
  scenario.seed = seed;
  scenario.horizon = 30 * sim::kDay;

  // 2. The scheduler: proactive bidding (bid = 4x on-demand), checkpointing
  //    with lazy restore plus live migration, single market.
  const cloud::MarketId home{"us-east-1a", cloud::InstanceSize::kSmall};
  sched::SchedulerConfig config = sched::proactive_config(home);

  // 3. Run and report.
  const metrics::RunMetrics m = metrics::run_hosting_scenario(scenario, config);

  std::cout << "hosted a " << cloud::to_string(home.size) << " service in "
            << home.region << " for " << m.horizon_hours << " hours (seed "
            << seed << ")\n\n";
  std::cout << "cost:            $" << metrics::fmt(m.attributed_cost, 2)
            << "  (" << metrics::fmt(m.normalized_cost_pct, 1)
            << "% of the $" << metrics::fmt(m.baseline_od_cost, 2)
            << " on-demand baseline)\n";
  std::cout << "unavailability:  " << metrics::fmt(m.unavailability_pct, 4)
            << "%  (" << metrics::fmt(m.downtime_s, 0) << " s down across "
            << m.outages << " outages; four-nines budget is 0.01%)\n";
  std::cout << "migrations:      " << m.forced << " forced, " << m.planned
            << " planned, " << m.reverse << " reverse, " << m.cancelled_planned
            << " cancelled\n";

  const bool four_nines = m.unavailability_pct <= 0.01;
  std::cout << "\nverdict: " << metrics::fmt(100.0 - m.normalized_cost_pct, 0)
            << "% cheaper than on-demand, "
            << (four_nines ? "within" : "near") << " the always-on budget\n";
  return 0;
}
