// spothost_serve — the serving front end: one codebase, two clocks.
//
// Runs the exact policy layer the simulator runs — provider, markets,
// scheduler, migration engine — against a price feed file, on the engine of
// your choice:
//
//   --mode sim     load the feed into price traces and run the discrete-event
//                  Simulation (the backtest; reference output)
//   --mode replay  feed the same file through live::FeedDriver into push-fed
//                  markets on a live::WallClock at --speed max: byte-identical
//                  decisions to --mode sim, produced by the live machinery
//   --mode tail    tail -f the feed file as it grows, pacing on the wall
//                  clock at --speed N; emits each migration decision with
//                  bounded latency after the price row lands in the file
//
//   spothost_serve --feed prices.csv [options]
//     --mode M          sim|replay|tail            (default replay)
//     --speed N|max     tail pacing: virtual ms per wall ms (default 1;
//                       replay always runs at max)
//     --out FILE        decision JSONL output, '-' = stdout (default -)
//     --policy P        proactive|reactive|pure-spot (default proactive)
//     --scope S         single|multi-market|multi-region (default multi-market)
//     --home R/S        home market key            (default: first in feed)
//     --seed N          master seed                (default 42)
//     --markets K1,K2   tail mode: only accept these market keys
//     --max-wall-s N    tail mode: stop after N wall seconds (default 3600)
//     --ticks           include per-tick price-change events in the output
//
// Feed rows: "time_ms,market,price" CSV or {"t":..,"market":"..","price":..}
// JSONL; '#' comments and a time,... header are skipped; "end,<time_ms>"
// marks the feed complete. Market keys are "<region>/<size>", e.g.
// "us-east-1a/small"; on-demand prices come from the instance-type catalog.
//
// The event-queue backend honours SPOTHOST_EVENT_QUEUE=wheel|heap for both
// engines.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "spothost.hpp"

using namespace spothost;

namespace {

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: spothost_serve --feed FILE [--mode sim|replay|tail]\n"
      "                      [--speed N|max] [--out FILE] [--policy P]\n"
      "                      [--scope S] [--home REGION/SIZE] [--seed N]\n"
      "                      [--markets K1,K2,...] [--max-wall-s N] [--ticks]\n";
  std::exit(error.empty() ? 0 : 2);
}

/// Forwards decision events to the JSONL sink, dropping the high-volume
/// per-tick price events unless asked for — both modes filter identically,
/// so sim and replay outputs stay diffable.
class DecisionSink final : public obs::TraceSink {
 public:
  DecisionSink(obs::TraceSink& inner, bool include_ticks)
      : inner_(inner), include_ticks_(include_ticks) {}

  void on_event(const obs::TraceEvent& event) override {
    if (!include_ticks_ && event.kind == obs::EventKind::kPriceChange) return;
    ++decisions_;
    inner_.on_event(event);
  }
  void flush() override { inner_.flush(); }

  [[nodiscard]] std::uint64_t decisions() const noexcept { return decisions_; }

 private:
  obs::TraceSink& inner_;
  bool include_ticks_;
  std::uint64_t decisions_ = 0;
};

cloud::MarketId parse_market_key(const std::string& key) {
  const auto slash = key.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= key.size()) {
    usage("market key must be <region>/<size>: " + key);
  }
  try {
    return cloud::MarketId{key.substr(0, slash),
                           cloud::size_from_string(key.substr(slash + 1))};
  } catch (const std::invalid_argument& e) {
    usage(std::string(e.what()) + ": " + key);
  }
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

struct LoadedFeed {
  std::vector<std::string> keys;             // first-seen order
  std::vector<trace::PriceTrace> traces;     // parallel to keys
  sim::SimTime horizon = 0;
};

/// Parses the whole feed file into per-market traces (sim/replay modes) —
/// through the same FileTailFeed parser tail mode uses, so all three modes
/// agree on what a malformed row is.
LoadedFeed load_feed(const std::string& path) {
  live::FileTailFeed feed(path);
  if (feed.pump() == 0) usage("feed file is empty or unreadable: " + path);
  for (const auto& err : feed.errors()) {
    std::cerr << "feed: rejected line " << err.line << ": " << err.message
              << "\n";
  }
  LoadedFeed out;
  out.keys = feed.markets();
  for (const auto& key : out.keys) {
    trace::PriceTrace t;
    live::PriceUpdate u;
    while (feed.next(key, u) == live::PriceFeed::Status::kReady) {
      t.append(u.time, u.price);
      out.horizon = std::max(out.horizon, u.time);
    }
    out.traces.push_back(std::move(t));
  }
  if (feed.ended()) out.horizon = std::max(out.horizon, feed.end_time());
  for (auto& t : out.traces) t.set_end(out.horizon);
  return out;
}

live::SessionSpec build_spec(const std::vector<std::string>& keys,
                             const trace::PriceTrace* traces,
                             const sched::SchedulerConfig& config,
                             std::uint64_t seed) {
  live::SessionSpec spec;
  spec.seed = seed;
  spec.config = config;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const cloud::MarketId id = parse_market_key(keys[i]);
    const double od = cloud::on_demand_price(id.size, id.region);
    spec.markets.push_back(live::SessionMarket{
        id, od, traces != nullptr ? &traces[i] : nullptr});
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  std::string feed_path;
  std::string mode = "replay";
  std::string speed_arg = "1";
  std::string out_path = "-";
  std::string policy = "proactive";
  std::string scope = "multi-market";
  std::string home_key;
  std::uint64_t seed = 42;
  std::vector<std::string> allowlist;
  int max_wall_s = 3600;
  bool include_ticks = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--feed") feed_path = next();
    else if (arg == "--mode") mode = next();
    else if (arg == "--speed") speed_arg = next();
    else if (arg == "--out") out_path = next();
    else if (arg == "--policy") policy = next();
    else if (arg == "--scope") scope = next();
    else if (arg == "--home") home_key = next();
    else if (arg == "--seed") seed = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--markets") allowlist = split_csv(next());
    else if (arg == "--max-wall-s") max_wall_s = std::atoi(next().c_str());
    else if (arg == "--ticks") include_ticks = true;
    else if (arg == "--help" || arg == "-h") usage();
    else usage("unknown option: " + arg);
  }
  if (feed_path.empty()) usage("--feed is required");
  if (mode != "sim" && mode != "replay" && mode != "tail") {
    usage("unknown mode: " + mode);
  }
  double speed = 1.0;
  if (speed_arg == "max") speed = live::WallClock::kMaxSpeed;
  else {
    speed = std::atof(speed_arg.c_str());
    if (!(speed > 0)) usage("--speed must be > 0 or 'max'");
  }
  if (max_wall_s <= 0) usage("--max-wall-s must be > 0");

  // --- output + tracer ---------------------------------------------------
  std::unique_ptr<obs::JsonlSink> jsonl;
  if (out_path == "-") jsonl = std::make_unique<obs::JsonlSink>(std::cout);
  else jsonl = std::make_unique<obs::JsonlSink>(out_path);
  DecisionSink decisions(*jsonl, include_ticks);
  obs::Tracer tracer;
  tracer.add_sink(&decisions);

  auto make_config = [&](const std::string& first_key) {
    const cloud::MarketId home =
        parse_market_key(home_key.empty() ? first_key : home_key);
    sched::SchedulerConfig config;
    if (policy == "proactive") config = sched::proactive_config(home);
    else if (policy == "reactive") config = sched::reactive_config(home);
    else if (policy == "pure-spot") config = sched::pure_spot_config(home);
    else usage("unknown policy: " + policy);
    if (scope == "single") config.scope = sched::MarketScope::kSingleMarket;
    else if (scope == "multi-market") config.scope = sched::MarketScope::kMultiMarket;
    else if (scope == "multi-region") config.scope = sched::MarketScope::kMultiRegion;
    else usage("unknown scope: " + scope);
    return config;
  };

  std::uint64_t delivered = 0;
  double total_cost = 0.0;
  sim::SimTime served_until = 0;

  if (mode == "sim") {
    const LoadedFeed loaded = load_feed(feed_path);
    const auto config = make_config(loaded.keys.front());
    auto engine = sim::make_simulation_engine();
    live::HostingSession session(
        *engine, build_spec(loaded.keys, loaded.traces.data(), config, seed));
    session.attach_tracer(&tracer);
    session.start();
    engine->run_until(loaded.horizon);
    session.finalize(loaded.horizon);
    tracer.flush();
    total_cost = session.provider().ledger().total_cost();
    served_until = loaded.horizon;
  } else if (mode == "replay") {
    const LoadedFeed loaded = load_feed(feed_path);
    const auto config = make_config(loaded.keys.front());
    live::WallClock clock(live::WallClock::Options{
        live::WallClock::kMaxSpeed, 0, sim::default_queue_backend()});
    live::HostingSession session(
        clock, build_spec(loaded.keys, nullptr, config, seed));
    session.attach_tracer(&tracer);
    live::TraceReplayFeed feed;
    for (std::size_t i = 0; i < loaded.keys.size(); ++i) {
      feed.add_market(loaded.keys[i], &loaded.traces[i]);
    }
    live::FeedDriver driver(clock, session.provider(), feed);
    driver.start();
    session.start();
    clock.run_until(loaded.horizon);
    session.finalize(loaded.horizon);
    tracer.flush();
    delivered = driver.delivered();
    total_cost = session.provider().ledger().total_cost();
    served_until = loaded.horizon;
  } else {  // tail
    live::FileTailFeed::Options feed_options;
    feed_options.markets = allowlist;
    live::FileTailFeed feed(feed_path, feed_options);
    const auto wall_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds{max_wall_s};

    // Discover markets: a market exists once its first row lands, and every
    // discovered market has a price to prime with. A short settle pass
    // catches sibling markets written in the same burst.
    feed.pump();
    while (feed.markets().empty()) {
      if (std::chrono::steady_clock::now() >= wall_deadline) {
        std::cerr << "serve: no feed data within --max-wall-s\n";
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds{20});
      feed.pump();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{100});
    feed.pump();

    const auto config = make_config(feed.markets().front());
    live::WallClock clock(
        live::WallClock::Options{speed, 0, sim::default_queue_backend()});
    live::HostingSession session(
        clock, build_spec(feed.markets(), nullptr, config, seed));
    session.attach_tracer(&tracer);
    live::FeedDriver driver(clock, session.provider(), feed);
    std::chrono::nanoseconds max_latency{0};
    driver.set_delivery_hook([&max_latency](const live::PriceUpdate& u) {
      max_latency = std::max(max_latency,
                             std::chrono::steady_clock::now() - u.read_at);
    });
    driver.start();
    session.start();

    const auto poll_interval = std::chrono::milliseconds{10};
    while (!driver.done() &&
           std::chrono::steady_clock::now() < wall_deadline) {
      driver.pump();
      clock.poll();
      auto sleep_for = std::chrono::nanoseconds{poll_interval};
      if (const auto until_next = clock.wall_until_next();
          until_next.has_value() && *until_next < sleep_for) {
        sleep_for = std::max(*until_next,
                             std::chrono::nanoseconds{std::chrono::milliseconds{1}});
      }
      std::this_thread::sleep_for(sleep_for);
    }
    driver.pump();
    clock.poll();
    session.finalize(clock.now());
    tracer.flush();
    delivered = driver.delivered();
    total_cost = session.provider().ledger().total_cost();
    served_until = clock.now();
    std::cerr << "serve: max_delivery_latency_ms="
              << std::chrono::duration_cast<std::chrono::milliseconds>(
                     max_latency)
                     .count()
              << "\n";
  }

  std::cerr << "serve: mode=" << mode << " served_ms=" << served_until
            << " updates=" << delivered
            << " decisions=" << decisions.decisions()
            << " cost=$" << total_cost << "\n";
  return 0;
}
