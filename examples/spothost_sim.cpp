// spothost_sim — command-line front end to the hosting simulator.
//
//   spothost_sim [options]
//     --region R        home region               (default us-east-1a)
//     --size S          small|medium|large|xlarge (default small)
//     --policy P        proactive|reactive|pure-spot (default proactive)
//     --scope S         single|multi-market|multi-region (default single)
//     --combo C         ckpt|ckpt-lr|ckpt-live|ckpt-lr-live (default ckpt-lr-live)
//     --days N          horizon in days           (default 30)
//     --seeds N         runs to aggregate         (default 5)
//     --seed N          base seed                 (default 20150615)
//     --bid K           proactive bid multiple    (default 4)
//     --pessimistic     use the pessimistic mechanism parameters
//     --estimate        also print the closed-form trace estimate
#include <cstdlib>
#include <iostream>
#include <string>

#include "spothost.hpp"

using namespace spothost;

namespace {

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: spothost_sim [--region R] [--size S] [--policy P] [--scope S]\n"
      "                    [--combo C] [--days N] [--seeds N] [--seed N]\n"
      "                    [--bid K] [--pessimistic] [--estimate]\n";
  std::exit(error.empty() ? 0 : 2);
}

virt::MechanismCombo parse_combo(const std::string& s) {
  if (s == "ckpt") return virt::MechanismCombo::kCkpt;
  if (s == "ckpt-lr") return virt::MechanismCombo::kCkptLazy;
  if (s == "ckpt-live") return virt::MechanismCombo::kCkptLive;
  if (s == "ckpt-lr-live") return virt::MechanismCombo::kCkptLazyLive;
  usage("unknown combo: " + s);
}

}  // namespace

int main(int argc, char** argv) {
  std::string region = "us-east-1a";
  std::string size = "small";
  std::string policy = "proactive";
  std::string scope = "single";
  virt::MechanismCombo combo = virt::MechanismCombo::kCkptLazyLive;
  int days = 30;
  int seeds = 5;
  std::uint64_t base_seed = 20150615;
  double bid_multiple = 4.0;
  bool pessimistic = false;
  bool estimate = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--region") region = next();
    else if (arg == "--size") size = next();
    else if (arg == "--policy") policy = next();
    else if (arg == "--scope") scope = next();
    else if (arg == "--combo") combo = parse_combo(next());
    else if (arg == "--days") days = std::atoi(next().c_str());
    else if (arg == "--seeds") seeds = std::atoi(next().c_str());
    else if (arg == "--seed") base_seed = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--bid") bid_multiple = std::atof(next().c_str());
    else if (arg == "--pessimistic") pessimistic = true;
    else if (arg == "--estimate") estimate = true;
    else if (arg == "--help" || arg == "-h") usage();
    else usage("unknown option: " + arg);
  }
  if (days <= 0 || seeds <= 0) usage("days and seeds must be positive");

  cloud::MarketId home;
  try {
    home = cloud::MarketId{region, cloud::size_from_string(size)};
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }

  sched::SchedulerConfig config;
  if (policy == "proactive") {
    config = sched::proactive_config(home);
    config.bid.proactive_multiple = bid_multiple;
  } else if (policy == "reactive") {
    config = sched::reactive_config(home);
  } else if (policy == "pure-spot") {
    config = sched::pure_spot_config(home);
  } else {
    usage("unknown policy: " + policy);
  }
  if (scope == "single") config.scope = sched::MarketScope::kSingleMarket;
  else if (scope == "multi-market") config.scope = sched::MarketScope::kMultiMarket;
  else if (scope == "multi-region") config.scope = sched::MarketScope::kMultiRegion;
  else usage("unknown scope: " + scope);
  config.combo = combo;
  if (pessimistic) config.mech = virt::pessimistic_mechanism_params();

  sched::Scenario scenario;
  scenario.horizon = days * sim::kDay;

  const metrics::ExperimentRunner runner(seeds, base_seed);
  const auto agg = runner.run(scenario, config);

  std::cout << policy << " " << home.str() << " (" << scope << ", "
            << virt::to_string(combo) << (pessimistic ? ", pessimistic" : "")
            << "), " << days << " days x " << seeds << " seeds\n\n";
  metrics::TextTable table({"metric", "mean", "stddev", "min", "max"});
  auto row = [&](const std::string& name, const metrics::Aggregate& a, int prec) {
    table.add_row({name, metrics::fmt(a.mean, prec), metrics::fmt(a.stddev, prec),
                   metrics::fmt(a.min, prec), metrics::fmt(a.max, prec)});
  };
  row("cost % of on-demand", agg.normalized_cost_pct, 1);
  row("unavailability %", agg.unavailability_pct, 4);
  row("forced migrations/hr", agg.forced_per_hour, 4);
  row("planned+reverse/hr", agg.planned_reverse_per_hour, 4);
  row("downtime s", agg.downtime_s, 0);
  table.print(std::cout);

  if (estimate) {
    sched::Scenario est_scenario = scenario;
    est_scenario.seed = base_seed;
    sched::World world(est_scenario);
    const auto& price_trace = world.provider().market(home).price_trace();
    sched::EstimateParams params;
    params.bid_multiple = (policy == "proactive") ? bid_multiple : 1.0 + 1e-9;
    params.combo = combo;
    if (pessimistic) params.mech = virt::pessimistic_mechanism_params();
    const auto est = sched::estimate_hosting(
        price_trace, world.provider().od_price(home), params);
    std::cout << "\nclosed-form estimate (seed " << base_seed
              << "): cost " << metrics::fmt(est.normalized_cost_pct, 1)
              << "%, unavailability "
              << metrics::fmt(est.unavailability_pct, 4) << "%, "
              << est.trace_stats.excursions_above_pon << " excursions ("
              << est.trace_stats.excursions_above_bid << " above bid)\n";
  }
  return 0;
}
