// Trace tooling: generate a synthetic month of spot prices for any canonical
// market, print its statistics, and round-trip it through the CSV format —
// the same format you can use to feed *real* EC2 price-history exports into
// the simulator. The --timeline mode runs a full hosting month with a tracer
// attached and dumps the structured event stream.
//
//   $ ./trace_explorer                          # generate + stats + CSV demo
//   $ ./trace_explorer path/to/trace.csv        # inspect an existing CSV
//   $ ./trace_explorer --timeline               # hosting run event timeline
//   $ ./trace_explorer --timeline 7 migration_begin
//                                               # seed 7, one event kind only
//   $ ./trace_explorer --follow run.jsonl       # tail -f a growing event
//                                               # stream (e.g. spothost_serve
//                                               # --out run.jsonl); optional
//                                               # second arg = max seconds
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <thread>

#include "spothost.hpp"

using namespace spothost;

namespace {

void describe(const trace::PriceTrace& t, double pon) {
  const auto from = t.start();
  const auto to = t.end();
  std::cout << "  points:        " << t.size() << " price changes over "
            << sim::to_hours(to - from) << " h\n";
  std::cout << "  mean price:    $" << metrics::fmt(t.time_average(from, to), 4)
            << "/hr\n";
  std::cout << "  min / max:     $" << metrics::fmt(t.min_price(from, to), 4)
            << " / $" << metrics::fmt(t.max_price(from, to), 4) << "\n";
  std::cout << "  stddev:        $"
            << metrics::fmt(trace::trace_stddev(t, from, to), 4) << "\n";
  if (pon > 0) {
    std::cout << "  below p_on:    "
              << metrics::fmt(100.0 * t.fraction_below(pon, from, to), 2)
              << "% of the time (p_on = $" << metrics::fmt(pon, 2) << ")\n";
    std::cout << "  above 4*p_on:  "
              << metrics::fmt(100.0 * (1.0 - t.fraction_below(4 * pon, from, to)),
                              3)
              << "% of the time (the proactive bid)\n";
  }
}

int run_timeline(std::uint64_t seed, std::optional<obs::EventKind> only) {
  sched::Scenario scenario;
  scenario.seed = seed;
  const auto cfg =
      sched::proactive_config({"us-east-1a", cloud::InstanceSize::kSmall});

  obs::Tracer tracer;
  obs::RingBufferSink ring(1 << 16);
  const std::string jsonl_path = "/tmp/spothost_trace.jsonl";
  obs::JsonlSink jsonl(jsonl_path);
  tracer.add_sink(&ring);
  tracer.add_sink(&jsonl);

  obs::RunProfile profile;
  const auto m = metrics::run_hosting_scenario(scenario, cfg, &tracer, &profile);

  std::map<std::string_view, int> by_kind;
  int shown = 0;
  for (const auto& e : ring.events()) {
    ++by_kind[obs::to_string(e.kind)];
    if (only && e.kind != *only) continue;
    // Price ticks dominate the stream; the timeline shows the decisions.
    if (!only && e.kind == obs::EventKind::kPriceChange) continue;
    const auto label = obs::code_label(e.kind, e.code);
    std::cout << "  " << sim::format_time(e.t) << "  "
              << obs::to_string(e.kind);
    if (!label.empty()) std::cout << " [" << label << "]";
    if (!e.market.empty()) std::cout << "  " << e.market;
    if (e.value != 0.0) std::cout << "  value=" << metrics::fmt(e.value, 4);
    std::cout << "\n";
    ++shown;
  }

  std::cout << "== event totals (seed " << seed << ") ==\n";
  for (const auto& [kind, n] : by_kind) {
    std::cout << "  " << kind << ": " << n << "\n";
  }
  std::cout << "  shown above: " << shown << " (dropped by ring: "
            << ring.dropped() << ")\n";
  std::cout << "== run ==\n  cost: " << metrics::fmt(m.normalized_cost_pct, 1)
            << "% of on-demand, unavailability "
            << metrics::fmt(m.unavailability_pct, 4) << "%\n";
  std::cout << "  dispatched " << profile.events_dispatched << " sim events in "
            << metrics::fmt(profile.wall_seconds, 3) << " s ("
            << metrics::fmt(profile.events_per_second() / 1e6, 2) << " M/s)\n";
  std::cout << "  full JSONL stream written to " << jsonl_path << "\n";
  return 0;
}

int run_follow(const std::string& path, double max_seconds) {
  // tail -f over a growing JSONL event stream: emit only complete
  // newline-terminated lines (a writer caught mid-line is completed on a
  // later poll), resume at the end of what we've printed, detect truncation.
  std::ifstream file;
  std::streamoff pos = 0;
  std::string partial;
  std::uint64_t lines = 0;
  const auto deadline =
      max_seconds > 0
          ? std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(max_seconds))
          : std::chrono::steady_clock::time_point::max();
  while (std::chrono::steady_clock::now() < deadline) {
    if (!file.is_open()) {
      file.open(path, std::ios::binary);
      if (!file.is_open()) {
        std::this_thread::sleep_for(std::chrono::milliseconds{100});
        continue;
      }
    }
    file.clear();
    file.seekg(0, std::ios::end);
    const std::streamoff size = file.tellg();
    if (size < pos) {  // truncated/rotated: start over
      std::cerr << "-- " << path << " truncated, restarting --\n";
      pos = 0;
      partial.clear();
    }
    if (size > pos) {
      file.seekg(pos);
      std::string chunk(static_cast<std::size_t>(size - pos), '\0');
      file.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
      chunk.resize(static_cast<std::size_t>(file.gcount()));
      pos += static_cast<std::streamoff>(chunk.size());
      std::size_t start = 0;
      for (;;) {
        const auto nl = chunk.find('\n', start);
        if (nl == std::string::npos) {
          partial.append(chunk, start, std::string::npos);
          break;
        }
        std::string line = std::move(partial);
        partial.clear();
        line.append(chunk, start, nl - start);
        if (!line.empty()) {
          std::cout << line << "\n";
          ++lines;
        }
        start = nl + 1;
      }
      std::cout.flush();
      continue;  // drain quickly while the file is growing
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{50});
  }
  std::cerr << "-- followed " << lines << " events --\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2 && std::string(argv[1]) == "--follow") {
    const double max_seconds = argc > 3 ? std::atof(argv[3]) : 0.0;
    return run_follow(argv[2], max_seconds);
  }
  if (argc > 1 && std::string(argv[1]) == "--timeline") {
    std::uint64_t seed = 42;
    if (argc > 2) {
      char* end = nullptr;
      seed = std::strtoull(argv[2], &end, 10);
      if (end == argv[2] || *end != '\0') {
        std::cerr << "seed must be an unsigned integer: " << argv[2] << "\n";
        return 1;
      }
    }
    std::optional<obs::EventKind> only;
    if (argc > 3) {
      only = obs::event_kind_from_string(argv[3]);
      if (!only) {
        std::cerr << "unknown event kind: " << argv[3] << "\n";
        return 1;
      }
    }
    return run_timeline(seed, only);
  }
  if (argc > 1) {
    std::cout << "== " << argv[1] << " ==\n";
    const auto t = trace::load_csv_file(argv[1]);
    describe(t, 0.0);
    return 0;
  }

  sim::RngFactory factory(2026);
  for (const auto region : trace::canonical_regions()) {
    const std::string r{region};
    const auto profile = trace::profile_for(r, "small");
    const double pon = cloud::on_demand_price(cloud::InstanceSize::kSmall, r);
    auto rng = factory.stream("explore/" + r);
    const auto t =
        trace::SyntheticSpotModel::generate(profile, pon, 30 * sim::kDay, rng);
    std::cout << "== " << r << "/small, one synthetic month ==\n";
    describe(t, pon);
  }

  // CSV round trip demo.
  auto rng = factory.stream("csv-demo");
  const auto t = trace::SyntheticSpotModel::generate(
      trace::profile_for("us-east-1a", "large"), 0.24, 7 * sim::kDay, rng);
  const std::string path = "/tmp/spothost_demo_trace.csv";
  trace::save_csv_file(t, path);
  const auto loaded = trace::load_csv_file(path);
  std::cout << "== CSV round trip ==\n  wrote " << t.size() << " points to "
            << path << ", read back " << loaded.size() << " — "
            << (loaded.size() == t.size() ? "identical" : "MISMATCH") << "\n";
  std::cout << "  (feed real EC2 DescribeSpotPriceHistory exports through this "
               "format to drive the simulator with measured data)\n";
  return 0;
}
