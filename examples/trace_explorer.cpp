// Trace tooling: generate a synthetic month of spot prices for any canonical
// market, print its statistics, and round-trip it through the CSV format —
// the same format you can use to feed *real* EC2 price-history exports into
// the simulator.
//
//   $ ./trace_explorer                          # generate + stats + CSV demo
//   $ ./trace_explorer path/to/trace.csv        # inspect an existing CSV
#include <iostream>

#include "spothost.hpp"

using namespace spothost;

namespace {

void describe(const trace::PriceTrace& t, double pon) {
  const auto from = t.start();
  const auto to = t.end();
  std::cout << "  points:        " << t.size() << " price changes over "
            << sim::to_hours(to - from) << " h\n";
  std::cout << "  mean price:    $" << metrics::fmt(t.time_average(from, to), 4)
            << "/hr\n";
  std::cout << "  min / max:     $" << metrics::fmt(t.min_price(from, to), 4)
            << " / $" << metrics::fmt(t.max_price(from, to), 4) << "\n";
  std::cout << "  stddev:        $"
            << metrics::fmt(trace::trace_stddev(t, from, to), 4) << "\n";
  if (pon > 0) {
    std::cout << "  below p_on:    "
              << metrics::fmt(100.0 * t.fraction_below(pon, from, to), 2)
              << "% of the time (p_on = $" << metrics::fmt(pon, 2) << ")\n";
    std::cout << "  above 4*p_on:  "
              << metrics::fmt(100.0 * (1.0 - t.fraction_below(4 * pon, from, to)),
                              3)
              << "% of the time (the proactive bid)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::cout << "== " << argv[1] << " ==\n";
    const auto t = trace::load_csv_file(argv[1]);
    describe(t, 0.0);
    return 0;
  }

  sim::RngFactory factory(2026);
  for (const auto region : trace::canonical_regions()) {
    const std::string r{region};
    const auto profile = trace::profile_for(r, "small");
    const double pon = cloud::on_demand_price(cloud::InstanceSize::kSmall, r);
    auto rng = factory.stream("explore/" + r);
    const auto t =
        trace::SyntheticSpotModel::generate(profile, pon, 30 * sim::kDay, rng);
    std::cout << "== " << r << "/small, one synthetic month ==\n";
    describe(t, pon);
  }

  // CSV round trip demo.
  auto rng = factory.stream("csv-demo");
  const auto t = trace::SyntheticSpotModel::generate(
      trace::profile_for("us-east-1a", "large"), 0.24, 7 * sim::kDay, rng);
  const std::string path = "/tmp/spothost_demo_trace.csv";
  trace::save_csv_file(t, path);
  const auto loaded = trace::load_csv_file(path);
  std::cout << "== CSV round trip ==\n  wrote " << t.size() << " points to "
            << path << ", read back " << loaded.size() << " — "
            << (loaded.size() == t.size() ? "identical" : "MISMATCH") << "\n";
  std::cout << "  (feed real EC2 DescribeSpotPriceHistory exports through this "
               "format to drive the simulator with measured data)\n";
  return 0;
}
