#!/usr/bin/env bash
# Docs lint: every intra-repo markdown link must point at a file that
# exists, and every in-page anchor (#fragment) at a heading that renders
# to that GitHub-style anchor. External links (http/https/mailto) are not
# checked; links inside fenced code blocks are ignored.
#
# Fails listing every dead link as file:line: [text](target).
set -euo pipefail

cd "$(dirname "$0")/.."

status=0

# GitHub anchor for a heading line: strip the #s, lowercase, drop
# everything but [a-z0-9 _-], spaces to dashes.
anchors_of() {
  sed -n 's/^#\{1,6\} //p' "$1" |
    tr '[:upper:]' '[:lower:]' |
    sed 's/[^a-z0-9 _-]//g; s/ /-/g'
}

# Tracked plus untracked-but-not-ignored markdown (skips build trees).
files=$(git ls-files --cached --others --exclude-standard '*.md')

for file in $files; do
  # Strip fenced code blocks, then pull out [text](target) pairs with the
  # line numbers of the original file.
  links=$(awk '
    /^[[:space:]]*```/ { fence = !fence; next }
    !fence {
      line = $0
      while (match(line, /\[[^]]*\]\([^)]+\)/)) {
        link = substr(line, RSTART, RLENGTH)
        target = link
        sub(/^\[[^]]*\]\(/, "", target)
        sub(/\)$/, "", target)
        printf "%d\t%s\n", NR, target
        line = substr(line, RSTART + RLENGTH)
      }
    }
  ' "$file")

  while IFS=$'\t' read -r lineno target; do
    [ -n "$target" ] || continue
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    path=${target%%#*}
    fragment=""
    case "$target" in
      *'#'*) fragment=${target#*#} ;;
    esac

    if [ -z "$path" ]; then
      resolved=$file        # pure in-page anchor: #section
    else
      resolved=$(dirname "$file")/$path
    fi

    if [ ! -e "$resolved" ]; then
      echo "DEAD LINK: $file:$lineno: ($target) — no such file: $resolved"
      status=1
      continue
    fi
    if [ -n "$fragment" ]; then
      case "$resolved" in
        *.md)
          # §-style anchors like #9-execution-model need only a prefix
          # match on the numbered heading; exact match otherwise.
          if ! anchors_of "$resolved" | grep -qx -e "$fragment"; then
            echo "DEAD ANCHOR: $file:$lineno: ($target) — no heading in $resolved renders to #$fragment"
            status=1
          fi
          ;;
      esac
    fi
  done <<< "$links"
done

if [ "$status" -eq 0 ]; then
  echo "docs OK: all intra-repo markdown links and anchors resolve"
fi
exit "$status"
