#!/usr/bin/env bash
# Layering lint: everything below the experiment layer must depend only on
# the narrow sim::Clock interface (simcore/clock.hpp) — plus, for sharded
# routing, the sim::ShardRouter seam (simcore/shard_router.hpp) — never on a
# concrete simulation engine. Only the experiment/session layer (metrics/,
# live/ session wiring, examples, tests, benches) may include
# simulation.hpp or sharded_sim.hpp.
#
# Fails with the offending include lines if src/sched/, src/virt/, or
# src/cloud/ reach into a concrete engine header.
set -euo pipefail

cd "$(dirname "$0")/.."

status=0
for layer in src/sched src/virt src/cloud; do
  if matches=$(grep -rn --include='*.hpp' --include='*.cpp' -E \
      '^[[:space:]]*#include.*simcore/(simulation|sharded_sim)\.hpp' \
      "$layer" 2>/dev/null); then
    echo "LAYERING VIOLATION: $layer must depend on sim::Clock (and at most" \
         "the sim::ShardRouter seam), not a concrete engine:"
    echo "$matches"
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "layering OK: src/sched, src/virt, src/cloud depend only on" \
       "sim::Clock + sim::ShardRouter"
fi
exit "$status"
