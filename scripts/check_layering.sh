#!/usr/bin/env bash
# Layering lint: everything below the experiment layer must depend only on
# the narrow sim::Clock interface (simcore/clock.hpp), never on the concrete
# simulation engine. Only the experiment/session layer (metrics/, live/
# session wiring, examples, tests, benches) may include simulation.hpp.
#
# Fails with the offending include lines if src/sched/, src/virt/, or
# src/cloud/ reach into simcore/simulation.hpp.
set -euo pipefail

cd "$(dirname "$0")/.."

status=0
for layer in src/sched src/virt src/cloud; do
  if matches=$(grep -rn --include='*.hpp' --include='*.cpp' \
      'simcore/simulation\.hpp' "$layer" 2>/dev/null); then
    echo "LAYERING VIOLATION: $layer must depend on sim::Clock, not the engine:"
    echo "$matches"
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "layering OK: src/sched, src/virt, src/cloud depend only on sim::Clock"
fi
exit "$status"
