#!/usr/bin/env bash
# Serve-mode smoke test, run in CI after the build:
#
#   1. Parity: spothost_serve --mode sim and --mode replay over the bundled
#      one-hour feed snippet must emit byte-identical decision JSONL — the
#      same policy layer, driven once by the simulation engine and once by
#      the wall clock in deterministic fast-replay.
#   2. Liveness: --mode tail against a CSV that a background writer is still
#      appending to must deliver every update and keep the measured
#      feed-to-market delivery latency under a bound.
#
# Usage: scripts/serve_smoke.sh [build_dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SERVE="$BUILD_DIR/examples/spothost_serve"
FEED=testdata/serve_feed_1h.csv
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

[ -x "$SERVE" ] || { echo "missing binary: $SERVE (build first)"; exit 1; }

echo "== parity: sim vs wall-clock fast replay over $FEED =="
"$SERVE" --feed "$FEED" --mode sim --out "$TMP/sim.jsonl" 2>"$TMP/sim.log"
"$SERVE" --feed "$FEED" --mode replay --speed max --out "$TMP/replay.jsonl" \
  2>"$TMP/replay.log"
if ! diff -u "$TMP/sim.jsonl" "$TMP/replay.jsonl"; then
  echo "FAIL: replay decision stream diverges from simulation"
  exit 1
fi
decisions=$(wc -l <"$TMP/sim.jsonl")
if [ "$decisions" -lt 5 ]; then
  echo "FAIL: only $decisions decisions — snippet should force migrations"
  exit 1
fi
echo "OK: $decisions decisions, byte-identical across both clocks"

echo "== liveness: tail a growing feed =="
GROW="$TMP/grow.csv"
: >"$GROW"
(
  for i in 1 2 3 4 5 6 7 8; do
    echo "$((i * 2000)),us-east-1a/small,0.01$i" >>"$GROW"
    sleep 0.25
  done
  echo "end,20000" >>"$GROW"
) &
writer=$!
"$SERVE" --feed "$GROW" --mode tail --speed max --out "$TMP/tail.jsonl" \
  --max-wall-s 30 2>"$TMP/tail.log"
wait "$writer"

cat "$TMP/tail.log"
latency=$(sed -n 's/^serve: max_delivery_latency_ms=//p' "$TMP/tail.log")
[ -n "$latency" ] || { echo "FAIL: no latency line in tail output"; exit 1; }
# Bound: one poll interval plus generous CI scheduling slack.
if [ "$latency" -gt 2000 ]; then
  echo "FAIL: delivery latency ${latency}ms exceeds 2000ms bound"
  exit 1
fi
updates=$(sed -n 's/.* updates=\([0-9]*\).*/\1/p' "$TMP/tail.log")
# 8 rows: the first primes the market, 7 are deliveries.
if [ "$updates" -lt 7 ]; then
  echo "FAIL: only $updates updates delivered from the growing feed"
  exit 1
fi
echo "OK: tailed $updates updates, max delivery latency ${latency}ms"
