#include "cloud/billing.hpp"

#include <stdexcept>

namespace spothost::cloud {

double on_demand_cost(double price_per_hour, sim::SimTime launch, sim::SimTime end) {
  if (end < launch) throw std::invalid_argument("on_demand_cost: end < launch");
  if (end == launch) return 0.0;
  const sim::SimTime duration = end - launch;
  const sim::SimTime hours_started = (duration + sim::kHour - 1) / sim::kHour;
  return price_per_hour * static_cast<double>(hours_started);
}

double spot_cost(const trace::PriceTrace& price_trace, sim::SimTime launch,
                 sim::SimTime end, TerminationCause cause) {
  if (end < launch) throw std::invalid_argument("spot_cost: end < launch");
  if (end == launch) return 0.0;
  double cost = 0.0;
  // Bill every *completed* instance-hour at its start price; the final
  // partial hour is billed only on customer termination. Hour starts are
  // monotone, so one cursor makes the meter's lookups amortized O(1).
  trace::PriceCursor cursor;
  for (sim::SimTime hour_start = launch; hour_start < end; hour_start += sim::kHour) {
    const bool complete = hour_start + sim::kHour <= end;
    if (complete || cause == TerminationCause::kCustomer) {
      cost += price_trace.price_at(hour_start, cursor);
    }
  }
  return cost;
}

void BillingLedger::add(BillingRecord record) {
  total_ += record.cost;
  records_.push_back(std::move(record));
}

double BillingLedger::total_cost(BillingMode mode) const {
  double sum = 0.0;
  for (const auto& r : records_) {
    if (r.mode == mode) sum += r.cost;
  }
  return sum;
}

sim::SimTime BillingLedger::total_leased_time(BillingMode mode) const {
  sim::SimTime sum = 0;
  for (const auto& r : records_) {
    if (r.mode == mode) sum += r.end - r.launch;
  }
  return sum;
}

}  // namespace spothost::cloud
