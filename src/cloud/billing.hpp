// EC2-2015 billing rules (Sec. 2.1):
//  * on-demand: fixed $/hr, every started instance-hour billed in full;
//  * spot: each instance-hour billed at the spot price in effect at the
//    *start* of that hour (not the bid);
//  * a partial final hour is FREE when the *provider* revoked the instance,
//    but billed in full when the *customer* terminated it.
// Instance-hours are aligned to the instance's launch time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/market.hpp"
#include "simcore/time.hpp"
#include "trace/price_trace.hpp"

namespace spothost::cloud {

enum class BillingMode { kOnDemand, kSpot };

enum class TerminationCause {
  kCustomer,         ///< voluntary terminate → final partial hour billed
  kProviderRevoked,  ///< spot revocation → final partial hour free
};

/// Cost of an on-demand instance running [launch, end).
double on_demand_cost(double price_per_hour, sim::SimTime launch, sim::SimTime end);

/// Cost of a spot instance running [launch, end) against the market trace.
double spot_cost(const trace::PriceTrace& price_trace, sim::SimTime launch,
                 sim::SimTime end, TerminationCause cause);

/// Sentinel owner tag: the lease was never attributed to anyone.
inline constexpr std::uint64_t kNoOwner = ~std::uint64_t{0};

/// One finished (or finalized) instance lease, for auditing and metrics.
struct BillingRecord {
  std::uint64_t instance_id = 0;
  MarketId market;
  BillingMode mode = BillingMode::kOnDemand;
  sim::SimTime launch = 0;
  sim::SimTime end = 0;
  TerminationCause cause = TerminationCause::kCustomer;
  double cost = 0.0;
  /// Opaque customer-side owner tag (e.g. the fleet service index), copied
  /// from the instance at lease completion. kNoOwner when never tagged —
  /// billing itself never reads it; attribution (FleetScheduler::metrics)
  /// does.
  std::uint64_t owner = kNoOwner;
};

/// Append-only ledger of completed leases.
class BillingLedger {
 public:
  void add(BillingRecord record);

  [[nodiscard]] const std::vector<BillingRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] double total_cost() const noexcept { return total_; }
  [[nodiscard]] double total_cost(BillingMode mode) const;
  [[nodiscard]] sim::SimTime total_leased_time(BillingMode mode) const;

 private:
  std::vector<BillingRecord> records_;
  double total_ = 0.0;
};

}  // namespace spothost::cloud
