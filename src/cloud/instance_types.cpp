#include "cloud/instance_types.hpp"

#include <stdexcept>
#include <string>

namespace spothost::cloud {
namespace {

constexpr std::array<InstanceTypeInfo, 4> kCatalog{{
    {InstanceSize::kSmall, "small", 0.06, 1.7, 8.0, 1, 1},
    {InstanceSize::kMedium, "medium", 0.12, 3.75, 8.0, 2, 1},
    {InstanceSize::kLarge, "large", 0.24, 7.5, 16.0, 4, 2},
    {InstanceSize::kXLarge, "xlarge", 0.48, 15.0, 16.0, 8, 4},
}};

}  // namespace

const InstanceTypeInfo& type_info(InstanceSize size) noexcept {
  return kCatalog[static_cast<std::size_t>(size)];
}

std::string_view to_string(InstanceSize size) noexcept {
  return type_info(size).name;
}

InstanceSize size_from_string(std::string_view name) {
  for (const auto& info : kCatalog) {
    if (info.name == name) return info.size;
  }
  throw std::invalid_argument("unknown instance size: " + std::string(name));
}

double region_price_multiplier(std::string_view region) noexcept {
  if (region.starts_with("us-east")) return 1.0;
  if (region.starts_with("us-west")) return 1.10;
  if (region.starts_with("eu-west")) return 1.15;
  return 1.0;
}

double on_demand_price(InstanceSize size, std::string_view region) noexcept {
  return type_info(size).on_demand_price * region_price_multiplier(region);
}

}  // namespace spothost::cloud
