// Instance-type catalog: the four sizes the paper evaluates (Fig. 6, Fig. 10)
// with EC2-2015-era on-demand prices ("from 6 cents per hour for the small
// configuration", Sec. 2.1) and the resource figures the virtualization
// models need.
#pragma once

#include <array>
#include <string_view>

namespace spothost::cloud {

enum class InstanceSize { kSmall = 0, kMedium = 1, kLarge = 2, kXLarge = 3 };

inline constexpr std::array<InstanceSize, 4> kAllSizes{
    InstanceSize::kSmall, InstanceSize::kMedium, InstanceSize::kLarge,
    InstanceSize::kXLarge};

struct InstanceTypeInfo {
  InstanceSize size;
  std::string_view name;
  double on_demand_price;  ///< $/hr in the reference region (us-east)
  double memory_gb;
  double disk_gb;          ///< root volume to copy on WAN migration
  int capacity_units;      ///< how many "small" nested VMs it can pack
  int vcpus;
};

/// Catalog entry for a size. Never fails.
const InstanceTypeInfo& type_info(InstanceSize size) noexcept;

std::string_view to_string(InstanceSize size) noexcept;

/// Parses "small" | "medium" | "large" | "xlarge". Throws std::invalid_argument.
InstanceSize size_from_string(std::string_view name);

/// Regional price multiplier relative to the reference region: us-east is the
/// cheapest; us-west and eu-west carry a premium (as on EC2 in 2015).
double region_price_multiplier(std::string_view region) noexcept;

/// On-demand $/hr for a size in a region.
double on_demand_price(InstanceSize size, std::string_view region) noexcept;

}  // namespace spothost::cloud
