#include "cloud/market.hpp"

#include <stdexcept>
#include <vector>

namespace spothost::cloud {

SpotMarket::SpotMarket(sim::Clock& clock, MarketId id,
                       trace::PriceTrace price_trace, double on_demand_price_per_hour)
    : clock_(clock),
      id_(std::move(id)),
      trace_(std::move(price_trace)),
      on_demand_price_(on_demand_price_per_hour) {
  if (trace_.empty()) {
    throw std::invalid_argument("SpotMarket: empty price trace for " + id_.str());
  }
  if (on_demand_price_ <= 0) {
    throw std::invalid_argument("SpotMarket: on-demand price must be > 0");
  }
}

SpotMarket::SpotMarket(sim::Clock& clock, MarketId id,
                       double on_demand_price_per_hour)
    : clock_(clock),
      id_(std::move(id)),
      on_demand_price_(on_demand_price_per_hour),
      push_fed_(true) {
  if (on_demand_price_ <= 0) {
    throw std::invalid_argument("SpotMarket: on-demand price must be > 0");
  }
}

double SpotMarket::price() const {
  const sim::SimTime now = clock_.now();
  if (push_fed_) {
    if (!primed_) {
      throw std::logic_error("SpotMarket::price: live market " + id_.str() +
                             " has no price yet (feed not primed)");
    }
    // A staged update takes effect at its timestamp even before its commit
    // callback runs — this is what makes push-fed price() right-continuous
    // like trace mode's price_at (same-millisecond queries included).
    if (staged_ && now >= staged_at_) return staged_price_;
    return live_price_;
  }
  // Clamp to the trace window so queries exactly at the horizon still answer.
  const sim::SimTime t = std::min(std::max(now, trace_.start()), trace_.end() - 1);
  return trace_.price_at(t, trace_cursor_);
}

const trace::PriceTrace& SpotMarket::billable_trace(sim::SimTime through) {
  if (push_fed_ && trace_.end() < through) trace_.set_end(through);
  return trace_;
}

SpotMarket::SubscriptionId SpotMarket::subscribe(PriceObserver observer) {
  const SubscriptionId sid = next_subscription_++;
  observers_.emplace(sid, Subscription{nullptr, std::move(observer)});
  return sid;
}

SpotMarket::SubscriptionId SpotMarket::subscribe(PriceListener* listener) {
  if (listener == nullptr) {
    throw std::invalid_argument("SpotMarket::subscribe: null listener");
  }
  const SubscriptionId sid = next_subscription_++;
  observers_.emplace(sid, Subscription{listener, nullptr});
  return sid;
}

void SpotMarket::unsubscribe(SubscriptionId id) {
  observers_.erase(id);
}

void SpotMarket::start() {
  if (started_) throw std::logic_error("SpotMarket::start called twice");
  started_ = true;
  if (push_fed_) return;  // the feed driver drives a push-fed market
  schedule_next(clock_.now());
}

void SpotMarket::prime(double price) {
  if (!push_fed_) {
    throw std::logic_error("SpotMarket::prime: trace-fed market " + id_.str());
  }
  if (primed_) {
    throw std::logic_error("SpotMarket::prime: already primed " + id_.str());
  }
  primed_ = true;
  live_price_ = price;
  trace_.append(clock_.now(), price);
}

void SpotMarket::stage(sim::SimTime at, double price) {
  if (!push_fed_) {
    throw std::logic_error("SpotMarket::stage: trace-fed market " + id_.str());
  }
  if (!primed_) {
    throw std::logic_error("SpotMarket::stage: prime() first " + id_.str());
  }
  if (staged_) {
    throw std::logic_error("SpotMarket::stage: update already staged " + id_.str());
  }
  if (at < clock_.now()) {
    throw std::invalid_argument("SpotMarket::stage: staging in the past " +
                                id_.str());
  }
  staged_ = true;
  staged_at_ = at;
  staged_price_ = price;
}

void SpotMarket::commit_staged() {
  if (!staged_) {
    throw std::logic_error("SpotMarket::commit_staged: nothing staged " +
                           id_.str());
  }
  staged_ = false;
  live_price_ = staged_price_;
  // Record for billing. Two updates inside one millisecond collapse to one
  // point with the later price (append requires strictly increasing times).
  const sim::SimTime at = clock_.now();
  if (!trace_.empty() && at <= trace_.points().back().time) {
    trace_.amend_last(staged_price_);
  } else {
    trace_.append(at, staged_price_);
  }
  dispatch(staged_price_);
}

void SpotMarket::push_price(double price) {
  stage(clock_.now(), price);
  commit_staged();
}

void SpotMarket::schedule_next(sim::SimTime after_time) {
  const auto next = trace_.next_change_after(after_time, trace_cursor_);
  if (!next) return;
  clock_.at(next->time, [this, point = *next] {
    dispatch(point.price);
    schedule_next(point.time);
  });
}

void SpotMarket::dispatch(double new_price) {
  // Snapshot ids, not observer functions: a callback may (un)subscribe
  // reentrantly, and ids are stable where map iterators are not. The buffer
  // is a reused member, so steady-state price steps do not allocate.
  dispatch_ids_.clear();
  for (const auto& [sid, obs] : observers_) dispatch_ids_.push_back(sid);
  for (const SubscriptionId sid : dispatch_ids_) {
    const auto it = observers_.find(sid);
    if (it == observers_.end()) continue;  // unsubscribed mid-dispatch
    if (it->second.listener != nullptr) {
      it->second.listener->on_price(*this, new_price);
    } else {
      it->second.fn(*this, new_price);
    }
  }
}

}  // namespace spothost::cloud
