#include "cloud/market.hpp"

#include <stdexcept>
#include <vector>

namespace spothost::cloud {

SpotMarket::SpotMarket(sim::Simulation& simulation, MarketId id,
                       trace::PriceTrace price_trace, double on_demand_price_per_hour)
    : simulation_(simulation),
      id_(std::move(id)),
      trace_(std::move(price_trace)),
      on_demand_price_(on_demand_price_per_hour) {
  if (trace_.empty()) {
    throw std::invalid_argument("SpotMarket: empty price trace for " + id_.str());
  }
  if (on_demand_price_ <= 0) {
    throw std::invalid_argument("SpotMarket: on-demand price must be > 0");
  }
}

double SpotMarket::price() const {
  const sim::SimTime now = simulation_.now();
  // Clamp to the trace window so queries exactly at the horizon still answer.
  const sim::SimTime t = std::min(std::max(now, trace_.start()), trace_.end() - 1);
  return trace_.price_at(t, trace_cursor_);
}

SpotMarket::SubscriptionId SpotMarket::subscribe(PriceObserver observer) {
  const SubscriptionId sid = next_subscription_++;
  observers_.emplace(sid, std::move(observer));
  return sid;
}

void SpotMarket::unsubscribe(SubscriptionId id) {
  observers_.erase(id);
}

void SpotMarket::start() {
  if (started_) throw std::logic_error("SpotMarket::start called twice");
  started_ = true;
  schedule_next(simulation_.now());
}

void SpotMarket::schedule_next(sim::SimTime after_time) {
  const auto next = trace_.next_change_after(after_time, trace_cursor_);
  if (!next) return;
  simulation_.at(next->time, [this, point = *next] {
    dispatch(point.price);
    schedule_next(point.time);
  });
}

void SpotMarket::dispatch(double new_price) {
  // Snapshot ids, not observer functions: a callback may (un)subscribe
  // reentrantly, and ids are stable where map iterators are not. The buffer
  // is a reused member, so steady-state price steps do not allocate.
  dispatch_ids_.clear();
  for (const auto& [sid, obs] : observers_) dispatch_ids_.push_back(sid);
  for (const SubscriptionId sid : dispatch_ids_) {
    const auto it = observers_.find(sid);
    if (it == observers_.end()) continue;  // unsubscribed mid-dispatch
    it->second(*this, new_price);
  }
}

}  // namespace spothost::cloud
