// Market identity and the price feed for one (region, size) spot market.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cloud/instance_types.hpp"
#include "simcore/clock.hpp"
#include "trace/price_trace.hpp"

namespace spothost::cloud {

/// A spot market is identified by (region, instance size) — "each server
/// configuration has its own spot market" (Sec. 2.1).
struct MarketId {
  std::string region;
  InstanceSize size = InstanceSize::kSmall;

  bool operator==(const MarketId&) const = default;
  [[nodiscard]] std::string str() const {
    return region + "/" + std::string(to_string(size));
  }
};

struct MarketIdHash {
  std::size_t operator()(const MarketId& m) const noexcept {
    return std::hash<std::string>{}(m.region) * 31u +
           static_cast<std::size_t>(m.size);
  }
};

/// One market, with observer callbacks on every price change. The
/// CloudProvider owns SpotMarkets and layers instance/revocation logic on
/// top. Two feeding modes share the class:
///
///   * trace mode (the simulation path) — constructed with a pre-loaded
///     PriceTrace; start() replays its change points as clock events.
///   * push mode (the live path) — constructed without a trace; a
///     live::FeedDriver primes the initial price and then stages/commits
///     updates as they arrive from a live::PriceFeed. Committed prices
///     accumulate into an internal PriceTrace so billing (spot_cost) reads
///     the same structure in both modes.
///
/// The push-mode stage/commit split exists for replay parity: staging makes
/// the *queried* price step at exactly the staged timestamp (matching trace
/// mode's right-continuous price_at), even when another event at the same
/// millisecond — scheduled earlier, so dispatched first — asks for the price
/// before the commit callback runs.
class SpotMarket {
 public:
  using PriceObserver = std::function<void(const SpotMarket&, double new_price)>;
  using SubscriptionId = std::uint64_t;

  /// The hot-path subscription surface: one virtual call per price step per
  /// subscriber, no std::function dispatch, no capture storage. The two
  /// per-market permanent subscribers (CloudProvider's revocation logic and
  /// the fleet's shared MarketWatcher) implement this; ad-hoc observers
  /// (tests, probes) can keep using the std::function overload.
  class PriceListener {
   public:
    virtual ~PriceListener() = default;
    /// Called on every committed price change, synchronously, in
    /// subscription order. `market.id()` identifies the market.
    virtual void on_price(const SpotMarket& market, double new_price) = 0;
  };

  /// Trace mode: replays `price_trace` (must be non-empty).
  SpotMarket(sim::Clock& clock, MarketId id, trace::PriceTrace price_trace,
             double on_demand_price_per_hour);

  /// Push mode: no trace; prices arrive via prime()/stage()/commit_staged().
  SpotMarket(sim::Clock& clock, MarketId id, double on_demand_price_per_hour);

  [[nodiscard]] const MarketId& id() const noexcept { return id_; }
  [[nodiscard]] double on_demand_price() const noexcept { return on_demand_price_; }

  /// True if this market is push-fed (no pre-loaded trace).
  [[nodiscard]] bool push_fed() const noexcept { return push_fed_; }

  /// Trace mode: the pre-loaded trace. Push mode: the prices committed so
  /// far (the live billing record). Its end() only advances on commit; use
  /// billable_trace() when about to integrate up to the present.
  [[nodiscard]] const trace::PriceTrace& price_trace() const noexcept { return trace_; }

  /// price_trace() with the validity window extended through `through`
  /// (push mode bills against prices that have held since the last commit).
  /// Trace mode returns the trace unchanged.
  [[nodiscard]] const trace::PriceTrace& billable_trace(sim::SimTime through);

  /// Current spot price (at clock now()). Push mode throws std::logic_error
  /// until prime() has supplied the first price.
  [[nodiscard]] double price() const;

  /// Registers a price-change observer; fires on every change event.
  SubscriptionId subscribe(PriceObserver observer);
  /// Interface flavour (not owned; must outlive the subscription). The hot
  /// dispatch path calls on_price directly — no type-erased invocation.
  SubscriptionId subscribe(PriceListener* listener);
  void unsubscribe(SubscriptionId id);
  /// Live observers (the provider's own revocation logic counts as one).
  [[nodiscard]] std::size_t observer_count() const noexcept {
    return observers_.size();
  }

  /// Trace mode: begins replaying price-change events into the clock. Call
  /// once. Push mode: a no-op (the feed driver drives the market instead) —
  /// lets CloudProvider::start() treat both modes uniformly.
  void start();

  // --- push mode (live::FeedDriver's surface) ----------------------------

  /// Sets the initial price without notifying observers — the counterpart
  /// of trace mode's point at t0, which is never dispatched as an event.
  /// Call exactly once, before any commit; throws if re-primed or in trace
  /// mode.
  void prime(double price);

  /// Declares the price that will commit at `at` (>= now). From `at`
  /// onwards price() answers with it even before commit_staged() runs —
  /// see the class comment. At most one update staged at a time.
  void stage(sim::SimTime at, double price);

  /// Commits the staged price at clock now() (>= the staged time): records
  /// it in the billing trace and dispatches observers.
  void commit_staged();

  /// stage(now) + commit_staged(): the immediate-delivery path for feed
  /// updates that are already due when ingested (live tailing).
  void push_price(double price);

 private:
  void schedule_next(sim::SimTime after_time);

  sim::Clock& clock_;
  MarketId id_;
  // Trace mode: the replayed trace. Push mode: committed prices so far.
  trace::PriceTrace trace_;
  // This market's read position in its trace. A SpotMarket lives inside one
  // single-threaded engine and its queries move forward with time, so one
  // per-instance cursor makes price()/schedule_next amortized O(1); mutable
  // because price() is logically const (the trace itself is never mutated —
  // cursor state is the reader's, see trace/price_trace.hpp).
  mutable trace::PriceCursor trace_cursor_;
  double on_demand_price_;
  void dispatch(double new_price);

  const bool push_fed_ = false;
  bool primed_ = false;
  bool staged_ = false;
  sim::SimTime staged_at_ = 0;
  double staged_price_ = 0.0;
  double live_price_ = 0.0;  ///< last committed (or primed) push-mode price

  // Ordered by subscription id so observer dispatch order is deterministic
  // (the provider's revocation logic subscribes first and must run first).
  // A subscription is either an interface pointer (hot path — provider,
  // watcher) or a type-erased function (tests, probes); exactly one is set.
  struct Subscription {
    PriceListener* listener = nullptr;
    PriceObserver fn;
  };
  std::map<SubscriptionId, Subscription> observers_;
  // Reused id snapshot for dispatch: observers may (un)subscribe reentrantly,
  // so each price step walks a stable list of ids — not live map iterators —
  // and re-looks each id up before calling. Snapshotting ids instead of the
  // std::function objects themselves keeps a price step allocation-free once
  // the buffer has grown to the steady-state observer count.
  std::vector<SubscriptionId> dispatch_ids_;
  SubscriptionId next_subscription_ = 1;
  bool started_ = false;
};

}  // namespace spothost::cloud
