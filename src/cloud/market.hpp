// Market identity and the price feed for one (region, size) spot market.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cloud/instance_types.hpp"
#include "simcore/simulation.hpp"
#include "trace/price_trace.hpp"

namespace spothost::cloud {

/// A spot market is identified by (region, instance size) — "each server
/// configuration has its own spot market" (Sec. 2.1).
struct MarketId {
  std::string region;
  InstanceSize size = InstanceSize::kSmall;

  bool operator==(const MarketId&) const = default;
  [[nodiscard]] std::string str() const {
    return region + "/" + std::string(to_string(size));
  }
};

struct MarketIdHash {
  std::size_t operator()(const MarketId& m) const noexcept {
    return std::hash<std::string>{}(m.region) * 31u +
           static_cast<std::size_t>(m.size);
  }
};

/// One market: its price trace replayed as simulation events, with observer
/// callbacks on every price change. The CloudProvider owns SpotMarkets and
/// layers instance/revocation logic on top.
class SpotMarket {
 public:
  using PriceObserver = std::function<void(const SpotMarket&, double new_price)>;
  using SubscriptionId = std::uint64_t;

  SpotMarket(sim::Simulation& simulation, MarketId id, trace::PriceTrace price_trace,
             double on_demand_price_per_hour);

  [[nodiscard]] const MarketId& id() const noexcept { return id_; }
  [[nodiscard]] const trace::PriceTrace& price_trace() const noexcept { return trace_; }
  [[nodiscard]] double on_demand_price() const noexcept { return on_demand_price_; }

  /// Current spot price (at simulation now()).
  [[nodiscard]] double price() const;

  /// Registers a price-change observer; fires on every change event.
  SubscriptionId subscribe(PriceObserver observer);
  void unsubscribe(SubscriptionId id);
  /// Live observers (the provider's own revocation logic counts as one).
  [[nodiscard]] std::size_t observer_count() const noexcept {
    return observers_.size();
  }

  /// Begins replaying price-change events into the simulation. Call once.
  void start();

 private:
  void schedule_next(sim::SimTime after_time);

  sim::Simulation& simulation_;
  MarketId id_;
  trace::PriceTrace trace_;
  // This market's read position in its trace. A SpotMarket lives inside one
  // single-threaded Simulation and its queries move forward with sim time,
  // so one per-instance cursor makes price()/schedule_next amortized O(1);
  // mutable because price() is logically const (the trace itself is never
  // mutated — cursor state is the reader's, see trace/price_trace.hpp).
  mutable trace::PriceCursor trace_cursor_;
  double on_demand_price_;
  void dispatch(double new_price);

  // Ordered by subscription id so observer dispatch order is deterministic
  // (the provider's revocation logic subscribes first and must run first).
  std::map<SubscriptionId, PriceObserver> observers_;
  // Reused id snapshot for dispatch: observers may (un)subscribe reentrantly,
  // so each price step walks a stable list of ids — not live map iterators —
  // and re-looks each id up before calling. Snapshotting ids instead of the
  // std::function objects themselves keeps a price step allocation-free once
  // the buffer has grown to the steady-state observer count.
  std::vector<SubscriptionId> dispatch_ids_;
  SubscriptionId next_subscription_ = 1;
  bool started_ = false;
};

}  // namespace spothost::cloud
