#include "cloud/provider.hpp"

#include <algorithm>
#include <stdexcept>

#include "faults/injector.hpp"
#include "obs/sink.hpp"
#include "simcore/logging.hpp"

namespace spothost::cloud {

namespace {

obs::TraceEvent provider_event(obs::EventKind kind, sim::SimTime t,
                               const MarketId& market) {
  obs::TraceEvent e;
  e.t = t;
  e.kind = kind;
  e.market = market.str();
  return e;
}

}  // namespace

CloudProvider::CloudProvider(sim::Clock& clock,
                             const sim::RngFactory& rng_factory,
                             sim::SimTime grace_period)
    : clock_(clock), rng_factory_(rng_factory), grace_(grace_period) {
  if (grace_ < 0) throw std::invalid_argument("CloudProvider: negative grace period");
}

void CloudProvider::add_market(MarketId id, trace::PriceTrace price_trace,
                               double od_price) {
  if (started_) throw std::logic_error("CloudProvider: add_market after start");
  if (markets_.contains(id)) {
    throw std::invalid_argument("CloudProvider: duplicate market " + id.str());
  }
  auto market_ptr = std::make_unique<SpotMarket>(clock_, id,
                                                 std::move(price_trace), od_price);
  adopt_market(std::move(id), std::move(market_ptr));
}

void CloudProvider::add_live_market(MarketId id, double od_price) {
  if (started_) throw std::logic_error("CloudProvider: add_live_market after start");
  if (markets_.contains(id)) {
    throw std::invalid_argument("CloudProvider: duplicate market " + id.str());
  }
  auto market_ptr = std::make_unique<SpotMarket>(clock_, id, od_price);
  adopt_market(std::move(id), std::move(market_ptr));
}

void CloudProvider::adopt_market(MarketId id, std::unique_ptr<SpotMarket> market_ptr) {
  market_ptr->subscribe(static_cast<SpotMarket::PriceListener*>(this));
  markets_.emplace(id, std::move(market_ptr));
  market_order_.push_back(std::move(id));
}

void CloudProvider::set_allocation_latency(const std::string& region,
                                           AllocationLatency latency) {
  latency_by_region_[region] = latency;
}

AllocationLatency CloudProvider::allocation_latency(const std::string& region) const {
  const auto it = latency_by_region_.find(region);
  return it != latency_by_region_.end() ? it->second : AllocationLatency{};
}

void CloudProvider::start() {
  if (started_) throw std::logic_error("CloudProvider::start called twice");
  started_ = true;
  for (const auto& id : market_order_) {
    markets_.at(id)->start();
  }
}

SpotMarket& CloudProvider::market(const MarketId& id) {
  const auto it = markets_.find(id);
  if (it == markets_.end()) {
    throw std::out_of_range("CloudProvider: unknown market " + id.str());
  }
  return *it->second;
}

const SpotMarket& CloudProvider::market(const MarketId& id) const {
  const auto it = markets_.find(id);
  if (it == markets_.end()) {
    throw std::out_of_range("CloudProvider: unknown market " + id.str());
  }
  return *it->second;
}

bool CloudProvider::has_market(const MarketId& id) const {
  return markets_.contains(id);
}

std::vector<MarketId> CloudProvider::all_markets() const {
  return market_order_;
}

std::vector<MarketId> CloudProvider::markets_in_region(const std::string& region) const {
  std::vector<MarketId> out;
  for (const auto& id : market_order_) {
    if (id.region == region) out.push_back(id);
  }
  return out;
}

std::vector<std::string> CloudProvider::regions() const {
  std::vector<std::string> out;
  for (const auto& id : market_order_) {
    if (std::find(out.begin(), out.end(), id.region) == out.end()) {
      out.push_back(id.region);
    }
  }
  return out;
}

InstanceId CloudProvider::request_on_demand(const MarketId& id, ReadyCallback on_ready,
                                            FailCallback on_fail) {
  (void)market(id);  // validate
  const InstanceId iid = next_instance_++;
  if (auto* tracer = clock_.tracer(); tracer && tracer->enabled()) {
    auto e = provider_event(obs::EventKind::kBidPlaced, clock_.now(), id);
    e.code = obs::code::kOnDemand;
    e.instance = iid;
    e.value = od_price(id);
    tracer->emit(e);
  }
  Instance inst;
  inst.id = iid;
  inst.market = id;
  inst.mode = BillingMode::kOnDemand;
  inst.requested_at = clock_.now();
  instances_.emplace(iid, inst);

  const AllocationLatency lat = allocation_latency(id.region);
  auto& rng = latency_rng_[id.region];
  if (!rng) {
    rng = std::make_unique<sim::RngStream>(
        rng_factory_.stream("alloc-latency/" + id.region));
  }
  const double delay_s = rng->lognormal_mean_cv(lat.on_demand_mean_s, lat.on_demand_cv);

  Pending pending;
  pending.on_ready = std::move(on_ready);
  pending.on_fail = std::move(on_fail);
  pending.event = clock_.after(sim::from_seconds(delay_s),
                                    [this, iid] { complete_grant(iid); });
  pending_.emplace(iid, std::move(pending));
  return iid;
}

InstanceId CloudProvider::request_spot(const MarketId& id, double bid,
                                       ReadyCallback on_ready, FailCallback on_fail) {
  if (bid <= 0) throw std::invalid_argument("request_spot: bid must be > 0");
  (void)market(id);
  const InstanceId iid = next_instance_++;
  Instance inst;
  inst.id = iid;
  inst.market = id;
  inst.mode = BillingMode::kSpot;
  inst.bid = bid;
  inst.requested_at = clock_.now();
  instances_.emplace(iid, inst);
  if (auto* tracer = clock_.tracer(); tracer && tracer->enabled()) {
    auto e = provider_event(obs::EventKind::kBidPlaced, clock_.now(), id);
    e.code = obs::code::kSpot;
    e.instance = iid;
    e.value = bid;
    e.aux = price(id);
    tracer->emit(e);
  }

  const AllocationLatency lat = allocation_latency(id.region);
  auto& rng = latency_rng_[id.region];
  if (!rng) {
    rng = std::make_unique<sim::RngStream>(
        rng_factory_.stream("alloc-latency/" + id.region));
  }
  const double delay_s = rng->lognormal_mean_cv(lat.spot_mean_s, lat.spot_cv);

  Pending pending;
  pending.on_ready = std::move(on_ready);
  pending.on_fail = std::move(on_fail);
  pending.event = clock_.after(sim::from_seconds(delay_s),
                                    [this, iid] { complete_grant(iid); });
  pending_.emplace(iid, std::move(pending));
  return iid;
}

void CloudProvider::complete_grant(InstanceId iid) {
  auto pit = pending_.find(iid);
  if (pit == pending_.end()) return;  // cancelled
  Instance& inst = instance_mut(iid);
  auto* injector = clock_.fault_injector();

  // Injected allocation timeout: the grant takes alloc_timeout_extra_s
  // longer (once per request); price and capacity are re-checked at the new
  // completion time, so a delayed spot grant can still be price-rejected.
  if (injector != nullptr && !pit->second.delayed &&
      injector->should_inject(faults::FaultKind::kAllocTimeout,
                              inst.market.str(), iid)) {
    pit->second.delayed = true;
    pit->second.event =
        clock_.after(sim::from_seconds(injector->plan().alloc_timeout_extra_s),
                          [this, iid] { complete_grant(iid); });
    return;
  }

  Pending p = std::move(pit->second);
  pending_.erase(pit);

  // Injected capacity error: the provider has no server to hand out. Only
  // requests that supplied a failure path are eligible — an unobservable
  // failure would silently strand the requester.
  if (p.on_fail && injector != nullptr &&
      injector->should_inject(faults::FaultKind::kAllocInsufficientCapacity,
                              inst.market.str(), iid)) {
    inst.state = InstanceState::kTerminated;
    SPOTHOST_LOG(sim::LogLevel::kDebug, clock_.now(),
                 "request " << iid << " failed: insufficient capacity (injected)");
    p.on_fail(AllocFailure::kInsufficientCapacity);
    return;
  }

  if (inst.mode == BillingMode::kSpot) {
    const double current = price(inst.market);
    if (current > inst.bid) {
      inst.state = InstanceState::kTerminated;
      SPOTHOST_LOG(sim::LogLevel::kDebug, clock_.now(),
                   "spot request " << iid << " rejected: price " << current
                                   << " > bid " << inst.bid);
      if (p.on_fail) p.on_fail(AllocFailure::kPriceAboveBid);
      return;
    }
  }
  inst.state = InstanceState::kRunning;
  inst.launch = clock_.now();
  if (inst.mode == BillingMode::kSpot) {
    running_spot_[inst.market].push_back(iid);
  }
  if (auto* tracer = clock_.tracer(); tracer && tracer->enabled()) {
    auto e = provider_event(obs::EventKind::kAcquisition, clock_.now(),
                            inst.market);
    e.instance = iid;
    if (inst.mode == BillingMode::kSpot) {
      e.code = obs::code::kSpot;
      e.value = price(inst.market);
      e.aux = inst.bid;
    } else {
      e.code = obs::code::kOnDemand;
      e.value = od_price(inst.market);
    }
    tracer->emit(e);
  }
  if (p.on_ready) p.on_ready(iid);
}

void CloudProvider::cancel_request(InstanceId id) {
  const auto pit = pending_.find(id);
  if (pit == pending_.end()) return;
  pit->second.event.cancel();
  pending_.erase(pit);
  instance_mut(id).state = InstanceState::kTerminated;
}

void CloudProvider::set_instance_owner(InstanceId id, std::uint64_t owner) {
  instance_mut(id).owner = owner;
}

void CloudProvider::set_revocation_handler(InstanceId id, RevocationHandler handler) {
  const Instance& inst = instance(id);
  if (inst.mode != BillingMode::kSpot) {
    throw std::logic_error("set_revocation_handler: not a spot instance");
  }
  revocation_handlers_[id] = std::move(handler);
}

void CloudProvider::terminate(InstanceId id) {
  Instance& inst = instance_mut(id);
  if (inst.state == InstanceState::kPending) {
    cancel_request(id);
    return;
  }
  if (inst.state == InstanceState::kTerminated) return;
  complete_lease(inst, TerminationCause::kCustomer, clock_.now());
}

const Instance& CloudProvider::instance(InstanceId id) const {
  const auto it = instances_.find(id);
  if (it == instances_.end()) {
    throw std::out_of_range("CloudProvider: unknown instance");
  }
  return it->second;
}

Instance& CloudProvider::instance_mut(InstanceId id) {
  const auto it = instances_.find(id);
  if (it == instances_.end()) {
    throw std::out_of_range("CloudProvider: unknown instance");
  }
  return it->second;
}

void CloudProvider::on_price_change(const MarketId& id, double new_price) {
  if (auto* tracer = clock_.tracer(); tracer && tracer->enabled()) {
    auto e = provider_event(obs::EventKind::kPriceChange, clock_.now(), id);
    e.value = new_price;
    tracer->emit(e);
  }
  // Walk this market's running spot index; warn those whose bid is now
  // exceeded. One pass over the affected instances — a price step never
  // scales with the fleet. Snapshot the ids: handlers may mutate state.
  std::vector<InstanceId> to_warn;
  if (const auto rit = running_spot_.find(id); rit != running_spot_.end()) {
    for (const InstanceId iid : rit->second) {
      if (new_price > instances_.find(iid)->second.bid) to_warn.push_back(iid);
    }
  }
  std::sort(to_warn.begin(), to_warn.end());  // deterministic order
  for (const InstanceId iid : to_warn) {
    Instance& inst = instance_mut(iid);
    drop_running_spot(inst);
    inst.state = InstanceState::kWarned;
    inst.termination_time = clock_.now() + grace_;
    SPOTHOST_LOG(sim::LogLevel::kDebug, clock_.now(),
                 "revocation warning for " << iid << " in " << id.str()
                                           << ", termination at "
                                           << sim::format_time(inst.termination_time));

    // Injected warning-delivery faults. A dropped warning reaches the
    // customer only at termination time (zero effective grace); a delayed
    // one arrives warning_delay_s late, capped at t_term. The delivery
    // event is scheduled BEFORE the termination event so that, at equal
    // timestamps, FIFO dispatch hands the customer the warning before the
    // provider pulls the server. Instances without a registered handler are
    // never faulted — nobody would observe the difference.
    const auto hit = revocation_handlers_.find(iid);
    RevocationHandler handler =
        (hit != revocation_handlers_.end()) ? hit->second : nullptr;
    sim::SimTime deliver_at = clock_.now();
    if (handler) {
      if (auto* injector = clock_.fault_injector()) {
        if (injector->should_inject(faults::FaultKind::kWarningDropped,
                                    id.str(), iid)) {
          deliver_at = inst.termination_time;
        } else if (injector->should_inject(faults::FaultKind::kWarningDelayed,
                                           id.str(), iid)) {
          deliver_at = std::min(
              clock_.now() +
                  sim::from_seconds(injector->plan().warning_delay_s),
              inst.termination_time);
        }
      }
      if (deliver_at > clock_.now()) {
        clock_.at(deliver_at,
                       [handler, iid, t_term = inst.termination_time] {
                         handler(iid, t_term);
                       });
      }
    }

    clock_.at(inst.termination_time, [this, iid] {
      Instance& victim = instance_mut(iid);
      if (victim.state != InstanceState::kWarned) return;  // customer beat us
      complete_lease(victim, TerminationCause::kProviderRevoked, clock_.now());
    });
    if (auto* tracer = clock_.tracer(); tracer && tracer->enabled()) {
      auto e = provider_event(obs::EventKind::kRevocationWarning,
                              clock_.now(), id);
      e.instance = iid;
      e.value = new_price;
      e.aux = sim::to_seconds(inst.termination_time);
      tracer->emit(e);
    }
    if (handler && deliver_at == clock_.now()) {
      handler(iid, inst.termination_time);
    }
  }
}

void CloudProvider::drop_running_spot(const Instance& inst) {
  const auto rit = running_spot_.find(inst.market);
  if (rit == running_spot_.end()) return;
  auto& ids = rit->second;
  const auto it = std::find(ids.begin(), ids.end(), inst.id);
  if (it != ids.end()) {
    *it = ids.back();
    ids.pop_back();
  }
}

void CloudProvider::complete_lease(Instance& inst, TerminationCause cause,
                                   sim::SimTime end) {
  if (inst.mode == BillingMode::kSpot && inst.state == InstanceState::kRunning) {
    drop_running_spot(inst);
  }
  BillingRecord record;
  record.instance_id = inst.id;
  record.market = inst.market;
  record.mode = inst.mode;
  record.launch = inst.launch;
  record.end = end;
  record.cause = cause;
  record.owner = inst.owner;
  if (inst.mode == BillingMode::kOnDemand) {
    record.cost = on_demand_cost(od_price(inst.market), inst.launch, end);
  } else {
    record.cost =
        spot_cost(market(inst.market).billable_trace(end), inst.launch, end, cause);
  }
  inst.state = InstanceState::kTerminated;
  revocation_handlers_.erase(inst.id);
  ledger_.add(std::move(record));
}

void CloudProvider::finalize(sim::SimTime at) {
  // Cancel outstanding requests, then bill running instances.
  std::vector<InstanceId> pending_ids;
  pending_ids.reserve(pending_.size());
  for (const auto& [iid, p] : pending_) {
    (void)p;
    pending_ids.push_back(iid);
  }
  std::sort(pending_ids.begin(), pending_ids.end());
  for (const InstanceId iid : pending_ids) cancel_request(iid);

  std::vector<InstanceId> running;
  for (const auto& [iid, inst] : instances_) {
    if (inst.state == InstanceState::kRunning || inst.state == InstanceState::kWarned) {
      running.push_back(iid);
    }
  }
  std::sort(running.begin(), running.end());
  for (const InstanceId iid : running) {
    complete_lease(instance_mut(iid), TerminationCause::kCustomer, at);
  }
}

}  // namespace spothost::cloud
