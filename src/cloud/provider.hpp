// The infrastructure cloud: markets, instance allocation, spot revocation
// with the two-minute grace warning, and billing.
//
// Semantics reproduced from Sec. 2.1:
//  * a spot request names a bid; it is granted only if the price at grant
//    time is at or below the bid (allocation itself takes minutes — Table 1);
//  * when the spot price rises above the bid, the provider issues a warning
//    and forcibly terminates the instance `grace` later (default 120 s);
//  * billing per cloud/billing.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/billing.hpp"
#include "cloud/market.hpp"
#include "simcore/clock.hpp"
#include "simcore/rng.hpp"

namespace spothost::cloud {

using InstanceId = std::uint64_t;
inline constexpr InstanceId kInvalidInstance = 0;

enum class InstanceState { kPending, kRunning, kWarned, kTerminated };

/// Why a server request failed at grant time.
enum class AllocFailure : std::uint8_t {
  kPriceAboveBid,        ///< spot price exceeded the bid when allocation completed
  kInsufficientCapacity, ///< injected capacity error (faults::FaultInjector)
};

/// Mean/CV of allocation latency per region, calibrated to Table 1.
struct AllocationLatency {
  double on_demand_mean_s = 94.85;
  double on_demand_cv = 0.25;
  double spot_mean_s = 281.47;
  double spot_cv = 0.30;
};

struct Instance {
  InstanceId id = kInvalidInstance;
  MarketId market;
  BillingMode mode = BillingMode::kOnDemand;
  double bid = 0.0;  ///< spot only
  InstanceState state = InstanceState::kPending;
  sim::SimTime requested_at = 0;
  sim::SimTime launch = 0;            ///< valid once running
  sim::SimTime termination_time = 0;  ///< valid once warned
  std::uint64_t owner = kNoOwner;     ///< see BillingRecord::owner
};

class CloudProvider : private SpotMarket::PriceListener {
 public:
  using ReadyCallback = std::function<void(InstanceId)>;
  using FailCallback = std::function<void(AllocFailure)>;
  /// Revocation warning: fired when the price crosses the bid; the instance
  /// is forcibly terminated at `termination_time` (= warning time + grace).
  using RevocationHandler = std::function<void(InstanceId, sim::SimTime termination_time)>;

  CloudProvider(sim::Clock& clock, const sim::RngFactory& rng_factory,
                sim::SimTime grace_period = 120 * sim::kSecond);

  /// Registers a trace-fed market. Must be called before start().
  void add_market(MarketId id, trace::PriceTrace price_trace, double od_price);

  /// Registers a push-fed (live) market: no trace — a live::FeedDriver
  /// primes and steps its price instead. Must be called before start();
  /// start() skips push-fed markets. Mixing trace-fed and push-fed markets
  /// in one provider is allowed.
  void add_live_market(MarketId id, double od_price);

  /// Overrides a region's allocation latency profile (defaults: Table 1).
  void set_allocation_latency(const std::string& region, AllocationLatency latency);
  [[nodiscard]] AllocationLatency allocation_latency(const std::string& region) const;

  /// Begins replaying all trace-fed market price feeds (push-fed markets
  /// are driven by their feed). Call once, before running.
  void start();

  [[nodiscard]] SpotMarket& market(const MarketId& id);
  [[nodiscard]] const SpotMarket& market(const MarketId& id) const;
  [[nodiscard]] bool has_market(const MarketId& id) const;
  [[nodiscard]] std::vector<MarketId> all_markets() const;
  [[nodiscard]] std::vector<MarketId> markets_in_region(const std::string& region) const;
  [[nodiscard]] std::vector<std::string> regions() const;

  [[nodiscard]] double price(const MarketId& id) const { return market(id).price(); }
  [[nodiscard]] double od_price(const MarketId& id) const {
    return market(id).on_demand_price();
  }

  /// Requests an on-demand server; `on_ready` fires after allocation latency.
  /// `on_fail` (optional) receives injected capacity errors; requests without
  /// one are never capacity-faulted (the failure would be unobservable).
  InstanceId request_on_demand(const MarketId& id, ReadyCallback on_ready,
                               FailCallback on_fail = {});

  /// Requests a spot server at `bid`; `on_fail` fires with the reason if the
  /// price exceeds the bid when allocation completes, or when the fault
  /// injector raises an insufficient-capacity error at grant time.
  InstanceId request_spot(const MarketId& id, double bid, ReadyCallback on_ready,
                          FailCallback on_fail);

  /// Cancels a still-pending request. No-op if it already completed.
  void cancel_request(InstanceId id);

  /// Tags `id` with an opaque owner for cost attribution; the tag is copied
  /// into the BillingRecord when the lease completes. Call right after the
  /// request (requests return the id synchronously), or any time before
  /// termination. Re-tagging overwrites.
  void set_instance_owner(InstanceId id, std::uint64_t owner);

  /// Installs the revocation-warning handler for a running spot instance.
  void set_revocation_handler(InstanceId id, RevocationHandler handler);

  /// Customer-initiated termination (bills the final partial hour).
  void terminate(InstanceId id);

  [[nodiscard]] const Instance& instance(InstanceId id) const;
  [[nodiscard]] sim::SimTime grace_period() const noexcept { return grace_; }

  /// Bills all still-running/pending instances as customer-terminated at
  /// `at`. Call once when the experiment horizon is reached.
  void finalize(sim::SimTime at);

  [[nodiscard]] const BillingLedger& ledger() const noexcept { return ledger_; }

 private:
  struct Pending {
    ReadyCallback on_ready;
    FailCallback on_fail;
    sim::EventHandle event;
    bool delayed = false;  ///< an injected allocation timeout already fired
  };

  void adopt_market(MarketId id, std::unique_ptr<SpotMarket> market_ptr);
  /// SpotMarket::PriceListener — one virtual hop per price step, replacing a
  /// per-market std::function that captured the MarketId by value.
  void on_price(const SpotMarket& market, double new_price) override {
    on_price_change(market.id(), new_price);
  }
  void on_price_change(const MarketId& id, double new_price);
  void complete_grant(InstanceId id);
  void complete_lease(Instance& inst, TerminationCause cause, sim::SimTime end);
  Instance& instance_mut(InstanceId id);
  /// Removes a spot instance leaving the kRunning state from its market's
  /// running-spot index.
  void drop_running_spot(const Instance& inst);

  sim::Clock& clock_;
  const sim::RngFactory& rng_factory_;
  sim::SimTime grace_;
  bool started_ = false;

  std::unordered_map<MarketId, std::unique_ptr<SpotMarket>, MarketIdHash> markets_;
  std::vector<MarketId> market_order_;  // deterministic iteration order
  std::unordered_map<std::string, AllocationLatency> latency_by_region_;
  mutable std::unordered_map<std::string, std::unique_ptr<sim::RngStream>> latency_rng_;

  std::unordered_map<InstanceId, Instance> instances_;
  /// Running spot instances per market, so a price step touches only the
  /// instances it can actually revoke — never the whole fleet. Unordered
  /// within a market; revocation order is fixed by sorting the affected ids.
  std::unordered_map<MarketId, std::vector<InstanceId>, MarketIdHash> running_spot_;
  std::unordered_map<InstanceId, Pending> pending_;
  std::unordered_map<InstanceId, RevocationHandler> revocation_handlers_;
  InstanceId next_instance_ = 1;
  BillingLedger ledger_;
};

}  // namespace spothost::cloud
