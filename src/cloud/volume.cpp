#include "cloud/volume.hpp"

#include <stdexcept>

namespace spothost::cloud {

VolumeManager::VolumeManager(sim::Clock& clock, CloudProvider& provider,
                             sim::SimTime attach_latency)
    : clock_(clock), provider_(provider), attach_latency_(attach_latency) {
  if (attach_latency_ < 0) {
    throw std::invalid_argument("VolumeManager: negative attach latency");
  }
}

VolumeId VolumeManager::create(const std::string& region, double size_gb) {
  if (size_gb <= 0) throw std::invalid_argument("VolumeManager: size_gb must be > 0");
  const VolumeId id = next_id_++;
  volumes_.emplace(id, Volume{id, region, size_gb, std::nullopt});
  return id;
}

void VolumeManager::detach(VolumeId id) {
  volume_mut(id).attached_to.reset();
}

void VolumeManager::attach(VolumeId id, InstanceId instance_id,
                           AttachCallback on_attached) {
  Volume& vol = volume_mut(id);
  if (vol.attached_to.has_value()) {
    throw std::logic_error("VolumeManager: volume already attached");
  }
  const Instance& inst = provider_.instance(instance_id);
  if (inst.state != InstanceState::kRunning && inst.state != InstanceState::kWarned) {
    throw std::logic_error("VolumeManager: instance not running");
  }
  if (inst.market.region != vol.region) {
    throw std::logic_error("VolumeManager: cross-region attach of volume in " +
                           vol.region + " to instance in " + inst.market.region);
  }
  vol.attached_to = instance_id;
  clock_.after(attach_latency_, [this, id, cb = std::move(on_attached)] {
    // The volume may have been detached again while the attach was in
    // flight; report only if still attached.
    const auto it = volumes_.find(id);
    if (it != volumes_.end() && it->second.attached_to.has_value() && cb) cb(id);
  });
}

void VolumeManager::rehome(VolumeId id, const std::string& new_region) {
  Volume& vol = volume_mut(id);
  if (vol.attached_to.has_value()) {
    throw std::logic_error("VolumeManager: cannot rehome an attached volume");
  }
  vol.region = new_region;
}

const Volume& VolumeManager::volume(VolumeId id) const {
  const auto it = volumes_.find(id);
  if (it == volumes_.end()) throw std::out_of_range("VolumeManager: unknown volume");
  return it->second;
}

Volume& VolumeManager::volume_mut(VolumeId id) {
  const auto it = volumes_.find(id);
  if (it == volumes_.end()) throw std::out_of_range("VolumeManager: unknown volume");
  return it->second;
}

}  // namespace spothost::cloud
