// Network-attached storage volumes (EBS in the paper).
//
// The paper's availability story depends on disk state living on network
// volumes: when a spot server is revoked, the volume survives and is simply
// re-attached to the replacement server (Sec. 3, naive approach discussion).
// Checkpointed memory state is written to such a volume too, which is why a
// forced migration can restore it after the source is gone.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "cloud/provider.hpp"
#include "simcore/clock.hpp"

namespace spothost::cloud {

using VolumeId = std::uint64_t;
inline constexpr VolumeId kInvalidVolume = 0;

struct Volume {
  VolumeId id = kInvalidVolume;
  std::string region;
  double size_gb = 0.0;
  /// Instance the volume is attached to, if any.
  std::optional<InstanceId> attached_to;
};

/// Manages volume lifecycle. Attach takes a small latency (seconds); detach
/// is immediate. A volume is regional: attaching to an instance in another
/// region requires a cross-region copy first (NetworkModel owns the cost;
/// VolumeManager enforces the region constraint).
class VolumeManager {
 public:
  using AttachCallback = std::function<void(VolumeId)>;

  VolumeManager(sim::Clock& clock, CloudProvider& provider,
                sim::SimTime attach_latency = 4 * sim::kSecond);

  VolumeId create(const std::string& region, double size_gb);

  /// Detaches from the current instance, if attached.
  void detach(VolumeId id);

  /// Attaches to a running instance in the same region; `on_attached` fires
  /// after the attach latency. Throws on region mismatch or busy volume.
  void attach(VolumeId id, InstanceId instance, AttachCallback on_attached);

  /// Re-homes a volume to a new region (models the WAN disk copy having been
  /// performed by the migration machinery; the copy time is accounted there).
  void rehome(VolumeId id, const std::string& new_region);

  [[nodiscard]] const Volume& volume(VolumeId id) const;
  [[nodiscard]] std::size_t count() const noexcept { return volumes_.size(); }

 private:
  Volume& volume_mut(VolumeId id);

  sim::Clock& clock_;
  CloudProvider& provider_;
  sim::SimTime attach_latency_;
  std::unordered_map<VolumeId, Volume> volumes_;
  VolumeId next_id_ = 1;
};

}  // namespace spothost::cloud
