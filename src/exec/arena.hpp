// Fixed-capacity contiguous object arena.
//
// A fleet of N services used to be N separate unique_ptr heap nodes — fine
// at N=4, a cache-miss parade at N=100k. FixedArena places objects back to
// back in one allocation: construction is emplace_back into the next slot,
// lookup is pointer arithmetic, and iteration walks memory linearly. Unlike
// std::vector it never relocates (capacity is fixed at construction), so it
// holds non-movable types — CloudScheduler, whose address is captured by
// watcher listeners and engine callbacks the moment it is constructed — and
// references returned by emplace_back()/operator[] stay valid for the
// arena's lifetime. Elements are destroyed in reverse construction order,
// matching the teardown order the unique_ptr members had.
#pragma once

#include <cstddef>
#include <new>
#include <stdexcept>
#include <utility>

namespace spothost::exec {

template <typename T>
class FixedArena {
 public:
  explicit FixedArena(std::size_t capacity)
      : storage_(capacity == 0
                     ? nullptr
                     : static_cast<T*>(::operator new(
                           capacity * sizeof(T), std::align_val_t{alignof(T)}))),
        capacity_(capacity) {}

  FixedArena(const FixedArena&) = delete;
  FixedArena& operator=(const FixedArena&) = delete;

  ~FixedArena() {
    while (size_ > 0) storage_[--size_].~T();
    ::operator delete(storage_, std::align_val_t{alignof(T)});
  }

  /// Constructs the next element in place and returns it. Throws
  /// std::length_error when the arena is full.
  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) {
      throw std::length_error("FixedArena: capacity exceeded");
    }
    T* obj = ::new (static_cast<void*>(storage_ + size_))
        T(std::forward<Args>(args)...);
    ++size_;
    return *obj;
  }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return storage_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return storage_[i];
  }
  [[nodiscard]] T& at(std::size_t i) {
    if (i >= size_) throw std::out_of_range("FixedArena: index out of range");
    return storage_[i];
  }
  [[nodiscard]] const T& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("FixedArena: index out of range");
    return storage_[i];
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] T* begin() noexcept { return storage_; }
  [[nodiscard]] T* end() noexcept { return storage_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return storage_; }
  [[nodiscard]] const T* end() const noexcept { return storage_ + size_; }

 private:
  T* storage_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
};

}  // namespace spothost::exec
