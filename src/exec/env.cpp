#include "exec/env.hpp"

#include <cerrno>
#include <cstdlib>
#include <iostream>

namespace spothost::exec {

namespace {

void warn(const char* name, const char* value, long long fallback) {
  std::cerr << "warning: " << name << "=\"" << value
            << "\" is not a valid integer for this knob; using " << fallback
            << "\n";
}

}  // namespace

long long env_int(const char* name, long long fallback, long long lo,
                  long long hi) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const long long n = std::strtoll(v, &end, 10);
  if (end != v && *end == '\0' && errno == 0 && n >= lo && n <= hi) return n;
  warn(name, v, fallback);
  return fallback;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const unsigned long long n = std::strtoull(v, &end, 10);
  // strtoull silently wraps "-1"; reject any minus sign outright.
  bool negative = false;
  for (const char* p = v; *p != '\0'; ++p) {
    if (*p == '-') negative = true;
  }
  if (end != v && *end == '\0' && errno == 0 && !negative) {
    return static_cast<std::uint64_t>(n);
  }
  warn(name, v, static_cast<long long>(fallback));
  return fallback;
}

}  // namespace spothost::exec
