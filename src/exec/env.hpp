// Validated environment-variable parsing for the runtime knobs
// (SPOTHOST_RUNS, SPOTHOST_SEED, SPOTHOST_THREADS, ...).
//
// All knobs share one policy: an unset variable silently yields the
// fallback; a set-but-garbage value (trailing junk, sign errors, out of
// range — everything strtol would half-accept) warns once on stderr and
// yields the fallback, so a typo degrades a run instead of silently
// changing its size.
#pragma once

#include <cstdint>

namespace spothost::exec {

/// `name` parsed as a whole decimal integer in [lo, hi]. Unset -> fallback;
/// set but invalid -> warning on stderr + fallback.
long long env_int(const char* name, long long fallback, long long lo,
                  long long hi);

/// `name` parsed as a whole non-negative decimal integer (full uint64
/// range). Unset -> fallback; set but invalid -> warning + fallback.
std::uint64_t env_u64(const char* name, std::uint64_t fallback);

}  // namespace spothost::exec
