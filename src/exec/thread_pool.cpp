#include "exec/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>

#include "exec/env.hpp"

namespace spothost::exec {

namespace {

// Shared state of one run_batch call. Heap-allocated and shared_ptr-held so
// enqueued helper closures stay valid even if (pathologically) the batch
// owner returns first — it cannot, the cv wait sees every task done, but the
// workers' copies of the closure may outlive the wait by a moment.
struct Batch {
  const std::vector<std::function<void()>>* tasks = nullptr;
  std::size_t count = 0;  // cached size — see run_one
  std::atomic<std::size_t> next{0};   // claim cursor
  std::mutex mu;                      // guards done/error below
  std::condition_variable done_cv;
  std::size_t done = 0;
  std::size_t error_index = 0;
  std::exception_ptr error;

  // Claims and runs one unstarted task; false when none remain unclaimed.
  // `tasks` is only dereferenced after winning a claim (i < count): an
  // unclaimed task means done < count, so the batch owner is still inside
  // run_batch and the borrowed vector is alive. A straggling helper that
  // wakes after the owner returned loses the claim and touches only the
  // shared_ptr-held Batch — never the (possibly destroyed) vector.
  bool run_one() {
    const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) return false;
    std::exception_ptr err;
    try {
      (*tasks)[i]();
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu);
    if (err && (!error || i < error_index)) {
      error = err;
      error_index = i;
    }
    if (++done == count) done_cv.notify_all();
    return true;
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception into its future
  }
}

void ThreadPool::run_batch(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {
    tasks.front()();  // nothing to overlap; skip the handshake entirely
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->tasks = &tasks;
  batch->count = tasks.size();
  // One helper per task beyond the first: the caller is guaranteed to run at
  // least one task itself, and helpers that lose the claim race return
  // immediately. Helpers loop so an early-arriving worker drains several
  // tasks instead of one.
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    enqueue([batch] {
      while (batch->run_one()) {
      }
    });
  }
  while (batch->run_one()) {
  }
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done_cv.wait(lock, [&] { return batch->done == tasks.size(); });
  if (batch->error) std::rethrow_exception(batch->error);
}

std::size_t ThreadPool::default_thread_count() {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return static_cast<std::size_t>(
      env_int("SPOTHOST_THREADS", static_cast<long long>(hw), 1, 4096));
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

}  // namespace spothost::exec
