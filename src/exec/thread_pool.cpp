#include "exec/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "exec/env.hpp"

namespace spothost::exec {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception into its future
  }
}

std::size_t ThreadPool::default_thread_count() {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return static_cast<std::size_t>(
      env_int("SPOTHOST_THREADS", static_cast<long long>(hw), 1, 4096));
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

}  // namespace spothost::exec
