// Fixed-size worker pool for the experiment harness.
//
// Simulation runs are CPU-bound and embarrassingly parallel, but a sweep can
// easily queue hundreds of (arm x seed) cells; spawning one OS thread per
// cell (the old std::async fan-out) oversubscribes the machine and makes
// peak thread count proportional to run count. The pool caps worker threads
// at a fixed size — SPOTHOST_THREADS, defaulting to hardware_concurrency —
// and feeds them from one MPMC task queue, so a 5-arm x 50-seed sweep is
// 250 bounded tasks, not a burst of 50+ threads.
//
// Tasks must not block on other tasks of the same pool (a cell is one
// self-contained simulation run); results and exceptions travel through the
// std::future each submit() returns. The one sanctioned exception is
// run_batch(): the caller participates in its own batch, claiming unstarted
// tasks itself, so a batch issued from *inside* a pool task (a sweep cell
// running a sharded simulation) completes even when every worker is busy.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace spothost::exec {

class ThreadPool {
 public:
  /// Spawns exactly `threads` workers (clamped to >= 1) up front; the pool
  /// never grows or shrinks afterwards.
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue — every task already submitted still runs — then
  /// joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues `f` for execution on some worker. The returned future carries
  /// f's result, or rethrows whatever f threw.
  template <typename F>
  [[nodiscard]] auto submit(F f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(f));
    std::future<R> result = task->get_future();
    enqueue([task] { (*task)(); });
    return result;
  }

  /// Runs every task in `tasks` and returns once all have finished. Workers
  /// help with whatever they can pick up, but the *calling thread* claims
  /// unstarted tasks too, so completion never depends on worker
  /// availability: a run_batch issued from inside a pool task (nested
  /// parallelism — e.g. a sweep cell driving a sharded engine's windows)
  /// cannot deadlock, and a pool of 1 degrades to serial execution on the
  /// caller. Tasks run concurrently in unspecified order; if any throw, the
  /// first-by-index exception is rethrown after every task has finished.
  /// Tasks are borrowed (not moved): the vector's callables are intact
  /// afterwards and may be reused for the next batch.
  void run_batch(const std::vector<std::function<void()>>& tasks);

  /// Worker count configured by the environment: SPOTHOST_THREADS if set and
  /// valid, else std::thread::hardware_concurrency() (min 1).
  [[nodiscard]] static std::size_t default_thread_count();

  /// The process-wide pool all parallel experiment execution shares. Sized
  /// by default_thread_count() the first time it is touched (SPOTHOST_THREADS
  /// is read once, at that point).
  [[nodiscard]] static ThreadPool& shared();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace spothost::exec
