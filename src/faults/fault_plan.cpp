#include "faults/fault_plan.hpp"

#include <stdexcept>
#include <string>

namespace spothost::faults {

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kAllocInsufficientCapacity: return "alloc_insufficient_capacity";
    case FaultKind::kAllocTimeout: return "alloc_timeout";
    case FaultKind::kWarningDelayed: return "warning_delayed";
    case FaultKind::kWarningDropped: return "warning_dropped";
    case FaultKind::kLiveCopyAbort: return "live_copy_abort";
    case FaultKind::kCheckpointStall: return "checkpoint_stall";
  }
  return "unknown";
}

FaultPlan& FaultPlan::with_rate(FaultKind kind, double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("FaultPlan: rate for " +
                                std::string(to_string(kind)) +
                                " must be in [0, 1] (got " + std::to_string(p) +
                                ")");
  }
  rate[static_cast<std::size_t>(kind)] = p;
  return *this;
}

FaultPlan& FaultPlan::at_opportunity(FaultKind kind, std::uint64_t n) {
  if (n == 0) {
    throw std::invalid_argument(
        "FaultPlan: opportunity indices are 1-based (got 0 for " +
        std::string(to_string(kind)) + ")");
  }
  scheduled.emplace_back(kind, n);
  return *this;
}

bool FaultPlan::empty() const noexcept {
  for (const double r : rate) {
    if (r > 0.0) return false;
  }
  return scheduled.empty();
}

void FaultPlan::validate() const {
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    if (rate[k] < 0.0 || rate[k] > 1.0) {
      throw std::invalid_argument(
          "FaultPlan: rate for " +
          std::string(to_string(static_cast<FaultKind>(k))) +
          " must be in [0, 1] (got " + std::to_string(rate[k]) + ")");
    }
  }
  for (const auto& [kind, n] : scheduled) {
    (void)kind;
    if (n == 0) {
      throw std::invalid_argument("FaultPlan: opportunity indices are 1-based");
    }
  }
  if (alloc_timeout_extra_s < 0.0) {
    throw std::invalid_argument("FaultPlan: alloc_timeout_extra_s must be >= 0 (got " +
                                std::to_string(alloc_timeout_extra_s) + ")");
  }
  if (warning_delay_s < 0.0) {
    throw std::invalid_argument("FaultPlan: warning_delay_s must be >= 0 (got " +
                                std::to_string(warning_delay_s) + ")");
  }
  if (checkpoint_stall_factor < 1.0) {
    throw std::invalid_argument(
        "FaultPlan: checkpoint_stall_factor must be >= 1 (got " +
        std::to_string(checkpoint_stall_factor) + ")");
  }
}

}  // namespace spothost::faults
