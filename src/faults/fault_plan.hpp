// Deterministic fault-injection plans (spothost::faults).
//
// The market model only produces *price-driven* failures: revocations when
// the spot price crosses the bid. Real clouds also fail in ways no price
// trace captures — capacity errors at allocation time, slow grants, warnings
// that arrive late (or never), migrations that abort mid-flight. A FaultPlan
// describes WHICH of those faults a run should suffer and HOW OFTEN; the
// FaultInjector (injector.hpp) turns the plan into seeded, reproducible
// decisions at each injection point.
//
// Two ways to arm a fault kind, freely combined:
//  * with_rate(kind, p)      — Bernoulli(p) at every opportunity, drawn from
//                              a per-kind named RNG stream (kind independence:
//                              arming one kind never perturbs another);
//  * at_opportunity(kind, n) — the n-th opportunity (1-based) fails
//                              deterministically, for exact replay in tests.
//
// A default-constructed plan is empty: the injector then makes zero RNG
// draws and emits zero events, so fault-free runs stay byte-identical to a
// build without the subsystem (pinned by tests/integration/test_trace_golden).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace spothost::faults {

/// The fault taxonomy. Each kind names one injection point in the stack;
/// DESIGN.md's failure-model section documents where each one fires and how
/// the scheduler recovers.
enum class FaultKind : std::uint8_t {
  kAllocInsufficientCapacity = 0,  ///< request fails at grant time
  kAllocTimeout,                   ///< grant delayed by alloc_timeout_extra_s
  kWarningDelayed,                 ///< revocation warning warning_delay_s late
  kWarningDropped,                 ///< warning only delivered at termination
  kLiveCopyAbort,                  ///< live pre-copy aborts before switchover
  kCheckpointStall,                ///< forced-restore transfer stalls
};

inline constexpr std::size_t kFaultKindCount = 6;

inline constexpr std::array<FaultKind, kFaultKindCount> kAllFaultKinds{
    FaultKind::kAllocInsufficientCapacity, FaultKind::kAllocTimeout,
    FaultKind::kWarningDelayed,            FaultKind::kWarningDropped,
    FaultKind::kLiveCopyAbort,             FaultKind::kCheckpointStall,
};

/// Stable snake_case name (RNG stream suffixes, bench labels, logs).
std::string_view to_string(FaultKind kind) noexcept;

struct FaultPlan {
  /// Per-opportunity injection probability per kind, indexed by FaultKind.
  std::array<double, kFaultKindCount> rate{};

  // --- fault-shape parameters (used only by the matching kind) ----------
  /// kAllocTimeout: extra allocation delay before the grant is re-attempted.
  double alloc_timeout_extra_s = 180.0;
  /// kWarningDelayed: how late the warning handler fires (capped so it never
  /// lands after the forced termination itself).
  double warning_delay_s = 60.0;
  /// kCheckpointStall: multiplier on the restore transfer time (>= 1).
  double checkpoint_stall_factor = 4.0;

  /// Deterministic schedule: (kind, 1-based opportunity index) pairs. The
  /// n-th opportunity of that kind fails regardless of rate — exact replay
  /// for tests and reproducible bug reports.
  std::vector<std::pair<FaultKind, std::uint64_t>> scheduled;

  FaultPlan& with_rate(FaultKind kind, double p);
  FaultPlan& at_opportunity(FaultKind kind, std::uint64_t n);

  [[nodiscard]] double rate_of(FaultKind kind) const noexcept {
    return rate[static_cast<std::size_t>(kind)];
  }

  /// True when no kind is armed: all rates zero and nothing scheduled.
  [[nodiscard]] bool empty() const noexcept;

  /// Throws std::invalid_argument (naming the field) on nonsense values:
  /// rates outside [0, 1], zero opportunity indices, stall factor < 1,
  /// negative delays.
  void validate() const;
};

}  // namespace spothost::faults
