#include "faults/injector.hpp"

#include <algorithm>
#include <string>

#include "obs/event.hpp"
#include "obs/sink.hpp"

namespace spothost::faults {

FaultInjector::FaultInjector(sim::Clock& clock, const sim::RngFactory& rng,
                             FaultPlan plan)
    : clock_(clock), plan_(std::move(plan)) {
  plan_.validate();
  streams_.reserve(kFaultKindCount);
  for (const FaultKind kind : kAllFaultKinds) {
    streams_.push_back(rng.stream("faults/" + std::string(to_string(kind))));
  }
  for (const auto& [kind, n] : plan_.scheduled) {
    scheduled_[static_cast<std::size_t>(kind)].push_back(n);
  }
  for (auto& list : scheduled_) std::sort(list.begin(), list.end());
}

std::uint64_t FaultInjector::injected_total() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t n : injected_) total += n;
  return total;
}

bool FaultInjector::should_inject(FaultKind kind, std::string_view market,
                                  std::uint64_t instance) {
  const auto k = static_cast<std::size_t>(kind);
  const std::uint64_t n = ++opportunities_[k];

  // Draw whenever the rate is armed — even if a scheduled hit would decide
  // anyway — so the kind's stream position depends only on its opportunity
  // count, never on the scheduled set.
  bool hit = false;
  if (plan_.rate[k] > 0.0) hit = streams_[k].chance(plan_.rate[k]);
  if (!hit && std::binary_search(scheduled_[k].begin(), scheduled_[k].end(), n)) {
    hit = true;
  }
  if (!hit) return false;

  ++injected_[k];
  if (auto* tracer = clock_.tracer(); tracer != nullptr && tracer->enabled()) {
    obs::TraceEvent e;
    e.t = clock_.now();
    e.kind = obs::EventKind::kFaultInjected;
    e.code = static_cast<std::uint8_t>(kind);
    e.instance = instance;
    e.value = static_cast<double>(n);  // which opportunity hit
    e.market = std::string(market);
    tracer->emit(e);
  }
  return true;
}

}  // namespace spothost::faults
