// FaultInjector: turns a FaultPlan into seeded, trace-visible injection
// decisions.
//
// The injector is owned by the World and attached to the engine
// (sim::Engine::set_fault_injector) the same way the Tracer is, so every
// component holding a sim::Clock& — the provider, the migration engine —
// reads it from one place without new constructor plumbing. Each injection
// point calls should_inject(kind, ...) at the moment the fault could occur
// (an "opportunity"); the injector counts the opportunity, consults the
// plan, and on a hit emits a kFaultInjected trace event through the
// simulation's tracer so injections are ordinary, inspectable run events.
//
// Determinism contract:
//  * each kind draws from its own named stream ("faults/<kind>"), so arming
//    one kind never perturbs another kind's decisions;
//  * a kind with rate 0 makes NO draws (scheduled hits are index lookups),
//    so an empty plan leaves every other component's RNG sequence — and the
//    golden JSONL trace — byte-identical to a run without the injector.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "faults/fault_plan.hpp"
#include "simcore/rng.hpp"
#include "simcore/clock.hpp"

namespace spothost::faults {

class FaultInjector {
 public:
  /// Validates and captures the plan; derives one RNG stream per armed kind
  /// from `rng` (stream names "faults/<kind>").
  FaultInjector(sim::Clock& clock, const sim::RngFactory& rng,
                FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Counts one opportunity for `kind` and decides whether it faults.
  /// `market`/`instance` only annotate the kFaultInjected trace event.
  bool should_inject(FaultKind kind) { return should_inject(kind, {}, 0); }
  bool should_inject(FaultKind kind, std::string_view market,
                     std::uint64_t instance);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  // --- counters (per kind and total) ------------------------------------
  [[nodiscard]] std::uint64_t opportunities(FaultKind kind) const noexcept {
    return opportunities_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t injected(FaultKind kind) const noexcept {
    return injected_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t injected_total() const noexcept;

 private:
  sim::Clock& clock_;
  FaultPlan plan_;
  std::vector<sim::RngStream> streams_;  ///< one per kind, in enum order
  /// 1-based opportunity indices scheduled to fail, per kind, sorted.
  std::array<std::vector<std::uint64_t>, kFaultKindCount> scheduled_;
  std::array<std::uint64_t, kFaultKindCount> opportunities_{};
  std::array<std::uint64_t, kFaultKindCount> injected_{};
};

}  // namespace spothost::faults
