#include "live/feed_driver.hpp"

#include <stdexcept>

namespace spothost::live {

FeedDriver::FeedDriver(sim::Clock& clock, cloud::CloudProvider& provider,
                       PriceFeed& feed)
    : clock_(clock), provider_(provider), feed_(feed) {}

void FeedDriver::start() {
  if (started_) throw std::logic_error("FeedDriver::start called twice");
  started_ = true;
  feed_.pump();
  // Provider registration order, same as CloudProvider::start() walks its
  // trace-fed markets — this fixes the schedule-seq assignment of the first
  // chain events, which the parity contract depends on.
  for (const cloud::MarketId& id : provider_.all_markets()) {
    if (!provider_.market(id).push_fed()) continue;
    Chain c;
    c.id = id;
    c.key = id.str();
    chains_.push_back(std::move(c));
  }
  for (std::size_t i = 0; i < chains_.size(); ++i) advance(i);
}

void FeedDriver::advance(std::size_t idx) {
  Chain& c = chains_[idx];
  if (c.state == ChainState::kScheduled || c.state == ChainState::kEnded) return;
  cloud::SpotMarket& market = provider_.market(c.id);
  PriceUpdate u;
  for (;;) {
    switch (feed_.next(c.key, u)) {
      case PriceFeed::Status::kEnd:
        c.state = ChainState::kEnded;
        if (!c.primed) {
          throw std::runtime_error("FeedDriver: feed has no price for market " +
                                   c.key);
        }
        return;
      case PriceFeed::Status::kWouldBlock:
        c.state = ChainState::kStalled;
        return;
      case PriceFeed::Status::kReady:
        break;
    }
    if (!c.primed) {
      market.prime(u.price);
      c.primed = true;
      continue;
    }
    if (u.time <= clock_.now()) {
      // Already due (tail mode catching up after a stall): deliver now.
      market.push_price(u.price);
      ++delivered_;
      if (hook_) hook_(u);
      continue;
    }
    market.stage(u.time, u.price);
    c.state = ChainState::kScheduled;
    c.event = clock_.at(u.time, [this, idx, u] { on_fire(idx, u); });
    return;
  }
}

void FeedDriver::on_fire(std::size_t idx, const PriceUpdate& update) {
  Chain& c = chains_[idx];
  c.event.reset();
  c.state = ChainState::kIdle;
  // Commit (observers fire) before pulling/scheduling the next update —
  // mirrors trace mode's "dispatch(price); schedule_next(time);".
  provider_.market(c.id).commit_staged();
  ++delivered_;
  if (hook_) hook_(update);
  advance(idx);
}

std::size_t FeedDriver::pump() {
  const std::size_t ingested = feed_.pump();
  for (std::size_t i = 0; i < chains_.size(); ++i) {
    if (chains_[i].state == ChainState::kStalled) {
      chains_[i].state = ChainState::kIdle;
      advance(i);
    }
  }
  return ingested;
}

bool FeedDriver::done() const {
  for (const Chain& c : chains_) {
    if (c.state != ChainState::kEnded) return false;
  }
  return true;
}

std::size_t FeedDriver::primed_markets() const {
  std::size_t n = 0;
  for (const Chain& c : chains_) n += c.primed ? 1 : 0;
  return n;
}

}  // namespace spothost::live
