// FeedDriver: pulls PriceUpdates from a PriceFeed and steps the provider's
// push-fed SpotMarkets, preserving the simulation's event semantics.
//
// Parity is the whole game here. In trace mode the provider schedules, per
// market in registration order, a chain of clock events — each one commits a
// price change (dispatching observers) and then schedules the next. The
// driver reproduces exactly that shape on the push path:
//
//   * start() primes each market with its first update (no observers fire —
//     trace mode never dispatches the t0 point either) and schedules the
//     second as a clock event, walking markets in provider registration
//     order so the (time, schedule-seq) tie-break matches the simulation.
//   * each chain event commits its staged price (observers fire) and only
//     then pulls/schedules the next update — mirroring SpotMarket's
//     "dispatch, then schedule_next" ordering.
//   * an update already due when ingested (live tailing after a stall) is
//     delivered immediately via push_price.
//
// A chain stalls when the feed would block (tail mode, writer behind) and is
// re-armed by pump(); it ends when the feed reports kEnd for its market.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "cloud/provider.hpp"
#include "live/price_feed.hpp"
#include "simcore/clock.hpp"

namespace spothost::live {

class FeedDriver {
 public:
  /// Observes every delivered (committed) update — the serve loop's latency
  /// probe and log hook. Fires after the market's observers.
  using DeliveryHook = std::function<void(const PriceUpdate&)>;

  FeedDriver(sim::Clock& clock, cloud::CloudProvider& provider, PriceFeed& feed);

  void set_delivery_hook(DeliveryHook hook) { hook_ = std::move(hook); }

  /// Pumps the feed once, then primes every push-fed market and schedules
  /// each one's first price-change event. Call once, after the provider's
  /// markets are registered and before running the engine. Throws if a
  /// push-fed market has no update to prime with (replay feeds always do;
  /// in tail mode, pump until the feed has a first price per market first —
  /// see primed_markets()).
  void start();

  /// Ingests new feed data and re-arms stalled chains. Returns the number
  /// of updates ingested.
  std::size_t pump();

  /// True once every chain has consumed its stream to the end.
  [[nodiscard]] bool done() const;
  /// Number of push-fed markets that have a primed price.
  [[nodiscard]] std::size_t primed_markets() const;
  /// Total updates delivered to markets (priming not counted).
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }

 private:
  enum class ChainState {
    kIdle,       ///< between pulls (transient)
    kScheduled,  ///< next change sits in the clock's queue
    kStalled,    ///< feed would block; pump() re-arms
    kEnded,      ///< feed exhausted for this market
  };

  struct Chain {
    cloud::MarketId id;
    std::string key;  ///< feed key = MarketId::str()
    ChainState state = ChainState::kIdle;
    sim::EventHandle event;
    bool primed = false;
  };

  /// Pulls updates for chain `idx` until one is scheduled in the future,
  /// the feed blocks, or the stream ends.
  void advance(std::size_t idx);
  void on_fire(std::size_t idx, const PriceUpdate& update);

  sim::Clock& clock_;
  cloud::CloudProvider& provider_;
  PriceFeed& feed_;
  DeliveryHook hook_;
  std::vector<Chain> chains_;
  bool started_ = false;
  std::uint64_t delivered_ = 0;
};

}  // namespace spothost::live
