#include "live/hosting_session.hpp"

#include <stdexcept>
#include <unordered_set>

#include "sched/config.hpp"

namespace spothost::live {

HostingSession::HostingSession(sim::Engine& engine, const SessionSpec& spec)
    : engine_(engine), rng_factory_(spec.seed), config_(spec.config) {
  if (spec.markets.empty()) {
    throw std::invalid_argument("HostingSession: no markets");
  }
  // Same wiring order as sched::World: injector (attach-once, empty plan),
  // provider, latencies, markets, provider start.
  faults_ = std::make_unique<faults::FaultInjector>(engine_, rng_factory_,
                                                    faults::FaultPlan{});
  engine_.set_fault_injector(faults_.get());
  provider_ = std::make_unique<cloud::CloudProvider>(engine_, rng_factory_,
                                                     spec.grace_period);
  std::unordered_set<std::string> seen_regions;
  for (const SessionMarket& m : spec.markets) {
    if (seen_regions.insert(m.id.region).second) {
      provider_->set_allocation_latency(m.id.region,
                                        sched::table1_allocation_latency(m.id.region));
    }
  }
  for (const SessionMarket& m : spec.markets) {
    if (m.trace != nullptr) {
      provider_->add_market(m.id, *m.trace, m.on_demand_price);
    } else {
      provider_->add_live_market(m.id, m.on_demand_price);
    }
  }
  provider_->start();
  service_ = std::make_unique<workload::AlwaysOnService>(spec.service_name,
                                                         virt::VmSpec{});
}

void HostingSession::attach_tracer(obs::Tracer* tracer) {
  engine_.set_tracer(tracer);
  service_->set_tracer(tracer);
}

void HostingSession::start() {
  if (scheduler_ != nullptr) {
    throw std::logic_error("HostingSession::start called twice");
  }
  scheduler_ = std::make_unique<sched::CloudScheduler>(
      engine_, *provider_, *service_, config_,
      rng_factory_.stream("scheduler-timing"));
  scheduler_->start();
}

void HostingSession::finalize(sim::SimTime at) {
  provider_->finalize(at);
  if (scheduler_ != nullptr) scheduler_->finalize(at);
}

sched::CloudScheduler& HostingSession::scheduler() {
  if (scheduler_ == nullptr) {
    throw std::logic_error("HostingSession: scheduler not started");
  }
  return *scheduler_;
}

}  // namespace spothost::live
