// HostingSession: one hosted service wired over any sim::Engine.
//
// This is the World/run_hosting_scenario wiring factored out so the serve
// binary and the sim/live parity test assemble *exactly* the same object
// graph — rng factory, fault injector (empty plan: zero draws, zero
// events), provider, Table-1 allocation latencies, markets, service,
// scheduler — differing only in the engine underneath (Simulation vs
// WallClock) and in how market prices arrive (pre-loaded trace vs
// FeedDriver pushing a PriceFeed).
//
// Two-phase on purpose: the constructor wires the provider and calls
// provider->start() (trace-fed markets schedule their price chains here;
// push-fed ones wait for a FeedDriver), but the scheduler is not built
// until start(). That leaves a gap where a FeedDriver can schedule the
// push-fed chains at the exact event-sequence position trace mode gives
// them — the (time, schedule-seq) tie-break the parity contract rests on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cloud/provider.hpp"
#include "faults/injector.hpp"
#include "sched/scheduler.hpp"
#include "simcore/engine.hpp"
#include "simcore/rng.hpp"
#include "trace/price_trace.hpp"
#include "workload/service.hpp"

namespace spothost::obs {
class Tracer;
}

namespace spothost::live {

/// One market to register. With a trace: trace-fed (the simulation path;
/// the trace must outlive the session). Without: push-fed, to be driven by
/// a FeedDriver.
struct SessionMarket {
  cloud::MarketId id;
  double on_demand_price = 0.0;
  const trace::PriceTrace* trace = nullptr;
};

struct SessionSpec {
  std::uint64_t seed = 42;
  sim::SimTime grace_period = 120 * sim::kSecond;
  std::vector<SessionMarket> markets;
  sched::SchedulerConfig config;
  std::string service_name = "hosted-service";
};

class HostingSession {
 public:
  /// Wires everything but the scheduler. The engine must be freshly
  /// constructed (time 0) and outlive the session.
  HostingSession(sim::Engine& engine, const SessionSpec& spec);

  /// Attaches a tracer to the engine and the service. Call before start().
  void attach_tracer(obs::Tracer* tracer);

  /// Builds the scheduler and kicks off acquisition. For push-fed markets,
  /// call FeedDriver::start() first (the chains must already be scheduled,
  /// and the markets primed). Call once.
  void start();

  /// Closes billing and availability accounting at `at` — provider first,
  /// then scheduler, the run_hosting_scenario order.
  void finalize(sim::SimTime at);

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] cloud::CloudProvider& provider() noexcept { return *provider_; }
  [[nodiscard]] workload::AlwaysOnService& service() noexcept { return *service_; }
  [[nodiscard]] sched::CloudScheduler& scheduler();
  [[nodiscard]] const sched::CloudScheduler* scheduler_if_started() const noexcept {
    return scheduler_.get();
  }

 private:
  sim::Engine& engine_;
  sim::RngFactory rng_factory_;
  sched::SchedulerConfig config_;
  std::unique_ptr<faults::FaultInjector> faults_;
  std::unique_ptr<cloud::CloudProvider> provider_;
  std::unique_ptr<workload::AlwaysOnService> service_;
  std::unique_ptr<sched::CloudScheduler> scheduler_;
};

}  // namespace spothost::live
