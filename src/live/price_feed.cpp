#include "live/price_feed.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace spothost::live {

// --- TraceReplayFeed ------------------------------------------------------

void TraceReplayFeed::add_market(std::string key, const trace::PriceTrace* trace) {
  if (trace == nullptr) {
    throw std::invalid_argument("TraceReplayFeed: null trace for " + key);
  }
  if (streams_.count(key) != 0) {
    throw std::invalid_argument("TraceReplayFeed: duplicate market " + key);
  }
  order_.push_back(key);
  streams_.emplace(std::move(key), Stream{trace, 0});
}

std::vector<std::string> TraceReplayFeed::markets() const { return order_; }

PriceFeed::Status TraceReplayFeed::next(const std::string& market, PriceUpdate& out) {
  const auto it = streams_.find(market);
  if (it == streams_.end()) {
    throw std::out_of_range("TraceReplayFeed: unknown market " + market);
  }
  Stream& s = it->second;
  const auto& points = s.trace->points();
  if (s.index >= points.size()) return Status::kEnd;
  const trace::PricePoint& p = points[s.index++];
  out.time = p.time;
  out.market = market;
  out.price = p.price;
  out.read_at = {};  // replay: no wall provenance
  return Status::kReady;
}

// --- FileTailFeed ---------------------------------------------------------

namespace {

// Minimal JSONL field extraction — enough for the one flat object shape the
// feed format defines; not a general JSON parser.
bool json_number(const std::string& line, const std::string& key, double& out) {
  const auto k = line.find("\"" + key + "\"");
  if (k == std::string::npos) return false;
  auto i = line.find(':', k);
  if (i == std::string::npos) return false;
  ++i;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  const char* begin = line.c_str() + i;
  char* end = nullptr;
  out = std::strtod(begin, &end);
  return end != begin;
}

bool json_string(const std::string& line, const std::string& key, std::string& out) {
  const auto k = line.find("\"" + key + "\"");
  if (k == std::string::npos) return false;
  auto i = line.find(':', k);
  if (i == std::string::npos) return false;
  i = line.find('"', i);
  if (i == std::string::npos) return false;
  const auto close = line.find('"', i + 1);
  if (close == std::string::npos) return false;
  out = line.substr(i + 1, close - i - 1);
  return true;
}

bool parse_time_ms(const std::string& field, sim::SimTime& out) {
  if (field.empty()) return false;
  const char* begin = field.c_str();
  char* end = nullptr;
  const long long v = std::strtoll(begin, &end, 10);
  if (end == begin || *end != '\0' || v < 0) return false;
  out = static_cast<sim::SimTime>(v);
  return true;
}

}  // namespace

FileTailFeed::FileTailFeed(std::string path, Options options)
    : path_(std::move(path)), options_(std::move(options)) {
  // Pre-create allowlisted streams so markets() answers (in the allowlist's
  // order) before the first pump, and rows for anything else count as
  // unknown-market.
  for (const auto& m : options_.markets) {
    if (streams_.emplace(m, Stream{}).second) order_.push_back(m);
  }
}

std::vector<std::string> FileTailFeed::markets() const { return order_; }

FileTailFeed::Stream* FileTailFeed::stream_for(const std::string& market) {
  const auto it = streams_.find(market);
  if (it != streams_.end()) return &it->second;
  if (!options_.markets.empty()) return nullptr;  // allowlist rejects the rest
  order_.push_back(market);
  return &streams_.emplace(market, Stream{}).first->second;
}

void FileTailFeed::reject(const std::string& message) {
  ++rejected_lines_;
  if (errors_.size() < options_.max_errors) {
    errors_.push_back(FeedError{line_no_, message});
  }
}

void FileTailFeed::handle_line(const std::string& raw) {
  std::string line = raw;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line.empty() || line[0] == '#') return;

  sim::SimTime time = 0;
  std::string market;
  double price = 0.0;

  if (line[0] == '{') {
    double t_ms = 0.0;
    if (!json_number(line, "t", t_ms) || !json_string(line, "market", market) ||
        !json_number(line, "price", price) || t_ms < 0) {
      reject("malformed JSONL row: " + line);
      return;
    }
    time = static_cast<sim::SimTime>(t_ms);
  } else {
    const auto c1 = line.find(',');
    if (c1 == std::string::npos) {
      reject("malformed row (no comma): " + line);
      return;
    }
    const std::string first = line.substr(0, c1);
    if (first.rfind("time", 0) == 0) return;  // header ("time", "time_ms", ...)
    if (first == "end") {
      sim::SimTime t = 0;
      if (!parse_time_ms(line.substr(c1 + 1), t)) {
        reject("malformed end sentinel: " + line);
        return;
      }
      ended_ = true;
      end_time_ = t;
      return;
    }
    const auto c2 = line.find(',', c1 + 1);
    if (c2 == std::string::npos) {
      reject("malformed row (two fields): " + line);
      return;
    }
    if (!parse_time_ms(first, time)) {
      reject("bad timestamp: " + line);
      return;
    }
    market = line.substr(c1 + 1, c2 - c1 - 1);
    const std::string price_field = line.substr(c2 + 1);
    const char* begin = price_field.c_str();
    char* end = nullptr;
    price = std::strtod(begin, &end);
    if (end == begin) {
      reject("bad price: " + line);
      return;
    }
  }

  if (market.empty()) {
    reject("empty market id: " + line);
    return;
  }
  if (!std::isfinite(price) || price <= 0.0) {
    reject("price must be finite and > 0: " + line);
    return;
  }
  Stream* s = stream_for(market);
  if (s == nullptr) {
    ++unknown_market_lines_;
    return;
  }
  if (time <= s->last_time) {
    reject("out-of-order timestamp for " + market + " at line " +
           std::to_string(line_no_) + " (" + std::to_string(time) +
           " <= " + std::to_string(s->last_time) + ")");
    return;
  }
  s->last_time = time;
  PriceUpdate u;
  u.time = time;
  u.market = market;
  u.price = price;
  u.read_at = std::chrono::steady_clock::now();
  s->buffered.push_back(std::move(u));
  ++lines_ingested_;
}

std::size_t FileTailFeed::pump() {
  const std::size_t before = lines_ingested_;
  if (!file_.is_open()) {
    file_.open(path_, std::ios::binary);
    if (!file_.is_open()) return 0;  // not created yet; retry on a later pump
  }
  file_.clear();
  file_.seekg(0, std::ios::end);
  const std::streamoff size = file_.tellg();
  if (size < 0) return 0;
  bool rewritten = size < pos_;  // shrank: unambiguous truncation
  if (!rewritten && pos_ > 0 && !prefix_sig_.empty()) {
    // The file may have been truncated and re-grown past our offset between
    // pumps; the size check alone cannot see that. Compare the head bytes.
    std::string head(prefix_sig_.size(), '\0');
    file_.seekg(0);
    file_.read(head.data(), static_cast<std::streamsize>(head.size()));
    head.resize(static_cast<std::size_t>(file_.gcount()));
    file_.clear();
    rewritten = head != prefix_sig_;
  }
  if (rewritten) {
    // Start over; per-market last_time survives, so re-read rows at or
    // before what we already delivered get rejected as out-of-order
    // instead of replayed.
    pos_ = 0;
    partial_.clear();
    line_no_ = 0;
    prefix_sig_.clear();
    ++truncations_;
  }
  if (size == pos_) return 0;
  const std::streamoff old_pos = pos_;
  file_.seekg(pos_);
  std::string chunk(static_cast<std::size_t>(size - pos_), '\0');
  file_.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  chunk.resize(static_cast<std::size_t>(file_.gcount()));
  pos_ += static_cast<std::streamoff>(chunk.size());
  constexpr std::streamoff kPrefixSigBytes = 64;
  if (old_pos < kPrefixSigBytes) {
    const auto want = static_cast<std::size_t>(kPrefixSigBytes - old_pos);
    prefix_sig_.append(chunk, 0, std::min(want, chunk.size()));
  }

  // Only complete, newline-terminated lines are parsed; a trailing fragment
  // (writer caught mid-line) waits in partial_ for the next pump.
  std::size_t start = 0;
  for (;;) {
    const auto nl = chunk.find('\n', start);
    if (nl == std::string::npos) {
      partial_.append(chunk, start, std::string::npos);
      break;
    }
    std::string line = std::move(partial_);
    partial_.clear();
    line.append(chunk, start, nl - start);
    ++line_no_;
    handle_line(line);
    start = nl + 1;
  }
  return lines_ingested_ - before;
}

PriceFeed::Status FileTailFeed::next(const std::string& market, PriceUpdate& out) {
  const auto it = streams_.find(market);
  if (it == streams_.end()) return ended_ ? Status::kEnd : Status::kWouldBlock;
  Stream& s = it->second;
  if (s.buffered.empty()) return ended_ ? Status::kEnd : Status::kWouldBlock;
  out = std::move(s.buffered.front());
  s.buffered.pop_front();
  return Status::kReady;
}

}  // namespace spothost::live
