// Price feeds: where live price updates come from.
//
// A PriceFeed is a pull-based, per-market stream of (time, market, price)
// updates. The FeedDriver (live/feed_driver.hpp) pulls from it and steps the
// push-fed SpotMarkets; the feed itself knows nothing about the cloud layer.
// Two implementations:
//
//   * TraceReplayFeed — adapts pre-loaded trace::PriceTrace objects (e.g. a
//     generated MarketTraceSet or a recorded file). Pure and deterministic:
//     this is the source for the sim/live parity golden test.
//   * FileTailFeed — tails a growing CSV/JSONL file, tail -f style. Reads
//     only complete newline-terminated lines (a writer caught mid-line is
//     picked up on the next pump), resumes at its byte offset, demuxes rows
//     per market, and rejects malformed or out-of-order rows with the line
//     number so operators can find them.
//
// File format (one row per price change):
//     time_ms,market,price          e.g.  3600000,us-east-1a/large,0.171
//     {"t":3600000,"market":"us-east-1a/large","price":0.171}   (JSONL)
//     # comment lines and a "time,..." header are skipped
//     end,<time_ms>                 sentinel: feed is complete through time_ms
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <fstream>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "simcore/time.hpp"
#include "trace/price_trace.hpp"

namespace spothost::live {

/// One price change, as read from a feed.
struct PriceUpdate {
  sim::SimTime time = 0;  ///< virtual (feed) timestamp, milliseconds
  std::string market;     ///< market key, e.g. "us-east-1a/large"
  double price = 0.0;
  /// Wall instant the update was read off the feed (set by tailing feeds;
  /// epoch for replay feeds). The serve loop measures delivery latency as
  /// steady_clock::now() - read_at when the update reaches the policy layer.
  std::chrono::steady_clock::time_point read_at{};
};

class PriceFeed {
 public:
  enum class Status {
    kReady,       ///< `out` filled with the next update for that market
    kWouldBlock,  ///< nothing buffered now; pump() again later
    kEnd,         ///< this market's stream is complete
  };

  virtual ~PriceFeed() = default;

  /// Market keys this feed serves, in first-seen (deterministic) order.
  [[nodiscard]] virtual std::vector<std::string> markets() const = 0;

  /// Pulls the next update for `market`.
  virtual Status next(const std::string& market, PriceUpdate& out) = 0;

  /// Ingests whatever new data the source has (no-op for replay feeds).
  /// Returns the number of updates ingested.
  virtual std::size_t pump() { return 0; }
};

/// Replays pre-loaded PriceTraces as a feed. The traces must outlive the
/// feed. Deterministic: updates come out exactly as recorded.
class TraceReplayFeed final : public PriceFeed {
 public:
  void add_market(std::string key, const trace::PriceTrace* trace);

  [[nodiscard]] std::vector<std::string> markets() const override;
  Status next(const std::string& market, PriceUpdate& out) override;

 private:
  struct Stream {
    const trace::PriceTrace* trace = nullptr;
    std::size_t index = 0;
  };
  std::vector<std::string> order_;
  std::unordered_map<std::string, Stream> streams_;
};

/// Tails a growing CSV/JSONL price file.
class FileTailFeed final : public PriceFeed {
 public:
  struct Options {
    /// Markets to accept. Empty = accept every market seen (keys are then
    /// discovered in file order).
    std::vector<std::string> markets;
    /// Keep at most this many parse errors (counters keep counting past it).
    std::size_t max_errors = 16;
  };

  /// A rejected line, with its 1-based line number in the file.
  struct FeedError {
    std::size_t line = 0;
    std::string message;
  };

  explicit FileTailFeed(std::string path) : FileTailFeed(std::move(path), Options{{}, 16}) {}
  FileTailFeed(std::string path, Options options);

  [[nodiscard]] std::vector<std::string> markets() const override;
  Status next(const std::string& market, PriceUpdate& out) override;

  /// Reads all complete lines appended since the last pump. Safe against a
  /// writer caught mid-line (the partial tail is buffered and completed on a
  /// later pump) and against truncation (re-reads from the start; rows at or
  /// before a market's last accepted timestamp are rejected as out-of-order).
  std::size_t pump() override;

  /// True once the `end,<time_ms>` sentinel has been read.
  [[nodiscard]] bool ended() const noexcept { return ended_; }
  [[nodiscard]] sim::SimTime end_time() const noexcept { return end_time_; }

  [[nodiscard]] std::size_t lines_ingested() const noexcept { return lines_ingested_; }
  [[nodiscard]] std::size_t rejected_lines() const noexcept { return rejected_lines_; }
  [[nodiscard]] std::size_t unknown_market_lines() const noexcept {
    return unknown_market_lines_;
  }
  [[nodiscard]] std::size_t truncations() const noexcept { return truncations_; }
  [[nodiscard]] const std::vector<FeedError>& errors() const noexcept { return errors_; }

 private:
  struct Stream {
    std::deque<PriceUpdate> buffered;
    sim::SimTime last_time = -1;  ///< last accepted timestamp (strictly increasing)
  };

  void handle_line(const std::string& line);
  void reject(const std::string& message);
  Stream* stream_for(const std::string& market);

  std::string path_;
  Options options_;
  std::ifstream file_;
  std::streamoff pos_ = 0;     ///< byte offset of the next unread byte
  std::string partial_;        ///< incomplete trailing line from the last pump
  std::size_t line_no_ = 0;    ///< 1-based number of the line being parsed
  /// First bytes ever read from offset 0 (up to 64). A rewrite that grows
  /// the file past the saved offset would otherwise go unnoticed and be
  /// parsed from mid-file; if these bytes change, the file was replaced and
  /// reading restarts from 0. A rotation that re-emits byte-identical
  /// history resumes seamlessly at the old offset instead.
  std::string prefix_sig_;

  std::vector<std::string> order_;
  std::unordered_map<std::string, Stream> streams_;
  bool ended_ = false;
  sim::SimTime end_time_ = 0;

  std::size_t lines_ingested_ = 0;
  std::size_t rejected_lines_ = 0;
  std::size_t unknown_market_lines_ = 0;
  std::size_t truncations_ = 0;
  std::vector<FeedError> errors_;
};

}  // namespace spothost::live
