#include "live/wall_clock.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>

namespace spothost::live {

namespace {
constexpr sim::SimTime kForever = std::numeric_limits<sim::SimTime>::max();
}  // namespace

WallClock::WallClock(Options options)
    : queue_(sim::make_event_queue(options.backend)),
      speed_(options.speed),
      replay_(options.speed == kMaxSpeed),
      now_(options.start_time),
      anchor_wall_(std::chrono::steady_clock::now()),
      anchor_virtual_(options.start_time) {
  if (!(options.speed > 0.0) || std::isnan(options.speed)) {
    throw std::invalid_argument("WallClock: speed must be > 0");
  }
  if (options.start_time < 0) {
    throw std::invalid_argument("WallClock: negative start time");
  }
}

sim::EventHandle WallClock::at(sim::SimTime when, Callback cb) {
  if (when < now_) {
    throw std::invalid_argument("WallClock::at: scheduling in the past");
  }
  return sim::EventHandle{this, queue_->schedule(when, std::move(cb))};
}

sim::EventHandle WallClock::after(sim::SimTime delay, Callback cb) {
  if (delay < 0) {
    throw std::invalid_argument("WallClock::after: negative delay");
  }
  return sim::EventHandle{this, queue_->schedule(now_ + delay, std::move(cb))};
}

sim::SimTime WallClock::wall_virtual_now() const {
  if (replay_) return kForever;
  const auto elapsed = std::chrono::steady_clock::now() - anchor_wall_;
  const double wall_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  const double virtual_ms = static_cast<double>(anchor_virtual_) + wall_ms * speed_;
  if (virtual_ms >= static_cast<double>(kForever)) return kForever;
  return static_cast<sim::SimTime>(virtual_ms);
}

std::size_t WallClock::drain(sim::SimTime target) {
  // Byte-for-byte the Simulation::run_until loop, including the final clamp
  // with its run-forever-sentinel check: the parity golden test depends on
  // now() tracking identically through both engines.
  std::size_t n = 0;
  sim::EventQueue::Fired fired;
  while (queue_->pop_due(target, fired)) {
    now_ = fired.time;
    ++dispatched_;
    ++n;
    fired.callback();
  }
  if (now_ < target && target != kForever) now_ = target;
  return n;
}

std::size_t WallClock::poll() {
  if (replay_) return drain(kForever);
  return drain(std::max(now_, wall_virtual_now()));
}

std::optional<std::chrono::nanoseconds> WallClock::wall_until_next() const {
  if (queue_->empty()) return std::nullopt;
  if (replay_) return std::chrono::nanoseconds{0};
  const sim::SimTime next = queue_->next_time();
  const sim::SimTime vnow = wall_virtual_now();
  if (next <= vnow) return std::chrono::nanoseconds{0};
  const double wall_ms = static_cast<double>(next - vnow) / speed_;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(wall_ms));
}

void WallClock::run_until(sim::SimTime horizon) {
  if (replay_) {
    drain(horizon);
    return;
  }
  for (;;) {
    const sim::SimTime target = std::min(horizon, std::max(now_, wall_virtual_now()));
    drain(target);
    if (target >= horizon) return;
    // Sleep until the next pending event is due (or the horizon if idle),
    // then loop: new events scheduled by dispatched callbacks shorten the
    // next sleep automatically.
    const sim::SimTime next_due =
        queue_->empty() ? horizon : std::min(horizon, queue_->next_time());
    const sim::SimTime vnow = wall_virtual_now();
    if (next_due > vnow) {
      const double wall_ms = static_cast<double>(next_due - vnow) / speed_;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(wall_ms));
    }
  }
}

}  // namespace spothost::live
