// The wall-time engine: sim::Clock/Engine over std::chrono::steady_clock.
//
// WallClock maps elapsed wall time onto the same millisecond SimTime axis
// the simulation uses, backed by the very same event-queue backends (timing
// wheel by default — SPOTHOST_EVENT_QUEUE applies here too), so the policy
// layer cannot tell which engine is underneath. Three speeds:
//
//   * speed 1.0  — real time: one virtual millisecond per wall millisecond.
//   * speed N    — paced replay: N virtual ms per wall ms (demo / soak).
//   * kMaxSpeed  — deterministic fast-replay: time jumps straight from event
//     to event with no sleeping, exactly the discrete-event semantics of
//     Simulation::run_until. This is the parity mode: replaying a recorded
//     feed here produces the byte-identical trace the simulation produces
//     (tests/live/test_serve_parity.cpp pins it).
//
// Time only advances inside poll()/run_until() — between calls now() is the
// time of the last dispatch target, never a raw steady_clock read. That
// keeps the discrete-event invariants (now() is stable within a callback,
// events fire in (time, schedule-seq) order, scheduling is monotone) intact
// on the wall path; the price is that now() lags wall time by up to one
// poll interval, which the serve loop keeps at ~10 ms.
//
// Single-threaded, like Simulation: all scheduling and polling must happen
// on one thread. Feed ingestion from another thread must be handed over via
// the feed's own synchronization (live::FileTailFeed reads a file, so the
// filesystem is the handoff).
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>

#include "simcore/engine.hpp"
#include "simcore/event_queue.hpp"
#include "simcore/time.hpp"

namespace spothost::live {

class WallClock final : public sim::Engine {
 public:
  /// speed value selecting deterministic fast-replay.
  static constexpr double kMaxSpeed = std::numeric_limits<double>::infinity();

  struct Options {
    /// Virtual milliseconds per wall millisecond; kMaxSpeed = fast-replay.
    /// Must be > 0.
    double speed = 1.0;
    /// Initial virtual time.
    sim::SimTime start_time = 0;
    /// Event-queue backend (default honours SPOTHOST_EVENT_QUEUE).
    sim::QueueBackend backend = sim::default_queue_backend();
  };

  WallClock() : WallClock(Options{1.0, 0, sim::default_queue_backend()}) {}
  explicit WallClock(Options options);

  // --- sim::Clock --------------------------------------------------------
  [[nodiscard]] sim::SimTime now() const noexcept override { return now_; }
  sim::EventHandle at(sim::SimTime when, Callback cb) override;
  sim::EventHandle after(sim::SimTime delay, Callback cb) override;
  bool cancel(sim::EventId id) override { return queue_->cancel(id); }
  [[nodiscard]] obs::Tracer* tracer() const noexcept override {
    return tracer_;
  }
  [[nodiscard]] faults::FaultInjector* fault_injector() const noexcept override {
    return fault_injector_;
  }

  // --- sim::Engine -------------------------------------------------------
  /// Fast-replay: identical to Simulation::run_until (no sleeping).
  /// Real time / paced: dispatches due events and sleeps between them until
  /// virtual time reaches `horizon`. Do not pass the run-forever sentinel on
  /// the wall path unless something is guaranteed to drain the queue.
  void run_until(sim::SimTime horizon) override;
  [[nodiscard]] std::uint64_t dispatched() const noexcept override {
    return dispatched_;
  }
  [[nodiscard]] std::size_t pending() const override { return queue_->size(); }
  void set_tracer(obs::Tracer* tracer) noexcept override { tracer_ = tracer; }
  void set_fault_injector(faults::FaultInjector* injector) noexcept override {
    fault_injector_ = injector;
  }

  // --- the serve loop's surface ------------------------------------------
  /// Dispatches everything currently due — in fast-replay, *everything*
  /// pending (timers coalesce into one (time, seq)-ordered batch; see
  /// tests/live/test_wall_clock.cpp) — and advances now() to the wall-mapped
  /// time. Never sleeps. Returns the number of events dispatched.
  std::size_t poll();

  /// Wall duration until the next pending event is due (zero if already due
  /// or in fast-replay); nullopt when idle. The serve loop sleeps on this.
  [[nodiscard]] std::optional<std::chrono::nanoseconds> wall_until_next() const;

  [[nodiscard]] bool fast_replay() const noexcept { return replay_; }
  [[nodiscard]] double speed() const noexcept { return speed_; }
  [[nodiscard]] sim::QueueBackend backend() const noexcept {
    return queue_->backend();
  }

 private:
  /// Virtual time corresponding to the current wall instant (>= now_).
  [[nodiscard]] sim::SimTime wall_virtual_now() const;
  /// Dispatches every event due at or before `target`; advances now_ to
  /// `target` afterwards (unless it is the run-forever sentinel).
  std::size_t drain(sim::SimTime target);

  std::unique_ptr<sim::EventQueue> queue_;
  double speed_ = 1.0;
  bool replay_ = false;
  sim::SimTime now_ = 0;
  std::chrono::steady_clock::time_point anchor_wall_;
  sim::SimTime anchor_virtual_ = 0;
  std::uint64_t dispatched_ = 0;
  obs::Tracer* tracer_ = nullptr;
  faults::FaultInjector* fault_injector_ = nullptr;
};

}  // namespace spothost::live
