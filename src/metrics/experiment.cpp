#include "metrics/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <stdexcept>

#include "sched/market_selection.hpp"

namespace spothost::metrics {

RunMetrics run_hosting_scenario(const sched::Scenario& scenario,
                                const sched::SchedulerConfig& config) {
  sched::World world(scenario);
  workload::AlwaysOnService service("hosted-service",
                                    virt::VmSpec{});  // spec set by scheduler
  sched::CloudScheduler scheduler(world.simulation(), world.provider(), service,
                                  config, world.stream("scheduler-timing"));
  scheduler.start();
  world.simulation().run_until(world.horizon());
  world.provider().finalize(world.horizon());
  scheduler.finalize(world.horizon());

  // Normalization baseline: home-region on-demand price, or the cheapest
  // on-demand price across the allowed regions for multi-region scenarios.
  double baseline_price = sched::effective_on_demand_price(
      world.provider(), config.home_market.region, config.home_market.size);
  if (config.scope == sched::MarketScope::kMultiRegion) {
    const auto& regions = config.allowed_regions.empty()
                              ? world.provider().regions()
                              : config.allowed_regions;
    const std::string cheapest = sched::cheapest_on_demand_region(
        world.provider(), regions, config.home_market.size);
    baseline_price = sched::effective_on_demand_price(world.provider(), cheapest,
                                                      config.home_market.size);
  }
  return compute_run_metrics(world.provider(), scheduler, service, world.horizon(),
                             baseline_price);
}

Aggregate Aggregate::of(std::span<const double> xs) {
  Aggregate a;
  if (xs.empty()) return a;
  double sum = 0.0;
  a.min = xs.front();
  a.max = xs.front();
  for (const double x : xs) {
    sum += x;
    a.min = std::min(a.min, x);
    a.max = std::max(a.max, x);
  }
  a.mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (const double x : xs) ss += (x - a.mean) * (x - a.mean);
  a.stddev = std::sqrt(ss / static_cast<double>(xs.size()));
  return a;
}

ExperimentRunner::ExperimentRunner(int runs, std::uint64_t base_seed, bool parallel)
    : runs_(runs), base_seed_(base_seed), parallel_(parallel) {
  if (runs_ <= 0) throw std::invalid_argument("ExperimentRunner: runs must be > 0");
}

AggregatedMetrics ExperimentRunner::run(const sched::Scenario& scenario,
                                        const sched::SchedulerConfig& config) const {
  return run_with([&](std::uint64_t seed) {
    sched::Scenario s = scenario;
    s.seed = seed;
    return run_hosting_scenario(s, config);
  });
}

AggregatedMetrics ExperimentRunner::run_with(
    const std::function<RunMetrics(std::uint64_t seed)>& body) const {
  std::vector<RunMetrics> results(static_cast<std::size_t>(runs_));
  if (parallel_) {
    std::vector<std::future<RunMetrics>> futures;
    futures.reserve(static_cast<std::size_t>(runs_));
    for (int i = 0; i < runs_; ++i) {
      const std::uint64_t seed = base_seed_ + static_cast<std::uint64_t>(i) * 7919u;
      futures.push_back(
          std::async(std::launch::async, [&body, seed] { return body(seed); }));
    }
    for (int i = 0; i < runs_; ++i) {
      results[static_cast<std::size_t>(i)] = futures[static_cast<std::size_t>(i)].get();
    }
  } else {
    for (int i = 0; i < runs_; ++i) {
      const std::uint64_t seed = base_seed_ + static_cast<std::uint64_t>(i) * 7919u;
      results[static_cast<std::size_t>(i)] = body(seed);
    }
  }

  AggregatedMetrics agg;
  agg.runs = runs_;
  auto collect = [&](auto getter) {
    std::vector<double> xs;
    xs.reserve(results.size());
    for (const auto& r : results) xs.push_back(getter(r));
    return Aggregate::of(xs);
  };
  agg.normalized_cost_pct =
      collect([](const RunMetrics& r) { return r.normalized_cost_pct; });
  agg.unavailability_pct =
      collect([](const RunMetrics& r) { return r.unavailability_pct; });
  agg.forced_per_hour = collect([](const RunMetrics& r) { return r.forced_per_hour; });
  agg.planned_reverse_per_hour =
      collect([](const RunMetrics& r) { return r.planned_reverse_per_hour; });
  agg.downtime_s = collect([](const RunMetrics& r) { return r.downtime_s; });
  agg.cancelled_planned = collect(
      [](const RunMetrics& r) { return static_cast<double>(r.cancelled_planned); });
  agg.per_run = std::move(results);
  return agg;
}

}  // namespace spothost::metrics
