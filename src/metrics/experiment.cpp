#include "metrics/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <optional>
#include <stdexcept>
#include <utility>

#include "exec/thread_pool.hpp"
#include "obs/ring_sink.hpp"
#include "obs/sink.hpp"
#include "sched/market_selection.hpp"

namespace spothost::metrics {

std::string_view to_string(Execution execution) noexcept {
  switch (execution) {
    case Execution::kSerial: return "serial";
    case Execution::kParallel: return "parallel";
  }
  return "?";
}

RunMetrics run_hosting_scenario(const sched::Scenario& scenario,
                                const sched::SchedulerConfig& config) {
  return run_hosting_scenario(scenario, config, nullptr, nullptr);
}

RunMetrics run_hosting_scenario(const sched::Scenario& scenario,
                                const sched::SchedulerConfig& config,
                                obs::Tracer* tracer, obs::RunProfile* profile) {
  return run_hosting_scenario(scenario, config, nullptr, tracer, profile);
}

RunMetrics run_hosting_scenario(
    const sched::Scenario& scenario, const sched::SchedulerConfig& config,
    std::shared_ptr<const sched::MarketTraceSet> traces, obs::Tracer* tracer,
    obs::RunProfile* profile) {
  sched::World world(scenario, std::move(traces));
  workload::AlwaysOnService service("hosted-service",
                                    virt::VmSpec{});  // spec set by scheduler
  if (tracer != nullptr) {
    world.engine().set_tracer(tracer);
    service.set_tracer(tracer);
  }
  sched::CloudScheduler scheduler(world.clock(), world.provider(), service,
                                  config, world.stream("scheduler-timing"));
  scheduler.start();
  {
    std::optional<obs::ProfileScope> scope;
    if (profile != nullptr) scope.emplace(world.engine(), *profile);
    world.engine().run_until(world.horizon());
  }
  world.provider().finalize(world.horizon());
  scheduler.finalize(world.horizon());
  if (tracer != nullptr) tracer->flush();

  // Normalization baseline: home-region on-demand price, or the cheapest
  // on-demand price across the allowed regions for multi-region scenarios.
  double baseline_price = sched::effective_on_demand_price(
      world.provider(), config.home_market.region, config.home_market.size);
  if (config.scope == sched::MarketScope::kMultiRegion) {
    const auto& regions = config.allowed_regions.empty()
                              ? world.provider().regions()
                              : config.allowed_regions;
    const std::string cheapest = sched::cheapest_on_demand_region(
        world.provider(), regions, config.home_market.size);
    baseline_price = sched::effective_on_demand_price(world.provider(), cheapest,
                                                      config.home_market.size);
  }
  RunMetrics m = compute_run_metrics(world.provider(), scheduler, service,
                                     world.horizon(), baseline_price);
  m.faults_injected = static_cast<int>(world.faults().injected_total());
  return m;
}

sched::FleetMetrics run_fleet_scenario(const sched::Scenario& scenario,
                                       const sched::FleetConfig& config,
                                       obs::Tracer* tracer,
                                       obs::RunProfile* profile) {
  sched::World world(scenario);
  // Tracer first: FleetScheduler::start() wires each service's availability
  // events to its lane's tracer, resolved at start time.
  if (tracer != nullptr) world.engine().set_tracer(tracer);
  sched::FleetScheduler fleet(world.clock(), world.provider(), config,
                              world.rng(), world.shard_router());
  fleet.start();
  {
    std::optional<obs::ProfileScope> scope;
    if (profile != nullptr) scope.emplace(world.engine(), *profile);
    world.engine().run_until(world.horizon());
  }
  world.provider().finalize(world.horizon());
  fleet.finalize(world.horizon());
  if (tracer != nullptr) tracer->flush();
  return fleet.metrics(world.horizon());
}

Aggregate Aggregate::of(std::span<const double> xs) {
  Aggregate a;
  if (xs.empty()) return a;
  // Welford's online algorithm: one pass for mean and variance (population),
  // numerically stabler than the naive sum-of-squares.
  a.min = xs.front();
  a.max = xs.front();
  double mean = 0.0;
  double m2 = 0.0;
  double n = 0.0;
  for (const double x : xs) {
    n += 1.0;
    const double delta = x - mean;
    mean += delta / n;
    m2 += delta * (x - mean);
    a.min = std::min(a.min, x);
    a.max = std::max(a.max, x);
  }
  a.mean = mean;
  a.stddev = std::sqrt(m2 / n);
  return a;
}

ExperimentRunner::ExperimentRunner(int runs, std::uint64_t base_seed,
                                   Execution execution)
    : runs_(runs), base_seed_(base_seed), execution_(execution) {
  if (runs_ <= 0) throw std::invalid_argument("ExperimentRunner: runs must be > 0");
}

ExperimentRunner& ExperimentRunner::capture_traces(std::size_t ring_capacity) {
  if (ring_capacity == 0) {
    throw std::invalid_argument("capture_traces: ring_capacity must be > 0");
  }
  trace_capacity_ = ring_capacity;
  return *this;
}

ExperimentRunner& ExperimentRunner::memoize_traces(
    std::shared_ptr<sched::TraceCache> cache) {
  trace_cache_ = std::move(cache);
  return *this;
}

AggregatedMetrics ExperimentRunner::run(const sched::Scenario& scenario,
                                        const sched::SchedulerConfig& config) const {
  auto market_traces = [&](const sched::Scenario& s) {
    return trace_cache_ ? trace_cache_->get(s)
                        : std::shared_ptr<const sched::MarketTraceSet>();
  };
  if (trace_capacity_ == 0) {
    return run_indexed([&](int, std::uint64_t seed) {
      sched::Scenario s = scenario;
      s.seed = seed;
      return run_hosting_scenario(s, config, market_traces(s));
    });
  }
  // Trace capture: each seed gets its own tracer + ring buffer; slots are
  // preassigned by index, so parallel runs never contend.
  std::vector<SeedTrace> traces(static_cast<std::size_t>(runs_));
  auto agg = run_indexed([&](int index, std::uint64_t seed) {
    sched::Scenario s = scenario;
    s.seed = seed;
    obs::Tracer tracer;
    obs::RingBufferSink ring(trace_capacity_);
    tracer.add_sink(&ring);
    SeedTrace& slot = traces[static_cast<std::size_t>(index)];
    slot.seed = seed;
    RunMetrics rm =
        run_hosting_scenario(s, config, market_traces(s), &tracer, &slot.profile);
    slot.events = ring.events();
    slot.dropped = ring.dropped();
    return rm;
  });
  agg.traces = std::move(traces);
  return agg;
}

AggregatedMetrics ExperimentRunner::run_with(
    const std::function<RunMetrics(std::uint64_t seed)>& body) const {
  return run_indexed([&body](int, std::uint64_t seed) { return body(seed); });
}

AggregatedMetrics ExperimentRunner::run_indexed(
    const std::function<RunMetrics(int index, std::uint64_t seed)>& body) const {
  std::vector<RunMetrics> results(static_cast<std::size_t>(runs_));
  if (execution_ == Execution::kParallel) {
    // Bounded fan-out: every run is one task on the shared fixed-size pool,
    // so peak thread count is SPOTHOST_THREADS no matter how many runs.
    // Results land in preassigned seed-order slots, making the aggregate
    // bit-identical to serial execution.
    auto& pool = exec::ThreadPool::shared();
    std::vector<std::future<RunMetrics>> futures;
    futures.reserve(static_cast<std::size_t>(runs_));
    for (int i = 0; i < runs_; ++i) {
      const std::uint64_t seed = run_seed(base_seed_, i);
      futures.push_back(pool.submit([&body, i, seed] { return body(i, seed); }));
    }
    for (int i = 0; i < runs_; ++i) {
      results[static_cast<std::size_t>(i)] = futures[static_cast<std::size_t>(i)].get();
    }
  } else {
    for (int i = 0; i < runs_; ++i) {
      results[static_cast<std::size_t>(i)] = body(i, run_seed(base_seed_, i));
    }
  }
  return aggregate_runs(std::move(results));
}

AggregatedMetrics aggregate_runs(std::vector<RunMetrics> results) {
  AggregatedMetrics agg;
  agg.runs = static_cast<int>(results.size());
  auto collect = [&](auto getter) {
    std::vector<double> xs;
    xs.reserve(results.size());
    for (const auto& r : results) xs.push_back(getter(r));
    return Aggregate::of(xs);
  };
  agg.normalized_cost_pct =
      collect([](const RunMetrics& r) { return r.normalized_cost_pct; });
  agg.unavailability_pct =
      collect([](const RunMetrics& r) { return r.unavailability_pct; });
  agg.forced_per_hour = collect([](const RunMetrics& r) { return r.forced_per_hour; });
  agg.planned_reverse_per_hour =
      collect([](const RunMetrics& r) { return r.planned_reverse_per_hour; });
  agg.downtime_s = collect([](const RunMetrics& r) { return r.downtime_s; });
  agg.cancelled_planned = collect(
      [](const RunMetrics& r) { return static_cast<double>(r.cancelled_planned); });
  agg.per_run = std::move(results);
  return agg;
}

}  // namespace spothost::metrics
