// Experiment harness: runs a hosting scenario end-to-end and aggregates
// metrics across seeds. Runs are fully independent worlds, so they execute
// in parallel across hardware threads.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "metrics/run_metrics.hpp"
#include "obs/event.hpp"
#include "obs/profile.hpp"
#include "sched/baselines.hpp"
#include "sched/config.hpp"

namespace spothost::obs {
class Tracer;  // obs/sink.hpp
}

namespace spothost::metrics {

/// One simulated month of hosting under `config` inside a world built from
/// `scenario` (the scenario's seed is used as-is; the runner varies it).
RunMetrics run_hosting_scenario(const sched::Scenario& scenario,
                                const sched::SchedulerConfig& config);

/// Observed form: a non-null `tracer` is attached to the world's simulation
/// and service for the duration of the run (and flushed afterwards); a
/// non-null `profile` receives wall-clock dispatch throughput.
RunMetrics run_hosting_scenario(const sched::Scenario& scenario,
                                const sched::SchedulerConfig& config,
                                obs::Tracer* tracer, obs::RunProfile* profile);

struct Aggregate {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  static Aggregate of(std::span<const double> xs);
};

/// How the runner schedules its per-seed runs. Replaces the old
/// `bool parallel` flag.
enum class Execution {
  kSerial,    ///< one run after another, on the calling thread
  kParallel,  ///< std::async workers; results stay in seed order
};

std::string_view to_string(Execution execution) noexcept;

/// Captured observability for one seed's run (capture_traces() opt-in).
struct SeedTrace {
  std::uint64_t seed = 0;
  std::vector<obs::TraceEvent> events;  ///< oldest first (ring survivors)
  std::uint64_t dropped = 0;            ///< overwritten by ring overflow
  obs::RunProfile profile;              ///< wall-clock dispatch throughput
};

struct AggregatedMetrics {
  Aggregate normalized_cost_pct;
  Aggregate unavailability_pct;
  Aggregate forced_per_hour;
  Aggregate planned_reverse_per_hour;
  Aggregate downtime_s;
  Aggregate cancelled_planned;
  int runs = 0;
  std::vector<RunMetrics> per_run;  ///< in seed order
  /// One entry per run, in seed order, when capture_traces() was requested
  /// (empty otherwise). Only populated by run(), not run_with().
  std::vector<SeedTrace> traces;
};

class ExperimentRunner {
 public:
  /// `runs` independent seeds derived from `base_seed`.
  explicit ExperimentRunner(int runs = 5, std::uint64_t base_seed = 9001,
                            Execution execution = Execution::kParallel);

  /// Opt into per-seed trace capture: each run() seed records its events
  /// into a ring buffer of `ring_capacity` and reports them (with the wall
  /// clock profile) in AggregatedMetrics::traces, in seed order.
  ExperimentRunner& capture_traces(std::size_t ring_capacity = 1 << 16);

  /// Runs `config` against per-seed variants of `scenario` and aggregates.
  [[nodiscard]] AggregatedMetrics run(const sched::Scenario& scenario,
                                      const sched::SchedulerConfig& config) const;

  /// Generic form: `body(seed)` produces the per-run metrics.
  [[nodiscard]] AggregatedMetrics run_with(
      const std::function<RunMetrics(std::uint64_t seed)>& body) const;

 private:
  [[nodiscard]] AggregatedMetrics run_indexed(
      const std::function<RunMetrics(int index, std::uint64_t seed)>& body) const;

  int runs_;
  std::uint64_t base_seed_;
  Execution execution_;
  std::size_t trace_capacity_ = 0;  ///< 0 = no capture
};

}  // namespace spothost::metrics
