// Experiment harness: runs a hosting scenario end-to-end and aggregates
// metrics across seeds. Runs are fully independent worlds, so they execute
// in parallel across hardware threads.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "metrics/run_metrics.hpp"
#include "sched/baselines.hpp"
#include "sched/config.hpp"

namespace spothost::metrics {

/// One simulated month of hosting under `config` inside a world built from
/// `scenario` (the scenario's seed is used as-is; the runner varies it).
RunMetrics run_hosting_scenario(const sched::Scenario& scenario,
                                const sched::SchedulerConfig& config);

struct Aggregate {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  static Aggregate of(std::span<const double> xs);
};

struct AggregatedMetrics {
  Aggregate normalized_cost_pct;
  Aggregate unavailability_pct;
  Aggregate forced_per_hour;
  Aggregate planned_reverse_per_hour;
  Aggregate downtime_s;
  Aggregate cancelled_planned;
  int runs = 0;
  std::vector<RunMetrics> per_run;  ///< in seed order
};

class ExperimentRunner {
 public:
  /// `runs` independent seeds derived from `base_seed`. When `parallel`,
  /// runs execute on std::async workers (results stay in seed order).
  explicit ExperimentRunner(int runs = 5, std::uint64_t base_seed = 9001,
                            bool parallel = true);

  /// Runs `config` against per-seed variants of `scenario` and aggregates.
  [[nodiscard]] AggregatedMetrics run(const sched::Scenario& scenario,
                                      const sched::SchedulerConfig& config) const;

  /// Generic form: `body(seed)` produces the per-run metrics.
  [[nodiscard]] AggregatedMetrics run_with(
      const std::function<RunMetrics(std::uint64_t seed)>& body) const;

 private:
  int runs_;
  std::uint64_t base_seed_;
  bool parallel_;
};

}  // namespace spothost::metrics
