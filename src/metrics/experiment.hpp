// Experiment harness: runs a hosting scenario end-to-end and aggregates
// metrics across seeds. Runs are fully independent worlds, so they execute
// in parallel — fanned out over the shared fixed-size worker pool
// (exec::ThreadPool), never one thread per run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "metrics/run_metrics.hpp"
#include "obs/event.hpp"
#include "obs/profile.hpp"
#include "sched/baselines.hpp"
#include "sched/config.hpp"
#include "sched/fleet.hpp"
#include "sched/market_traces.hpp"

namespace spothost::obs {
class Tracer;  // obs/sink.hpp
}

namespace spothost::metrics {

/// One simulated month of hosting under `config` inside a world built from
/// `scenario` (the scenario's seed is used as-is; the runner varies it).
RunMetrics run_hosting_scenario(const sched::Scenario& scenario,
                                const sched::SchedulerConfig& config);

/// Observed form: a non-null `tracer` is attached to the world's simulation
/// and service for the duration of the run (and flushed afterwards); a
/// non-null `profile` receives wall-clock dispatch throughput.
RunMetrics run_hosting_scenario(const sched::Scenario& scenario,
                                const sched::SchedulerConfig& config,
                                obs::Tracer* tracer, obs::RunProfile* profile);

/// Memoized form: the world is built on `traces` (a pre-generated
/// MarketTraceSet for this exact scenario — see sched::TraceCache) instead
/// of regenerating every market trace. Null `traces` falls back to
/// generating inline; results are identical either way.
RunMetrics run_hosting_scenario(
    const sched::Scenario& scenario, const sched::SchedulerConfig& config,
    std::shared_ptr<const sched::MarketTraceSet> traces,
    obs::Tracer* tracer = nullptr, obs::RunProfile* profile = nullptr);

/// One simulated month of FLEET hosting: `config.num_services` services in
/// one world, sharing a MarketWatcher. When the scenario selects a sharded
/// engine (Scenario::shards > 1, or 0 with SPOTHOST_SHARDS=K set), the
/// fleet is pinned onto the engine's shard lanes (service i -> lane i % K)
/// and per-service work runs inside parallel windows — byte-identical
/// results either way (pinned by the fleet golden test). A non-null
/// `tracer` observes the run; a non-null `profile` records dispatch
/// throughput.
sched::FleetMetrics run_fleet_scenario(const sched::Scenario& scenario,
                                       const sched::FleetConfig& config,
                                       obs::Tracer* tracer = nullptr,
                                       obs::RunProfile* profile = nullptr);

struct Aggregate {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  /// Single-pass Welford moments (plus min/max) over the samples.
  static Aggregate of(std::span<const double> xs);
};

/// How the runner schedules its per-seed runs. Replaces the old
/// `bool parallel` flag.
enum class Execution {
  kSerial,    ///< one run after another, on the calling thread
  kParallel,  ///< shared exec::ThreadPool workers; results stay in seed order
};

std::string_view to_string(Execution execution) noexcept;

/// Captured observability for one seed's run (capture_traces() opt-in).
struct SeedTrace {
  std::uint64_t seed = 0;
  std::vector<obs::TraceEvent> events;  ///< oldest first (ring survivors)
  std::uint64_t dropped = 0;            ///< overwritten by ring overflow
  obs::RunProfile profile;              ///< wall-clock dispatch throughput
};

struct AggregatedMetrics {
  Aggregate normalized_cost_pct;
  Aggregate unavailability_pct;
  Aggregate forced_per_hour;
  Aggregate planned_reverse_per_hour;
  Aggregate downtime_s;
  Aggregate cancelled_planned;
  int runs = 0;
  std::vector<RunMetrics> per_run;  ///< in seed order
  /// One entry per run, in seed order, when capture_traces() was requested
  /// (empty otherwise). Only populated by run(), not run_with().
  std::vector<SeedTrace> traces;
};

/// Aggregates per-run metrics (in seed order) into the struct above — the
/// one aggregation path shared by ExperimentRunner and SweepRunner, so a
/// sweep's tables are bit-identical to per-arm runner calls.
[[nodiscard]] AggregatedMetrics aggregate_runs(std::vector<RunMetrics> results);

/// The seed of run `index` under `base_seed` — every runner derives per-run
/// seeds exactly this way, so memoized traces and printed tables line up
/// across harnesses.
[[nodiscard]] constexpr std::uint64_t run_seed(std::uint64_t base_seed,
                                               int index) noexcept {
  return base_seed + static_cast<std::uint64_t>(index) * 7919u;
}

class ExperimentRunner {
 public:
  /// `runs` independent seeds derived from `base_seed`.
  explicit ExperimentRunner(int runs = 5, std::uint64_t base_seed = 9001,
                            Execution execution = Execution::kParallel);

  /// Opt into per-seed trace capture: each run() seed records its events
  /// into a ring buffer of `ring_capacity` and reports them (with the wall
  /// clock profile) in AggregatedMetrics::traces, in seed order.
  ExperimentRunner& capture_traces(std::size_t ring_capacity = 1 << 16);

  /// Opt into per-seed market-trace memoization: run() resolves each seed's
  /// market traces through `cache` instead of regenerating them, so
  /// repeated run() calls over the same scenario (a multi-arm bench) build
  /// the traces once per seed. Results are unchanged; only work is saved.
  ExperimentRunner& memoize_traces(std::shared_ptr<sched::TraceCache> cache);

  /// Runs `config` against per-seed variants of `scenario` and aggregates.
  [[nodiscard]] AggregatedMetrics run(const sched::Scenario& scenario,
                                      const sched::SchedulerConfig& config) const;

  /// Generic form: `body(seed)` produces the per-run metrics.
  [[nodiscard]] AggregatedMetrics run_with(
      const std::function<RunMetrics(std::uint64_t seed)>& body) const;

 private:
  [[nodiscard]] AggregatedMetrics run_indexed(
      const std::function<RunMetrics(int index, std::uint64_t seed)>& body) const;

  int runs_;
  std::uint64_t base_seed_;
  Execution execution_;
  std::size_t trace_capacity_ = 0;  ///< 0 = no capture
  std::shared_ptr<sched::TraceCache> trace_cache_;  ///< null = generate inline
};

}  // namespace spothost::metrics
