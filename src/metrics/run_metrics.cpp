#include "metrics/run_metrics.hpp"

#include <algorithm>

#include "cloud/billing.hpp"

namespace spothost::metrics {

RunMetrics compute_run_metrics(const cloud::CloudProvider& provider,
                               const sched::CloudScheduler& scheduler,
                               const workload::AlwaysOnService& service,
                               sim::SimTime horizon, double baseline_od_price) {
  RunMetrics m;
  m.horizon_hours = sim::to_hours(horizon);

  const int units_needed = scheduler.units_needed();
  for (const auto& record : provider.ledger().records()) {
    m.total_cost += record.cost;
    // Packing assumption (Sec. 4, multi-market): a larger server hosts
    // capacity_units nested VMs; this service is attributed its share.
    const int capacity = cloud::type_info(record.market.size).capacity_units;
    const double share =
        std::min(1.0, static_cast<double>(units_needed) / capacity);
    m.attributed_cost += record.cost * share;
  }
  m.baseline_od_cost = cloud::on_demand_cost(baseline_od_price, 0, horizon);
  if (m.baseline_od_cost > 0) {
    m.normalized_cost_pct = 100.0 * m.attributed_cost / m.baseline_od_cost;
  }

  const auto& avail = service.availability();
  m.unavailability_pct = avail.unavailability_percent();
  m.downtime_s = sim::to_seconds(avail.total_downtime());
  m.degraded_s = sim::to_seconds(avail.total_degraded());
  m.longest_outage_s = sim::to_seconds(avail.longest_outage());
  m.outages = static_cast<int>(avail.outage_count());

  const auto stats = scheduler.stats();
  m.forced = stats.forced;
  m.planned = stats.planned;
  m.reverse = stats.reverse;
  m.cancelled_planned = stats.cancelled_planned;
  m.market_switches = stats.market_switches;
  m.retries = stats.retries;
  m.degraded_entries = stats.degraded_entries;
  if (m.horizon_hours > 0) {
    m.forced_per_hour = stats.forced / m.horizon_hours;
    m.planned_reverse_per_hour = (stats.planned + stats.reverse) / m.horizon_hours;
  }
  return m;
}

}  // namespace spothost::metrics
