// Per-run metrics: the quantities plotted in every evaluation figure.
#pragma once

#include "cloud/provider.hpp"
#include "sched/scheduler.hpp"
#include "workload/service.hpp"

namespace spothost::metrics {

struct RunMetrics {
  // --- cost -------------------------------------------------------------
  double total_cost = 0.0;       ///< raw ledger sum ($)
  double attributed_cost = 0.0;  ///< ledger sum pro-rated by packing share ($)
  double baseline_od_cost = 0.0; ///< on-demand-only cost over the horizon ($)
  double normalized_cost_pct = 0.0;  ///< attributed / baseline * 100 (Figs. 6a, 8a, 9a, 11a)

  // --- availability ------------------------------------------------------
  double unavailability_pct = 0.0;  ///< Figs. 6b, 7, 8c, 9c, 11b
  double downtime_s = 0.0;
  double degraded_s = 0.0;
  double longest_outage_s = 0.0;
  int outages = 0;

  // --- migrations ----------------------------------------------------------
  int forced = 0;
  int planned = 0;
  int reverse = 0;
  int cancelled_planned = 0;
  int market_switches = 0;
  double forced_per_hour = 0.0;           ///< Fig. 6c
  double planned_reverse_per_hour = 0.0;  ///< Fig. 6d

  // --- fault recovery (src/faults) ---------------------------------------
  int faults_injected = 0;   ///< injector hits (filled by run_hosting_scenario)
  int retries = 0;           ///< fault-recovery retries scheduled
  int degraded_entries = 0;  ///< graceful-degradation fallbacks taken

  double horizon_hours = 0.0;
};

/// Assembles metrics after a run. `baseline_od_price` is the $/hr of the
/// normalization baseline (the home region's on-demand price — or, for
/// multi-region scenarios, the lowest on-demand price across the allowed
/// regions, per Sec. 4.5).
RunMetrics compute_run_metrics(const cloud::CloudProvider& provider,
                               const sched::CloudScheduler& scheduler,
                               const workload::AlwaysOnService& service,
                               sim::SimTime horizon, double baseline_od_price);

}  // namespace spothost::metrics
