#include "metrics/sweep.hpp"

#include <future>
#include <stdexcept>
#include <utility>

#include "exec/thread_pool.hpp"

namespace spothost::metrics {

SweepRunner::SweepRunner(int runs, std::uint64_t base_seed, Execution execution)
    : runs_(runs),
      base_seed_(base_seed),
      execution_(execution),
      cache_(std::make_shared<sched::TraceCache>()) {
  if (runs_ <= 0) throw std::invalid_argument("SweepRunner: runs must be > 0");
}

int SweepRunner::add_arm(std::string label, sched::Scenario scenario,
                         sched::SchedulerConfig config) {
  arms_.push_back(
      SweepArm{std::move(label), std::move(scenario), std::move(config)});
  return static_cast<int>(arms_.size()) - 1;
}

std::vector<AggregatedMetrics> SweepRunner::run_all() const {
  const std::size_t n_arms = arms_.size();
  const std::size_t n_runs = static_cast<std::size_t>(runs_);
  std::vector<std::vector<RunMetrics>> results(n_arms);
  for (auto& arm_results : results) arm_results.resize(n_runs);

  auto cell = [this](const SweepArm& arm, int run_index) {
    sched::Scenario s = arm.scenario;
    s.seed = seed_for(run_index);
    return run_hosting_scenario(s, arm.config, cache_->get(s));
  };

  if (execution_ == Execution::kParallel) {
    // One task per cell on the shared fixed-size pool: worker threads stay
    // busy across arm boundaries, and peak thread count stays at the pool
    // size regardless of arms * runs. Cells land in preassigned (arm, seed)
    // slots, so aggregation order — and thus every printed digit — matches
    // serial execution.
    auto& pool = exec::ThreadPool::shared();
    std::vector<std::future<RunMetrics>> futures;
    futures.reserve(n_arms * n_runs);
    for (std::size_t a = 0; a < n_arms; ++a) {
      for (int i = 0; i < runs_; ++i) {
        futures.push_back(
            pool.submit([&cell, this, a, i] { return cell(arms_[a], i); }));
      }
    }
    std::size_t f = 0;
    for (std::size_t a = 0; a < n_arms; ++a) {
      for (std::size_t i = 0; i < n_runs; ++i) {
        results[a][i] = futures[f++].get();
      }
    }
  } else {
    for (std::size_t a = 0; a < n_arms; ++a) {
      for (int i = 0; i < runs_; ++i) {
        results[a][static_cast<std::size_t>(i)] = cell(arms_[a], i);
      }
    }
  }

  std::vector<AggregatedMetrics> aggregates;
  aggregates.reserve(n_arms);
  for (auto& arm_results : results) {
    aggregates.push_back(aggregate_runs(std::move(arm_results)));
  }
  return aggregates;
}

std::shared_ptr<const sched::MarketTraceSet> SweepRunner::traces_for(
    const sched::Scenario& scenario, int run_index) const {
  sched::Scenario s = scenario;
  s.seed = seed_for(run_index);
  return cache_->get(s);
}

}  // namespace spothost::metrics
