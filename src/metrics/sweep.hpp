// Sweep execution engine: declare every configuration arm of a figure or
// ablation up front, then fan all (arm x seed) cells across the shared
// worker pool at once.
//
// Compared with calling ExperimentRunner once per arm, a sweep
//   * keeps the machine busy across arm boundaries — the pool schedules
//     arms*runs cells instead of draining between arms, and
//   * memoizes market traces — cells that share (scenario, seed) share one
//     generated MarketTraceSet (fig08 regenerates each region's traces six
//     times without this).
// Per-cell seeds (run_seed) and aggregation (aggregate_runs) are exactly
// ExperimentRunner's, so every printed table is byte-identical to the
// serial per-arm harness.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "metrics/experiment.hpp"
#include "sched/market_traces.hpp"

namespace spothost::metrics {

/// One configuration arm: a label for reporting plus the (scenario, config)
/// pair to run under every seed.
struct SweepArm {
  std::string label;
  sched::Scenario scenario;
  sched::SchedulerConfig config;
};

class SweepRunner {
 public:
  explicit SweepRunner(int runs = 5, std::uint64_t base_seed = 9001,
                       Execution execution = Execution::kParallel);

  /// Declares an arm; returns its index into run_all()'s result vector.
  int add_arm(std::string label, sched::Scenario scenario,
              sched::SchedulerConfig config);

  [[nodiscard]] int arm_count() const noexcept {
    return static_cast<int>(arms_.size());
  }
  [[nodiscard]] const SweepArm& arm(int index) const {
    return arms_.at(static_cast<std::size_t>(index));
  }
  [[nodiscard]] int runs() const noexcept { return runs_; }
  [[nodiscard]] std::uint64_t seed_for(int run_index) const noexcept {
    return run_seed(base_seed_, run_index);
  }

  /// Runs every (arm x seed) cell — all at once on the shared pool under
  /// Execution::kParallel — and returns per-arm aggregates in add_arm
  /// order. Callable repeatedly; traces stay memoized across calls.
  [[nodiscard]] std::vector<AggregatedMetrics> run_all() const;

  /// The cache backing this sweep's market-trace memoization. Shared with
  /// any ExperimentRunner via memoize_traces() to pool generations.
  [[nodiscard]] const std::shared_ptr<sched::TraceCache>& trace_cache()
      const noexcept {
    return cache_;
  }

  /// The memoized trace set of `scenario` under seed_for(run_index) —
  /// a cache hit after run_all(). Lets benches derive trace statistics
  /// (price correlations, stddevs) without building another World.
  [[nodiscard]] std::shared_ptr<const sched::MarketTraceSet> traces_for(
      const sched::Scenario& scenario, int run_index = 0) const;

 private:
  int runs_;
  std::uint64_t base_seed_;
  Execution execution_;
  std::vector<SweepArm> arms_;
  std::shared_ptr<sched::TraceCache> cache_;
};

}  // namespace spothost::metrics
