#include "metrics/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace spothost::metrics {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: no headers");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_pm(double mean, double stddev, int precision) {
  return fmt(mean, precision) + " +- " + fmt(stddev, precision);
}

void print_banner(std::ostream& out, const std::string& title) {
  out << "\n== " << title << " ==\n\n";
}

}  // namespace spothost::metrics
