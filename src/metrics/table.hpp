// Plain-text table/series rendering for the benchmark harness: every bench
// binary prints the rows/series of its paper table or figure through these.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace spothost::metrics {

/// Column-aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule; columns sized to the widest cell.
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("%.3f" style).
std::string fmt(double value, int precision = 3);

/// "mean +- stddev" rendering for aggregated metrics.
std::string fmt_pm(double mean, double stddev, int precision = 3);

/// Section banner: "== title ==" with a trailing blank line.
void print_banner(std::ostream& out, const std::string& title);

}  // namespace spothost::metrics
