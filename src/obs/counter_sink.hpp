// Aggregating counter sink: counts events per (kind, code) pair. This is
// the backing store for sched::SchedulerStats — the scheduler feeds every
// event it emits through one of these, and stats() is *derived* from the
// counters, so the end-of-run aggregates and the trace stream can never
// disagree.
#pragma once

#include <array>
#include <cstdint>

#include "obs/sink.hpp"

namespace spothost::obs {

class CounterSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override {
    const auto k = static_cast<std::size_t>(event.kind);
    if (k >= kEventKindCount) return;
    ++totals_[k];
    if (event.code < kMaxCodes) ++by_code_[k][event.code];
  }

  /// Events of `kind`, any code.
  [[nodiscard]] std::uint64_t count(EventKind kind) const noexcept {
    const auto k = static_cast<std::size_t>(kind);
    return k < kEventKindCount ? totals_[k] : 0;
  }

  /// Events of `kind` with exactly `code`.
  [[nodiscard]] std::uint64_t count(EventKind kind, std::uint8_t c) const noexcept {
    const auto k = static_cast<std::size_t>(kind);
    return (k < kEventKindCount && c < kMaxCodes) ? by_code_[k][c] : 0;
  }

  /// All events seen, any kind.
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto v : totals_) sum += v;
    return sum;
  }

  void clear() {
    totals_ = {};
    by_code_ = {};
  }

 private:
  std::array<std::uint64_t, kEventKindCount> totals_{};
  std::array<std::array<std::uint64_t, kMaxCodes>, kEventKindCount> by_code_{};
};

}  // namespace spothost::obs
