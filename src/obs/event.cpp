#include "obs/event.hpp"

#include <array>
#include <charconv>
#include <cstdlib>

namespace spothost::obs {

namespace {

constexpr std::array<std::string_view, kEventKindCount> kKindNames{
    "price_change",         "price_crossing",      "bid_placed",
    "spot_request_failed",  "acquisition",         "revocation_warning",
    "migration_begin",      "migration_transfer",  "migration_switchover",
    "migration_abandon",    "market_switch",       "outage_begin",
    "outage_end",           "degraded_end",        "billing_hour_tick",
    "fault_injected",       "retry_scheduled",     "degraded_mode",
};

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xf];
          out += hex[static_cast<unsigned char>(c) & 0xf];
        } else {
          out += c;
        }
        break;
    }
  }
}

void append_double(std::string& out, double v) {
  // Shortest representation that round-trips exactly: deterministic across
  // runs (the byte-identity guarantee) and lossless on parse.
  std::array<char, 32> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  out.append(buf.data(), res.ptr);
}

void append_int(std::string& out, std::int64_t v) {
  std::array<char, 24> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  out.append(buf.data(), res.ptr);
}

void append_uint(std::string& out, std::uint64_t v) {
  std::array<char, 24> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  out.append(buf.data(), res.ptr);
}

// --- minimal parser for our own fixed-key-order output ---------------------

bool consume(std::string_view& in, std::string_view token) {
  if (in.substr(0, token.size()) != token) return false;
  in.remove_prefix(token.size());
  return true;
}

bool parse_int(std::string_view& in, std::int64_t& out) {
  const auto res = std::from_chars(in.data(), in.data() + in.size(), out);
  if (res.ec != std::errc{}) return false;
  in.remove_prefix(static_cast<std::size_t>(res.ptr - in.data()));
  return true;
}

bool parse_uint(std::string_view& in, std::uint64_t& out) {
  const auto res = std::from_chars(in.data(), in.data() + in.size(), out);
  if (res.ec != std::errc{}) return false;
  in.remove_prefix(static_cast<std::size_t>(res.ptr - in.data()));
  return true;
}

bool parse_double(std::string_view& in, double& out) {
  const auto res = std::from_chars(in.data(), in.data() + in.size(), out);
  if (res.ec != std::errc{}) return false;
  in.remove_prefix(static_cast<std::size_t>(res.ptr - in.data()));
  return true;
}

bool parse_string(std::string_view& in, std::string& out) {
  if (!consume(in, "\"")) return false;
  out.clear();
  while (!in.empty()) {
    const char c = in.front();
    in.remove_prefix(1);
    if (c == '"') return true;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (in.empty()) return false;
    const char esc = in.front();
    in.remove_prefix(1);
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (in.size() < 4) return false;
        const std::string hex(in.substr(0, 4));
        in.remove_prefix(4);
        out += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated string
}

}  // namespace

std::string_view to_string(EventKind kind) noexcept {
  const auto i = static_cast<std::size_t>(kind);
  return i < kKindNames.size() ? kKindNames[i] : std::string_view{"unknown"};
}

std::optional<EventKind> event_kind_from_string(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kKindNames.size(); ++i) {
    if (kKindNames[i] == name) return static_cast<EventKind>(i);
  }
  return std::nullopt;
}

std::string_view code_label(EventKind kind, std::uint8_t c) noexcept {
  switch (kind) {
    case EventKind::kBidPlaced:
    case EventKind::kAcquisition:
      return c == code::kOnDemand ? "on_demand" : "spot";
    case EventKind::kPriceCrossing:
      return c == code::kBelow ? "below" : "above";
    case EventKind::kMigrationBegin:
    case EventKind::kMigrationTransfer:
    case EventKind::kMigrationSwitchover:
      switch (c) {
        case code::kForced: return "forced";
        case code::kPlanned: return "planned";
        case code::kReverse: return "reverse";
        default: return "unknown";
      }
    case EventKind::kMigrationAbandon:
      switch (c) {
        case code::kAbandonPriceRecovered: return "price_recovered";
        case code::kAbandonDestRevoked: return "dest_revoked";
        case code::kAbandonPreempted: return "preempted";
        case code::kAbandonFault: return "fault";
        default: return "unknown";
      }
    case EventKind::kOutageBegin:
      switch (c) {
        case code::kCauseForcedMigration: return "forced_migration";
        case code::kCausePlannedMigration: return "planned_migration";
        case code::kCauseReverseMigration: return "reverse_migration";
        case code::kCauseSpotLoss: return "spot_loss";
        default: return "other";
      }
    case EventKind::kFaultInjected:
      switch (c) {
        case code::kFaultAllocCapacity: return "alloc_insufficient_capacity";
        case code::kFaultAllocTimeout: return "alloc_timeout";
        case code::kFaultWarningDelayed: return "warning_delayed";
        case code::kFaultWarningDropped: return "warning_dropped";
        case code::kFaultLiveCopyAbort: return "live_copy_abort";
        case code::kFaultCheckpointStall: return "checkpoint_stall";
        default: return "unknown";
      }
    case EventKind::kRetryScheduled:
      return c == code::kRetryForcedDest ? "forced_dest" : "acquire";
    case EventKind::kDegradedMode:
      switch (c) {
        case code::kDegradeOnDemandFallback: return "on_demand_fallback";
        case code::kDegradeLiveToCkpt: return "live_to_ckpt";
        case code::kDegradeStallAbsorbed: return "stall_absorbed";
        case code::kDegradeSlowRetry: return "slow_retry";
        default: return "unknown";
      }
    default:
      return {};
  }
}

std::string to_jsonl(const TraceEvent& e) {
  std::string out;
  out.reserve(128 + e.market.size() + e.note.size());
  out += "{\"t\":";
  append_int(out, e.t);
  out += ",\"kind\":\"";
  out += to_string(e.kind);
  out += "\",\"code\":";
  append_uint(out, e.code);
  out += ",\"instance\":";
  append_uint(out, e.instance);
  out += ",\"value\":";
  append_double(out, e.value);
  out += ",\"aux\":";
  append_double(out, e.aux);
  out += ",\"market\":\"";
  append_escaped(out, e.market);
  out += "\",\"note\":\"";
  append_escaped(out, e.note);
  out += "\"}";
  return out;
}

std::optional<TraceEvent> from_jsonl(std::string_view line) {
  TraceEvent e;
  std::string kind_name;
  std::uint64_t code_v = 0;
  if (!consume(line, "{\"t\":")) return std::nullopt;
  if (!parse_int(line, e.t)) return std::nullopt;
  if (!consume(line, ",\"kind\":")) return std::nullopt;
  if (!parse_string(line, kind_name)) return std::nullopt;
  const auto kind = event_kind_from_string(kind_name);
  if (!kind) return std::nullopt;
  e.kind = *kind;
  if (!consume(line, ",\"code\":")) return std::nullopt;
  if (!parse_uint(line, code_v) || code_v > 0xff) return std::nullopt;
  e.code = static_cast<std::uint8_t>(code_v);
  if (!consume(line, ",\"instance\":")) return std::nullopt;
  if (!parse_uint(line, e.instance)) return std::nullopt;
  if (!consume(line, ",\"value\":")) return std::nullopt;
  if (!parse_double(line, e.value)) return std::nullopt;
  if (!consume(line, ",\"aux\":")) return std::nullopt;
  if (!parse_double(line, e.aux)) return std::nullopt;
  if (!consume(line, ",\"market\":")) return std::nullopt;
  if (!parse_string(line, e.market)) return std::nullopt;
  if (!consume(line, ",\"note\":")) return std::nullopt;
  if (!parse_string(line, e.note)) return std::nullopt;
  if (!consume(line, "}")) return std::nullopt;
  return e;
}

}  // namespace spothost::obs
