// Typed trace events: the run-observability vocabulary for spothost.
//
// Every interesting state transition in a hosting run — a price tick, a bid,
// a revocation warning, each phase of a migration, an outage — is recorded
// as one TraceEvent and pushed through the TraceSink interface (sink.hpp).
// Events carry *simulation* time only, never wall-clock, so two runs with
// the same seed produce byte-identical event streams.
//
// The struct is deliberately flat and self-contained (plain integers,
// doubles, and strings): obs depends only on simcore/time.hpp, so every
// other layer (cloud, sched, workload, metrics) can emit without dependency
// cycles. Kind-specific meaning of `code`, `value`, and `aux` is documented
// per kind below.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "simcore/time.hpp"

namespace spothost::obs {

enum class EventKind : std::uint8_t {
  kPriceChange = 0,      ///< market tick. value = new spot price
  kPriceCrossing,        ///< effective price crossed the on-demand threshold.
                         ///< code = crossing direction; value = effective
                         ///< price, aux = threshold
  kBidPlaced,            ///< server requested. code = billing mode; value =
                         ///< bid (spot) or on-demand price; instance = request
  kSpotRequestFailed,    ///< spot request rejected at grant time.
                         ///< value = price at grant, aux = bid
  kAcquisition,          ///< instance granted and running. code = billing
                         ///< mode; value = price at launch
  kRevocationWarning,    ///< provider warning. value = price that crossed the
                         ///< bid, aux = termination time (seconds)
  kMigrationBegin,       ///< code = migration class; market = target (forced:
                         ///< source); value = 1 if target is on-demand;
                         ///< forced: aux = termination time (seconds)
  kMigrationTransfer,    ///< transfer started. code = class; value = prepare
                         ///< seconds (pre-jitter plan)
  kMigrationSwitchover,  ///< migration completed. code = class; market =
                         ///< destination; value = planned downtime seconds
  kMigrationAbandon,     ///< in-flight migration walked away from.
                         ///< code = abandon reason
  kMarketSwitch,         ///< planned move landed on another *spot* market
  kOutageBegin,          ///< code = outage cause
  kOutageEnd,            ///< value = 1 if a degraded window follows
  kDegradedEnd,          ///< lazy-restore degraded window ended
  kBillingHourTick,      ///< on-demand billing-hour reverse check fired.
                         ///< value = on-demand threshold price
  kFaultInjected,        ///< the fault-injection layer fired. code = the
                         ///< faults::FaultKind; value = opportunity index
  kRetryScheduled,       ///< fault-recovery retry scheduled. code = retry
                         ///< context; value = attempt #, aux = backoff seconds
  kDegradedMode,         ///< graceful-degradation fallback taken.
                         ///< code = degradation kind
};

inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kDegradedMode) + 1;

/// Kind-specific `code` values. Kept as plain constants (not per-kind enums)
/// so sinks can aggregate over (kind, code) pairs uniformly.
namespace code {
inline constexpr std::uint8_t kNone = 0;
// kBidPlaced / kAcquisition: billing mode of the server.
inline constexpr std::uint8_t kSpot = 0;
inline constexpr std::uint8_t kOnDemand = 1;
// kPriceCrossing: direction relative to the on-demand threshold.
inline constexpr std::uint8_t kAbove = 0;
inline constexpr std::uint8_t kBelow = 1;
// kMigration{Begin,Transfer,Switchover}: migration class.
inline constexpr std::uint8_t kForced = 0;
inline constexpr std::uint8_t kPlanned = 1;
inline constexpr std::uint8_t kReverse = 2;
// kMigrationAbandon: why the in-flight migration was dropped.
inline constexpr std::uint8_t kAbandonPriceRecovered = 0;  ///< spike cancel
inline constexpr std::uint8_t kAbandonDestRevoked = 1;
inline constexpr std::uint8_t kAbandonPreempted = 2;  ///< forced flow took over
inline constexpr std::uint8_t kAbandonFault = 3;  ///< injected migration fault
// kOutageBegin: cause (mirrors workload::OutageCause).
inline constexpr std::uint8_t kCauseForcedMigration = 0;
inline constexpr std::uint8_t kCausePlannedMigration = 1;
inline constexpr std::uint8_t kCauseReverseMigration = 2;
inline constexpr std::uint8_t kCauseSpotLoss = 3;
inline constexpr std::uint8_t kCauseOther = 4;
// kFaultInjected: which fault fired (mirrors faults::FaultKind).
inline constexpr std::uint8_t kFaultAllocCapacity = 0;
inline constexpr std::uint8_t kFaultAllocTimeout = 1;
inline constexpr std::uint8_t kFaultWarningDelayed = 2;
inline constexpr std::uint8_t kFaultWarningDropped = 3;
inline constexpr std::uint8_t kFaultLiveCopyAbort = 4;
inline constexpr std::uint8_t kFaultCheckpointStall = 5;
// kRetryScheduled: which recovery loop scheduled the retry.
inline constexpr std::uint8_t kRetryAcquire = 0;   ///< CloudScheduler acquisition
inline constexpr std::uint8_t kRetryForcedDest = 1;  ///< forced-flow destination
// kDegradedMode: which graceful-degradation fallback was taken.
inline constexpr std::uint8_t kDegradeOnDemandFallback = 0;  ///< spot -> on-demand
inline constexpr std::uint8_t kDegradeLiveToCkpt = 1;  ///< live abort -> CKPT
inline constexpr std::uint8_t kDegradeStallAbsorbed = 2;  ///< stall -> degraded
inline constexpr std::uint8_t kDegradeSlowRetry = 3;  ///< retries exhausted
}  // namespace code

/// Highest `code` value any kind uses, plus one (sizes counter tables).
inline constexpr std::size_t kMaxCodes = 8;

struct TraceEvent {
  sim::SimTime t = 0;  ///< simulation time (ms) — never wall-clock
  EventKind kind = EventKind::kPriceChange;
  std::uint8_t code = code::kNone;  ///< kind-specific discriminator
  std::uint64_t instance = 0;       ///< instance id, 0 = none
  double value = 0.0;               ///< kind-specific (see EventKind docs)
  double aux = 0.0;                 ///< kind-specific secondary value
  std::string market;               ///< "region/size", empty = none
  std::string note;                 ///< optional freeform detail

  bool operator==(const TraceEvent&) const = default;
};

/// Stable snake_case name, used in the JSONL encoding.
std::string_view to_string(EventKind kind) noexcept;

/// Inverse of to_string; nullopt for unknown names.
std::optional<EventKind> event_kind_from_string(std::string_view name) noexcept;

/// Human-readable label for a (kind, code) pair ("forced", "on_demand", ...);
/// empty when the kind has no code vocabulary.
std::string_view code_label(EventKind kind, std::uint8_t c) noexcept;

/// One-line JSON encoding with a fixed key order and shortest-round-trip
/// doubles, so equal events always serialize to identical bytes:
///   {"t":1234,"kind":"bid_placed","code":0,"instance":3,"value":0.24,
///    "aux":0,"market":"us-east-1a/small","note":""}
std::string to_jsonl(const TraceEvent& event);

/// Parses a line produced by to_jsonl; nullopt on malformed input.
std::optional<TraceEvent> from_jsonl(std::string_view line);

}  // namespace spothost::obs
