#include "obs/jsonl_sink.hpp"

#include <stdexcept>

namespace spothost::obs {

JsonlSink::JsonlSink(std::ostream& out) : out_(&out) {}

JsonlSink::JsonlSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::trunc)),
      out_(owned_.get()) {
  if (!owned_->is_open()) {
    throw std::runtime_error("JsonlSink: cannot open " + path);
  }
}

void JsonlSink::on_event(const TraceEvent& event) {
  *out_ << to_jsonl(event) << '\n';
  ++written_;
}

void JsonlSink::flush() { out_->flush(); }

}  // namespace spothost::obs
