// JSONL file/stream sink: one event per line in the stable encoding of
// obs::to_jsonl, for offline analysis (jq, pandas, grep). Because the
// encoding is deterministic and timestamps are sim-time, two runs with the
// same seed write byte-identical files.
#pragma once

#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "obs/sink.hpp"

namespace spothost::obs {

class JsonlSink final : public TraceSink {
 public:
  /// Writes to a stream owned by the caller (must outlive the sink).
  explicit JsonlSink(std::ostream& out);

  /// Opens (truncates) `path` and writes to it; throws on open failure.
  explicit JsonlSink(const std::string& path);

  void on_event(const TraceEvent& event) override;
  void flush() override;

  [[nodiscard]] std::uint64_t events_written() const noexcept { return written_; }

 private:
  std::unique_ptr<std::ofstream> owned_;  ///< set when constructed from a path
  std::ostream* out_;
  std::uint64_t written_ = 0;
};

}  // namespace spothost::obs
