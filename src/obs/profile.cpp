#include "obs/profile.hpp"

#include "simcore/simulation.hpp"

namespace spothost::obs {

ProfileScope::ProfileScope(const sim::Simulation& simulation, RunProfile& out)
    : simulation_(simulation),
      out_(out),
      start_(std::chrono::steady_clock::now()),
      dispatched_at_start_(simulation.dispatched()) {}

ProfileScope::~ProfileScope() {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  out_.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
  out_.events_dispatched = simulation_.dispatched() - dispatched_at_start_;
}

}  // namespace spothost::obs
