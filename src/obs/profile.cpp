#include "obs/profile.hpp"

#include "simcore/engine.hpp"

namespace spothost::obs {

ProfileScope::ProfileScope(const sim::Engine& engine, RunProfile& out)
    : engine_(engine),
      out_(out),
      start_(std::chrono::steady_clock::now()),
      dispatched_at_start_(engine.dispatched()) {}

ProfileScope::~ProfileScope() {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  out_.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
  out_.events_dispatched = engine_.dispatched() - dispatched_at_start_;
}

}  // namespace spothost::obs
