// Wall-clock profiling of simulation runs: how many events were dispatched
// and how fast, in real time. Deliberately separate from the trace-event
// stream — wall-clock numbers are nondeterministic, and mixing them into
// TraceEvents would break the byte-identical-trace guarantee.
#pragma once

#include <chrono>
#include <cstdint>

namespace spothost::sim {
class Engine;
}

namespace spothost::obs {

struct RunProfile {
  double wall_seconds = 0.0;
  std::uint64_t events_dispatched = 0;

  [[nodiscard]] double events_per_second() const noexcept {
    return wall_seconds > 0.0
               ? static_cast<double>(events_dispatched) / wall_seconds
               : 0.0;
  }
};

/// RAII scope around an engine run (simulated or wall-clock): records the
/// wall time elapsed and the events dispatched between construction and
/// destruction into `out`.
class ProfileScope {
 public:
  ProfileScope(const sim::Engine& engine, RunProfile& out);
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;
  ~ProfileScope();

 private:
  const sim::Engine& engine_;
  RunProfile& out_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t dispatched_at_start_;
};

}  // namespace spothost::obs
