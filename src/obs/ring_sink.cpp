#include "obs/ring_sink.hpp"

#include <stdexcept>

namespace spothost::obs {

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("RingBufferSink: capacity must be > 0");
  }
  buffer_.reserve(capacity_);
}

void RingBufferSink::on_event(const TraceEvent& event) {
  if (size_ < capacity_) {
    buffer_.push_back(event);
    ++size_;
    return;
  }
  buffer_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> RingBufferSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(buffer_[(head_ + i) % size_]);
  }
  return out;
}

void RingBufferSink::clear() {
  buffer_.clear();
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

}  // namespace spothost::obs
