// In-memory ring-buffer sink: bounded capture for tests and interactive
// exploration. When full, the oldest event is overwritten and counted in
// dropped(); events() always returns the survivors in chronological order.
#pragma once

#include <cstddef>
#include <vector>

#include "obs/sink.hpp"

namespace spothost::obs {

class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 1 << 16);

  void on_event(const TraceEvent& event) override;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Events overwritten because the buffer was full.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Buffered events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  void clear();

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> buffer_;
  std::size_t head_ = 0;  ///< next write slot once the buffer has wrapped
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace spothost::obs
