// ShardTraceBuffer: per-shard trace capture for deterministic merge.
//
// The sharded engine (simcore/sharded_sim.hpp) runs shard lanes in parallel
// between barriers, but the observability contract is unchanged: sinks see
// one globally ordered stream, byte-identical to the serial run. Each lane
// therefore emits into its own ShardTraceBuffer during a parallel window —
// no lock, no cross-thread traffic — and at the barrier the engine splices
// the buffers downstream in global sequence order: it walks the merged
// dispatch log (ordered by (time, virtual global sequence)) and forwards
// each dispatch's trace slice via splice_to(). Outside windows the buffer is
// a transparent passthrough, so serial-phase events reach sinks immediately
// in emission order, exactly as a serial engine would deliver them.
//
// One buffer is single-writer: the owning lane's thread during a window, the
// barrier thread otherwise. The phase switch (set_passthrough) happens only
// on the barrier thread while no window is running.
#pragma once

#include <cstddef>
#include <vector>

#include "obs/sink.hpp"

namespace spothost::obs {

class ShardTraceBuffer final : public TraceSink {
 public:
  /// Capture mode (downstream == nullptr): on_event appends to the buffer.
  /// Passthrough mode: on_event forwards to `downstream` immediately.
  void set_passthrough(Tracer* downstream) noexcept { passthrough_ = downstream; }

  void on_event(const TraceEvent& event) override {
    if (passthrough_ != nullptr) {
      passthrough_->emit(event);
    } else {
      buffer_.push_back(event);
    }
  }

  /// Events captured since the last clear_buffered().
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size(); }

  /// Forwards buffer_[first, first + count) to `downstream` in capture
  /// order. The engine calls this once per merged dispatch-log entry, so the
  /// global output interleaves lanes deterministically.
  void splice_to(Tracer& downstream, std::size_t first, std::size_t count) {
    for (std::size_t i = first; i < first + count; ++i) {
      downstream.emit(buffer_[i]);
    }
  }

  /// Drops spliced events (capacity is kept for the next window).
  void clear_buffered() noexcept { buffer_.clear(); }

 private:
  Tracer* passthrough_ = nullptr;
  std::vector<TraceEvent> buffer_;
};

}  // namespace spothost::obs
