// TraceSink: the contract every event consumer implements, and Tracer, the
// lightweight fan-out dispatcher emitters hold a pointer to.
//
// Sink contract:
//  * on_event is called synchronously from the emitting component, in
//    simulation order — sinks must not re-enter the simulation;
//  * events arrive with non-decreasing `t` within one run;
//  * sinks are owned by the caller (the Tracer only borrows pointers);
//  * flush() is a hint for buffered sinks (e.g. file writers).
//
// Cost discipline: a component with no tracer attached pays one null-pointer
// check per candidate emission, and a Tracer with no sinks reports
// enabled() == false so emitters can skip event construction entirely.
#pragma once

#include <algorithm>
#include <vector>

#include "obs/event.hpp"

namespace spothost::obs {

class TraceSink {
 public:
  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;
  virtual ~TraceSink() = default;

  virtual void on_event(const TraceEvent& event) = 0;
  virtual void flush() {}
};

class Tracer {
 public:
  /// Attaches a sink (not owned; must outlive the Tracer or be removed).
  void add_sink(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  void remove_sink(TraceSink* sink) {
    sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
  }

  /// True when at least one sink is attached — emitters check this before
  /// building events whose construction is not free (string fields).
  [[nodiscard]] bool enabled() const noexcept { return !sinks_.empty(); }

  [[nodiscard]] std::size_t sink_count() const noexcept { return sinks_.size(); }

  void emit(const TraceEvent& event) {
    for (TraceSink* sink : sinks_) sink->on_event(event);
  }

  void flush() {
    for (TraceSink* sink : sinks_) sink->flush();
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace spothost::obs
