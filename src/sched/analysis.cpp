#include "sched/analysis.hpp"

#include <algorithm>
#include <stdexcept>

namespace spothost::sched {

TraceAnalysis analyze_trace(const trace::PriceTrace& price_trace, double pon,
                            double bid) {
  if (price_trace.empty()) throw std::invalid_argument("analyze_trace: empty trace");
  if (pon <= 0 || bid < pon) {
    throw std::invalid_argument("analyze_trace: need bid >= pon > 0");
  }
  const sim::SimTime from = price_trace.start();
  const sim::SimTime to = price_trace.end();

  TraceAnalysis a;
  bool in_excursion = false;
  bool excursion_hit_bid = false;
  sim::SimTime excursion_start = 0;
  double below_weighted = 0.0;
  sim::SimTime below_time = 0;

  trace::PriceCursor cursor;  // one monotone pass over the whole trace
  sim::SimTime t = from;
  while (t < to) {
    const double price = price_trace.price_at(t, cursor);
    const auto next = price_trace.next_change_after(t, cursor);
    const sim::SimTime segment_end = next ? std::min(next->time, to) : to;
    const sim::SimTime span = segment_end - t;

    if (price > pon) {
      if (!in_excursion) {
        in_excursion = true;
        excursion_hit_bid = false;
        excursion_start = t;
        ++a.excursions_above_pon;
      }
      if (price > bid) excursion_hit_bid = true;
      a.time_above_pon += span;
    } else {
      if (in_excursion) {
        in_excursion = false;
        if (excursion_hit_bid) ++a.excursions_above_bid;
        a.longest_excursion =
            std::max(a.longest_excursion, t - excursion_start);
      }
      below_weighted += price * static_cast<double>(span);
      below_time += span;
    }
    t = segment_end;
  }
  if (in_excursion) {
    if (excursion_hit_bid) ++a.excursions_above_bid;
    a.longest_excursion = std::max(a.longest_excursion, to - excursion_start);
  }
  const sim::SimTime horizon = to - from;
  a.fraction_below_pon =
      static_cast<double>(below_time) / static_cast<double>(horizon);
  a.mean_price_when_below =
      below_time > 0 ? below_weighted / static_cast<double>(below_time) : 0.0;
  return a;
}

HostingEstimate estimate_hosting(const trace::PriceTrace& price_trace, double pon,
                                 const EstimateParams& params) {
  virt::VmSpec spec = params.vm_spec;
  if (spec.memory_gb <= 0) spec = virt::default_spec_for_memory(1.7, 8.0);

  const double bid = params.bid_multiple * pon;
  HostingEstimate e;
  e.trace_stats = analyze_trace(price_trace, pon, bid);
  const TraceAnalysis& a = e.trace_stats;

  const double horizon_hours =
      sim::to_hours(price_trace.end() - price_trace.start());

  // --- cost ----------------------------------------------------------------
  // Below p_on: pay roughly the running spot price. Above p_on: parked on
  // on-demand at p_on. Each excursion adds one round trip's billing overlap.
  const double spot_hours = a.fraction_below_pon * horizon_hours;
  const double od_hours = horizon_hours - spot_hours;
  double cost = a.mean_price_when_below * spot_hours + pon * od_hours;
  cost += a.excursions_above_pon * params.migration_overlap_hours * pon;
  e.normalized_cost_pct = 100.0 * cost / (pon * horizon_hours);

  // --- availability ----------------------------------------------------------
  const virt::MigrationPlanner planner(params.combo, params.mech,
                                       virt::NetworkModel{});
  const auto forced =
      planner.plan(virt::MigrationClass::kForced, spec, "analysis", "analysis");
  const auto planned =
      planner.plan(virt::MigrationClass::kPlanned, spec, "analysis", "analysis");
  const auto reverse =
      planner.plan(virt::MigrationClass::kReverse, spec, "analysis", "analysis");

  const int forced_events = a.excursions_above_bid;
  const int planned_events = a.excursions_above_pon - a.excursions_above_bid;
  const int reverse_events = a.excursions_above_pon;  // every excursion ends

  const double downtime_s = forced_events * forced.downtime_s +
                            planned_events * planned.downtime_s +
                            reverse_events * reverse.downtime_s;
  e.unavailability_pct = 100.0 * downtime_s / (horizon_hours * 3600.0);
  e.forced_per_hour = forced_events / horizon_hours;
  e.planned_reverse_per_hour = (planned_events + reverse_events) / horizon_hours;
  return e;
}

}  // namespace spothost::sched
