// Closed-form what-if analysis of hosting on a given price trace.
//
// Answers, without running the simulator: "had I hosted on this market with
// this policy, roughly what would it have cost and how available would the
// service have been?" Useful against real EC2 price-history exports, for
// capacity planning, and as an independent cross-check of the simulator
// (tests assert the two agree within a small factor).
//
// The estimate walks the price path directly: time below p_on is billed at
// the spot price, excursions above p_on are billed at p_on (the scheduler
// parks on on-demand), each excursion contributes one planned + one reverse
// migration, and excursions whose price crosses the bid contribute a forced
// migration instead of a planned one. Per-event downtimes come from the
// same MigrationPlanner the scheduler uses.
#pragma once

#include "trace/price_trace.hpp"
#include "virt/mechanisms.hpp"

namespace spothost::sched {

/// Raw excursion statistics of a trace against a p_on / bid pair.
struct TraceAnalysis {
  int excursions_above_pon = 0;   ///< maximal intervals with price > p_on
  int excursions_above_bid = 0;   ///< those whose peak also crossed the bid
  sim::SimTime time_above_pon = 0;
  sim::SimTime longest_excursion = 0;
  double fraction_below_pon = 0.0;
  double mean_price_when_below = 0.0;  ///< $/hr average while price <= p_on
};

TraceAnalysis analyze_trace(const trace::PriceTrace& price_trace, double pon,
                            double bid);

struct EstimateParams {
  double bid_multiple = 4.0;  ///< proactive bid = multiple * p_on
  virt::MechanismCombo combo = virt::MechanismCombo::kCkptLazyLive;
  virt::MechanismParams mech = virt::typical_mechanism_params();
  virt::VmSpec vm_spec{};
  /// Billing-hour overlap paid per voluntary round trip (acquiring the
  /// destination before releasing the source), as a fraction of one hour.
  double migration_overlap_hours = 0.5;
};

struct HostingEstimate {
  double normalized_cost_pct = 0.0;
  double unavailability_pct = 0.0;
  double forced_per_hour = 0.0;
  double planned_reverse_per_hour = 0.0;
  TraceAnalysis trace_stats;
};

HostingEstimate estimate_hosting(const trace::PriceTrace& price_trace, double pon,
                                 const EstimateParams& params = {});

}  // namespace spothost::sched
