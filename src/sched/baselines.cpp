#include "sched/baselines.hpp"

#include "cloud/billing.hpp"

namespace spothost::sched {

double on_demand_only_cost(const cloud::CloudProvider& provider,
                           const cloud::MarketId& home_market, sim::SimTime horizon) {
  return cloud::on_demand_cost(provider.od_price(home_market), 0, horizon);
}

SchedulerConfig reactive_config(cloud::MarketId home_market) {
  return SchedulerConfigBuilder(std::move(home_market))
      .bid({.mode = BiddingMode::kReactive})
      .scope(MarketScope::kSingleMarket)
      .build();
}

SchedulerConfig proactive_config(cloud::MarketId home_market) {
  return SchedulerConfigBuilder(std::move(home_market))
      .bid({.mode = BiddingMode::kProactive, .proactive_multiple = 4.0})
      .scope(MarketScope::kSingleMarket)
      .build();
}

SchedulerConfig pure_spot_config(cloud::MarketId home_market) {
  return SchedulerConfigBuilder(std::move(home_market))
      .bid({.mode = BiddingMode::kReactive})  // bid = p_on
      .scope(MarketScope::kSingleMarket)
      .fallback(Fallback::kPureSpot)
      .build();
}

}  // namespace spothost::sched
