#include "sched/baselines.hpp"

#include "cloud/billing.hpp"

namespace spothost::sched {

double on_demand_only_cost(const cloud::CloudProvider& provider,
                           const cloud::MarketId& home_market, sim::SimTime horizon) {
  return cloud::on_demand_cost(provider.od_price(home_market), 0, horizon);
}

SchedulerConfig reactive_config(cloud::MarketId home_market) {
  SchedulerConfig cfg;
  cfg.bid.mode = BiddingMode::kReactive;
  cfg.home_market = std::move(home_market);
  cfg.scope = MarketScope::kSingleMarket;
  return cfg;
}

SchedulerConfig proactive_config(cloud::MarketId home_market) {
  SchedulerConfig cfg;
  cfg.bid.mode = BiddingMode::kProactive;
  cfg.bid.proactive_multiple = 4.0;
  cfg.home_market = std::move(home_market);
  cfg.scope = MarketScope::kSingleMarket;
  return cfg;
}

SchedulerConfig pure_spot_config(cloud::MarketId home_market) {
  SchedulerConfig cfg;
  cfg.bid.mode = BiddingMode::kReactive;  // bid = p_on
  cfg.home_market = std::move(home_market);
  cfg.scope = MarketScope::kSingleMarket;
  cfg.allow_on_demand = false;
  return cfg;
}

}  // namespace spothost::sched
