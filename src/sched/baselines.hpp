// Baselines the paper compares against, plus preset scheduler configs.
//
//  * on-demand only — the cost normalizer everywhere ("100 %");
//  * pure spot      — Fig. 11: no on-demand fallback, outages ride out the
//    price excursions;
//  * reactive / proactive presets for the Fig. 6 comparison.
#pragma once

#include "cloud/provider.hpp"
#include "sched/scheduler.hpp"

namespace spothost::sched {

/// Cost of hosting on a single on-demand server of the home size for the
/// whole horizon (every started hour billed).
double on_demand_only_cost(const cloud::CloudProvider& provider,
                           const cloud::MarketId& home_market, sim::SimTime horizon);

/// Preset: reactive bidding (bid = p_on), single market.
SchedulerConfig reactive_config(cloud::MarketId home_market);

/// Preset: proactive bidding (bid = 4 * p_on), single market.
SchedulerConfig proactive_config(cloud::MarketId home_market);

/// Preset: pure-spot baseline (bid = p_on, no on-demand fallback).
SchedulerConfig pure_spot_config(cloud::MarketId home_market);

}  // namespace spothost::sched
