#include "sched/bid_advisor.hpp"

#include <array>
#include <stdexcept>

namespace spothost::sched {
namespace {

constexpr std::array<double, 7> kDefaultMultiples{1.25, 1.5, 2.0, 3.0, 4.0,
                                                  6.0, 8.0};

}  // namespace

std::span<const double> default_bid_multiples() { return kDefaultMultiples; }

BidRecommendation recommend_bid(const trace::PriceTrace& price_trace, double pon,
                                double max_unavailability_pct,
                                std::span<const double> multiples,
                                const EstimateParams& base_params) {
  if (max_unavailability_pct < 0) {
    throw std::invalid_argument("recommend_bid: negative SLO");
  }
  if (multiples.empty()) multiples = default_bid_multiples();

  BidRecommendation best;
  bool have_best = false;
  for (const double multiple : multiples) {
    if (multiple <= 1.0) {
      throw std::invalid_argument("recommend_bid: multiples must exceed 1");
    }
    EstimateParams params = base_params;
    params.bid_multiple = multiple;
    BidCandidate candidate;
    candidate.multiple = multiple;
    candidate.estimate = estimate_hosting(price_trace, pon, params);
    candidate.meets_slo =
        candidate.estimate.unavailability_pct <= max_unavailability_pct;

    const bool better = [&] {
      if (!have_best) return true;
      if (candidate.meets_slo != best.slo_met) return candidate.meets_slo;
      if (candidate.meets_slo) {
        // Both feasible: cheaper wins.
        return candidate.estimate.normalized_cost_pct <
               best.estimate.normalized_cost_pct;
      }
      // Neither feasible: more available wins.
      return candidate.estimate.unavailability_pct <
             best.estimate.unavailability_pct;
    }();
    if (better) {
      best.multiple = candidate.multiple;
      best.estimate = candidate.estimate;
      best.slo_met = candidate.meets_slo;
      have_best = true;
    }
    best.candidates.push_back(std::move(candidate));
  }
  return best;
}

}  // namespace spothost::sched
