// Bid advisor: the "more sophisticated bidding strategies" direction of the
// paper's Sec. 8, as a concrete tool. Given a market's price history and an
// availability SLO, it sweeps candidate bid multiples through the
// closed-form estimator and recommends the cheapest one that meets the SLO
// (falling back to the most-available candidate when none does).
#pragma once

#include <span>
#include <vector>

#include "sched/analysis.hpp"

namespace spothost::sched {

struct BidCandidate {
  double multiple = 0.0;
  HostingEstimate estimate;
  bool meets_slo = false;
};

struct BidRecommendation {
  double multiple = 0.0;
  HostingEstimate estimate;
  bool slo_met = false;
  /// Every candidate evaluated, in sweep order (for reporting).
  std::vector<BidCandidate> candidates;
};

/// Default sweep: the multiples an EC2-2015 customer could plausibly use
/// (the platform capped bids at 4x on-demand; >4 kept for what-if analysis).
std::span<const double> default_bid_multiples();

/// Recommends a bid multiple for hosting on `price_trace` with `pon`,
/// subject to estimated unavailability <= max_unavailability_pct.
BidRecommendation recommend_bid(const trace::PriceTrace& price_trace, double pon,
                                double max_unavailability_pct,
                                std::span<const double> multiples = {},
                                const EstimateParams& base_params = {});

}  // namespace spothost::sched
