#include "sched/bidding.hpp"

#include <stdexcept>

namespace spothost::sched {

std::string_view to_string(BiddingMode mode) noexcept {
  switch (mode) {
    case BiddingMode::kReactive: return "reactive";
    case BiddingMode::kProactive: return "proactive";
  }
  return "?";
}

double BidPolicy::bid_for(const cloud::CloudProvider& provider,
                          const cloud::MarketId& market) const {
  const double pon = provider.od_price(market);
  switch (mode) {
    case BiddingMode::kReactive: return pon;
    case BiddingMode::kProactive:
      if (proactive_multiple <= 1.0) {
        throw std::logic_error("BidPolicy: proactive multiple must exceed 1");
      }
      return proactive_multiple * pon;
  }
  return pon;
}

}  // namespace spothost::sched
