#include "sched/bidding.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "cloud/market.hpp"
#include "sched/scheduler_config.hpp"

namespace spothost::sched {

std::string_view to_string(BiddingMode mode) noexcept {
  switch (mode) {
    case BiddingMode::kReactive: return "reactive";
    case BiddingMode::kProactive: return "proactive";
  }
  return "?";
}

double BidPolicy::bid_for(const cloud::CloudProvider& provider,
                          const cloud::MarketId& market) const {
  const double pon = provider.od_price(market);
  switch (mode) {
    case BiddingMode::kReactive: return pon;
    case BiddingMode::kProactive:
      if (proactive_multiple <= 1.0) {
        throw std::logic_error("BidPolicy: proactive multiple must exceed 1");
      }
      return proactive_multiple * pon;
  }
  return pon;
}

std::string_view StaticBidStrategy::name() const noexcept { return "static"; }

double StaticBidStrategy::bid_for(const cloud::CloudProvider& provider,
                                  const SchedulerConfig& config,
                                  const cloud::MarketId& market,
                                  sim::SimTime /*now*/) const {
  return config.bid.bid_for(provider, market);
}

bool StaticBidStrategy::plans_migrations(
    const SchedulerConfig& config) const noexcept {
  return config.bid.plans_migrations();
}

ForecastBidPolicy::ForecastBidPolicy() : ForecastBidPolicy(Params{}) {}

ForecastBidPolicy::ForecastBidPolicy(Params params) : params_(params) {
  if (params_.lookback <= 0) {
    throw std::invalid_argument("ForecastBidPolicy: lookback must be > 0");
  }
  if (params_.sample_step <= 0) {
    throw std::invalid_argument("ForecastBidPolicy: sample_step must be > 0");
  }
  if (params_.smoothing <= 0.0 || params_.smoothing > 1.0) {
    throw std::invalid_argument(
        "ForecastBidPolicy: smoothing must be in (0, 1] (got " +
        std::to_string(params_.smoothing) + ")");
  }
  if (params_.headroom <= 0.0) {
    throw std::invalid_argument("ForecastBidPolicy: headroom must be > 0 (got " +
                                std::to_string(params_.headroom) + ")");
  }
  if (params_.floor_multiple <= 0.0) {
    throw std::invalid_argument(
        "ForecastBidPolicy: floor_multiple must be > 0 (got " +
        std::to_string(params_.floor_multiple) + ")");
  }
  if (params_.cap_multiple < params_.floor_multiple) {
    throw std::invalid_argument(
        "ForecastBidPolicy: cap_multiple must be >= floor_multiple (got " +
        std::to_string(params_.cap_multiple) + " < " +
        std::to_string(params_.floor_multiple) + ")");
  }
}

std::string_view ForecastBidPolicy::name() const noexcept {
  return "forecast-bid";
}

double ForecastBidPolicy::forecast(const trace::PriceTrace& price_trace,
                                   sim::SimTime now) const {
  const sim::SimTime to = std::min(now, price_trace.end());
  const sim::SimTime from = std::max(price_trace.start(), to - params_.lookback);
  trace::PriceCursor cursor;
  double ewma = price_trace.price_at(from, cursor);
  for (sim::SimTime t = from + params_.sample_step; t < to;
       t += params_.sample_step) {
    ewma = params_.smoothing * price_trace.price_at(t, cursor) +
           (1.0 - params_.smoothing) * ewma;
  }
  return ewma;
}

double ForecastBidPolicy::bid_for(const cloud::CloudProvider& provider,
                                  const SchedulerConfig& /*config*/,
                                  const cloud::MarketId& market,
                                  sim::SimTime now) const {
  const double pon = provider.od_price(market);
  const double floor = params_.floor_multiple * pon;
  const double cap = params_.cap_multiple * pon;
  const auto& price_trace = provider.market(market).price_trace();
  if (price_trace.empty() ||
      std::min(now, price_trace.end()) <= price_trace.start()) {
    return cap;  // no committed history to forecast from
  }
  return std::clamp(params_.headroom * forecast(price_trace, now), floor, cap);
}

bool ForecastBidPolicy::plans_migrations(
    const SchedulerConfig& /*config*/) const noexcept {
  return true;
}

std::shared_ptr<const BidStrategy> bid_strategy_for(
    const SchedulerConfig& config) {
  if (config.bidding) return config.bidding;
  static const auto kStatic = std::make_shared<const StaticBidStrategy>();
  return kStatic;
}

}  // namespace spothost::sched
