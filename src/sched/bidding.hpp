// Bidding policy (Sec. 3.1).
//
//  * Reactive:  bid = p_on. The provider revokes the moment the spot price
//    crosses the on-demand price, so every transition away from spot is a
//    forced migration executed inside the grace window.
//  * Proactive: bid = k * p_on (k = 4, the largest multiple EC2 allowed).
//    The scheduler watches the price itself and migrates voluntarily when
//    the price crosses p_on; only a spike that blows past k*p_on before the
//    voluntary migration commits still forces it.
#pragma once

#include <string_view>

#include "cloud/provider.hpp"

namespace spothost::sched {

enum class BiddingMode { kReactive, kProactive };

std::string_view to_string(BiddingMode mode) noexcept;

struct BidPolicy {
  BiddingMode mode = BiddingMode::kProactive;
  /// Bid multiple over the on-demand price in proactive mode (EC2 cap: 4x).
  double proactive_multiple = 4.0;

  /// The bid to place when acquiring a spot server in `market`.
  [[nodiscard]] double bid_for(const cloud::CloudProvider& provider,
                               const cloud::MarketId& market) const;

  /// Whether the policy performs voluntary (planned) spot->on-demand moves.
  [[nodiscard]] bool plans_migrations() const noexcept {
    return mode == BiddingMode::kProactive;
  }
};

}  // namespace spothost::sched
