// Bidding layer — the "how much" axis of the scheduler decomposition.
//
// The paper's static policy (Sec. 3.1):
//  * Reactive:  bid = p_on. The provider revokes the moment the spot price
//    crosses the on-demand price, so every transition away from spot is a
//    forced migration executed inside the grace window.
//  * Proactive: bid = k * p_on (k = 4, the largest multiple EC2 allowed).
//    The scheduler watches the price itself and migrates voluntarily when
//    the price crosses p_on; only a spike that blows past k*p_on before the
//    voluntary migration commits still forces it.
//
// Dynamic strategies plug in behind the BidStrategy seam
// (SchedulerConfig::bidding / SchedulerConfigBuilder::bidding): the
// scheduler and every placement policy route bids through
// bid_strategy_for(config), so a strategy can derive bids from committed
// market history instead of a static multiple. ForecastBidPolicy below is
// the shipped example. See docs/POLICIES.md for the policy author's guide.
#pragma once

#include <memory>
#include <string_view>

#include "cloud/provider.hpp"
#include "simcore/time.hpp"
#include "trace/price_trace.hpp"

namespace spothost::sched {

struct SchedulerConfig;  // sched/scheduler_config.hpp

enum class BiddingMode { kReactive, kProactive };

std::string_view to_string(BiddingMode mode) noexcept;

struct BidPolicy {
  BiddingMode mode = BiddingMode::kProactive;
  /// Bid multiple over the on-demand price in proactive mode (EC2 cap: 4x).
  double proactive_multiple = 4.0;

  /// The bid to place when acquiring a spot server in `market`.
  [[nodiscard]] double bid_for(const cloud::CloudProvider& provider,
                               const cloud::MarketId& market) const;

  /// Whether the policy performs voluntary (planned) spot->on-demand moves.
  [[nodiscard]] bool plans_migrations() const noexcept {
    return mode == BiddingMode::kProactive;
  }
};

/// Strategy interface for bid selection — the pluggable counterpart of
/// PlacementPolicy for the bid axis.
///
/// Contract for implementers (see docs/POLICIES.md):
///  * Strategies are immutable and shared (held by shared_ptr<const ...>):
///    one instance may serve many schedulers across threads, so both
///    methods must be const-pure — derive everything from the arguments.
///  * bid_for is consulted at every spot acquisition (placement decisions
///    and the pure-spot reacquisition loop). `now` is the decision time;
///    read only history the provider has committed by `now` (a market's
///    price_trace(), its current price) — never the wall clock, never RNG
///    outside the scheduler's named streams.
///  * plans_migrations decides whether the scheduler arms the proactive
///    machinery (watch for p_on crossings, migrate voluntarily). A strategy
///    bidding above p_on should return true, or spikes between p_on and the
///    bid will be ridden out instead of migrated away from.
class BidStrategy {
 public:
  virtual ~BidStrategy() = default;

  /// Stable strategy name, for logs and bench labels.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// The bid to place when acquiring a spot server in `market` at `now`.
  [[nodiscard]] virtual double bid_for(const cloud::CloudProvider& provider,
                                       const SchedulerConfig& config,
                                       const cloud::MarketId& market,
                                       sim::SimTime now) const = 0;

  /// Whether the scheduler performs voluntary (planned) spot moves.
  [[nodiscard]] virtual bool plans_migrations(
      const SchedulerConfig& config) const noexcept = 0;
};

/// The default strategy: delegates to the static config.bid (BidPolicy).
/// Selecting it explicitly is byte-identical to leaving config.bidding null.
class StaticBidStrategy final : public BidStrategy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] double bid_for(const cloud::CloudProvider& provider,
                               const SchedulerConfig& config,
                               const cloud::MarketId& market,
                               sim::SimTime now) const override;
  [[nodiscard]] bool plans_migrations(
      const SchedulerConfig& config) const noexcept override;
};

/// Forecast-driven bidding: instead of a static multiple of p_on, bid
/// headroom over a rolling forecast of the spot price — an EWMA over a
/// PriceCursor scan of the trailing `lookback` window, sampled every
/// `sample_step`. The bid is clamped to [floor_multiple, cap_multiple] x
/// p_on (the cap mirrors EC2's 4x limit). A calm market therefore gets a
/// tight bid near its recent price band, and the bid widens only after the
/// market itself gets noisier — cheaper revocation insurance than a blanket
/// 4x everywhere. With no usable history (live push-fed markets before the
/// first commit, or now at the trace start) the bid falls back to the cap.
class ForecastBidPolicy final : public BidStrategy {
 public:
  struct Params {
    sim::SimTime lookback = 24 * sim::kHour;     ///< forecast window
    sim::SimTime sample_step = 5 * sim::kMinute;  ///< EWMA sampling grid
    double smoothing = 0.25;     ///< EWMA weight of each new sample, in (0,1]
    double headroom = 3.0;       ///< bid = headroom * forecast, then clamp
    double floor_multiple = 1.0; ///< bid >= floor_multiple * p_on
    double cap_multiple = 4.0;   ///< bid <= cap_multiple * p_on (EC2 cap)
  };

  /// Default knobs, as documented on Params.
  ForecastBidPolicy();
  /// Validates (throws std::invalid_argument naming the offending knob).
  explicit ForecastBidPolicy(Params params);

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] double bid_for(const cloud::CloudProvider& provider,
                               const SchedulerConfig& config,
                               const cloud::MarketId& market,
                               sim::SimTime now) const override;
  /// Always true: forecast bids sit above p_on, so spikes between p_on and
  /// the bid must be migrated away from voluntarily.
  [[nodiscard]] bool plans_migrations(
      const SchedulerConfig& config) const noexcept override;

  /// The raw EWMA forecast at `now` (no headroom, no clamp). Exposed so
  /// tests and benches can assert on the forecast itself. Precondition:
  /// non-empty trace with trace.start() < min(now, trace.end()).
  [[nodiscard]] double forecast(const trace::PriceTrace& price_trace,
                                sim::SimTime now) const;

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

/// The strategy a config selects: config.bidding if set, else a shared
/// immutable StaticBidStrategy delegating to config.bid.
std::shared_ptr<const BidStrategy> bid_strategy_for(const SchedulerConfig& config);

}  // namespace spothost::sched
