#include "sched/config.hpp"

#include <stdexcept>

#include "sched/market_traces.hpp"
#include "virt/network_model.hpp"

namespace spothost::sched {

cloud::AllocationLatency table1_allocation_latency(const std::string& region) {
  const std::string family = virt::NetworkModel::region_family(region);
  cloud::AllocationLatency lat;
  if (family == "us-east") {
    lat.on_demand_mean_s = 94.85;
    lat.spot_mean_s = 281.47;
  } else if (family == "us-west") {
    lat.on_demand_mean_s = 93.63;
    lat.spot_mean_s = 219.77;
  } else if (family == "eu-west") {
    lat.on_demand_mean_s = 98.08;
    lat.spot_mean_s = 233.37;
  }
  return lat;
}

Scenario normalized_scenario(Scenario scenario) {
  if (scenario.horizon <= 0) {
    throw std::invalid_argument("Scenario: horizon <= 0");
  }
  if (scenario.shards < 0) {
    throw std::invalid_argument("Scenario: shards < 0");
  }
  if (scenario.regions.empty()) {
    for (const auto r : trace::canonical_regions()) {
      scenario.regions.emplace_back(r);
    }
  }
  if (scenario.sizes.empty()) {
    scenario.sizes.assign(cloud::kAllSizes.begin(), cloud::kAllSizes.end());
  }
  return scenario;
}

World::World(Scenario scenario) : World(std::move(scenario), nullptr, nullptr) {}

World::World(Scenario scenario, std::shared_ptr<const MarketTraceSet> traces)
    : World(std::move(scenario), std::move(traces), nullptr) {}

World::World(Scenario scenario, std::shared_ptr<const MarketTraceSet> traces,
             std::unique_ptr<sim::Engine> engine)
    : scenario_(normalized_scenario(std::move(scenario))),
      rng_factory_(scenario_.seed) {
  if (traces == nullptr) {
    traces = MarketTraceSet::generate(scenario_);
  } else if (traces->key() != MarketTraceSet::cache_key(scenario_)) {
    throw std::invalid_argument(
        "World: trace set was generated for a different scenario");
  }
  traces_ = std::move(traces);

  engine_ = engine != nullptr
                ? std::move(engine)
                : sim::make_simulation_engine(
                      static_cast<std::size_t>(scenario_.shards));
  // Always build and attach the injector — an empty plan makes zero draws,
  // so fault-free worlds behave identically with or without it.
  faults_ = std::make_unique<faults::FaultInjector>(*engine_, rng_factory_,
                                                    scenario_.fault_plan);
  engine_->set_fault_injector(faults_.get());
  provider_ = std::make_unique<cloud::CloudProvider>(*engine_, rng_factory_,
                                                     scenario_.grace_period);

  for (const auto& region : scenario_.regions) {
    provider_->set_allocation_latency(region, table1_allocation_latency(region));
  }
  // Entries are in the provider's canonical registration order (region order
  // x size order), so market_order_ matches the generating constructor.
  for (const auto& entry : traces_->markets()) {
    provider_->add_market(entry.id, entry.prices, entry.on_demand);
  }
  provider_->start();
}

}  // namespace spothost::sched
