#include "sched/config.hpp"

#include <filesystem>
#include <stdexcept>

#include "trace/csv.hpp"
#include "trace/synthetic.hpp"
#include "virt/network_model.hpp"

namespace spothost::sched {

cloud::AllocationLatency table1_allocation_latency(const std::string& region) {
  const std::string family = virt::NetworkModel::region_family(region);
  cloud::AllocationLatency lat;
  if (family == "us-east") {
    lat.on_demand_mean_s = 94.85;
    lat.spot_mean_s = 281.47;
  } else if (family == "us-west") {
    lat.on_demand_mean_s = 93.63;
    lat.spot_mean_s = 219.77;
  } else if (family == "eu-west") {
    lat.on_demand_mean_s = 98.08;
    lat.spot_mean_s = 233.37;
  }
  return lat;
}

World::World(Scenario scenario)
    : scenario_(std::move(scenario)), rng_factory_(scenario_.seed) {
  if (scenario_.horizon <= 0) throw std::invalid_argument("World: horizon <= 0");
  if (scenario_.regions.empty()) {
    for (const auto r : trace::canonical_regions()) {
      scenario_.regions.emplace_back(r);
    }
  }
  if (scenario_.sizes.empty()) {
    scenario_.sizes.assign(cloud::kAllSizes.begin(), cloud::kAllSizes.end());
  }

  simulation_ = std::make_unique<sim::Simulation>();
  // Always build and attach the injector — an empty plan makes zero draws,
  // so fault-free worlds behave identically with or without it.
  faults_ = std::make_unique<faults::FaultInjector>(*simulation_, rng_factory_,
                                                    scenario_.fault_plan);
  simulation_->set_fault_injector(faults_.get());
  provider_ = std::make_unique<cloud::CloudProvider>(*simulation_, rng_factory_,
                                                     scenario_.grace_period);

  for (const auto& region : scenario_.regions) {
    provider_->set_allocation_latency(region, table1_allocation_latency(region));

    // Shared spike schedule: the source of intra-region price correlation.
    auto shared_rng = rng_factory_.stream("shared-spikes/" + region);
    const trace::MarketProfile region_profile =
        trace::profile_for(region, "small");
    const auto shared = trace::SyntheticSpotModel::generate_shared_spikes(
        trace::region_shared_spike_rate(region), region_profile,
        scenario_.horizon, shared_rng);

    for (const auto size : scenario_.sizes) {
      const std::string size_name{cloud::to_string(size)};
      const double od = cloud::on_demand_price(size, region);

      // Measured trace override, if one is on disk for this market.
      trace::PriceTrace price_trace;
      bool from_file = false;
      if (!scenario_.trace_dir.empty()) {
        const std::filesystem::path path =
            std::filesystem::path(scenario_.trace_dir) /
            (region + "_" + size_name + ".csv");
        if (std::filesystem::exists(path)) {
          price_trace = trace::load_csv_file(path.string());
          if (price_trace.end() < scenario_.horizon) {
            throw std::invalid_argument("World: trace " + path.string() +
                                        " shorter than the scenario horizon");
          }
          from_file = true;
        }
      }
      if (!from_file) {
        const trace::MarketProfile profile =
            trace::profile_for(region, size_name);
        auto market_rng =
            rng_factory_.stream("market/" + region + "/" + size_name);
        price_trace = trace::SyntheticSpotModel::generate(
            profile, od, scenario_.horizon, market_rng, &shared);
      }
      provider_->add_market(cloud::MarketId{region, size}, std::move(price_trace),
                            od);
    }
  }
  provider_->start();
}

}  // namespace spothost::sched
