// Scenario description and World builder: wires a simulation, a synthetic
// (or trace-driven) cloud, and allocation-latency profiles into a runnable
// experiment world.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cloud/provider.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "simcore/engine.hpp"
#include "simcore/rng.hpp"
#include "simcore/shard_router.hpp"
#include "trace/profiles.hpp"

namespace spothost::sched {

struct Scenario {
  std::uint64_t seed = 42;
  sim::SimTime horizon = 30 * sim::kDay;  ///< the paper's month-long window
  /// Regions to instantiate (default: the four canonical ones).
  std::vector<std::string> regions{};
  /// Sizes to instantiate per region (default: all four).
  std::vector<cloud::InstanceSize> sizes{};
  sim::SimTime grace_period = 120 * sim::kSecond;
  /// Directory of measured price traces. For each market, the builder looks
  /// for "<region>_<size>.csv" (trace/csv format — e.g. a converted EC2
  /// DescribeSpotPriceHistory export) and uses it instead of the synthetic
  /// model; markets without a file stay synthetic. Traces shorter than the
  /// horizon are rejected. Empty = fully synthetic.
  std::string trace_dir{};
  /// Faults to inject (src/faults). The default (empty) plan makes zero RNG
  /// draws and emits zero events, so runs stay byte-identical to a build
  /// without the subsystem.
  faults::FaultPlan fault_plan{};
  /// Shard lanes for the default engine: 0 = the SPOTHOST_SHARDS env knob
  /// (which defaults to 1 = the plain serial Simulation), 1 = serial, K > 1
  /// = the sharded engine with exactly K lanes. A sharded run is
  /// byte-identical to the serial one (pinned by the golden tests), so this
  /// is an execution choice, not a scenario parameter — it is deliberately
  /// excluded from the trace-cache key. Ignored when a World is built over a
  /// caller-supplied engine.
  int shards = 0;
};

/// Allocation latencies per region family, from Table 1.
cloud::AllocationLatency table1_allocation_latency(const std::string& region);

/// `scenario` with empty regions/sizes replaced by the canonical defaults,
/// validated (horizon > 0). World and MarketTraceSet both build from this
/// normal form, so their notions of scenario identity agree.
[[nodiscard]] Scenario normalized_scenario(Scenario scenario);

class MarketTraceSet;  // sched/market_traces.hpp

/// A fully wired experiment world. Construction generates all market traces
/// (seeded from the scenario seed) — or copies them from a pre-generated
/// MarketTraceSet — and starts the provider's price feeds; attach a
/// scheduler (built over clock()) and call engine().run_until(horizon()).
///
/// The engine seam: policy components take clock() (sim::Clock — scheduling
/// only), run control goes through engine() (sim::Engine — run_until /
/// set_tracer / dispatched). The default engine is a sim::Simulation; pass
/// one explicitly (e.g. a live::WallClock in fast-replay) to run the exact
/// same wiring on wall time.
class World {
 public:
  explicit World(Scenario scenario);

  /// Builds on a memoized trace set (sched::TraceCache) instead of
  /// regenerating: `traces` must have been generated for an identical
  /// scenario (same cache_key). Behaviour is byte-identical to the
  /// generating constructor; only the trace-generation work is skipped.
  World(Scenario scenario, std::shared_ptr<const MarketTraceSet> traces);

  /// Same wiring over a caller-supplied engine (must be freshly constructed:
  /// time 0, nothing scheduled). nullptr = the default sim::Simulation.
  World(Scenario scenario, std::shared_ptr<const MarketTraceSet> traces,
        std::unique_ptr<sim::Engine> engine);

  /// The scheduling seam policy components take.
  [[nodiscard]] sim::Clock& clock() noexcept { return *engine_; }

  /// Run control: run_until, set_tracer, dispatched, ...
  [[nodiscard]] sim::Engine& engine() noexcept { return *engine_; }
  [[nodiscard]] const sim::Engine& engine() const noexcept { return *engine_; }

  /// The sharding seam of this world's engine, or nullptr when the engine
  /// is the plain serial Simulation (Scenario::shards <= 1). Pass to
  /// FleetScheduler to pin services onto shard lanes; a nullptr keeps the
  /// fleet on the global clock — same bytes either way.
  [[nodiscard]] sim::ShardRouter* shard_router() noexcept {
    return dynamic_cast<sim::ShardRouter*>(engine_.get());
  }
  [[nodiscard]] cloud::CloudProvider& provider() noexcept { return *provider_; }
  [[nodiscard]] const cloud::CloudProvider& provider() const noexcept {
    return *provider_;
  }
  [[nodiscard]] const sim::RngFactory& rng() const noexcept { return rng_factory_; }
  [[nodiscard]] sim::SimTime horizon() const noexcept { return scenario_.horizon; }
  [[nodiscard]] const Scenario& scenario() const noexcept { return scenario_; }
  /// The fault injector built from scenario.fault_plan — always present and
  /// attached to the simulation (an empty plan injects nothing).
  [[nodiscard]] faults::FaultInjector& faults() noexcept { return *faults_; }
  [[nodiscard]] const faults::FaultInjector& faults() const noexcept {
    return *faults_;
  }

  /// A fresh named random stream tied to the scenario seed.
  [[nodiscard]] sim::RngStream stream(std::string_view name) const {
    return rng_factory_.stream(name);
  }

  /// The immutable trace set this world's markets were built from.
  [[nodiscard]] const std::shared_ptr<const MarketTraceSet>& trace_set()
      const noexcept {
    return traces_;
  }

 private:
  Scenario scenario_;
  sim::RngFactory rng_factory_;
  std::shared_ptr<const MarketTraceSet> traces_;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<faults::FaultInjector> faults_;
  std::unique_ptr<cloud::CloudProvider> provider_;
};

}  // namespace spothost::sched
