#include "sched/fleet.hpp"

#include <algorithm>
#include <stdexcept>

#include "cloud/billing.hpp"
#include "sched/market_selection.hpp"

namespace spothost::sched {

FleetScheduler::FleetScheduler(sim::Clock& clock,
                               cloud::CloudProvider& provider, FleetConfig config,
                               const sim::RngFactory& rng_factory,
                               sim::ShardRouter* router)
    : provider_(provider),
      watcher_(std::make_unique<MarketWatcher>(clock, provider)),
      services_(config.num_services > 0
                    ? static_cast<std::size_t>(config.num_services)
                    : 0),
      schedulers_(services_.capacity()) {
  if (config.num_services <= 0) {
    throw std::invalid_argument("FleetScheduler: num_services must be > 0");
  }
  if (router != nullptr) watcher_->bind_shards(*router);
  for (int i = 0; i < config.num_services; ++i) {
    SchedulerConfig cfg = config.service_template;
    if (config.stagger_placement) cfg.placement_salt = i;
    if (!config.home_markets.empty()) {
      cfg.home_market = config.home_markets[static_cast<std::size_t>(i) %
                                            config.home_markets.size()];
    }
    auto& service = services_.emplace_back(
        "svc-" + std::to_string(i),
        virt::default_spec_for_memory(cloud::type_info(cfg.home_market.size).memory_gb,
                                      cloud::type_info(cfg.home_market.size).disk_gb));
    auto& scheduler = schedulers_.emplace_back(
        clock, provider, *watcher_, service, std::move(cfg),
        rng_factory.stream("fleet-timing", static_cast<std::uint64_t>(i)));
    // Owner-tag every lease with the service index so the ledger pro-rates
    // per owning service (metrics), in sharded and serial runs alike.
    scheduler.set_owner_tag(static_cast<std::uint64_t>(i));
    if (router != nullptr) {
      scheduler.pin_to_shard(
          *router, static_cast<std::size_t>(i) % router->shard_count());
    }
  }
}

void FleetScheduler::start() {
  for (std::size_t i = 0; i < schedulers_.size(); ++i) {
    // Availability transitions trace through the lane the service lives on:
    // the shard's buffering tracer when pinned (merged back in global order
    // at window ends), the engine's tracer directly otherwise. Wired at
    // start() so an engine tracer attached after construction is seen.
    services_[i].set_tracer(schedulers_[i].lane_clock().tracer());
    schedulers_[i].start();
  }
}

void FleetScheduler::finalize(sim::SimTime horizon) {
  for (auto& scheduler : schedulers_) scheduler.finalize(horizon);
}

const workload::AlwaysOnService& FleetScheduler::service(int index) const {
  return services_.at(static_cast<std::size_t>(index));
}

const CloudScheduler& FleetScheduler::scheduler(int index) const {
  return schedulers_.at(static_cast<std::size_t>(index));
}

OutageOverlap compute_outage_overlap(
    const std::vector<std::vector<workload::OutageRecord>>& per_service,
    sim::SimTime horizon) {
  // Sweep line over +1/-1 events.
  std::vector<std::pair<sim::SimTime, int>> events;
  for (const auto& outages : per_service) {
    for (const auto& o : outages) {
      const sim::SimTime start = std::max<sim::SimTime>(0, o.start);
      const sim::SimTime end = std::min(horizon, o.end);
      if (start >= end) continue;
      events.emplace_back(start, +1);
      events.emplace_back(end, -1);
    }
  }
  std::sort(events.begin(), events.end());

  OutageOverlap overlap;
  int depth = 0;
  sim::SimTime prev = 0;
  for (const auto& [t, delta] : events) {
    if (depth > 0) overlap.any_down += t - prev;
    prev = t;
    depth += delta;
    overlap.max_concurrent = std::max(overlap.max_concurrent, depth);
  }
  return overlap;
}

FleetMetrics FleetScheduler::metrics(sim::SimTime horizon) const {
  FleetMetrics m;
  m.services = size();

  // Fleet bill: the ledger is shared across all services of this provider,
  // so sum it once; attributed cost pro-rates each lease by the packing
  // share of the service that leased it, resolved through the owner tag the
  // scheduler stamped on the instance (mixed-size fleets pro-rate each
  // record by ITS owner's need, not service 0's). Untagged records — none
  // in a fleet this class built — fall back to service 0's share.
  std::vector<std::vector<workload::OutageRecord>> outages;
  outages.reserve(schedulers_.size());
  double worst = 0.0;
  double unavail_sum = 0.0;
  for (std::size_t i = 0; i < schedulers_.size(); ++i) {
    const auto& avail = services_[i].availability();
    const double u = avail.unavailability_percent();
    unavail_sum += u;
    worst = std::max(worst, u);
    outages.push_back(avail.outages());
    const auto& stats = schedulers_[i].stats();
    m.total_forced += stats.forced;
    m.total_planned += stats.planned;
    m.total_reverse += stats.reverse;

    const double od = effective_on_demand_price(
        provider_, schedulers_[i].config().home_market.region,
        schedulers_[i].config().home_market.size);
    m.baseline_od_cost += cloud::on_demand_cost(od, 0, horizon);
  }
  m.mean_unavailability_pct = unavail_sum / m.services;
  m.worst_unavailability_pct = worst;

  for (const auto& record : provider_.ledger().records()) {
    m.total_cost += record.cost;
    const int capacity = cloud::type_info(record.market.size).capacity_units;
    const std::size_t owner =
        record.owner != cloud::kNoOwner &&
                record.owner < schedulers_.size()
            ? static_cast<std::size_t>(record.owner)
            : 0;
    const int units_needed = schedulers_[owner].units_needed();
    m.attributed_cost +=
        record.cost * std::min(1.0, static_cast<double>(units_needed) / capacity);
  }
  if (m.baseline_od_cost > 0) {
    m.normalized_cost_pct = 100.0 * m.attributed_cost / m.baseline_od_cost;
  }

  const OutageOverlap overlap = compute_outage_overlap(outages, horizon);
  m.any_down_pct =
      100.0 * static_cast<double>(overlap.any_down) / static_cast<double>(horizon);
  m.max_concurrent_down = overlap.max_concurrent;
  return m;
}

}  // namespace spothost::sched
