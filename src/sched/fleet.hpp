// Fleet hosting: many always-on services in one cloud, each driven by its
// own CloudScheduler instance.
//
// The paper evaluates one service; a real operator (the SpotCheck-style
// derivative cloud it cites) runs a fleet. A fleet changes the availability
// question: a market spike revokes *every* spot server in that market at
// once, so per-service unavailability understates user-visible risk. The
// FleetScheduler runs N services — optionally spread across home markets —
// and reports correlated-outage statistics: fraction of time any service is
// down, peak number of simultaneously-down services, and the fleet bill.
//
// All schedulers share one MarketWatcher, so the provider sees one price
// subscription per market regardless of fleet size (O(M), not O(N×M)).
// Per-service state lives in dense arenas (exec/arena.hpp) indexed by the
// service number — at fleet scale (100k-1M services, bench_fleet_scale) the
// contiguous layout matters as much as the event-queue asymptotics.
#pragma once

#include <memory>
#include <vector>

#include "exec/arena.hpp"
#include "sched/market_watcher.hpp"
#include "sched/scheduler.hpp"
#include "workload/service.hpp"

namespace spothost::sched {

struct FleetConfig {
  /// Template applied to every service; home_market may be overridden
  /// per-service via `home_markets`.
  SchedulerConfig service_template{};
  int num_services = 4;
  /// Optional per-service home markets (round-robin if smaller than the
  /// fleet; empty = all services use the template's home market).
  std::vector<cloud::MarketId> home_markets{};
  /// Give service i placement_salt = i, so rotation-based placement
  /// policies (PortfolioPlacementPolicy) spread the fleet's replicas across
  /// their basket instead of stampeding one slot. Off by default: every
  /// service keeps the template's salt, byte-identical to older fleets.
  bool stagger_placement = false;
};

struct FleetMetrics {
  int services = 0;
  double total_cost = 0.0;            ///< raw fleet bill ($)
  double attributed_cost = 0.0;       ///< pro-rated by packing share ($)
  double baseline_od_cost = 0.0;      ///< fleet-wide on-demand-only cost ($)
  double normalized_cost_pct = 0.0;

  double mean_unavailability_pct = 0.0;  ///< average over services
  double worst_unavailability_pct = 0.0;
  /// Fraction of the horizon during which >= 1 service was down — the
  /// "someone is paging" metric.
  double any_down_pct = 0.0;
  /// Peak number of simultaneously-down services (revocation correlation).
  int max_concurrent_down = 0;
  int total_forced = 0;
  int total_planned = 0;
  int total_reverse = 0;
};

class FleetScheduler {
 public:
  /// Builds `config.num_services` services and schedulers against the
  /// provider. Call start() before running the simulation and finalize()
  /// after; then read metrics().
  ///
  /// `router` (optional) pins the fleet onto shard lanes: service i goes to
  /// lane i % shard_count() — the watcher pre-screens its price triggers on
  /// that lane and its service-local timers run there, inside parallel
  /// windows (World::shard_router() supplies the router when
  /// Scenario::shards > 1; passing nullptr keeps everything on `clock`,
  /// byte-identical either way). Every scheduler is owner-tagged with its
  /// service index so metrics() can pro-rate each lease by the owning
  /// service's capacity need.
  FleetScheduler(sim::Clock& clock, cloud::CloudProvider& provider,
                 FleetConfig config, const sim::RngFactory& rng_factory,
                 sim::ShardRouter* router = nullptr);

  void start();
  void finalize(sim::SimTime horizon);

  [[nodiscard]] FleetMetrics metrics(sim::SimTime horizon) const;

  [[nodiscard]] const workload::AlwaysOnService& service(int index) const;
  [[nodiscard]] const CloudScheduler& scheduler(int index) const;
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(schedulers_.size());
  }
  /// The trigger layer shared by every scheduler in the fleet.
  [[nodiscard]] const MarketWatcher& watcher() const noexcept { return *watcher_; }

 private:
  cloud::CloudProvider& provider_;
  // Destruction order (reverse of declaration): schedulers first — they
  // deregister from the watcher and reference their service — then the
  // services, then the shared watcher.
  std::unique_ptr<MarketWatcher> watcher_;
  // Dense per-service state: one contiguous slab each for services and
  // schedulers instead of 2N heap nodes (exec/arena.hpp). Index i is one
  // service's row across both arenas.
  exec::FixedArena<workload::AlwaysOnService> services_;
  exec::FixedArena<CloudScheduler> schedulers_;
};

/// Overlap statistics over per-service outage interval lists: returns
/// {time with >= 1 down, peak simultaneous-down count} over [0, horizon).
struct OutageOverlap {
  sim::SimTime any_down = 0;
  int max_concurrent = 0;
};
OutageOverlap compute_outage_overlap(
    const std::vector<std::vector<workload::OutageRecord>>& per_service,
    sim::SimTime horizon);

}  // namespace spothost::sched
