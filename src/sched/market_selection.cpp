#include "sched/market_selection.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace spothost::sched {

std::string_view to_string(MarketScope scope) noexcept {
  switch (scope) {
    case MarketScope::kSingleMarket: return "single-market";
    case MarketScope::kMultiMarket: return "multi-market";
    case MarketScope::kMultiRegion: return "multi-region";
  }
  return "?";
}

std::string_view to_string(StabilityPolicy policy) noexcept {
  switch (policy) {
    case StabilityPolicy::kIgnore: return "ignore";
    case StabilityPolicy::kPenalizeVolatility: return "penalize-volatility";
  }
  return "?";
}

double effective_spot_price(const cloud::CloudProvider& provider,
                            const cloud::MarketId& market, int units_needed) {
  if (units_needed <= 0) {
    throw std::invalid_argument("effective_spot_price: units_needed must be > 0");
  }
  const int capacity = cloud::type_info(market.size).capacity_units;
  return provider.price(market) * static_cast<double>(units_needed) /
         static_cast<double>(capacity);
}

double effective_on_demand_price(const cloud::CloudProvider& provider,
                                 const std::string& region,
                                 cloud::InstanceSize home_size) {
  return provider.od_price(cloud::MarketId{region, home_size});
}

std::vector<cloud::MarketId> candidate_markets(
    const cloud::CloudProvider& provider, MarketScope scope,
    const cloud::MarketId& home, const std::vector<std::string>& allowed_regions) {
  switch (scope) {
    case MarketScope::kSingleMarket:
      return {home};
    case MarketScope::kMultiMarket:
      return provider.markets_in_region(home.region);
    case MarketScope::kMultiRegion: {
      if (allowed_regions.empty()) return provider.all_markets();
      std::vector<cloud::MarketId> out;
      for (const auto& region : allowed_regions) {
        for (auto& m : provider.markets_in_region(region)) {
          out.push_back(std::move(m));
        }
      }
      return out;
    }
  }
  return {home};
}

double trailing_stddev(const cloud::CloudProvider& provider,
                       const cloud::MarketId& market, sim::SimTime now,
                       sim::SimTime window) {
  const auto& price_trace = provider.market(market).price_trace();
  const sim::SimTime from = std::max(price_trace.start(), now - window);
  const sim::SimTime to = std::max(from + sim::kMinute, now);
  const sim::SimTime clamped_to = std::min(to, price_trace.end());
  if (clamped_to <= from) return 0.0;
  return trace::trace_stddev(price_trace, from, clamped_to);
}

std::optional<cloud::MarketId> best_spot_market(
    const cloud::CloudProvider& provider,
    const std::vector<cloud::MarketId>& candidates, const SelectionOptions& options) {
  std::optional<cloud::MarketId> best;
  double best_score = std::numeric_limits<double>::infinity();
  for (const auto& market : candidates) {
    if (options.exclude && *options.exclude == market) continue;
    if (std::find(options.avoid.begin(), options.avoid.end(), market) !=
        options.avoid.end()) {
      continue;
    }
    const double eff = effective_spot_price(provider, market, options.units_needed);
    if (eff >= options.max_effective_price) continue;
    double score = eff;
    if (options.stability == StabilityPolicy::kPenalizeVolatility) {
      score += options.stability_penalty_weight *
               trailing_stddev(provider, market, options.now, options.stability_window);
    }
    if (score < best_score) {
      best_score = score;
      best = market;
    }
  }
  return best;
}

std::string cheapest_on_demand_region(const cloud::CloudProvider& provider,
                                      const std::vector<std::string>& regions,
                                      cloud::InstanceSize size) {
  if (regions.empty()) {
    throw std::invalid_argument("cheapest_on_demand_region: no regions");
  }
  std::string best = regions.front();
  double best_price = effective_on_demand_price(provider, best, size);
  for (const auto& region : regions) {
    const double p = effective_on_demand_price(provider, region, size);
    if (p < best_price) {
      best_price = p;
      best = region;
    }
  }
  return best;
}

}  // namespace spothost::sched
