// Market selection for single-market, multi-market and multi-region bidding
// (Secs. 4.2, 4.4, 4.5).
//
// The service is one nested VM needing `units_needed` small-units of
// capacity. A multi-market scheduler may pack it onto a larger server and
// amortise the price over the server's capacity, so markets are compared by
// *effective* price = spot price * units_needed / capacity(size).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cloud/provider.hpp"
#include "simcore/time.hpp"
#include "trace/stats.hpp"

namespace spothost::sched {

enum class MarketScope { kSingleMarket, kMultiMarket, kMultiRegion };

std::string_view to_string(MarketScope scope) noexcept;

/// Whether market selection penalises volatile markets (paper Sec. 8 future
/// work). Replaces the old `bool stability_aware` flag.
enum class StabilityPolicy {
  kIgnore,              ///< rank by effective price alone
  kPenalizeVolatility,  ///< score = eff_price + weight * trailing stddev
};

std::string_view to_string(StabilityPolicy policy) noexcept;

/// Effective $/hr to host the service on `market` at its current spot price.
double effective_spot_price(const cloud::CloudProvider& provider,
                            const cloud::MarketId& market, int units_needed);

/// Effective $/hr of the on-demand fallback of the home size in `region`.
double effective_on_demand_price(const cloud::CloudProvider& provider,
                                 const std::string& region,
                                 cloud::InstanceSize home_size);

/// Markets the scheduler may bid in, per scope. For kMultiRegion,
/// `allowed_regions` limits the search (empty = all provider regions).
std::vector<cloud::MarketId> candidate_markets(
    const cloud::CloudProvider& provider, MarketScope scope,
    const cloud::MarketId& home, const std::vector<std::string>& allowed_regions);

/// Trailing price volatility of a market (stddev over [now - window, now)),
/// used by the stability-aware extension (paper Sec. 8 future work).
double trailing_stddev(const cloud::CloudProvider& provider,
                       const cloud::MarketId& market, sim::SimTime now,
                       sim::SimTime window);

struct SelectionOptions {
  int units_needed = 1;
  /// Markets whose effective price is >= this threshold are excluded.
  double max_effective_price = 0.0;
  /// Exclude this market (typically the one currently held).
  std::optional<cloud::MarketId> exclude;
  /// Additional markets to skip — those that recently failed allocation
  /// (the fault-recovery retry chain walks to the next-cheapest market).
  std::vector<cloud::MarketId> avoid{};
  /// Stability-aware scoring: score = eff_price + weight * trailing stddev.
  StabilityPolicy stability = StabilityPolicy::kIgnore;
  double stability_penalty_weight = 1.0;
  sim::SimTime stability_window = 3 * sim::kDay;
  sim::SimTime now = 0;
};

/// Cheapest (by score) candidate below the threshold, or nullopt.
std::optional<cloud::MarketId> best_spot_market(
    const cloud::CloudProvider& provider,
    const std::vector<cloud::MarketId>& candidates, const SelectionOptions& options);

/// Region with the lowest on-demand price for `size` among `regions`.
std::string cheapest_on_demand_region(const cloud::CloudProvider& provider,
                                      const std::vector<std::string>& regions,
                                      cloud::InstanceSize size);

}  // namespace spothost::sched
