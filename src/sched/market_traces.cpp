#include "sched/market_traces.hpp"

#include <filesystem>
#include <stdexcept>

#include "trace/csv.hpp"
#include "trace/synthetic.hpp"

namespace spothost::sched {

std::shared_ptr<const MarketTraceSet> MarketTraceSet::generate(
    const Scenario& scenario_in) {
  const Scenario scenario = normalized_scenario(scenario_in);
  const sim::RngFactory rng_factory(scenario.seed);

  auto set = std::shared_ptr<MarketTraceSet>(new MarketTraceSet());
  set->key_ = cache_key(scenario);
  set->seed_ = scenario.seed;
  set->horizon_ = scenario.horizon;
  set->entries_.reserve(scenario.regions.size() * scenario.sizes.size());

  for (const auto& region : scenario.regions) {
    // Shared spike schedule: the source of intra-region price correlation.
    auto shared_rng = rng_factory.stream("shared-spikes/" + region);
    const trace::MarketProfile region_profile =
        trace::profile_for(region, "small");
    const auto shared = trace::SyntheticSpotModel::generate_shared_spikes(
        trace::region_shared_spike_rate(region), region_profile,
        scenario.horizon, shared_rng);

    for (const auto size : scenario.sizes) {
      const std::string size_name{cloud::to_string(size)};
      const double od = cloud::on_demand_price(size, region);

      // Measured trace override, if one is on disk for this market.
      trace::PriceTrace price_trace;
      bool from_file = false;
      if (!scenario.trace_dir.empty()) {
        const std::filesystem::path path =
            std::filesystem::path(scenario.trace_dir) /
            (region + "_" + size_name + ".csv");
        if (std::filesystem::exists(path)) {
          price_trace = trace::load_csv_file(path.string());
          if (price_trace.end() < scenario.horizon) {
            throw std::invalid_argument("MarketTraceSet: trace " + path.string() +
                                        " shorter than the scenario horizon");
          }
          from_file = true;
        }
      }
      if (!from_file) {
        const trace::MarketProfile profile =
            trace::profile_for(region, size_name);
        auto market_rng =
            rng_factory.stream("market/" + region + "/" + size_name);
        price_trace = trace::SyntheticSpotModel::generate(
            profile, od, scenario.horizon, market_rng, &shared);
      }
      set->entries_.push_back(Entry{cloud::MarketId{region, size},
                                    std::move(price_trace), od});
    }
  }
  return set;
}

std::string MarketTraceSet::cache_key(const Scenario& scenario_in) {
  const Scenario scenario = normalized_scenario(scenario_in);
  std::string key = std::to_string(scenario.seed) + '|' +
                    std::to_string(scenario.horizon) + '|' +
                    scenario.trace_dir + '|';
  for (const auto& region : scenario.regions) {
    key += region;
    key += ',';
  }
  key += '|';
  for (const auto size : scenario.sizes) {
    key += cloud::to_string(size);
    key += ',';
  }
  return key;
}

const trace::PriceTrace& MarketTraceSet::prices(const cloud::MarketId& id) const {
  for (const auto& e : entries_) {
    if (e.id == id) return e.prices;
  }
  throw std::out_of_range("MarketTraceSet: no market " + id.str());
}

std::vector<trace::PriceTrace> MarketTraceSet::region_traces(
    const std::string& region) const {
  std::vector<trace::PriceTrace> out;
  for (const auto& e : entries_) {
    if (e.id.region == region) out.push_back(e.prices);
  }
  return out;
}

std::shared_ptr<const MarketTraceSet> TraceCache::get(const Scenario& scenario) {
  const std::string key = MarketTraceSet::cache_key(scenario);
  std::promise<std::shared_ptr<const MarketTraceSet>> promise;
  SetFuture future;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sets_.find(key);
    if (it != sets_.end()) {
      future = it->second;
      ++hits_;
    } else {
      future = promise.get_future().share();
      sets_.emplace(key, future);
      ++generations_;
      owner = true;
    }
  }
  if (owner) {
    // Generate outside the lock: other keys proceed concurrently; other
    // threads asking for *this* key block on the shared future instead of
    // generating a duplicate.
    try {
      promise.set_value(MarketTraceSet::generate(scenario));
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        sets_.erase(key);
      }
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

std::size_t TraceCache::generations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generations_;
}

std::size_t TraceCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

void TraceCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  sets_.clear();
}

}  // namespace spothost::sched
