// Memoized market-trace generation.
//
// The immutable inputs of a hosting run split cleanly: the market price
// traces depend only on (scenario identity, seed) — regions, sizes, horizon,
// trace_dir, seed — while everything else (scheduler config, fault plan,
// mechanism constants) merely consumes them. A sweep that re-runs the same
// scenario under many config arms therefore regenerates identical traces
// once per arm; fig08 alone rebuilds each region's four traces six times.
//
// MarketTraceSet captures that immutable slice once; TraceCache shares it
// (shared_ptr<const>) across every arm — and across pool threads — that
// asks for the same (scenario, seed).
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/config.hpp"

namespace spothost::sched {

/// The generated (or CSV-loaded) price trace and on-demand price of every
/// market a scenario instantiates, in the provider's deterministic
/// registration order (scenario region order x scenario size order).
///
/// Immutable after generate(), and PriceTrace's const queries are pure
/// reads (per-reader state lives in caller-owned trace::PriceCursors), so a
/// shared set may be queried in place from any number of threads — no
/// defensive copying required. tests/sched/test_trace_race.cpp hammers one
/// set from every pool thread under ThreadSanitizer to keep this true.
class MarketTraceSet {
 public:
  struct Entry {
    cloud::MarketId id;
    trace::PriceTrace prices;
    double on_demand = 0.0;
  };

  /// Generates all traces for `scenario` using exactly the named RNG streams
  /// ("shared-spikes/<region>", "market/<region>/<size>") a World derives,
  /// so a World built on this set is byte-identical to one that generates
  /// inline.
  [[nodiscard]] static std::shared_ptr<const MarketTraceSet> generate(
      const Scenario& scenario);

  /// Identity of the trace-relevant scenario fields (seed, horizon, regions,
  /// sizes, trace_dir). Scenarios with equal keys produce identical sets;
  /// fault plans and grace periods deliberately do not participate.
  [[nodiscard]] static std::string cache_key(const Scenario& scenario);

  [[nodiscard]] const std::vector<Entry>& markets() const noexcept {
    return entries_;
  }

  /// Price trace of one market; throws std::out_of_range if the scenario
  /// did not instantiate it.
  [[nodiscard]] const trace::PriceTrace& prices(const cloud::MarketId& id) const;

  /// Traces of every market in `region`, in size order — the fig08/fig09
  /// correlation inputs.
  [[nodiscard]] std::vector<trace::PriceTrace> region_traces(
      const std::string& region) const;

  [[nodiscard]] const std::string& key() const noexcept { return key_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] sim::SimTime horizon() const noexcept { return horizon_; }

 private:
  MarketTraceSet() = default;

  std::vector<Entry> entries_;
  std::string key_;
  std::uint64_t seed_ = 0;
  sim::SimTime horizon_ = 0;
};

/// Thread-safe memo of (scenario identity, seed) -> MarketTraceSet.
/// Concurrent get()s of the same key block on one generation instead of
/// duplicating it, so a sweep's first wave of cells still generates each
/// seed's traces exactly once.
class TraceCache {
 public:
  /// The memoized set for `scenario`, generating it on first request.
  [[nodiscard]] std::shared_ptr<const MarketTraceSet> get(
      const Scenario& scenario);

  /// Number of sets actually generated (cache misses).
  [[nodiscard]] std::size_t generations() const;
  /// Number of get() calls served from the memo.
  [[nodiscard]] std::size_t hits() const;

  /// Drops every memoized set (in-flight generations complete unaffected).
  void clear();

 private:
  using SetFuture = std::shared_future<std::shared_ptr<const MarketTraceSet>>;

  mutable std::mutex mu_;
  std::unordered_map<std::string, SetFuture> sets_;
  std::size_t generations_ = 0;
  std::size_t hits_ = 0;
};

}  // namespace spothost::sched
