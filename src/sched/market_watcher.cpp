#include "sched/market_watcher.hpp"

#include <algorithm>
#include <utility>

namespace spothost::sched {

namespace {
// Interest lists shorter than this are never swept: a pass over them is
// cheaper than the bookkeeping.
constexpr std::size_t kSweepFloor = 16;
}  // namespace

MarketWatcher::MarketWatcher(sim::Clock& clock, cloud::CloudProvider& provider)
    : clock_(clock), provider_(provider) {}

MarketWatcher::ListenerId MarketWatcher::add_listener(TriggerCallback callback) {
  listeners_.push_back(std::move(callback));
  ++live_listeners_;
  return static_cast<ListenerId>(listeners_.size());
}

void MarketWatcher::remove_listener(ListenerId id) {
  if (!alive(id)) return;
  listeners_[static_cast<std::size_t>(id - 1)] = nullptr;
  --live_listeners_;
  // Interest lists keep the tombstoned id until a dispatch-time sweep;
  // dispatch skips dead entries, so no delivery can happen meanwhile.
}

void MarketWatcher::watch(ListenerId id, const std::vector<cloud::MarketId>& markets) {
  if (!alive(id)) return;
  for (const auto& market : markets) {
    auto& ids = interest_[market];
    if (std::find(ids.begin(), ids.end(), id) != ids.end()) continue;
    ids.push_back(id);
    if (!subscribed_.contains(market)) {
      // First interest in this market: subscribe the one shared provider
      // feed. Later listeners piggyback on the same subscription.
      const auto sub = provider_.market(market).subscribe(
          [this](const cloud::SpotMarket& m, double new_price) {
            on_price_change(m.id(), new_price);
          });
      subscribed_.emplace(market, sub);
    }
  }
}

sim::EventHandle MarketWatcher::schedule_hour_tick(ListenerId id, sim::SimTime at) {
  return clock_.at(at, [this, id] {
    Trigger trigger;
    trigger.kind = TriggerKind::kHourBoundary;
    deliver(id, trigger);
  });
}

void MarketWatcher::arm_revocation(ListenerId id, cloud::InstanceId instance) {
  provider_.set_revocation_handler(
      instance, [this, id](cloud::InstanceId warned, sim::SimTime t_term) {
        Trigger trigger;
        trigger.kind = TriggerKind::kRevocation;
        trigger.instance = warned;
        trigger.t_term = t_term;
        deliver(id, trigger);
      });
}

void MarketWatcher::on_price_change(const cloud::MarketId& market, double new_price) {
  const auto it = interest_.find(market);
  if (it == interest_.end()) return;
  Trigger trigger;
  trigger.kind = TriggerKind::kPriceChange;
  trigger.market = market;
  trigger.price = new_price;
  // One pass over the interest list, by index: a handler may watch() (grows
  // the same vector — appendees are not part of this step), remove_listener
  // (tombstones — skipped by deliver), or add_listener, all without
  // invalidating the iteration. No snapshot, no allocation.
  ++dispatch_depth_;
  auto& ids = it->second;
  std::size_t dead = 0;
  const std::size_t count = ids.size();
  for (std::size_t i = 0; i < count; ++i) {
    const ListenerId id = ids[i];
    if (!alive(id)) {
      ++dead;
      continue;
    }
    listeners_[static_cast<std::size_t>(id - 1)](trigger);
  }
  --dispatch_depth_;
  // Sweep tombstones once they dominate, but never under a reentrant
  // dispatch that may still be iterating this list.
  if (dispatch_depth_ == 0 && ids.size() >= kSweepFloor && 2 * dead > ids.size()) {
    std::erase_if(ids, [this](ListenerId id) { return !alive(id); });
  }
}

void MarketWatcher::deliver(ListenerId id, const Trigger& trigger) {
  if (!alive(id)) return;
  listeners_[static_cast<std::size_t>(id - 1)](trigger);
}

}  // namespace spothost::sched
