#include "sched/market_watcher.hpp"

#include <algorithm>
#include <utility>

namespace spothost::sched {

MarketWatcher::MarketWatcher(sim::Simulation& simulation, cloud::CloudProvider& provider)
    : simulation_(simulation), provider_(provider) {}

MarketWatcher::ListenerId MarketWatcher::add_listener(TriggerCallback callback) {
  const ListenerId id = next_listener_++;
  listeners_.emplace(id, std::move(callback));
  return id;
}

void MarketWatcher::remove_listener(ListenerId id) {
  listeners_.erase(id);
  for (auto& [market, ids] : interest_) {
    ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
  }
}

void MarketWatcher::watch(ListenerId id, const std::vector<cloud::MarketId>& markets) {
  if (!listeners_.contains(id)) return;
  for (const auto& market : markets) {
    auto& ids = interest_[market];
    if (std::find(ids.begin(), ids.end(), id) != ids.end()) continue;
    ids.push_back(id);
    if (!subscribed_.contains(market)) {
      // First interest in this market: subscribe the one shared provider
      // feed. Later listeners piggyback on the same subscription.
      const auto sub = provider_.market(market).subscribe(
          [this](const cloud::SpotMarket& m, double new_price) {
            on_price_change(m.id(), new_price);
          });
      subscribed_.emplace(market, sub);
    }
  }
}

sim::EventId MarketWatcher::schedule_hour_tick(ListenerId id, sim::SimTime at) {
  return simulation_.at(at, [this, id] {
    Trigger trigger;
    trigger.kind = TriggerKind::kHourBoundary;
    deliver(id, trigger);
  });
}

void MarketWatcher::arm_revocation(ListenerId id, cloud::InstanceId instance) {
  provider_.set_revocation_handler(
      instance, [this, id](cloud::InstanceId warned, sim::SimTime t_term) {
        Trigger trigger;
        trigger.kind = TriggerKind::kRevocation;
        trigger.instance = warned;
        trigger.t_term = t_term;
        deliver(id, trigger);
      });
}

void MarketWatcher::on_price_change(const cloud::MarketId& market, double new_price) {
  const auto it = interest_.find(market);
  if (it == interest_.end()) return;
  // Snapshot: a trigger handler may watch/unwatch reentrantly.
  const std::vector<ListenerId> recipients = it->second;
  Trigger trigger;
  trigger.kind = TriggerKind::kPriceChange;
  trigger.market = market;
  trigger.price = new_price;
  for (const ListenerId id : recipients) deliver(id, trigger);
}

void MarketWatcher::deliver(ListenerId id, const Trigger& trigger) {
  const auto it = listeners_.find(id);
  if (it == listeners_.end()) return;
  it->second(trigger);
}

}  // namespace spothost::sched
