#include "sched/market_watcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace spothost::sched {

namespace {
// Interest lists shorter than this are never swept: a pass over them is
// cheaper than the bookkeeping.
constexpr std::size_t kSweepFloor = 16;
}  // namespace

MarketWatcher::MarketWatcher(sim::Clock& clock, cloud::CloudProvider& provider)
    : clock_(clock), provider_(provider) {}

MarketWatcher::ListenerId MarketWatcher::add_listener(TriggerListener* listener) {
  if (listener == nullptr) {
    throw std::invalid_argument("MarketWatcher::add_listener: null listener");
  }
  listeners_.push_back(listener);
  shard_of_.push_back(kNoShard);
  ++live_listeners_;
  return static_cast<ListenerId>(listeners_.size());
}

void MarketWatcher::remove_listener(ListenerId id) {
  if (!alive(id)) return;
  listeners_[static_cast<std::size_t>(id - 1)] = nullptr;
  --live_listeners_;
  // Interest lists keep the tombstoned id until a dispatch-time sweep;
  // dispatch skips dead entries, so no delivery can happen meanwhile.
}

void MarketWatcher::watch(ListenerId id, const std::vector<cloud::MarketId>& markets) {
  if (!alive(id)) return;
  for (const auto& market : markets) {
    auto& ids = interest_[market];
    if (std::find(ids.begin(), ids.end(), id) != ids.end()) continue;
    ids.push_back(id);
    if (!subscribed_.contains(market)) {
      // First interest in this market: subscribe the one shared provider
      // feed. Later listeners piggyback on the same subscription.
      const auto sub = provider_.market(market).subscribe(
          static_cast<cloud::SpotMarket::PriceListener*>(this));
      subscribed_.emplace(market, sub);
    }
  }
}

sim::EventHandle MarketWatcher::schedule_hour_tick(ListenerId id, sim::SimTime at) {
  // A shard-pinned listener's hour tick is shard-local work: schedule it on
  // the shard's own clock so it runs inside the parallel window.
  sim::Clock* clock = &clock_;
  if (router_ != nullptr && alive(id)) {
    const std::uint32_t shard = shard_of_[static_cast<std::size_t>(id - 1)];
    if (shard != kNoShard) clock = &router_->shard_clock(shard);
  }
  return clock->at(at, [this, id] {
    Trigger trigger;
    trigger.kind = TriggerKind::kHourBoundary;
    deliver(id, trigger);
  });
}

void MarketWatcher::arm_revocation(ListenerId id, cloud::InstanceId instance) {
  provider_.set_revocation_handler(
      instance, [this, id](cloud::InstanceId warned, sim::SimTime t_term) {
        Trigger trigger;
        trigger.kind = TriggerKind::kRevocation;
        trigger.instance = warned;
        trigger.t_term = t_term;
        deliver(id, trigger);
      });
}

void MarketWatcher::bind_shards(sim::ShardRouter& router) {
  if (router_ != nullptr) {
    throw std::logic_error("MarketWatcher::bind_shards: already bound");
  }
  router_ = &router;
  shard_batch_.assign(
      1, std::vector<std::vector<ListenerId>>(router.shard_count()));
}

void MarketWatcher::assign_shard(ListenerId id, std::size_t shard) {
  if (router_ == nullptr) {
    throw std::logic_error("MarketWatcher::assign_shard: bind_shards first");
  }
  if (shard >= router_->shard_count()) {
    throw std::out_of_range("MarketWatcher::assign_shard: shard out of range");
  }
  if (!alive(id)) return;
  shard_of_[static_cast<std::size_t>(id - 1)] = static_cast<std::uint32_t>(shard);
}

void MarketWatcher::on_price_change(const cloud::MarketId& market, double new_price) {
  const auto it = interest_.find(market);
  if (it == interest_.end()) return;
  Trigger trigger;
  trigger.kind = TriggerKind::kPriceChange;
  trigger.market = market;
  trigger.price = new_price;
  // One pass over the interest list, by index: a handler may watch() (grows
  // the same vector — appendees are not part of this step), remove_listener
  // (tombstones — skipped by deliver), or add_listener, all without
  // invalidating the iteration. No snapshot, no allocation (serial path).
  // Each dispatch batches into its own depth's scratch, so a reentrant
  // dispatch cannot move or clear this pass's partially accumulated batches.
  const auto depth = static_cast<std::size_t>(dispatch_depth_);
  ++dispatch_depth_;
  if (router_ != nullptr && shard_batch_.size() <= depth) {
    shard_batch_.resize(depth + 1, std::vector<std::vector<ListenerId>>(
                                       router_->shard_count()));
  }
  auto& ids = it->second;
  std::size_t dead = 0;
  const std::size_t count = ids.size();
  for (std::size_t i = 0; i < count; ++i) {
    const ListenerId id = ids[i];
    if (!alive(id)) {
      ++dead;
      continue;
    }
    const std::uint32_t shard = shard_of_[static_cast<std::size_t>(id - 1)];
    if (shard == kNoShard) {
      listeners_[static_cast<std::size_t>(id - 1)]->on_trigger(trigger);
    } else {
      // Batched for the shard's mailbox; posted below, once per shard.
      shard_batch_[depth][shard].push_back(id);
    }
  }
  --dispatch_depth_;
  // Fan the batches out — one mailbox message per shard with interest, in
  // ascending shard order (post order is delivery order within a window
  // head, and must not depend on interest-list layout).
  if (router_ != nullptr) {
    auto& batches = shard_batch_[depth];
    for (std::size_t s = 0; s < batches.size(); ++s) {
      if (batches[s].empty()) continue;
      router_->post(s, [this, trigger, batch = std::move(batches[s])] {
        for (const ListenerId id : batch) deliver(id, trigger);
      });
      batches[s].clear();  // moved-from: restore to a known empty state
    }
  }
  // Sweep tombstones once they dominate, but never under a reentrant
  // dispatch that may still be iterating this list.
  if (dispatch_depth_ == 0 && ids.size() >= kSweepFloor && 2 * dead > ids.size()) {
    std::erase_if(ids, [this](ListenerId id) { return !alive(id); });
  }
}

void MarketWatcher::deliver(ListenerId id, const Trigger& trigger) {
  if (!alive(id)) return;
  listeners_[static_cast<std::size_t>(id - 1)]->on_trigger(trigger);
}

}  // namespace spothost::sched
