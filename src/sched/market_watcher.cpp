#include "sched/market_watcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace spothost::sched {

namespace {
// Interest lists shorter than this are never swept: a pass over them is
// cheaper than the bookkeeping.
constexpr std::size_t kSweepFloor = 16;
}  // namespace

MarketWatcher::MarketWatcher(sim::Clock& clock, cloud::CloudProvider& provider)
    : clock_(clock), provider_(provider) {}

MarketWatcher::ListenerId MarketWatcher::add_listener(TriggerListener* listener) {
  if (listener == nullptr) {
    throw std::invalid_argument("MarketWatcher::add_listener: null listener");
  }
  listeners_.push_back(listener);
  shard_of_.push_back(kNoShard);
  ++live_listeners_;
  return static_cast<ListenerId>(listeners_.size());
}

void MarketWatcher::remove_listener(ListenerId id) {
  if (!alive(id)) return;
  listeners_[static_cast<std::size_t>(id - 1)] = nullptr;
  --live_listeners_;
  // Interest lists keep the tombstoned id until a dispatch-time sweep;
  // dispatch skips dead entries, so no delivery can happen meanwhile.
}

void MarketWatcher::watch(ListenerId id, const std::vector<cloud::MarketId>& markets) {
  if (!alive(id)) return;
  for (const auto& market : markets) {
    auto& ids = interest_[market];
    if (std::find(ids.begin(), ids.end(), id) != ids.end()) continue;
    ids.push_back(id);
    if (!subscribed_.contains(market)) {
      // First interest in this market: subscribe the one shared provider
      // feed. Later listeners piggyback on the same subscription.
      const auto sub = provider_.market(market).subscribe(
          static_cast<cloud::SpotMarket::PriceListener*>(this));
      subscribed_.emplace(market, sub);
    }
  }
}

sim::EventHandle MarketWatcher::schedule_hour_tick(ListenerId id, sim::SimTime at) {
  // Always the global clock, also for pinned listeners: hour checks reach
  // the provider, and holders cancel these handles from serial-phase paths
  // — a shard-clock handle would make either side an illegal cross-lane
  // operation (see the header comment).
  return clock_.at(at, [this, id] {
    Trigger trigger;
    trigger.kind = TriggerKind::kHourBoundary;
    deliver(id, trigger);
  });
}

void MarketWatcher::arm_revocation(ListenerId id, cloud::InstanceId instance) {
  provider_.set_revocation_handler(
      instance, [this, id](cloud::InstanceId warned, sim::SimTime t_term) {
        Trigger trigger;
        trigger.kind = TriggerKind::kRevocation;
        trigger.instance = warned;
        trigger.t_term = t_term;
        deliver(id, trigger);
      });
}

void MarketWatcher::bind_shards(sim::ShardRouter& router) {
  if (router_ != nullptr) {
    throw std::logic_error("MarketWatcher::bind_shards: already bound");
  }
  router_ = &router;
  stage_.resize(1);
  stage_[0].shard_idx.resize(router.shard_count());
}

void MarketWatcher::assign_shard(ListenerId id, std::size_t shard) {
  if (router_ == nullptr) {
    throw std::logic_error("MarketWatcher::assign_shard: bind_shards first");
  }
  if (shard >= router_->shard_count()) {
    throw std::out_of_range("MarketWatcher::assign_shard: shard out of range");
  }
  if (!alive(id)) return;
  shard_of_[static_cast<std::size_t>(id - 1)] = static_cast<std::uint32_t>(shard);
}

void MarketWatcher::on_price_change(const cloud::MarketId& market, double new_price) {
  const auto it = interest_.find(market);
  if (it == interest_.end()) return;
  Trigger trigger;
  trigger.kind = TriggerKind::kPriceChange;
  trigger.market = market;
  trigger.price = new_price;
  // Iteration is by index with the length captured up front: a handler may
  // watch() (grows the same vector — appendees are not part of this step),
  // remove_listener (tombstones — skipped by deliver), or add_listener, all
  // without invalidating the iteration. No snapshot; each dispatch depth
  // owns its own stage scratch, so a reentrant dispatch from a handler
  // cannot clobber the outer pass's entries.
  const auto depth = static_cast<std::size_t>(dispatch_depth_);
  ++dispatch_depth_;
  auto& ids = it->second;
  std::size_t dead = 0;
  const std::size_t count = ids.size();
  if (router_ == nullptr) {
    // Serial engine: one inline pass in registration order.
    for (std::size_t i = 0; i < count; ++i) {
      const ListenerId id = ids[i];
      if (!alive(id)) {
        ++dead;
        continue;
      }
      listeners_[static_cast<std::size_t>(id - 1)]->on_trigger(trigger);
    }
  } else {
    // Sharded engine, pass 1: collect pinned listeners (in interest order)
    // for the parallel pre-screen. Unpinned listeners are handled in the
    // delivery pass only.
    if (stage_.size() <= depth) stage_.resize(depth + 1);
    StageScratch& scratch = stage_[depth];
    scratch.entries.clear();
    scratch.shard_idx.resize(router_->shard_count());
    for (auto& idx : scratch.shard_idx) idx.clear();
    for (std::size_t i = 0; i < count; ++i) {
      const ListenerId id = ids[i];
      if (!alive(id)) continue;
      const std::uint32_t shard = shard_of_[static_cast<std::size_t>(id - 1)];
      if (shard == kNoShard) continue;
      scratch.shard_idx[shard].push_back(
          static_cast<std::uint32_t>(scratch.entries.size()));
      scratch.entries.push_back(StageEntry{
          i, listeners_[static_cast<std::size_t>(id - 1)], std::uint8_t{1}});
    }
    // Stage: each shard evaluates its own listeners' wants_trigger in
    // parallel. Entries are disjoint across shards and the watcher is not
    // mutated until run_stage returns, so the only shared reads are frozen
    // tick state. run_stage is synchronous — capturing locals is safe.
    if (!scratch.entries.empty()) {
      std::vector<sim::Callback> tasks(router_->shard_count());
      for (std::size_t s = 0; s < tasks.size(); ++s) {
        if (scratch.shard_idx[s].empty()) continue;
        tasks[s] = [&scratch, &trigger, s] {
          for (const std::uint32_t e : scratch.shard_idx[s]) {
            StageEntry& entry = scratch.entries[e];
            entry.want = entry.listener->wants_trigger(trigger) ? 1 : 0;
          }
        };
      }
      router_->run_stage(std::move(tasks));
    }
    // Pass 2: deliver serially in registration order — the exact serial
    // interleaving of pinned and unpinned listeners — skipping pinned
    // listeners whose pre-screen declined (their on_trigger is by contract
    // a no-op, so skipping changes no bytes). The cursor re-matches pass-1
    // entries by interest index, so reentrant mutation between the passes
    // (there is none today — run_stage tasks cannot touch the watcher)
    // or during delivery cannot misalign the verdicts.
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const ListenerId id = ids[i];
      if (cursor < scratch.entries.size() && scratch.entries[cursor].index == i) {
        const bool want = scratch.entries[cursor].want != 0;
        ++cursor;
        if (want) deliver(id, trigger);
        continue;
      }
      if (!alive(id)) {
        ++dead;
        continue;
      }
      listeners_[static_cast<std::size_t>(id - 1)]->on_trigger(trigger);
    }
  }
  --dispatch_depth_;
  // Sweep tombstones once they dominate, but never under a reentrant
  // dispatch that may still be iterating this list.
  if (dispatch_depth_ == 0 && ids.size() >= kSweepFloor && 2 * dead > ids.size()) {
    std::erase_if(ids, [this](ListenerId id) { return !alive(id); });
  }
}

void MarketWatcher::deliver(ListenerId id, const Trigger& trigger) {
  if (!alive(id)) return;
  listeners_[static_cast<std::size_t>(id - 1)]->on_trigger(trigger);
}

}  // namespace spothost::sched
