// Shared fleet market watcher — layer 1 ("when to move") of the scheduler
// decomposition.
//
// A CloudScheduler used to subscribe to every candidate market's price feed
// itself, so a fleet of N schedulers over M markets held N×M provider-side
// subscriptions and every price tick fanned out through N×M independent
// std::function hops. The MarketWatcher subscribes to each provider feed at
// most ONCE — fleet cost is O(M) subscriptions — and fans typed trigger
// notifications out to any number of registered listeners:
//
//  * kPriceChange  — a watched market's spot price ticked;
//  * kHourBoundary — a billing-hour check the listener asked to be woken
//    for (per-instance hours are listener state, so the watcher only owns
//    the delivery, not the schedule);
//  * kRevocation   — the provider warned an instance the listener armed.
//
// Listeners within one market fire in registration order, and the watcher
// snapshots the recipient list before dispatching, so listeners may
// (un)register reentrantly — the same reentrancy contract SpotMarket gives
// its observers. Everything is deterministic: identical registration order
// yields identical dispatch order.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cloud/provider.hpp"
#include "simcore/simulation.hpp"

namespace spothost::sched {

/// Edge-triggered threshold-crossing detector: feed it the above/below
/// observation at every price tick; it reports an edge exactly once per
/// crossing. A first observation that is already below the threshold is
/// steady state, not a crossing (a fresh adoption into a calm market must
/// not fire). reset() forgets history — call it when the reference market
/// changes.
class CrossingDetector {
 public:
  enum class Edge { kNone, kUp, kDown };

  Edge observe(bool above) noexcept {
    const bool crossed = above_ ? *above_ != above : above;
    above_ = above;
    if (!crossed) return Edge::kNone;
    return above ? Edge::kUp : Edge::kDown;
  }

  void reset() noexcept { above_.reset(); }

 private:
  std::optional<bool> above_;
};

class MarketWatcher {
 public:
  using ListenerId = std::uint64_t;
  inline static constexpr ListenerId kInvalidListener = 0;

  enum class TriggerKind : std::uint8_t { kPriceChange, kHourBoundary, kRevocation };

  /// One typed notification. Only the fields of the firing kind are set.
  struct Trigger {
    TriggerKind kind = TriggerKind::kPriceChange;
    cloud::MarketId market{};                            ///< kPriceChange
    double price = 0.0;                                  ///< kPriceChange
    cloud::InstanceId instance = cloud::kInvalidInstance;///< kRevocation
    sim::SimTime t_term = 0;                             ///< kRevocation
  };

  using TriggerCallback = std::function<void(const Trigger&)>;

  MarketWatcher(sim::Simulation& simulation, cloud::CloudProvider& provider);

  /// Registers a listener; triggers are delivered through `callback`.
  ///
  /// Listener contract:
  ///  * Delivery is synchronous, inside the provider/simulation event that
  ///    caused it — a callback observes the world exactly as the trigger
  ///    left it, and may issue provider requests or (un)register listeners
  ///    reentrantly (the recipient list is snapshotted per dispatch).
  ///  * Listeners sharing a market fire in registration (ListenerId) order;
  ///    same registrations, same dispatch order, every run.
  ///  * The callback must stay valid until remove_listener returns; after
  ///    that no further triggers are delivered, including ones already
  ///    snapshotted for the in-flight dispatch.
  ListenerId add_listener(TriggerCallback callback);

  /// Deregisters: no further triggers are delivered. Provider-side feed
  /// subscriptions are kept (they are bounded by the market count and the
  /// watcher typically outlives any one listener).
  void remove_listener(ListenerId id);

  /// Adds `markets` to the set the listener receives kPriceChange triggers
  /// for. The underlying provider feed is subscribed on the first interest
  /// in a market, once, no matter how many listeners watch it afterwards.
  void watch(ListenerId id, const std::vector<cloud::MarketId>& markets);

  /// Schedules a kHourBoundary trigger for `id` at absolute time `at`.
  /// Returns the simulation event id — cancel through the simulation.
  sim::EventId schedule_hour_tick(ListenerId id, sim::SimTime at);

  /// Routes the provider's revocation warning for `instance` to `id` as a
  /// kRevocation trigger (replaces any previously installed handler).
  ///
  /// The watcher only owns routing; *when* the warning arrives is the
  /// provider's business. Under fault injection (src/faults) the warning may
  /// be delivered late (kWarningDelayed) or collapse onto the termination
  /// instant itself (kWarningDropped) — still strictly before the instance
  /// is torn down, but possibly with `t_term == now`. Listeners must not
  /// assume the full grace window is left when the trigger fires.
  void arm_revocation(ListenerId id, cloud::InstanceId instance);

  /// Provider-side price-feed subscriptions this watcher holds — bounded by
  /// the market count, never by the listener count.
  [[nodiscard]] std::size_t provider_subscriptions() const noexcept {
    return subscribed_.size();
  }
  [[nodiscard]] std::size_t listener_count() const noexcept {
    return listeners_.size();
  }

 private:
  void on_price_change(const cloud::MarketId& market, double new_price);
  void deliver(ListenerId id, const Trigger& trigger);

  sim::Simulation& simulation_;
  cloud::CloudProvider& provider_;
  // Ordered by listener id so fan-out order is registration order.
  std::map<ListenerId, TriggerCallback> listeners_;
  /// Per-market listener ids, in registration order.
  std::unordered_map<cloud::MarketId, std::vector<ListenerId>, cloud::MarketIdHash>
      interest_;
  std::unordered_map<cloud::MarketId, cloud::SpotMarket::SubscriptionId,
                     cloud::MarketIdHash>
      subscribed_;
  ListenerId next_listener_ = 1;
};

}  // namespace spothost::sched
