// Shared fleet market watcher — layer 1 ("when to move") of the scheduler
// decomposition.
//
// A CloudScheduler used to subscribe to every candidate market's price feed
// itself, so a fleet of N schedulers over M markets held N×M provider-side
// subscriptions and every price tick fanned out through N×M independent
// std::function hops. The MarketWatcher subscribes to each provider feed at
// most ONCE — fleet cost is O(M) subscriptions — and fans typed trigger
// notifications out to any number of registered listeners:
//
//  * kPriceChange  — a watched market's spot price ticked;
//  * kHourBoundary — a billing-hour check the listener asked to be woken
//    for (per-instance hours are listener state, so the watcher only owns
//    the delivery, not the schedule);
//  * kRevocation   — the provider warned an instance the listener armed.
//
// Fan-out is batched for fleet scale: one price step is one pass over the
// market's interest list — no per-service events, no snapshot allocation,
// and since PR 9 no type-erased hops anywhere on the path: the provider
// feed arrives through SpotMarket::PriceListener and leaves through
// TriggerListener — two devirtualizable virtual calls per (tick, listener).
// Listeners live in a dense vector indexed by ListenerId (ids are never
// reused); removal tombstones the slot, dispatch iterates by index with the
// list length captured up front, so listeners may (un)register and watch()
// reentrantly mid-dispatch. Tombstoned ids are swept out of interest lists
// only between dispatches. Listeners within one market fire in registration
// order; identical registration order yields identical dispatch order,
// every run.
//
// Sharded runs (simcore/sharded_sim.hpp): bind_shards() attaches a
// ShardRouter and assign_shard() pins a listener to a shard lane. A price
// step then runs in two passes: a parallel *stage* evaluates every pinned
// listener's wants_trigger() on its own shard lane
// (ShardRouter::run_stage), and the serial delivery pass invokes
// on_trigger, in registration order, only where the stage said the trigger
// matters (unpinned listeners are always delivered inline). A declined
// trigger is by contract a complete no-op, so delivery order, state, and
// trace bytes are identical to the serial engine, while the predicate
// evaluation — the O(listeners x ticks) fleet-scale term — runs across
// shard lanes. Hour ticks and revocations stay on the global clock in the
// serial phase: both may talk to the provider, which is global-lane state.
// register/watch/arm/assign calls are serial-phase operations — never call
// them from a window callback or a stage task.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cloud/provider.hpp"
#include "simcore/clock.hpp"
#include "simcore/shard_router.hpp"

namespace spothost::sched {

/// Edge-triggered threshold-crossing detector: feed it the above/below
/// observation at every price tick; it reports an edge exactly once per
/// crossing. A first observation that is already below the threshold is
/// steady state, not a crossing (a fresh adoption into a calm market must
/// not fire). reset() forgets history — call it when the reference market
/// changes.
class CrossingDetector {
 public:
  enum class Edge { kNone, kUp, kDown };

  Edge observe(bool above) noexcept {
    const bool crossed = would_edge(above);
    above_ = above;
    if (!crossed) return Edge::kNone;
    return above ? Edge::kUp : Edge::kDown;
  }

  /// Whether observe(above) WOULD report an edge, without recording the
  /// observation — the side-effect-free form pre-screens (wants_trigger)
  /// need. Note an unobserved detector treats `above == false` as steady
  /// state, same as observe().
  [[nodiscard]] bool would_edge(bool above) const noexcept {
    return above_ ? *above_ != above : above;
  }

  void reset() noexcept { above_.reset(); }

 private:
  std::optional<bool> above_;
};

class MarketWatcher : private cloud::SpotMarket::PriceListener {
 public:
  using ListenerId = std::uint64_t;
  inline static constexpr ListenerId kInvalidListener = 0;

  enum class TriggerKind : std::uint8_t { kPriceChange, kHourBoundary, kRevocation };

  /// One typed notification. Only the fields of the firing kind are set.
  struct Trigger {
    TriggerKind kind = TriggerKind::kPriceChange;
    cloud::MarketId market{};                            ///< kPriceChange
    double price = 0.0;                                  ///< kPriceChange
    cloud::InstanceId instance = cloud::kInvalidInstance;///< kRevocation
    sim::SimTime t_term = 0;                             ///< kRevocation
  };

  /// The listener surface. Direct interface dispatch — the watcher holds a
  /// raw pointer per listener; no std::function, no capture storage.
  class TriggerListener {
   public:
    virtual ~TriggerListener() = default;
    /// Listener contract:
    ///  * Delivery is synchronous, inside the provider/simulation event that
    ///    caused it — the callback observes the world exactly as the trigger
    ///    left it, and may issue provider requests or (un)register listeners
    ///    reentrantly (dispatch tolerates mid-pass mutation). Exception:
    ///    listeners pinned to a shard receive price triggers at the head of
    ///    the next parallel window instead (see the class comment).
    ///  * Listeners sharing a market fire in registration (ListenerId)
    ///    order; same registrations, same dispatch order, every run.
    ///  * The listener object must stay valid until remove_listener
    ///    returns; after that no further triggers are delivered, including
    ///    to recipients the in-flight dispatch has not reached yet.
    virtual void on_trigger(const Trigger& trigger) = 0;

    /// Pre-screen, consulted for shard-pinned listeners only: runs on the
    /// listener's shard lane, in parallel with other shards, before the
    /// serial delivery pass. Return false iff on_trigger(trigger) would be
    /// a complete no-op (no state change, no provider call, no trace) so
    /// delivery can skip the listener without changing any observable
    /// behavior. Must be const-pure (a run_stage task: no scheduling, no
    /// tracing) and read only shard-local state plus shared state frozen
    /// for the tick, e.g. market prices. Returning true when on_trigger
    /// would no-op is always safe — merely unparallel.
    [[nodiscard]] virtual bool wants_trigger(const Trigger& trigger) const {
      (void)trigger;
      return true;
    }
  };

  MarketWatcher(sim::Clock& clock, cloud::CloudProvider& provider);

  /// Registers a listener (not owned; see TriggerListener::on_trigger for
  /// the delivery contract).
  ListenerId add_listener(TriggerListener* listener);

  /// Deregisters: no further triggers are delivered. Provider-side feed
  /// subscriptions are kept (they are bounded by the market count and the
  /// watcher typically outlives any one listener).
  void remove_listener(ListenerId id);

  /// Adds `markets` to the set the listener receives kPriceChange triggers
  /// for. The underlying provider feed is subscribed on the first interest
  /// in a market, once, no matter how many listeners watch it afterwards.
  void watch(ListenerId id, const std::vector<cloud::MarketId>& markets);

  /// Schedules a kHourBoundary trigger for `id` at absolute time `at`, on
  /// the GLOBAL clock — also for shard-pinned listeners. Returns the event
  /// handle — cancel through it. Hour checks may talk to the provider
  /// (billing-hour boundaries are global-lane state), and holders cancel
  /// these handles from serial-phase code paths; a handle minted on a shard
  /// clock would make that cancel an illegal cross-lane operation under the
  /// DESIGN.md §9.2 window rules (the sharded engine throws). Keeping the
  /// tick global makes both sides legal by construction.
  sim::EventHandle schedule_hour_tick(ListenerId id, sim::SimTime at);

  /// Routes the provider's revocation warning for `instance` to `id` as a
  /// kRevocation trigger (replaces any previously installed handler).
  ///
  /// The watcher only owns routing; *when* the warning arrives is the
  /// provider's business. Under fault injection (src/faults) the warning may
  /// be delivered late (kWarningDelayed) or collapse onto the termination
  /// instant itself (kWarningDropped) — still strictly before the instance
  /// is torn down, but possibly with `t_term == now`. Listeners must not
  /// assume the full grace window is left when the trigger fires.
  /// Revocation triggers are always delivered synchronously in the serial
  /// phase, even for shard-pinned listeners — a revocation reply talks to
  /// the provider, which is global-lane state.
  void arm_revocation(ListenerId id, cloud::InstanceId instance);

  /// Attaches the sharded engine's router. Call once, before any
  /// assign_shard. Serial runs never call this and keep the inline path.
  void bind_shards(sim::ShardRouter& router);

  /// Pins `id` to `shard`: its price triggers are pre-screened by
  /// wants_trigger() on that shard's lane before the serial delivery pass.
  /// Requires bind_shards() first; `shard` must be < router.shard_count().
  /// Pinning is a statement that the listener's wants_trigger touches only
  /// shard-local and frozen-shared state.
  void assign_shard(ListenerId id, std::size_t shard);

  /// Provider-side price-feed subscriptions this watcher holds — bounded by
  /// the market count, never by the listener count.
  [[nodiscard]] std::size_t provider_subscriptions() const noexcept {
    return subscribed_.size();
  }
  /// Live (registered, not yet removed) listeners.
  [[nodiscard]] std::size_t listener_count() const noexcept {
    return live_listeners_;
  }

 private:
  inline static constexpr std::uint32_t kNoShard = 0xffffffffu;

  [[nodiscard]] bool alive(ListenerId id) const noexcept {
    return id != kInvalidListener && id <= listeners_.size() &&
           listeners_[static_cast<std::size_t>(id - 1)] != nullptr;
  }
  /// cloud::SpotMarket::PriceListener — the one shared feed subscription.
  void on_price(const cloud::SpotMarket& market, double new_price) override {
    on_price_change(market.id(), new_price);
  }
  void on_price_change(const cloud::MarketId& market, double new_price);
  void deliver(ListenerId id, const Trigger& trigger);

  sim::Clock& clock_;
  cloud::CloudProvider& provider_;
  /// Dense listener table indexed by id-1; a removed listener leaves a
  /// null slot (ids are never reused, so no generation counter is needed).
  std::vector<TriggerListener*> listeners_;
  /// Shard pin per listener slot, kNoShard = inline delivery. Parallel to
  /// listeners_. Only read concurrently (window-side deliver); mutated in
  /// serial phase only.
  std::vector<std::uint32_t> shard_of_;
  std::size_t live_listeners_ = 0;
  /// Per-market listener ids, in registration order. May contain tombstoned
  /// ids between sweeps; dispatch skips them.
  std::unordered_map<cloud::MarketId, std::vector<ListenerId>, cloud::MarketIdHash>
      interest_;
  std::unordered_map<cloud::MarketId, cloud::SpotMarket::SubscriptionId,
                     cloud::MarketIdHash>
      subscribed_;
  /// Depth of in-flight price dispatches; interest lists are swept only at
  /// depth zero so index-based iteration never sees entries shift.
  int dispatch_depth_ = 0;
  /// Sharded-run routing (nullptr in serial runs — the common case).
  sim::ShardRouter* router_ = nullptr;
  /// One pinned listener collected by the pre-pass of a sharded price
  /// dispatch. `index` is the listener's interest-list position, so the
  /// delivery pass can re-walk the list in registration order and match
  /// entries even if a reentrant handler mutates listener state between
  /// collection and delivery. `want` is written by exactly one stage task
  /// (the entry's shard) — entries are disjoint across shards, so the
  /// parallel stage is race-free.
  struct StageEntry {
    std::size_t index;
    TriggerListener* listener;
    std::uint8_t want;
  };
  /// Stage scratch, indexed by dispatch depth: a listener's on_trigger may
  /// reentrantly dispatch another price change, and the nested pass must
  /// not touch the outer pass's entries. `shard_idx[s]` holds indices into
  /// `entries` for shard s's stage task.
  struct StageScratch {
    std::vector<StageEntry> entries;
    std::vector<std::vector<std::uint32_t>> shard_idx;
  };
  /// Deque, not vector: a reentrant dispatch grows this by one depth while
  /// the outer pass still holds a reference to its own scratch — deque
  /// growth leaves existing elements' addresses stable.
  std::deque<StageScratch> stage_;
};

}  // namespace spothost::sched
