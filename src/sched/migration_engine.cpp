#include "sched/migration_engine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "faults/injector.hpp"
#include "obs/sink.hpp"
#include "simcore/logging.hpp"

namespace spothost::sched {

using cloud::InstanceId;
using cloud::MarketId;
using sim::SimTime;

namespace {

std::uint8_t migration_code(virt::MigrationClass cls) noexcept {
  switch (cls) {
    case virt::MigrationClass::kForced: return obs::code::kForced;
    case virt::MigrationClass::kPlanned: return obs::code::kPlanned;
    case virt::MigrationClass::kReverse: return obs::code::kReverse;
  }
  return obs::code::kNone;
}

/// The combo with live pre-copy removed — what a live migration degrades to
/// when an injected kLiveCopyAbort fires and graceful degradation is on.
virt::MechanismCombo live_stripped(virt::MechanismCombo combo) noexcept {
  switch (combo) {
    case virt::MechanismCombo::kCkptLive: return virt::MechanismCombo::kCkpt;
    case virt::MechanismCombo::kCkptLazyLive: return virt::MechanismCombo::kCkptLazy;
    default: return combo;
  }
}

}  // namespace

MigrationEngine::MigrationEngine(sim::Clock& clock,
                                 cloud::CloudProvider& provider,
                                 workload::ServiceEndpoint& service,
                                 MigrationHost& host, const SchedulerConfig& config,
                                 const virt::VmSpec& spec, sim::RngStream& timing_rng)
    : clock_(clock),
      lane_clock_(&clock),
      provider_(provider),
      service_(service),
      host_(host),
      config_(config),
      spec_(spec),
      rng_(timing_rng),
      planner_(config.combo, config.mech, virt::NetworkModel{}),
      ckpt_planner_(live_stripped(config.combo), config.mech, virt::NetworkModel{}) {}

SimTime MigrationEngine::jittered(double seconds) {
  if (seconds <= 0) return 0;
  if (config_.timing_jitter_cv <= 0) return sim::from_seconds(seconds);
  return sim::from_seconds(rng_.lognormal_mean_cv(seconds, config_.timing_jitter_cv));
}

std::optional<virt::MigrationClass> MigrationEngine::voluntary_class() const {
  if (!migration_) return std::nullopt;
  return migration_->cls;
}

bool MigrationEngine::transfer_started() const noexcept {
  return migration_ && migration_->transfer_started;
}

std::optional<SimTime> MigrationEngine::voluntary_completion_time() const {
  if (!migration_ || !migration_->transfer_started) return std::nullopt;
  return migration_->switchover_at + sim::from_seconds(migration_->timings.downtime_s);
}

// ---------------------------------------------------------------------------
// Voluntary (planned / reverse) migrations
// ---------------------------------------------------------------------------

void MigrationEngine::begin_voluntary(virt::MigrationClass cls, const Placement& target,
                                      InstanceId source) {
  Migration m;
  m.cls = cls;
  m.target = target.market;
  m.target_on_demand = target.on_demand;
  migration_ = m;

  if (target.on_demand) {
    migration_->dest = provider_.request_on_demand(
        target.market,
        [this](InstanceId iid) {
          if (!migration_ || migration_->dest != iid) return;
          migration_->dest_ready = true;
          start_transfer();
        },
        [this, cls](cloud::AllocFailure) {
          // Only an injected capacity fault can land here (on-demand never
          // fails on price). The injector already traced it; drop the move
          // unless the host's retry policy is allowed to re-trigger.
          if (!migration_) return;
          migration_.reset();
          if (config_.retry.retries_enabled()) host_.on_voluntary_dest_failed(cls);
        });
  } else {
    migration_->dest = provider_.request_spot(
        target.market, target.bid,
        [this](InstanceId iid) {
          if (!migration_ || migration_->dest != iid) return;
          migration_->dest_ready = true;
          provider_.set_revocation_handler(
              iid, [this](InstanceId warned, SimTime t_term) {
                host_.on_revocation_warning(warned, t_term);
              });
          start_transfer();
        },
        [this, cls, target = target.market](cloud::AllocFailure reason) {
          auto e = host_.trace_event(obs::EventKind::kSpotRequestFailed,
                                     obs::code::kNone);
          e.market = target.str();
          host_.trace(std::move(e));
          if (!migration_) return;
          migration_.reset();
          if (reason == cloud::AllocFailure::kInsufficientCapacity &&
              !config_.retry.retries_enabled()) {
            return;  // retries-off ablation: the faulted move is just dropped
          }
          // The chosen market evaporated; the host decides whether to retry
          // (planned: fall back to on-demand if the trigger still holds;
          // reverse: try again next billing hour).
          host_.on_voluntary_dest_failed(cls);
        });
  }
  if (owner_ != cloud::kNoOwner) {
    provider_.set_instance_owner(migration_->dest, owner_);
  }
  auto e = host_.trace_event(obs::EventKind::kMigrationBegin, migration_code(cls));
  e.instance = source;
  if (cls == virt::MigrationClass::kPlanned) {
    e.aux = target.on_demand ? 1.0 : 0.0;
  }
  e.market = target.market.str();
  host_.trace(std::move(e));
  SPOTHOST_LOG(sim::LogLevel::kInfo, clock_.now(),
               (cls == virt::MigrationClass::kReverse ? "reverse" : "planned")
                   << " migration -> " << target.market.str()
                   << (target.on_demand ? " (on-demand)" : " (spot)"));
}

void MigrationEngine::start_transfer() {
  if (!migration_ || !migration_->dest_ready || migration_->transfer_started) return;
  if (host_.source_instance() == cloud::kInvalidInstance) return;
  bool degrade_to_ckpt = false;
  if (auto* inj = clock_.fault_injector();
      inj && virt::uses_live_migration(config_.combo) &&
      inj->should_inject(faults::FaultKind::kLiveCopyAbort,
                         migration_->target.str(), migration_->dest)) {
    if (config_.retry.graceful_degradation) {
      // Live pre-copy aborted: degrade to plain stop-and-copy on the same
      // destination (longer downtime) instead of losing the migration.
      degrade_to_ckpt = true;
      auto e = host_.trace_event(obs::EventKind::kDegradedMode,
                                 obs::code::kDegradeLiveToCkpt);
      e.instance = migration_->dest;
      e.market = migration_->target.str();
      host_.trace(std::move(e));
    } else {
      const auto cls = migration_->cls;
      abandon(AbandonReason::kFault);
      if (config_.retry.retries_enabled()) host_.on_voluntary_dest_failed(cls);
      return;
    }
  }
  migration_->timings = (degrade_to_ckpt ? ckpt_planner_ : planner_)
                            .plan(migration_->cls, spec_,
                                  host_.source_market().region,
                                  migration_->target.region);
  migration_->transfer_started = true;
  migration_->switchover_at =
      clock_.now() + jittered(migration_->timings.prepare_s);
  migration_->switchover_event =
      clock_.at(migration_->switchover_at, [this] { complete_switchover(); });
  auto e = host_.trace_event(obs::EventKind::kMigrationTransfer,
                             migration_code(migration_->cls));
  e.instance = migration_->dest;
  e.value = migration_->timings.prepare_s;
  e.market = migration_->target.str();
  host_.trace(std::move(e));
}

void MigrationEngine::complete_switchover() {
  if (!migration_) return;
  const InstanceId source = host_.source_instance();
  if (source == cloud::kInvalidInstance) return;
  const Migration m = *migration_;
  migration_.reset();

  const SimTime downtime = jittered(m.timings.downtime_s);
  const SimTime degraded = jittered(m.timings.degraded_s);
  const auto cause = (m.cls == virt::MigrationClass::kReverse)
                         ? workload::OutageCause::kReverseMigration
                         : workload::OutageCause::kPlannedMigration;

  // Stop billing the source now; the destination has been running (and
  // billing) since it came up. A source that is already under a revocation
  // warning is left for the provider to revoke — the partial hour is then
  // free instead of billed.
  if (provider_.instance(source).state != cloud::InstanceState::kWarned) {
    provider_.terminate(source);
  }
  host_.on_source_released();

  {
    auto e = host_.trace_event(obs::EventKind::kMigrationSwitchover,
                               migration_code(m.cls));
    e.instance = m.dest;
    e.value = sim::to_seconds(downtime);
    e.aux = sim::to_seconds(degraded);
    e.market = m.target.str();
    host_.trace(std::move(e));
  }
  if (m.cls != virt::MigrationClass::kReverse && !m.target_on_demand) {
    auto e = host_.trace_event(obs::EventKind::kMarketSwitch, obs::code::kNone);
    e.instance = m.dest;
    e.market = m.target.str();
    host_.trace(std::move(e));
  }

  if (downtime > 0 && service_.is_up()) {
    service_.begin_outage(clock_.now(), cause);
    const SimTime up_at = clock_.now() + downtime;
    // Service-local timeline: the outage end (and its degraded tail) touch
    // only the service, so in a pinned fleet they run on the shard lane,
    // inside parallel windows. Absolute times, and now() read back from the
    // lane clock — the global clock lags inside a window. The nested
    // schedule runs on the lane's own clock from its own window: legal, and
    // after() is correct there (lane now == the firing time).
    lane_clock_->at(up_at, [this, degraded] {
      if (forced_) return;  // a forced flow took over mid-switchover
      if (!service_.is_up()) {
        service_.end_outage(lane_clock_->now(), degraded > 0);
        if (degraded > 0) {
          lane_clock_->after(
              degraded, [this] { service_.end_degraded(lane_clock_->now()); });
        }
      }
    });
  }
  host_.adopt(m.dest, m.target, m.target_on_demand);
}

void MigrationEngine::abandon(AbandonReason reason) {
  if (!migration_) return;
  migration_->switchover_event.cancel();
  if (migration_->dest != cloud::kInvalidInstance) {
    // Pending requests are cancelled; a ready destination is released (its
    // partial hour is billed — the price of a cancelled migration).
    provider_.terminate(migration_->dest);
  }
  std::uint8_t code = obs::code::kAbandonPreempted;
  switch (reason) {
    case AbandonReason::kPriceRecovered: code = obs::code::kAbandonPriceRecovered; break;
    case AbandonReason::kDestRevoked: code = obs::code::kAbandonDestRevoked; break;
    case AbandonReason::kPreempted: code = obs::code::kAbandonPreempted; break;
    case AbandonReason::kFault: code = obs::code::kAbandonFault; break;
  }
  auto e = host_.trace_event(obs::EventKind::kMigrationAbandon, code);
  e.instance = migration_->dest;
  e.market = migration_->target.str();
  migration_.reset();
  host_.trace(std::move(e));
}

std::optional<virt::MigrationClass> MigrationEngine::dest_warned(InstanceId instance) {
  if (!migration_ || instance != migration_->dest) return std::nullopt;
  const auto cls = migration_->cls;
  abandon(AbandonReason::kDestRevoked);
  return cls;
}

// ---------------------------------------------------------------------------
// Forced migrations
// ---------------------------------------------------------------------------

InstanceId MigrationEngine::request_forced_dest(const MarketId& od_market) {
  const InstanceId iid = provider_.request_on_demand(
      od_market,
      [this](InstanceId granted) {
        if (!forced_ || forced_->dest != granted) return;
        forced_->dest_ready = true;
        forced_->dest_ready_at = clock_.now();
        forced_try_resume();
      },
      [this](cloud::AllocFailure) { on_forced_dest_failed(); });
  if (owner_ != cloud::kNoOwner) provider_.set_instance_owner(iid, owner_);
  return iid;
}

void MigrationEngine::on_forced_dest_failed() {
  if (!forced_) return;
  forced_->dest = cloud::kInvalidInstance;
  const int attempt = ++forced_->dest_attempts;
  const RetryPolicy& retry = config_.retry;
  double delay_s = 0.0;
  if (retry.retries_enabled() && attempt <= retry.max_attempts) {
    delay_s = retry.backoff_s(attempt);
  } else if (retry.graceful_degradation) {
    // Retry budget spent: announce degraded mode once, then keep polling at
    // the backoff cap — the service eventually comes back, just slowly.
    if (!forced_->degraded) {
      forced_->degraded = true;
      auto e = host_.trace_event(obs::EventKind::kDegradedMode,
                                 obs::code::kDegradeSlowRetry);
      e.market = forced_->od_market.str();
      host_.trace(std::move(e));
    }
    delay_s = retry.backoff_max_s;
  } else {
    // Retries off, no degradation: the forced flow stays stuck with the
    // service down — the retries-off ablation arm measures exactly this.
    SPOTHOST_LOG(sim::LogLevel::kWarn, clock_.now(),
                 "forced replacement in " << forced_->od_market.str()
                     << " failed; retries disabled, giving up");
    return;
  }
  {
    auto e = host_.trace_event(obs::EventKind::kRetryScheduled,
                               obs::code::kRetryForcedDest);
    e.value = static_cast<double>(attempt);
    e.aux = delay_s;
    e.market = forced_->od_market.str();
    host_.trace(std::move(e));
  }
  clock_.after(sim::from_seconds(delay_s), [this] {
    if (!forced_ || forced_->dest != cloud::kInvalidInstance) return;
    forced_->dest = request_forced_dest(forced_->od_market);
  });
}

void MigrationEngine::begin_forced(SimTime t_term, InstanceId source,
                                   const MarketId& source_market) {
  {
    auto e = host_.trace_event(obs::EventKind::kMigrationBegin, obs::code::kForced);
    e.instance = source;
    e.value = sim::to_seconds(t_term);
    e.market = source_market.str();
    host_.trace(std::move(e));
  }
  host_.on_forced_begin();

  Forced f;
  f.t_term = t_term;
  f.timings = planner_.plan(virt::MigrationClass::kForced, spec_,
                            source_market.region, source_market.region);

  // Reuse an in-flight destination in the same region; otherwise release it
  // and request a fresh on-demand server here.
  if (migration_ && migration_->dest != cloud::kInvalidInstance &&
      migration_->target.region == source_market.region) {
    migration_->switchover_event.cancel();
    f.dest = migration_->dest;
    f.dest_ready = migration_->dest_ready;
    if (f.dest_ready) f.dest_ready_at = clock_.now();
    migration_.reset();
  } else {
    if (migration_) abandon(AbandonReason::kPreempted);
  }
  forced_ = f;

  const MarketId od_market{source_market.region, config_.home_market.size};
  forced_->od_market = od_market;
  if (forced_->dest == cloud::kInvalidInstance) {
    forced_->dest = request_forced_dest(od_market);
  } else if (!forced_->dest_ready) {
    // The reused destination is still pending, and its ready callback checks
    // migration_, which is now reset — it would be dropped on grant. Swap it
    // for a fresh on-demand request wired to the forced flow.
    provider_.cancel_request(forced_->dest);
    forced_->dest = request_forced_dest(od_market);
  }

  // Keep serving until the last moment the bounded flush allows.
  const SimTime t_stop = std::max(clock_.now(),
                                  t_term - sim::from_seconds(forced_->timings.flush_s));
  clock_.at(t_stop, [this] {
    if (!forced_) return;
    if (service_.is_up()) {
      service_.begin_outage(clock_.now(),
                            workload::OutageCause::kForcedMigration);
    }
    forced_->service_stopped = true;
    auto e = host_.trace_event(obs::EventKind::kMigrationTransfer, obs::code::kForced);
    e.value = forced_->timings.flush_s;  // the bounded checkpoint flush
    host_.trace(std::move(e));
    forced_try_resume();
  });
  clock_.at(t_term, [this] {
    if (!forced_) return;
    host_.on_source_lost();
    forced_try_resume();
  });
  SPOTHOST_LOG(sim::LogLevel::kInfo, clock_.now(),
               "forced migration, termination at " << sim::format_time(t_term));
}

void MigrationEngine::forced_try_resume() {
  if (!forced_ || forced_->resume_scheduled) return;
  if (!forced_->service_stopped || !forced_->dest_ready) return;
  if (clock_.now() < forced_->t_term) return;  // source not gone yet
  forced_->resume_scheduled = true;
  SimTime restore = jittered(forced_->timings.restore_s);
  SimTime degraded = jittered(forced_->timings.degraded_s);
  if (auto* inj = clock_.fault_injector(); inj) {
    const std::string dest_market = provider_.instance(forced_->dest).market.str();
    if (inj->should_inject(faults::FaultKind::kCheckpointStall, dest_market,
                           forced_->dest)) {
      const auto stall = static_cast<SimTime>(std::llround(
          static_cast<double>(restore) *
          (inj->plan().checkpoint_stall_factor - 1.0)));
      if (config_.retry.graceful_degradation) {
        // Absorb the stalled tail as degraded time (lazy-restore style): the
        // service comes up on schedule and back-fills slowly.
        degraded += stall;
        auto e = host_.trace_event(obs::EventKind::kDegradedMode,
                                   obs::code::kDegradeStallAbsorbed);
        e.instance = forced_->dest;
        e.value = sim::to_seconds(stall);
        e.market = dest_market;
        host_.trace(std::move(e));
      } else {
        restore += stall;  // the outage holds until the full transfer lands
      }
    }
  }
  clock_.after(restore, [this, restore, degraded] {
    if (!forced_) return;
    const Forced f = *forced_;
    forced_.reset();
    if (!service_.is_up()) {
      service_.end_outage(clock_.now(), degraded > 0);
      if (degraded > 0) {
        // Service-local tail of a global-lane callback: absolute time (the
        // lane clock may lag here), then lane-resident execution.
        lane_clock_->at(clock_.now() + degraded,
                        [this] { service_.end_degraded(lane_clock_->now()); });
      }
    }
    const auto& inst = provider_.instance(f.dest);
    auto e = host_.trace_event(obs::EventKind::kMigrationSwitchover, obs::code::kForced);
    e.instance = f.dest;
    e.value = sim::to_seconds(restore);
    e.aux = sim::to_seconds(degraded);
    e.market = inst.market.str();
    host_.trace(std::move(e));
    host_.adopt(f.dest, inst.market, inst.mode == cloud::BillingMode::kOnDemand);
  });
}

}  // namespace spothost::sched
