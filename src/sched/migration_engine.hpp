// Migration engine — layer 3 ("how to move") of the scheduler decomposition.
//
// The engine owns the mechanics of the paper's three migration classes
// (Sec. 3): the in-flight voluntary (planned/reverse) migration with its
// destination request, transfer and switchover timing, spike abandonment,
// and the forced revocation flow (bounded checkpoint flush in the grace
// window, on-demand replacement, lazy restore). It drives the VM mechanism
// models and the provider's instance lifecycle, but owns no *policy*: the
// host decides when to migrate and where to (sched/placement.hpp), and the
// engine reports back through the narrow MigrationHost interface.
//
// The host keeps sole ownership of the trace pipeline (MigrationHost::trace)
// so engine-emitted events still feed the scheduler's CounterSink — stats
// can never disagree with an attached sink — and of the timing RNG stream,
// which the engine borrows so jitter draws stay in the monolith's order
// (same-seed runs are byte-identical).
#pragma once

#include <cstdint>
#include <optional>

#include "cloud/provider.hpp"
#include "obs/counter_sink.hpp"
#include "sched/placement.hpp"
#include "sched/scheduler_config.hpp"
#include "simcore/rng.hpp"
#include "simcore/clock.hpp"
#include "virt/mechanisms.hpp"
#include "workload/endpoint.hpp"

namespace spothost::sched {

/// Why an in-flight planned/reverse migration was torn down. Only
/// kPriceRecovered counts as a "spike cancellation" in the stats.
enum class AbandonReason : std::uint8_t {
  kPriceRecovered,  ///< the price trigger evaporated before transfer
  kDestRevoked,     ///< the destination instance got a revocation warning
  kPreempted,       ///< superseded by a forced migration of the source
  kFault,           ///< an injected mid-flight fault (e.g. live-copy abort)
};

/// What the MigrationEngine needs from whoever hosts it (CloudScheduler).
/// Deliberately narrow: current-source queries, lifecycle notifications,
/// and the trace pipeline. No scheduler internals leak through.
///
/// Contract for implementers:
///  * Every method may be called from inside a simulation event, including
///    reentrantly from a host call into the engine (begin_forced abandons an
///    in-flight voluntary move, which calls back on_voluntary_dest_failed
///    only through the failure path — but adopt/on_source_released do fire
///    synchronously from complete_switchover). Implementations must tolerate
///    being invoked while their own call into the engine is on the stack.
///  * adopt() transfers ownership of `instance` to the host, which becomes
///    responsible for its revocation handler and eventual termination.
///  * on_voluntary_dest_failed is advisory: the engine has already torn the
///    migration down; the host may re-trigger or drop the move. It is NOT
///    called when fault-recovery retries are disabled (the retries-off
///    ablation deliberately strands failed moves).
///  * trace()/trace_event() are the only trace path: the engine never emits
///    events around the host, so the host's CounterSink (and therefore
///    SchedulerStats) can never disagree with an attached tracer.
class MigrationHost {
 public:
  virtual ~MigrationHost() = default;

  /// The instance currently hosting the service (kInvalidInstance if none).
  [[nodiscard]] virtual cloud::InstanceId source_instance() const noexcept = 0;
  /// Market of source_instance(); meaningful only while one is held.
  [[nodiscard]] virtual cloud::MarketId source_market() const = 0;

  /// A migration completed: the service now runs on `instance`.
  virtual void adopt(cloud::InstanceId instance, const cloud::MarketId& market,
                     bool on_demand) = 0;
  /// A forced flow began: drop any scheduled voluntary-migration timers.
  virtual void on_forced_begin() = 0;
  /// The provider terminated the source (forced t_term): the service has no
  /// home until the forced flow resumes it.
  virtual void on_source_lost() = 0;
  /// A voluntary switchover released the source; source-bound timers
  /// (reverse hour checks) are now stale.
  virtual void on_source_released() = 0;
  /// A voluntary destination request failed or its instance was revoked
  /// before adoption; the host may retry per its trigger policy.
  virtual void on_voluntary_dest_failed(virt::MigrationClass cls) = 0;
  /// A revocation warning for an instance the engine armed (a voluntary
  /// spot destination) — route back through the host's trigger handling.
  virtual void on_revocation_warning(cloud::InstanceId instance,
                                     sim::SimTime t_term) = 0;

  /// Trace pipeline (counters + attached tracer) — the engine never emits
  /// events around the host.
  virtual void trace(obs::TraceEvent event) = 0;
  [[nodiscard]] virtual obs::TraceEvent trace_event(obs::EventKind kind,
                                                    std::uint8_t code) const = 0;
};

class MigrationEngine {
 public:
  MigrationEngine(sim::Clock& clock, cloud::CloudProvider& provider,
                  workload::ServiceEndpoint& service, MigrationHost& host,
                  const SchedulerConfig& config, const virt::VmSpec& spec,
                  sim::RngStream& timing_rng);

  MigrationEngine(const MigrationEngine&) = delete;
  MigrationEngine& operator=(const MigrationEngine&) = delete;

  /// Starts a voluntary (planned/reverse) migration of `source` to `target`:
  /// requests the destination, transfers once it is ready, switches over.
  void begin_voluntary(virt::MigrationClass cls, const Placement& target,
                       cloud::InstanceId source);

  /// Starts the forced flow for a source under a revocation warning that
  /// terminates at `t_term`. Cannibalises a same-region in-flight voluntary
  /// destination; abandons any other.
  void begin_forced(sim::SimTime t_term, cloud::InstanceId source,
                    const cloud::MarketId& source_market);

  /// Tears down the in-flight voluntary migration (cancels or releases the
  /// destination, emits the abandon event).
  void abandon(AbandonReason reason);

  /// Consumes a revocation warning aimed at the in-flight voluntary
  /// destination: abandons it and returns its class so the host can retry.
  /// nullopt = the warning was not for our destination.
  [[nodiscard]] std::optional<virt::MigrationClass> dest_warned(
      cloud::InstanceId instance);

  // --- state queries ----------------------------------------------------
  [[nodiscard]] bool active() const noexcept {
    return migration_.has_value() || forced_.has_value();
  }
  [[nodiscard]] bool forced_active() const noexcept { return forced_.has_value(); }
  [[nodiscard]] bool voluntary_active() const noexcept {
    return migration_.has_value();
  }
  [[nodiscard]] std::optional<virt::MigrationClass> voluntary_class() const;
  [[nodiscard]] bool transfer_started() const noexcept;
  /// When a voluntary transfer is in flight: the time the service will be
  /// back up on the destination (switchover + downtime). nullopt otherwise.
  [[nodiscard]] std::optional<sim::SimTime> voluntary_completion_time() const;

  // --- shared mechanism services ---------------------------------------
  [[nodiscard]] const virt::MigrationPlanner& planner() const noexcept {
    return planner_;
  }
  /// `seconds` as SimTime with the configured lognormal measurement jitter,
  /// drawn from the host's timing stream.
  [[nodiscard]] sim::SimTime jittered(double seconds);

  /// Moves the engine's service-local timers (outage end at switchover
  /// downtime, degraded-window ends) onto `lane` — a shard clock in pinned
  /// fleet runs (CloudScheduler::pin_to_shard calls this). Everything that
  /// touches the provider, the trace pipeline, or the shared timing RNG
  /// stays on the construction clock. Serial-phase setup only.
  void bind_lane(sim::Clock& lane) noexcept { lane_clock_ = &lane; }

  /// Owner tag applied to every destination instance the engine requests
  /// from now on (cloud::CloudProvider::set_instance_owner).
  void set_owner_tag(std::uint64_t owner) noexcept { owner_ = owner; }

 private:
  struct Migration {
    virt::MigrationClass cls{};
    cloud::MarketId target;
    bool target_on_demand = false;
    cloud::InstanceId dest = cloud::kInvalidInstance;
    bool dest_ready = false;
    bool transfer_started = false;
    sim::SimTime switchover_at = -1;
    virt::MigrationTimings timings{};
    sim::EventHandle switchover_event;
  };

  struct Forced {
    sim::SimTime t_term = 0;
    cloud::InstanceId dest = cloud::kInvalidInstance;
    bool dest_ready = false;
    sim::SimTime dest_ready_at = -1;
    bool service_stopped = false;
    bool resume_scheduled = false;
    virt::MigrationTimings timings{};
    /// Market the replacement server is requested in — kept so the
    /// fault-recovery chain can re-request after an injected capacity error.
    cloud::MarketId od_market{};
    int dest_attempts = 0;  ///< failed replacement requests so far
    bool degraded = false;  ///< degraded-mode (slow-poll) announcement made
  };

  void start_transfer();
  void complete_switchover();
  void forced_try_resume();
  cloud::InstanceId request_forced_dest(const cloud::MarketId& od_market);
  void on_forced_dest_failed();

  sim::Clock& clock_;
  /// Where bind_lane routes service-local timers; &clock_ until then.
  /// Callbacks scheduled here read lane_clock_->now() — inside a parallel
  /// window the global clock still shows the previous barrier.
  sim::Clock* lane_clock_;
  cloud::CloudProvider& provider_;
  workload::ServiceEndpoint& service_;
  MigrationHost& host_;
  const SchedulerConfig& config_;
  const virt::VmSpec& spec_;
  sim::RngStream& rng_;
  virt::MigrationPlanner planner_;
  /// Fallback planner with live pre-copy stripped from the combo — used when
  /// an injected kLiveCopyAbort degrades a live migration to stop-and-copy.
  virt::MigrationPlanner ckpt_planner_;

  std::optional<Migration> migration_;
  std::optional<Forced> forced_;
  std::uint64_t owner_ = cloud::kNoOwner;
};

}  // namespace spothost::sched
