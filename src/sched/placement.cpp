#include "sched/placement.hpp"

#include <algorithm>

#include "sched/bidding.hpp"

namespace spothost::sched {

std::string_view ScopedPlacementPolicy::name() const noexcept { return "scoped"; }

std::vector<cloud::MarketId> ScopedPlacementPolicy::watched_markets(
    const cloud::CloudProvider& provider, const SchedulerConfig& config) const {
  return candidate_markets(provider, config.scope, config.home_market,
                           config.allowed_regions);
}

std::optional<Placement> ScopedPlacementPolicy::choose_spot(
    const cloud::CloudProvider& provider, const SchedulerConfig& config,
    const PlacementQuery& query) const {
  SelectionOptions options;
  options.units_needed = query.units_needed;
  options.max_effective_price = query.max_effective_price;
  options.exclude = query.exclude;
  options.avoid = query.avoid;
  options.stability = config.stability;
  options.stability_penalty_weight = config.stability_penalty_weight;
  options.stability_window = config.stability_window;
  options.now = query.now;
  const auto candidates = candidate_markets(provider, config.scope,
                                            config.home_market, config.allowed_regions);
  const auto best = best_spot_market(provider, candidates, options);
  if (!best) return std::nullopt;
  return Placement{*best, /*on_demand=*/false,
                   bid_strategy_for(config)->bid_for(provider, config, *best, query.now)};
}

Placement ScopedPlacementPolicy::choose_on_demand(const cloud::CloudProvider& provider,
                                                  const SchedulerConfig& config,
                                                  const PlacementQuery& query) const {
  std::string region =
      query.fallback_region.empty() ? config.home_market.region : query.fallback_region;
  if (config.scope == MarketScope::kMultiRegion) {
    const auto& regions = config.allowed_regions.empty() ? provider.regions()
                                                         : config.allowed_regions;
    region = cheapest_on_demand_region(provider, regions, config.home_market.size);
  }
  return Placement{cloud::MarketId{region, config.home_market.size},
                   /*on_demand=*/true, 0.0};
}

std::shared_ptr<const PlacementPolicy> placement_policy_for(
    const SchedulerConfig& config) {
  if (config.placement) return config.placement;
  static const auto kScoped = std::make_shared<const ScopedPlacementPolicy>();
  return kScoped;
}

}  // namespace spothost::sched
