// Placement policies — layer 2 ("where to move") of the scheduler
// decomposition.
//
// A PlacementPolicy answers one question: given the provider's current
// prices and a price ceiling, which destination should the service move to?
// A destination is a Placement — market, on-demand flag, and (for spot) the
// bid. CloudScheduler and MigrationEngine never select markets themselves;
// they ask the policy, so new strategies (portfolio selection, hybrid
// spot/on-demand splits, ...) plug in through SchedulerConfig::placement
// without touching either.
//
// The default ScopedPlacementPolicy implements the paper's behaviour:
// candidates from the configured MarketScope (Secs. 4.2/4.4/4.5), ranked by
// effective price (optionally stability-penalised), with the on-demand
// fallback in the query's fallback region — or, under kMultiRegion, the
// cheapest allowed region.
//
// Shipped alternatives (portfolio spreading, revocation-predictive ranking)
// live in sched/policy_zoo.hpp. docs/POLICIES.md is the policy author's
// guide: the full contract, determinism rules, and a worked example.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cloud/provider.hpp"
#include "sched/market_selection.hpp"
#include "sched/scheduler_config.hpp"
#include "simcore/time.hpp"

namespace spothost::sched {

/// A migration destination: where, on what billing mode, at what bid.
struct Placement {
  cloud::MarketId market{};
  bool on_demand = false;
  double bid = 0.0;  ///< spot only
};

/// Everything situational a policy may need; config holds the rest.
struct PlacementQuery {
  /// Capacity the service needs, in small-units.
  int units_needed = 1;
  /// Spot destinations at or above this effective $/hr do not qualify.
  double max_effective_price = 0.0;
  /// Market to exclude (the one currently held, when on spot).
  std::optional<cloud::MarketId> exclude;
  /// Markets that recently failed allocation (injected capacity faults):
  /// the fault-recovery retry chain grows this list so each retry falls
  /// back to the next-cheapest market, then on-demand when none remain.
  std::vector<cloud::MarketId> avoid{};
  /// Region of the on-demand fallback (the current region, else home).
  std::string fallback_region;
  sim::SimTime now = 0;
};

/// Strategy interface for destination selection (layer 2 of the scheduler).
///
/// Contract for implementers:
///  * Policies are immutable and shared (held by shared_ptr<const ...>): a
///    single instance may serve many schedulers across threads, so all three
///    methods must be const-pure — derive everything from the arguments.
///  * choose_spot must honour every field of the query (`exclude`, `avoid`,
///    the price ceiling); the scheduler relies on that for hysteresis and
///    fault fallback. Returning nullopt means "no spot market qualifies" and
///    routes the decision to choose_on_demand.
///  * choose_on_demand must always return a valid placement — it is the end
///    of every fallback chain.
///  * watched_markets bounds the trigger surface: the scheduler only reacts
///    to price feeds listed here (plus the home market), so a policy that
///    selects from markets it does not watch will miss its own triggers.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Stable policy name, for logs and bench labels.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Markets whose price feed the scheduler should watch for triggers.
  /// The home market is always watched in addition to these.
  [[nodiscard]] virtual std::vector<cloud::MarketId> watched_markets(
      const cloud::CloudProvider& provider, const SchedulerConfig& config) const = 0;

  /// Best qualifying spot destination, or nullopt if no market beats the
  /// ceiling. A returned placement has on_demand == false and a live bid.
  [[nodiscard]] virtual std::optional<Placement> choose_spot(
      const cloud::CloudProvider& provider, const SchedulerConfig& config,
      const PlacementQuery& query) const = 0;

  /// The on-demand fallback destination (always exists).
  [[nodiscard]] virtual Placement choose_on_demand(
      const cloud::CloudProvider& provider, const SchedulerConfig& config,
      const PlacementQuery& query) const = 0;
};

/// The paper's scope-driven selection: single-market, multi-market
/// effective-price, or multi-region (Secs. 4.2, 4.4, 4.5).
class ScopedPlacementPolicy final : public PlacementPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override;

  [[nodiscard]] std::vector<cloud::MarketId> watched_markets(
      const cloud::CloudProvider& provider,
      const SchedulerConfig& config) const override;

  [[nodiscard]] std::optional<Placement> choose_spot(
      const cloud::CloudProvider& provider, const SchedulerConfig& config,
      const PlacementQuery& query) const override;

  [[nodiscard]] Placement choose_on_demand(const cloud::CloudProvider& provider,
                                           const SchedulerConfig& config,
                                           const PlacementQuery& query) const override;
};

/// The policy a config selects: config.placement if set, else a shared
/// immutable ScopedPlacementPolicy.
std::shared_ptr<const PlacementPolicy> placement_policy_for(const SchedulerConfig& config);

}  // namespace spothost::sched
