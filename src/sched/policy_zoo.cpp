#include "sched/policy_zoo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "cloud/market.hpp"
#include "sched/bidding.hpp"
#include "trace/features.hpp"

namespace spothost::sched {
namespace {

/// Mirrors best_spot_market's filter: a candidate qualifies when it is not
/// excluded/avoided and its effective price is strictly below the ceiling.
bool qualifies(const cloud::MarketId& market, const PlacementQuery& query,
               double effective_price) {
  if (query.exclude && *query.exclude == market) return false;
  if (std::find(query.avoid.begin(), query.avoid.end(), market) !=
      query.avoid.end()) {
    return false;
  }
  return effective_price < query.max_effective_price;
}

}  // namespace

// ---------------------------------------------------------------------------
// PortfolioPlacementPolicy
// ---------------------------------------------------------------------------

PortfolioPlacementPolicy::PortfolioPlacementPolicy()
    : PortfolioPlacementPolicy(Params{}) {}

PortfolioPlacementPolicy::PortfolioPlacementPolicy(Params params)
    : params_(params) {
  if (params_.basket_size < 1) {
    throw std::invalid_argument(
        "PortfolioPlacementPolicy: basket_size must be >= 1 (got " +
        std::to_string(params_.basket_size) + ")");
  }
  if (params_.volatility_window <= 0) {
    throw std::invalid_argument(
        "PortfolioPlacementPolicy: volatility_window must be > 0");
  }
  if (params_.rebalance_period <= 0) {
    throw std::invalid_argument(
        "PortfolioPlacementPolicy: rebalance_period must be > 0");
  }
  if (params_.volatility_floor <= 0.0) {
    throw std::invalid_argument(
        "PortfolioPlacementPolicy: volatility_floor must be > 0 (got " +
        std::to_string(params_.volatility_floor) + ")");
  }
}

std::string_view PortfolioPlacementPolicy::name() const noexcept {
  return "portfolio";
}

std::vector<cloud::MarketId> PortfolioPlacementPolicy::watched_markets(
    const cloud::CloudProvider& provider, const SchedulerConfig& config) const {
  return scoped_.watched_markets(provider, config);
}

std::optional<Placement> PortfolioPlacementPolicy::choose_spot(
    const cloud::CloudProvider& provider, const SchedulerConfig& config,
    const PlacementQuery& query) const {
  struct Entry {
    cloud::MarketId market;
    double eff = 0.0;
    double weight = 0.0;
  };
  std::vector<Entry> basket;
  for (const auto& market : candidate_markets(provider, config.scope,
                                              config.home_market,
                                              config.allowed_regions)) {
    const double eff =
        effective_spot_price(provider, market, query.units_needed);
    if (!qualifies(market, query, eff)) continue;
    const double sigma = trailing_stddev(provider, market, query.now,
                                         params_.volatility_window);
    basket.push_back({market, eff, 1.0 / (sigma + params_.volatility_floor)});
  }
  if (basket.empty()) return std::nullopt;

  // Stable-first basket, with fully deterministic tie-breaks.
  std::sort(basket.begin(), basket.end(), [](const Entry& a, const Entry& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    if (a.eff != b.eff) return a.eff < b.eff;
    return a.market.str() < b.market.str();
  });
  if (basket.size() > static_cast<std::size_t>(params_.basket_size)) {
    basket.resize(static_cast<std::size_t>(params_.basket_size));
  }
  double total_weight = 0.0;
  for (const auto& entry : basket) total_weight += entry.weight;

  // Low-discrepancy slot selection: successive rebalance periods (and
  // successive placement salts within one period) land at golden-ratio-
  // spaced fractions of [0, 1), so placements track the normalized weights
  // without any RNG draw.
  constexpr double kGolden = 0.61803398874989485;
  const std::int64_t slot = query.now / params_.rebalance_period +
                            static_cast<std::int64_t>(config.placement_salt);
  const double u = std::fmod(static_cast<double>(slot) * kGolden, 1.0);
  const Entry* pick = &basket.back();
  double cumulative = 0.0;
  for (const auto& entry : basket) {
    cumulative += entry.weight / total_weight;
    if (u < cumulative) {
      pick = &entry;
      break;
    }
  }
  const double bid = bid_strategy_for(config)->bid_for(provider, config,
                                                       pick->market, query.now);
  return Placement{pick->market, /*on_demand=*/false, bid};
}

Placement PortfolioPlacementPolicy::choose_on_demand(
    const cloud::CloudProvider& provider, const SchedulerConfig& config,
    const PlacementQuery& query) const {
  return scoped_.choose_on_demand(provider, config, query);
}

// ---------------------------------------------------------------------------
// RevocationAwarePolicy
// ---------------------------------------------------------------------------

RevocationAwarePolicy::RevocationAwarePolicy()
    : RevocationAwarePolicy(Params{}) {}

RevocationAwarePolicy::RevocationAwarePolicy(Params params) : params_(params) {
  if (params_.feature_window <= 0) {
    throw std::invalid_argument(
        "RevocationAwarePolicy: feature_window must be > 0");
  }
  if (params_.min_history <= 0 || params_.min_history > params_.feature_window) {
    throw std::invalid_argument(
        "RevocationAwarePolicy: min_history must be in (0, feature_window]");
  }
}

std::string_view RevocationAwarePolicy::name() const noexcept {
  return "revocation-aware";
}

std::vector<cloud::MarketId> RevocationAwarePolicy::watched_markets(
    const cloud::CloudProvider& provider, const SchedulerConfig& config) const {
  return scoped_.watched_markets(provider, config);
}

double RevocationAwarePolicy::predicted_ttr_hours(
    const trace::PriceTrace& price_trace, double bid, sim::SimTime now) const {
  if (price_trace.empty() || bid <= 0.0) return 0.0;
  const sim::SimTime to = std::min(now, price_trace.end());
  const sim::SimTime from =
      std::max(price_trace.start(), to - params_.feature_window);
  if (to - from < params_.min_history) return 0.0;
  const auto features = trace::extract_features(price_trace, bid, from, to);
  const double window_hours = sim::to_hours(to - from);
  if (features.excursions_above_reference == 0) return window_hours;
  // Mean calm sojourn between excursions above the bid: time spent below
  // the bid divided by the number of distinct excursions.
  return window_hours * features.fraction_below_reference /
         features.excursions_above_reference;
}

std::optional<Placement> RevocationAwarePolicy::choose_spot(
    const cloud::CloudProvider& provider, const SchedulerConfig& config,
    const PlacementQuery& query) const {
  struct Entry {
    cloud::MarketId market;
    double eff = 0.0;
    double bid = 0.0;
    double ttr_hours = 0.0;
  };
  const auto strategy = bid_strategy_for(config);
  std::optional<Entry> best;
  for (const auto& market : candidate_markets(provider, config.scope,
                                              config.home_market,
                                              config.allowed_regions)) {
    const double eff =
        effective_spot_price(provider, market, query.units_needed);
    if (!qualifies(market, query, eff)) continue;
    Entry entry{market, eff,
                strategy->bid_for(provider, config, market, query.now), 0.0};
    entry.ttr_hours = predicted_ttr_hours(
        provider.market(market).price_trace(), entry.bid, query.now);
    const bool better =
        !best || entry.ttr_hours > best->ttr_hours ||
        (entry.ttr_hours == best->ttr_hours &&
         (entry.eff < best->eff ||
          (entry.eff == best->eff && entry.market.str() < best->market.str())));
    if (better) best = entry;
  }
  if (!best) return std::nullopt;
  return Placement{best->market, /*on_demand=*/false, best->bid};
}

Placement RevocationAwarePolicy::choose_on_demand(
    const cloud::CloudProvider& provider, const SchedulerConfig& config,
    const PlacementQuery& query) const {
  return scoped_.choose_on_demand(provider, config, query);
}

}  // namespace spothost::sched
