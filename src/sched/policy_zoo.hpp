// The policy zoo: shipped PlacementPolicy strategies beyond the paper's
// scope-driven default (ScopedPlacementPolicy, sched/placement.hpp).
//
//  * PortfolioPlacementPolicy — index-tracking spreading in the style of
//    Cloud Index Tracking (Shastri & Irwin, arXiv:1809.03110): hold a
//    basket of the k most stable qualifying markets, weighted by inverse
//    trailing price volatility, and rotate the preferred slot
//    deterministically over time.
//  * RevocationAwarePolicy — fault-avoidance provisioning in the style of
//    Alourani & Kshemkalyani: rank markets by predicted time-to-revocation
//    at the bid the scheduler would actually place there, derived from
//    trailing crossing statistics (trace::extract_features).
//
// Both plug in through SchedulerConfigBuilder::placement(...) and follow
// the full PlacementPolicy contract (exclude/avoid/price ceiling, const
// purity, no RNG, no wall clock). docs/POLICIES.md is the author's guide;
// bench_ablation_policies places every shipped policy on a cost-vs-
// unavailability frontier.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "sched/placement.hpp"
#include "trace/price_trace.hpp"

namespace spothost::sched {

/// Index-tracking portfolio placement: instead of chasing the single
/// cheapest market, spread placement preference across a basket of the
/// `basket_size` most stable qualifying markets, weighted 1/(sigma + floor)
/// by trailing price volatility. The preferred basket slot advances on a
/// deterministic golden-ratio schedule every `rebalance_period`, so over a
/// month the service's placements track the basket in proportion to each
/// market's weight — predictable cost without a single-market hotspot, and
/// no RNG draws. `SchedulerConfig::placement_salt` offsets the rotation so
/// fleet replicas spread across the basket instead of stampeding one slot
/// (see FleetConfig::stagger_placement).
///
/// The rotation only matters when the scheduler has a reason to move
/// (planned/forced/reverse triggers); the policy never initiates moves.
class PortfolioPlacementPolicy final : public PlacementPolicy {
 public:
  struct Params {
    int basket_size = 3;                          ///< k markets held
    sim::SimTime volatility_window = 3 * sim::kDay;  ///< trailing stddev window
    sim::SimTime rebalance_period = sim::kHour;   ///< slot rotation cadence
    double volatility_floor = 1e-4;  ///< $/hr added to sigma; bounds weights
  };

  /// Default knobs, as documented on Params.
  PortfolioPlacementPolicy();
  /// Validates (throws std::invalid_argument naming the offending knob).
  explicit PortfolioPlacementPolicy(Params params);

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] std::vector<cloud::MarketId> watched_markets(
      const cloud::CloudProvider& provider,
      const SchedulerConfig& config) const override;
  [[nodiscard]] std::optional<Placement> choose_spot(
      const cloud::CloudProvider& provider, const SchedulerConfig& config,
      const PlacementQuery& query) const override;
  [[nodiscard]] Placement choose_on_demand(
      const cloud::CloudProvider& provider, const SchedulerConfig& config,
      const PlacementQuery& query) const override;

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  ScopedPlacementPolicy scoped_{};  ///< watch surface + on-demand fallback
};

/// Revocation-predictive placement: among qualifying candidates, pick the
/// market predicted to keep the service longest before the price next
/// exceeds the bid — avoiding revocations beats handling them. The
/// prediction comes from trailing crossing statistics against the bid the
/// configured BidStrategy would place there: mean calm sojourn between
/// excursions above the bid (time below the bid / excursion count over the
/// feature window; a window with no excursion predicts the full window).
/// Ties — every market calm at its bid — fall back to effective price, so
/// with a high proactive bid this degrades gracefully to the paper's
/// cheapest-market rule. Most distinctive with reactive bids (bid = p_on),
/// where crossings are exactly revocations.
class RevocationAwarePolicy final : public PlacementPolicy {
 public:
  struct Params {
    sim::SimTime feature_window = 3 * sim::kDay;  ///< trailing stats window
    /// Below this much committed history the prediction is 0 (unknown) and
    /// ranking falls back to effective price.
    sim::SimTime min_history = sim::kHour;
  };

  /// Default knobs, as documented on Params.
  RevocationAwarePolicy();
  /// Validates (throws std::invalid_argument naming the offending knob).
  explicit RevocationAwarePolicy(Params params);

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] std::vector<cloud::MarketId> watched_markets(
      const cloud::CloudProvider& provider,
      const SchedulerConfig& config) const override;
  [[nodiscard]] std::optional<Placement> choose_spot(
      const cloud::CloudProvider& provider, const SchedulerConfig& config,
      const PlacementQuery& query) const override;
  [[nodiscard]] Placement choose_on_demand(
      const cloud::CloudProvider& provider, const SchedulerConfig& config,
      const PlacementQuery& query) const override;

  /// Predicted hours until the price next exceeds `bid`, from the trailing
  /// window ending at `now`. 0 = no usable history. Exposed for tests.
  [[nodiscard]] double predicted_ttr_hours(const trace::PriceTrace& price_trace,
                                           double bid, sim::SimTime now) const;

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  ScopedPlacementPolicy scoped_{};  ///< watch surface + on-demand fallback
};

}  // namespace spothost::sched
