#include "sched/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/sink.hpp"
#include "simcore/logging.hpp"

namespace spothost::sched {

using cloud::InstanceId;
using cloud::MarketId;
using sim::SimTime;

namespace {

constexpr double kLeadSafetyFactor = 1.3;  // allocation-latency headroom
constexpr SimTime kLeadSlack = 60 * sim::kSecond;

std::uint8_t migration_code(virt::MigrationClass cls) noexcept {
  switch (cls) {
    case virt::MigrationClass::kForced: return obs::code::kForced;
    case virt::MigrationClass::kPlanned: return obs::code::kPlanned;
    case virt::MigrationClass::kReverse: return obs::code::kReverse;
  }
  return obs::code::kNone;
}

}  // namespace

void CloudScheduler::trace(obs::TraceEvent event) {
  counters_.on_event(event);
  if (auto* tracer = simulation_.tracer(); tracer != nullptr && tracer->enabled()) {
    tracer->emit(event);
  }
}

obs::TraceEvent CloudScheduler::trace_event(obs::EventKind kind,
                                            std::uint8_t code) const {
  obs::TraceEvent e;
  e.t = simulation_.now();
  e.kind = kind;
  e.code = code;
  return e;
}

CloudScheduler::CloudScheduler(sim::Simulation& simulation,
                               cloud::CloudProvider& provider,
                               workload::ServiceEndpoint& service,
                               SchedulerConfig config, sim::RngStream timing_rng)
    : simulation_(simulation),
      provider_(provider),
      service_(service),
      config_(std::move(config)),
      planner_(config_.combo, config_.mech, virt::NetworkModel{}),
      rng_(std::move(timing_rng)),
      spec_(config_.vm_spec) {
  config_.validate();
  if (spec_.memory_gb <= 0) {
    const auto& info = cloud::type_info(config_.home_market.size);
    spec_ = virt::default_spec_for_memory(info.memory_gb, info.disk_gb);
  }
  if (!provider_.has_market(config_.home_market)) {
    throw std::invalid_argument("CloudScheduler: unknown home market " +
                                config_.home_market.str());
  }
  if (config_.scope == MarketScope::kMultiRegion && config_.allowed_regions.empty()) {
    config_.allowed_regions = provider_.regions();
  }
}

int CloudScheduler::units_needed() const {
  if (config_.capacity_units_override > 0) return config_.capacity_units_override;
  return cloud::type_info(config_.home_market.size).capacity_units;
}

double CloudScheduler::od_threshold() const {
  const std::string& region =
      holding_ ? holding_->market.region : config_.home_market.region;
  return effective_on_demand_price(provider_, region, config_.home_market.size);
}

SelectionOptions CloudScheduler::selection_options(double threshold) const {
  SelectionOptions opts;
  opts.units_needed = units_needed();
  opts.max_effective_price = threshold;
  if (holding_ && !holding_->on_demand) opts.exclude = holding_->market;
  opts.stability = config_.stability;
  opts.stability_penalty_weight = config_.stability_penalty_weight;
  opts.stability_window = config_.stability_window;
  opts.now = simulation_.now();
  return opts;
}

SimTime CloudScheduler::jittered(double seconds) {
  if (seconds <= 0) return 0;
  if (config_.timing_jitter_cv <= 0) return sim::from_seconds(seconds);
  return sim::from_seconds(rng_.lognormal_mean_cv(seconds, config_.timing_jitter_cv));
}

SimTime CloudScheduler::planned_lead() const {
  const std::string& region =
      holding_ ? holding_->market.region : config_.home_market.region;
  const auto lat = provider_.allocation_latency(region);
  const auto t = planner_.plan(virt::MigrationClass::kPlanned, spec_, region, region);
  return sim::from_seconds(lat.on_demand_mean_s * kLeadSafetyFactor + t.prepare_s +
                           t.downtime_s) +
         kLeadSlack;
}

SimTime CloudScheduler::reverse_lead() const {
  const std::string& region =
      holding_ ? holding_->market.region : config_.home_market.region;
  const auto lat = provider_.allocation_latency(region);
  const auto t = planner_.plan(virt::MigrationClass::kReverse, spec_, region, region);
  return sim::from_seconds(lat.spot_mean_s * kLeadSafetyFactor + t.prepare_s +
                           t.downtime_s) +
         kLeadSlack;
}

SimTime CloudScheduler::next_instance_hour_boundary() const {
  if (!holding_) throw std::logic_error("next_instance_hour_boundary: no holding");
  const SimTime launch = provider_.instance(holding_->id).launch;
  const SimTime elapsed = simulation_.now() - launch;
  const SimTime hours = elapsed / sim::kHour + 1;
  return launch + hours * sim::kHour;
}

void CloudScheduler::start() {
  // One price subscription per candidate market; the handler routes by
  // current state, so subscriptions are static for the whole run.
  const auto candidates = candidate_markets(provider_, config_.scope,
                                            config_.home_market,
                                            config_.allowed_regions);
  for (const auto& market : candidates) {
    provider_.market(market).subscribe(
        [this, market](const cloud::SpotMarket&, double new_price) {
          on_price_change(market, new_price);
        });
  }
  // The home market is always watched (pure-spot reacquisition).
  if (std::find(candidates.begin(), candidates.end(), config_.home_market) ==
      candidates.end()) {
    provider_.market(config_.home_market)
        .subscribe([this](const cloud::SpotMarket& m, double new_price) {
          on_price_change(m.id(), new_price);
        });
  }
  acquire_initial();
}

void CloudScheduler::acquire_initial() {
  if (!config_.on_demand_allowed()) {
    pure_spot_reacquire();
    return;
  }
  const auto candidates = candidate_markets(provider_, config_.scope,
                                            config_.home_market,
                                            config_.allowed_regions);
  const double threshold = effective_on_demand_price(
      provider_, config_.home_market.region, config_.home_market.size);
  const auto best = best_spot_market(provider_, candidates,
                                     selection_options(threshold));
  if (best) {
    const MarketId target = *best;
    const double bid = config_.bid.bid_for(provider_, target);
    pending_acquire_ = provider_.request_spot(
        target, bid,
        [this, target](InstanceId iid) {
          pending_acquire_ = cloud::kInvalidInstance;
          adopt(iid, target, /*on_demand=*/false);
        },
        [this, target] {
          pending_acquire_ = cloud::kInvalidInstance;
          auto e = trace_event(obs::EventKind::kSpotRequestFailed, obs::code::kNone);
          e.market = target.str();
          trace(std::move(e));
          acquire_initial();  // price moved; re-evaluate (likely on-demand now)
        });
    return;
  }
  std::string od_region = config_.home_market.region;
  if (config_.scope == MarketScope::kMultiRegion) {
    od_region = cheapest_on_demand_region(provider_, config_.allowed_regions,
                                          config_.home_market.size);
  }
  const MarketId od_market{od_region, config_.home_market.size};
  pending_acquire_ = provider_.request_on_demand(
      od_market, [this, od_market](InstanceId iid) {
        pending_acquire_ = cloud::kInvalidInstance;
        adopt(iid, od_market, /*on_demand=*/true);
      });
}

void CloudScheduler::adopt(InstanceId instance, const MarketId& market,
                           bool on_demand) {
  holding_ = Holding{instance, market, on_demand};
  state_ = on_demand ? State::kOnDemand : State::kOnSpot;
  price_above_.reset();  // crossings are relative to the adopted market
  if (!service_live_) {
    service_.go_live(simulation_.now());
    service_live_ = true;
  }
  if (!on_demand) {
    provider_.set_revocation_handler(instance,
                                     [this](InstanceId iid, SimTime t_term) {
                                       on_revocation_warning(iid, t_term);
                                     });
    // Guard against adopting into an already-hot market.
    if (config_.bid.plans_migrations() && config_.on_demand_allowed() &&
        effective_spot_price(provider_, market, units_needed()) > od_threshold()) {
      maybe_schedule_planned();
    }
  } else {
    schedule_hour_check();
  }
  SPOTHOST_LOG(sim::LogLevel::kInfo, simulation_.now(),
               "adopt " << market.str() << (on_demand ? " (on-demand)" : " (spot)")
                        << " instance " << instance);
}

// ---------------------------------------------------------------------------
// Price triggers
// ---------------------------------------------------------------------------

void CloudScheduler::on_price_change(const MarketId& market, double new_price) {
  (void)new_price;
  if (forced_) return;  // the forced flow owns the next transitions

  // Pure-spot reacquisition: the market dipped back below the bid (also
  // covers an initial acquisition that has been waiting for the price).
  if (!config_.on_demand_allowed() &&
      (state_ == State::kDown || state_ == State::kAcquiring)) {
    pure_spot_reacquire();
    return;
  }

  if (state_ != State::kOnSpot || !holding_ || market != holding_->market) return;
  if (!config_.bid.plans_migrations() || !config_.on_demand_allowed()) return;

  const double eff = effective_spot_price(provider_, market, units_needed());
  const double threshold = od_threshold();
  const bool above = eff > threshold;
  // Edge-triggered: one event per crossing of the on-demand threshold, not
  // one per price tick. A freshly adopted market that is already below the
  // threshold is steady state, not a crossing.
  const bool crossed = price_above_ ? *price_above_ != above : above;
  price_above_ = above;
  if (crossed) {
    auto e = trace_event(obs::EventKind::kPriceCrossing,
                         above ? obs::code::kAbove : obs::code::kBelow);
    e.instance = holding_->id;
    e.value = eff;
    e.aux = threshold;
    e.market = market.str();
    trace(std::move(e));
  }
  if (above) {
    maybe_schedule_planned();
  } else {
    cancel_scheduled_planned();
    if (migration_ && migration_->cls == virt::MigrationClass::kPlanned &&
        !migration_->transfer_started && config_.cancel_planned_on_price_drop) {
      abandon_migration(AbandonReason::kPriceRecovered);
    }
  }
}

// ---------------------------------------------------------------------------
// Planned migrations
// ---------------------------------------------------------------------------

void CloudScheduler::maybe_schedule_planned() {
  if (migration_ || forced_ || planned_begin_event_ != sim::kInvalidEventId) return;
  if (config_.planned_timing == PlannedTiming::kImmediate) {
    begin_planned();
    return;
  }
  const SimTime begin_at = next_instance_hour_boundary() - planned_lead();
  if (begin_at <= simulation_.now()) {
    begin_planned();
    return;
  }
  planned_begin_event_ = simulation_.at(begin_at, [this] {
    planned_begin_event_ = sim::kInvalidEventId;
    if (state_ != State::kOnSpot || migration_ || forced_ || !holding_) return;
    const double eff =
        effective_spot_price(provider_, holding_->market, units_needed());
    if (eff > od_threshold()) begin_planned();
  });
}

void CloudScheduler::cancel_scheduled_planned() {
  if (planned_begin_event_ != sim::kInvalidEventId) {
    simulation_.cancel(planned_begin_event_);
    planned_begin_event_ = sim::kInvalidEventId;
  }
}

void CloudScheduler::begin_planned() {
  if (state_ != State::kOnSpot || migration_ || forced_ || !holding_) return;
  const auto candidates = candidate_markets(provider_, config_.scope,
                                            config_.home_market,
                                            config_.allowed_regions);
  const double threshold = od_threshold() * config_.reverse_price_margin;
  const auto best = best_spot_market(provider_, candidates,
                                     selection_options(threshold));

  Migration m;
  m.cls = virt::MigrationClass::kPlanned;
  if (best) {
    m.target = *best;
    m.target_on_demand = false;
  } else {
    std::string od_region = holding_->market.region;
    if (config_.scope == MarketScope::kMultiRegion) {
      od_region = cheapest_on_demand_region(provider_, config_.allowed_regions,
                                            config_.home_market.size);
    }
    m.target = MarketId{od_region, config_.home_market.size};
    m.target_on_demand = true;
  }
  migration_ = m;

  if (m.target_on_demand) {
    migration_->dest = provider_.request_on_demand(
        m.target, [this](InstanceId iid) {
          if (!migration_ || migration_->dest != iid) return;
          migration_->dest_ready = true;
          start_transfer();
        });
  } else {
    const double bid = config_.bid.bid_for(provider_, m.target);
    migration_->dest = provider_.request_spot(
        m.target, bid,
        [this](InstanceId iid) {
          if (!migration_ || migration_->dest != iid) return;
          migration_->dest_ready = true;
          provider_.set_revocation_handler(
              iid, [this](InstanceId warned, SimTime t_term) {
                on_revocation_warning(warned, t_term);
              });
          start_transfer();
        },
        [this, target = m.target] {
          auto e = trace_event(obs::EventKind::kSpotRequestFailed, obs::code::kNone);
          e.market = target.str();
          trace(std::move(e));
          if (!migration_) return;
          // The cheaper market evaporated; fall back to on-demand if the
          // trigger still holds.
          migration_.reset();
          if (state_ == State::kOnSpot && holding_ && !forced_ &&
              effective_spot_price(provider_, holding_->market, units_needed()) >
                  od_threshold()) {
            begin_planned();
          }
        });
  }
  auto e = trace_event(obs::EventKind::kMigrationBegin, obs::code::kPlanned);
  e.instance = holding_->id;
  e.aux = m.target_on_demand ? 1.0 : 0.0;
  e.market = m.target.str();
  trace(std::move(e));
  SPOTHOST_LOG(sim::LogLevel::kInfo, simulation_.now(),
               "planned migration -> " << m.target.str()
                                       << (m.target_on_demand ? " (on-demand)"
                                                              : " (spot)"));
}

void CloudScheduler::begin_reverse(const MarketId& target) {
  if (state_ != State::kOnDemand || migration_ || forced_ || !holding_) return;
  Migration m;
  m.cls = virt::MigrationClass::kReverse;
  m.target = target;
  m.target_on_demand = false;
  migration_ = m;
  const double bid = config_.bid.bid_for(provider_, target);
  migration_->dest = provider_.request_spot(
      target, bid,
      [this](InstanceId iid) {
        if (!migration_ || migration_->dest != iid) return;
        migration_->dest_ready = true;
        provider_.set_revocation_handler(
            iid, [this](InstanceId warned, SimTime t_term) {
              on_revocation_warning(warned, t_term);
            });
        start_transfer();
      },
      [this, target] {
        auto e = trace_event(obs::EventKind::kSpotRequestFailed, obs::code::kNone);
        e.market = target.str();
        trace(std::move(e));
        if (!migration_) return;
        migration_.reset();
        schedule_hour_check();  // try again next billing hour
      });
  auto e = trace_event(obs::EventKind::kMigrationBegin, obs::code::kReverse);
  e.instance = holding_->id;
  e.market = target.str();
  trace(std::move(e));
  SPOTHOST_LOG(sim::LogLevel::kInfo, simulation_.now(),
               "reverse migration -> " << target.str());
}

void CloudScheduler::start_transfer() {
  if (!migration_ || !migration_->dest_ready || migration_->transfer_started) return;
  if (!holding_) return;
  migration_->timings = planner_.plan(migration_->cls, spec_,
                                      holding_->market.region,
                                      migration_->target.region);
  migration_->transfer_started = true;
  migration_->switchover_at =
      simulation_.now() + jittered(migration_->timings.prepare_s);
  migration_->switchover_event =
      simulation_.at(migration_->switchover_at, [this] { complete_switchover(); });
  auto e = trace_event(obs::EventKind::kMigrationTransfer,
                       migration_code(migration_->cls));
  e.instance = migration_->dest;
  e.value = migration_->timings.prepare_s;
  e.market = migration_->target.str();
  trace(std::move(e));
}

void CloudScheduler::complete_switchover() {
  if (!migration_ || !holding_) return;
  const Migration m = *migration_;
  migration_.reset();

  const SimTime downtime = jittered(m.timings.downtime_s);
  const SimTime degraded = jittered(m.timings.degraded_s);
  const auto cause = (m.cls == virt::MigrationClass::kReverse)
                         ? workload::OutageCause::kReverseMigration
                         : workload::OutageCause::kPlannedMigration;

  // Stop billing the source now; the destination has been running (and
  // billing) since it came up. A source that is already under a revocation
  // warning is left for the provider to revoke — the partial hour is then
  // free instead of billed.
  if (provider_.instance(holding_->id).state != cloud::InstanceState::kWarned) {
    provider_.terminate(holding_->id);
  }
  if (hour_check_event_ != sim::kInvalidEventId) {
    simulation_.cancel(hour_check_event_);
    hour_check_event_ = sim::kInvalidEventId;
  }

  {
    auto e = trace_event(obs::EventKind::kMigrationSwitchover, migration_code(m.cls));
    e.instance = m.dest;
    e.value = sim::to_seconds(downtime);
    e.aux = sim::to_seconds(degraded);
    e.market = m.target.str();
    trace(std::move(e));
  }
  if (m.cls != virt::MigrationClass::kReverse && !m.target_on_demand) {
    auto e = trace_event(obs::EventKind::kMarketSwitch, obs::code::kNone);
    e.instance = m.dest;
    e.market = m.target.str();
    trace(std::move(e));
  }

  if (downtime > 0 && service_.is_up()) {
    service_.begin_outage(simulation_.now(), cause);
    const SimTime up_at = simulation_.now() + downtime;
    simulation_.at(up_at, [this, degraded] {
      if (forced_) return;  // a forced flow took over mid-switchover
      if (!service_.is_up()) {
        service_.end_outage(simulation_.now(), degraded > 0);
        if (degraded > 0) {
          simulation_.after(degraded,
                            [this] { service_.end_degraded(simulation_.now()); });
        }
      }
    });
  }
  adopt(m.dest, m.target, m.target_on_demand);
}

void CloudScheduler::abandon_migration(AbandonReason reason) {
  if (!migration_) return;
  if (migration_->switchover_event != sim::kInvalidEventId) {
    simulation_.cancel(migration_->switchover_event);
  }
  if (migration_->dest != cloud::kInvalidInstance) {
    // Pending requests are cancelled; a ready destination is released (its
    // partial hour is billed — the price of a cancelled migration).
    provider_.terminate(migration_->dest);
  }
  std::uint8_t code = obs::code::kAbandonPreempted;
  switch (reason) {
    case AbandonReason::kPriceRecovered: code = obs::code::kAbandonPriceRecovered; break;
    case AbandonReason::kDestRevoked: code = obs::code::kAbandonDestRevoked; break;
    case AbandonReason::kPreempted: code = obs::code::kAbandonPreempted; break;
  }
  auto e = trace_event(obs::EventKind::kMigrationAbandon, code);
  e.instance = migration_->dest;
  e.market = migration_->target.str();
  migration_.reset();
  trace(std::move(e));
}

// ---------------------------------------------------------------------------
// Reverse-migration hour checks
// ---------------------------------------------------------------------------

void CloudScheduler::schedule_hour_check() {
  if (state_ != State::kOnDemand || !holding_) return;
  if (hour_check_event_ != sim::kInvalidEventId) {
    simulation_.cancel(hour_check_event_);
    hour_check_event_ = sim::kInvalidEventId;
  }
  SimTime check_at = next_instance_hour_boundary() - reverse_lead();
  while (check_at <= simulation_.now()) check_at += sim::kHour;
  hour_check_event_ = simulation_.at(check_at, [this] {
    hour_check_event_ = sim::kInvalidEventId;
    on_hour_check();
  });
}

void CloudScheduler::on_hour_check() {
  if (state_ != State::kOnDemand || migration_ || forced_ || !holding_) return;
  {
    auto e = trace_event(obs::EventKind::kBillingHourTick, obs::code::kOnDemand);
    e.instance = holding_->id;
    e.market = holding_->market.str();
    trace(std::move(e));
  }
  const auto candidates = candidate_markets(provider_, config_.scope,
                                            config_.home_market,
                                            config_.allowed_regions);
  const double threshold = od_threshold() * config_.reverse_price_margin;
  const auto best = best_spot_market(provider_, candidates,
                                     selection_options(threshold));
  if (best) {
    begin_reverse(*best);
  } else {
    schedule_hour_check();
  }
}

// ---------------------------------------------------------------------------
// Forced migrations
// ---------------------------------------------------------------------------

void CloudScheduler::on_revocation_warning(InstanceId instance, SimTime t_term) {
  // A migration *destination* got warned before adoption: walk away from it.
  if (migration_ && instance == migration_->dest) {
    const bool was_reverse = migration_->cls == virt::MigrationClass::kReverse;
    abandon_migration(AbandonReason::kDestRevoked);
    if (was_reverse) {
      schedule_hour_check();
    } else if (state_ == State::kOnSpot && holding_ && !forced_ &&
               effective_spot_price(provider_, holding_->market, units_needed()) >
                   od_threshold()) {
      begin_planned();
    }
    return;
  }
  if (!holding_ || instance != holding_->id) return;  // stale warning

  if (!config_.on_demand_allowed()) {
    // Pure-spot baseline: checkpoint, go down, wait for the market.
    const auto timings = planner_.plan(virt::MigrationClass::kForced, spec_,
                                       holding_->market.region,
                                       holding_->market.region);
    const SimTime t_stop = std::max(simulation_.now(),
                                    t_term - sim::from_seconds(timings.flush_s));
    simulation_.at(t_stop, [this] {
      if (service_.is_up()) {
        service_.begin_outage(simulation_.now(), workload::OutageCause::kSpotLoss);
      }
    });
    simulation_.at(t_term, [this] {
      holding_.reset();
      state_ = State::kDown;
      pure_spot_reacquire();
    });
    return;
  }

  // If a voluntary transfer is already in flight and will finish before the
  // axe falls, just let it finish.
  if (migration_ && migration_->transfer_started) {
    const SimTime completion =
        migration_->switchover_at + sim::from_seconds(migration_->timings.downtime_s);
    if (completion <= t_term) return;
  }

  begin_forced(t_term);
}

void CloudScheduler::begin_forced(SimTime t_term) {
  {
    auto e = trace_event(obs::EventKind::kMigrationBegin, obs::code::kForced);
    e.instance = holding_->id;
    e.value = sim::to_seconds(t_term);
    e.market = holding_->market.str();
    trace(std::move(e));
  }
  cancel_scheduled_planned();

  Forced f;
  f.t_term = t_term;
  f.timings = planner_.plan(virt::MigrationClass::kForced, spec_,
                            holding_->market.region, holding_->market.region);

  // Reuse an in-flight destination in the same region; otherwise release it
  // and request a fresh on-demand server here.
  if (migration_ && migration_->dest != cloud::kInvalidInstance &&
      migration_->target.region == holding_->market.region) {
    if (migration_->switchover_event != sim::kInvalidEventId) {
      simulation_.cancel(migration_->switchover_event);
    }
    f.dest = migration_->dest;
    f.dest_ready = migration_->dest_ready;
    if (f.dest_ready) f.dest_ready_at = simulation_.now();
    migration_.reset();
  } else {
    if (migration_) abandon_migration(AbandonReason::kPreempted);
  }
  forced_ = f;

  if (forced_->dest == cloud::kInvalidInstance) {
    const MarketId od_market{holding_->market.region, config_.home_market.size};
    forced_->dest = provider_.request_on_demand(od_market, [this](InstanceId iid) {
      if (!forced_ || forced_->dest != iid) return;
      forced_->dest_ready = true;
      forced_->dest_ready_at = simulation_.now();
      forced_try_resume();
    });
  } else if (!forced_->dest_ready) {
    // Re-arm the ready callback path: the original migration callbacks check
    // migration_, which is now reset. Poll for readiness at grant time via a
    // fresh on-demand request if the reused request fails is complex; instead
    // we conservatively released only same-region destinations, whose ready
    // callback re-routes through migration_ (now null). To keep the flow
    // simple, drop the pending reuse and request on-demand directly.
    provider_.cancel_request(forced_->dest);
    const MarketId od_market{holding_->market.region, config_.home_market.size};
    forced_->dest = provider_.request_on_demand(od_market, [this](InstanceId iid) {
      if (!forced_ || forced_->dest != iid) return;
      forced_->dest_ready = true;
      forced_->dest_ready_at = simulation_.now();
      forced_try_resume();
    });
  }

  // Keep serving until the last moment the bounded flush allows.
  const SimTime t_stop = std::max(simulation_.now(),
                                  t_term - sim::from_seconds(forced_->timings.flush_s));
  simulation_.at(t_stop, [this] {
    if (!forced_) return;
    if (service_.is_up()) {
      service_.begin_outage(simulation_.now(),
                            workload::OutageCause::kForcedMigration);
    }
    forced_->service_stopped = true;
    auto e = trace_event(obs::EventKind::kMigrationTransfer, obs::code::kForced);
    e.value = forced_->timings.flush_s;  // the bounded checkpoint flush
    trace(std::move(e));
    forced_try_resume();
  });
  simulation_.at(t_term, [this] {
    if (!forced_) return;
    holding_.reset();
    state_ = State::kDown;
    forced_try_resume();
  });
  SPOTHOST_LOG(sim::LogLevel::kInfo, simulation_.now(),
               "forced migration, termination at " << sim::format_time(t_term));
}

void CloudScheduler::forced_try_resume() {
  if (!forced_ || forced_->resume_scheduled) return;
  if (!forced_->service_stopped || !forced_->dest_ready) return;
  if (simulation_.now() < forced_->t_term) return;  // source not gone yet
  forced_->resume_scheduled = true;
  const SimTime restore = jittered(forced_->timings.restore_s);
  const SimTime degraded = jittered(forced_->timings.degraded_s);
  simulation_.after(restore, [this, restore, degraded] {
    if (!forced_) return;
    const Forced f = *forced_;
    forced_.reset();
    if (!service_.is_up()) {
      service_.end_outage(simulation_.now(), degraded > 0);
      if (degraded > 0) {
        simulation_.after(degraded,
                          [this] { service_.end_degraded(simulation_.now()); });
      }
    }
    const auto& inst = provider_.instance(f.dest);
    auto e = trace_event(obs::EventKind::kMigrationSwitchover, obs::code::kForced);
    e.instance = f.dest;
    e.value = sim::to_seconds(restore);
    e.aux = sim::to_seconds(degraded);
    e.market = inst.market.str();
    trace(std::move(e));
    adopt(f.dest, inst.market, inst.mode == cloud::BillingMode::kOnDemand);
  });
}

// ---------------------------------------------------------------------------
// Pure-spot baseline
// ---------------------------------------------------------------------------

void CloudScheduler::pure_spot_reacquire() {
  if (pending_acquire_ != cloud::kInvalidInstance) return;
  const MarketId& home = config_.home_market;
  const double bid = config_.bid.bid_for(provider_, home);
  if (provider_.price(home) > bid) return;  // wait for a price-change event
  pending_acquire_ = provider_.request_spot(
      home, bid,
      [this, home](InstanceId iid) {
        pending_acquire_ = cloud::kInvalidInstance;
        if (!service_live_ || service_.is_up()) {
          adopt(iid, home, /*on_demand=*/false);
          return;
        }
        // Restoring after an outage: resume from the checkpoint volume.
        const auto timings = planner_.plan(virt::MigrationClass::kForced, spec_,
                                           home.region, home.region);
        const SimTime restore = jittered(timings.restore_s);
        const SimTime degraded = jittered(timings.degraded_s);
        simulation_.after(restore, [this, iid, home, degraded] {
          if (!service_.is_up()) {
            service_.end_outage(simulation_.now(), degraded > 0);
            if (degraded > 0) {
              simulation_.after(degraded,
                                [this] { service_.end_degraded(simulation_.now()); });
            }
          }
          adopt(iid, home, /*on_demand=*/false);
        });
      },
      [this] {
        pending_acquire_ = cloud::kInvalidInstance;
        auto e = trace_event(obs::EventKind::kSpotRequestFailed, obs::code::kNone);
        e.market = config_.home_market.str();
        trace(std::move(e));
        // Wait for the next price change; on_price_change retries.
      });
}

// ---------------------------------------------------------------------------

void CloudScheduler::finalize(SimTime horizon) {
  if (service_live_) {
    service_.finalize(horizon);
  } else {
    // Never came up (e.g. pure-spot market above bid for the whole run):
    // the whole horizon is an outage.
    service_.go_live(0);
    service_.begin_outage(0, workload::OutageCause::kSpotLoss);
    service_.finalize(horizon);
  }
}

}  // namespace spothost::sched
