#include "sched/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/sink.hpp"
#include "simcore/logging.hpp"

namespace spothost::sched {

using cloud::InstanceId;
using cloud::MarketId;
using sim::SimTime;

namespace {

constexpr double kLeadSafetyFactor = 1.3;  // allocation-latency headroom
constexpr SimTime kLeadSlack = 60 * sim::kSecond;

}  // namespace

void CloudScheduler::trace(obs::TraceEvent event) {
  counters_.on_event(event);
  if (auto* tracer = clock_.tracer(); tracer != nullptr && tracer->enabled()) {
    tracer->emit(event);
  }
}

obs::TraceEvent CloudScheduler::trace_event(obs::EventKind kind,
                                            std::uint8_t code) const {
  obs::TraceEvent e;
  e.t = clock_.now();
  e.kind = kind;
  e.code = code;
  return e;
}

CloudScheduler::CloudScheduler(sim::Clock& clock,
                               cloud::CloudProvider& provider,
                               workload::ServiceEndpoint& service,
                               SchedulerConfig config, sim::RngStream timing_rng)
    : CloudScheduler(clock, provider,
                     std::make_unique<MarketWatcher>(clock, provider),
                     /*shared_watcher=*/nullptr, service, std::move(config),
                     std::move(timing_rng)) {}

CloudScheduler::CloudScheduler(sim::Clock& clock,
                               cloud::CloudProvider& provider, MarketWatcher& watcher,
                               workload::ServiceEndpoint& service,
                               SchedulerConfig config, sim::RngStream timing_rng)
    : CloudScheduler(clock, provider, /*owned_watcher=*/nullptr, &watcher,
                     service, std::move(config), std::move(timing_rng)) {}

CloudScheduler::CloudScheduler(sim::Clock& clock,
                               cloud::CloudProvider& provider,
                               std::unique_ptr<MarketWatcher> owned_watcher,
                               MarketWatcher* shared_watcher,
                               workload::ServiceEndpoint& service,
                               SchedulerConfig config, sim::RngStream timing_rng)
    : clock_(clock),
      lane_clock_(&clock),
      provider_(provider),
      service_(service),
      config_(std::move(config)),
      rng_(std::move(timing_rng)),
      spec_(config_.vm_spec),
      owned_watcher_(std::move(owned_watcher)),
      watcher_(owned_watcher_ ? *owned_watcher_ : *shared_watcher) {
  config_.validate();
  if (spec_.memory_gb <= 0) {
    const auto& info = cloud::type_info(config_.home_market.size);
    spec_ = virt::default_spec_for_memory(info.memory_gb, info.disk_gb);
  }
  if (!provider_.has_market(config_.home_market)) {
    throw std::invalid_argument("CloudScheduler: unknown home market " +
                                config_.home_market.str());
  }
  if (config_.scope == MarketScope::kMultiRegion && config_.allowed_regions.empty()) {
    config_.allowed_regions = provider_.regions();
  }
  placement_ = placement_policy_for(config_);
  bidding_ = bid_strategy_for(config_);
  MigrationHost& host = *this;  // private base: convert in class scope
  engine_ = std::make_unique<MigrationEngine>(clock_, provider_, service_,
                                              host, config_, spec_, rng_);
  listener_ = watcher_.add_listener(
      static_cast<MarketWatcher::TriggerListener*>(this));
}

CloudScheduler::~CloudScheduler() {
  if (listener_ != MarketWatcher::kInvalidListener) {
    watcher_.remove_listener(listener_);
  }
}

void CloudScheduler::pin_to_shard(sim::ShardRouter& router, std::size_t shard) {
  lane_clock_ = &router.shard_clock(shard);
  engine_->bind_lane(*lane_clock_);
  watcher_.assign_shard(listener_, shard);
}

void CloudScheduler::set_owner_tag(std::uint64_t owner) {
  owner_tag_ = owner;
  engine_->set_owner_tag(owner);
}

int CloudScheduler::units_needed() const {
  if (config_.capacity_units_override > 0) return config_.capacity_units_override;
  return cloud::type_info(config_.home_market.size).capacity_units;
}

double CloudScheduler::od_threshold() const {
  const std::string& region =
      holding_ ? holding_->market.region : config_.home_market.region;
  return effective_on_demand_price(provider_, region, config_.home_market.size);
}

PlacementQuery CloudScheduler::placement_query(double threshold) const {
  PlacementQuery query;
  query.units_needed = units_needed();
  query.max_effective_price = threshold;
  if (holding_ && !holding_->on_demand) query.exclude = holding_->market;
  query.avoid = avoid_markets_;
  query.fallback_region =
      holding_ ? holding_->market.region : config_.home_market.region;
  query.now = clock_.now();
  return query;
}

SimTime CloudScheduler::planned_lead() const {
  const std::string& region =
      holding_ ? holding_->market.region : config_.home_market.region;
  const auto lat = provider_.allocation_latency(region);
  const auto t =
      engine_->planner().plan(virt::MigrationClass::kPlanned, spec_, region, region);
  return sim::from_seconds(lat.on_demand_mean_s * kLeadSafetyFactor + t.prepare_s +
                           t.downtime_s) +
         kLeadSlack;
}

SimTime CloudScheduler::reverse_lead() const {
  const std::string& region =
      holding_ ? holding_->market.region : config_.home_market.region;
  const auto lat = provider_.allocation_latency(region);
  const auto t =
      engine_->planner().plan(virt::MigrationClass::kReverse, spec_, region, region);
  return sim::from_seconds(lat.spot_mean_s * kLeadSafetyFactor + t.prepare_s +
                           t.downtime_s) +
         kLeadSlack;
}

SimTime CloudScheduler::next_instance_hour_boundary() const {
  if (!holding_) throw std::logic_error("next_instance_hour_boundary: no holding");
  const SimTime launch = provider_.instance(holding_->id).launch;
  const SimTime elapsed = clock_.now() - launch;
  const SimTime hours = elapsed / sim::kHour + 1;
  return launch + hours * sim::kHour;
}

void CloudScheduler::start() {
  // Watch every market the placement policy may choose from, plus the home
  // market (pure-spot reacquisition). Whatever the fleet size, the watcher
  // holds one provider subscription per market.
  auto markets = placement_->watched_markets(provider_, config_);
  if (std::find(markets.begin(), markets.end(), config_.home_market) ==
      markets.end()) {
    markets.push_back(config_.home_market);
  }
  watcher_.watch(listener_, markets);
  acquire_initial();
}

void CloudScheduler::on_trigger(const MarketWatcher::Trigger& trigger) {
  switch (trigger.kind) {
    case MarketWatcher::TriggerKind::kPriceChange:
      on_price_change(trigger.market, trigger.price);
      break;
    case MarketWatcher::TriggerKind::kHourBoundary:
      hour_check_event_.reset();
      on_hour_check();
      break;
    case MarketWatcher::TriggerKind::kRevocation:
      on_revocation_warning(trigger.instance, trigger.t_term);
      break;
  }
}

bool CloudScheduler::wants_trigger(const MarketWatcher::Trigger& trigger) const {
  // Mirror of on_price_change, early return by early return: `false` here
  // asserts the delivery would be a complete no-op. Hour and revocation
  // triggers always carry work (and are never staged — see the watcher).
  if (trigger.kind != MarketWatcher::TriggerKind::kPriceChange) return true;
  if (engine_->forced_active()) return false;
  if (!config_.on_demand_allowed() &&
      (state_ == State::kDown || state_ == State::kAcquiring)) {
    // pure_spot_reacquire: acts only when no request is pending and the
    // home market has dipped back to the standing bid (bid_for is
    // const-pure by the BidStrategy contract).
    if (pending_acquire_ != cloud::kInvalidInstance) return false;
    const cloud::MarketId& home = config_.home_market;
    return provider_.price(home) <=
           bidding_->bid_for(provider_, config_, home, clock_.now());
  }
  if (state_ != State::kOnSpot || !holding_ || trigger.market != holding_->market) {
    return false;
  }
  if (!bidding_->plans_migrations(config_) || !config_.on_demand_allowed()) {
    return false;
  }
  const double eff =
      effective_spot_price(provider_, trigger.market, units_needed());
  const bool above = eff > od_threshold();
  if (above) return true;                      // plans (or re-checks) a move
  if (crossing_.would_edge(above)) return true;  // kDown crossing trace
  if (planned_begin_event_.valid()) return true; // cancel pending planned
  if (engine_->voluntary_class() == virt::MigrationClass::kPlanned &&
      !engine_->transfer_started() && config_.cancel_planned_on_price_drop) {
    return true;  // abandon the in-flight planned move
  }
  return false;
}

void CloudScheduler::acquire_initial() {
  if (!config_.on_demand_allowed()) {
    pure_spot_reacquire();
    return;
  }
  const double threshold = effective_on_demand_price(
      provider_, config_.home_market.region, config_.home_market.size);
  const auto query = placement_query(threshold);
  const auto best = placement_->choose_spot(provider_, config_, query);
  if (best) {
    const MarketId target = best->market;
    pending_acquire_ = provider_.request_spot(
        target, best->bid,
        [this, target](InstanceId iid) {
          pending_acquire_ = cloud::kInvalidInstance;
          adopt(iid, target, /*on_demand=*/false);
        },
        [this, target](cloud::AllocFailure reason) {
          pending_acquire_ = cloud::kInvalidInstance;
          auto e = trace_event(obs::EventKind::kSpotRequestFailed, obs::code::kNone);
          e.market = target.str();
          trace(std::move(e));
          if (reason == cloud::AllocFailure::kInsufficientCapacity) {
            on_acquire_capacity_failed(target, /*was_spot=*/true);
            return;
          }
          acquire_initial();  // price moved; re-evaluate (likely on-demand now)
        });
    if (owner_tag_ != cloud::kNoOwner) {
      provider_.set_instance_owner(pending_acquire_, owner_tag_);
    }
    return;
  }
  const Placement od = placement_->choose_on_demand(provider_, config_, query);
  pending_acquire_ = provider_.request_on_demand(
      od.market,
      [this, od_market = od.market](InstanceId iid) {
        pending_acquire_ = cloud::kInvalidInstance;
        adopt(iid, od_market, /*on_demand=*/true);
      },
      [this, od_market = od.market](cloud::AllocFailure) {
        pending_acquire_ = cloud::kInvalidInstance;
        on_acquire_capacity_failed(od_market, /*was_spot=*/false);
      });
  if (owner_tag_ != cloud::kNoOwner) {
    provider_.set_instance_owner(pending_acquire_, owner_tag_);
  }
}

void CloudScheduler::on_acquire_capacity_failed(const MarketId& market,
                                                bool was_spot) {
  // Only skip the failed market when a fallback exists; the pure-spot
  // baseline (and an on-demand failure) must keep retrying the same market.
  if (was_spot && config_.on_demand_allowed() &&
      std::find(avoid_markets_.begin(), avoid_markets_.end(), market) ==
          avoid_markets_.end()) {
    avoid_markets_.push_back(market);
  }
  const int attempt = ++acquire_attempts_;
  const RetryPolicy& retry = config_.retry;
  double delay_s = 0.0;
  if (retry.retries_enabled() && attempt <= retry.max_attempts) {
    delay_s = retry.backoff_s(attempt);
  } else if (retry.graceful_degradation) {
    // Retry budget spent: announce degraded mode once, then slow-poll at the
    // backoff cap until something is granted.
    if (!degraded_acquire_) {
      degraded_acquire_ = true;
      auto e = trace_event(obs::EventKind::kDegradedMode,
                           obs::code::kDegradeSlowRetry);
      e.market = market.str();
      trace(std::move(e));
    }
    delay_s = retry.backoff_max_s;
  } else {
    // Retries off, no degradation: acquisition is abandoned and the service
    // stays down — the retries-off ablation arm measures exactly this.
    SPOTHOST_LOG(sim::LogLevel::kWarn, clock_.now(),
                 "acquisition in " << market.str()
                     << " failed (capacity); retries disabled, giving up");
    return;
  }
  {
    auto e = trace_event(obs::EventKind::kRetryScheduled, obs::code::kRetryAcquire);
    e.value = static_cast<double>(attempt);
    e.aux = delay_s;
    e.market = market.str();
    trace(std::move(e));
  }
  clock_.after(sim::from_seconds(delay_s), [this] {
    if (pending_acquire_ != cloud::kInvalidInstance) return;
    if (state_ != State::kAcquiring && state_ != State::kDown) return;
    if (engine_->active()) return;
    acquire_initial();
  });
}

void CloudScheduler::adopt(InstanceId instance, const MarketId& market,
                           bool on_demand) {
  holding_ = Holding{instance, market, on_demand};
  state_ = on_demand ? State::kOnDemand : State::kOnSpot;
  crossing_.reset();  // crossings are relative to the adopted market
  acquire_attempts_ = 0;  // the fault-recovery episode ended in a grant
  avoid_markets_.clear();
  degraded_acquire_ = false;
  if (!service_live_) {
    service_.go_live(clock_.now());
    service_live_ = true;
  }
  if (!on_demand) {
    watcher_.arm_revocation(listener_, instance);
    // Guard against adopting into an already-hot market.
    if (bidding_->plans_migrations(config_) && config_.on_demand_allowed() &&
        effective_spot_price(provider_, market, units_needed()) > od_threshold()) {
      maybe_schedule_planned();
    }
  } else {
    schedule_hour_check();
  }
  SPOTHOST_LOG(sim::LogLevel::kInfo, clock_.now(),
               "adopt " << market.str() << (on_demand ? " (on-demand)" : " (spot)")
                        << " instance " << instance);
}

// ---------------------------------------------------------------------------
// Price triggers
// ---------------------------------------------------------------------------

void CloudScheduler::on_price_change(const MarketId& market, double new_price) {
  (void)new_price;
  if (engine_->forced_active()) return;  // the forced flow owns the next transitions

  // Pure-spot reacquisition: the market dipped back below the bid (also
  // covers an initial acquisition that has been waiting for the price).
  if (!config_.on_demand_allowed() &&
      (state_ == State::kDown || state_ == State::kAcquiring)) {
    pure_spot_reacquire();
    return;
  }

  if (state_ != State::kOnSpot || !holding_ || market != holding_->market) return;
  if (!bidding_->plans_migrations(config_) || !config_.on_demand_allowed()) return;

  const double eff = effective_spot_price(provider_, market, units_needed());
  const double threshold = od_threshold();
  const bool above = eff > threshold;
  // Edge-triggered: one event per crossing of the on-demand threshold, not
  // one per price tick.
  if (crossing_.observe(above) != CrossingDetector::Edge::kNone) {
    auto e = trace_event(obs::EventKind::kPriceCrossing,
                         above ? obs::code::kAbove : obs::code::kBelow);
    e.instance = holding_->id;
    e.value = eff;
    e.aux = threshold;
    e.market = market.str();
    trace(std::move(e));
  }
  if (above) {
    maybe_schedule_planned();
  } else {
    cancel_scheduled_planned();
    if (engine_->voluntary_class() == virt::MigrationClass::kPlanned &&
        !engine_->transfer_started() && config_.cancel_planned_on_price_drop) {
      engine_->abandon(AbandonReason::kPriceRecovered);
    }
  }
}

// ---------------------------------------------------------------------------
// Planned migrations
// ---------------------------------------------------------------------------

void CloudScheduler::maybe_schedule_planned() {
  if (engine_->active() || planned_begin_event_.valid()) return;
  if (config_.planned_timing == PlannedTiming::kImmediate) {
    begin_planned();
    return;
  }
  const SimTime begin_at = next_instance_hour_boundary() - planned_lead();
  if (begin_at <= clock_.now()) {
    begin_planned();
    return;
  }
  planned_begin_event_ = clock_.at(begin_at, [this] {
    planned_begin_event_.reset();
    if (state_ != State::kOnSpot || engine_->active() || !holding_) return;
    const double eff =
        effective_spot_price(provider_, holding_->market, units_needed());
    if (eff > od_threshold()) begin_planned();
  });
}

void CloudScheduler::cancel_scheduled_planned() { planned_begin_event_.cancel(); }

void CloudScheduler::begin_planned() {
  if (state_ != State::kOnSpot || engine_->active() || !holding_) return;
  const double threshold = od_threshold() * config_.reverse_price_margin;
  const auto query = placement_query(threshold);
  const auto best = placement_->choose_spot(provider_, config_, query);
  const Placement target =
      best ? *best : placement_->choose_on_demand(provider_, config_, query);
  engine_->begin_voluntary(virt::MigrationClass::kPlanned, target, holding_->id);
}

void CloudScheduler::begin_reverse(const Placement& target) {
  if (state_ != State::kOnDemand || engine_->active() || !holding_) return;
  engine_->begin_voluntary(virt::MigrationClass::kReverse, target, holding_->id);
}

void CloudScheduler::on_voluntary_dest_failed(virt::MigrationClass cls) {
  if (cls == virt::MigrationClass::kReverse) {
    schedule_hour_check();  // try again next billing hour
    return;
  }
  // Planned: the cheaper market evaporated (or the destination was revoked
  // before adoption); fall back through placement if the trigger still holds.
  if (state_ == State::kOnSpot && holding_ && !engine_->forced_active() &&
      effective_spot_price(provider_, holding_->market, units_needed()) >
          od_threshold()) {
    begin_planned();
  }
}

// ---------------------------------------------------------------------------
// Reverse-migration hour checks
// ---------------------------------------------------------------------------

void CloudScheduler::schedule_hour_check() {
  if (state_ != State::kOnDemand || !holding_) return;
  hour_check_event_.cancel();
  SimTime check_at = next_instance_hour_boundary() - reverse_lead();
  while (check_at <= clock_.now()) check_at += sim::kHour;
  hour_check_event_ = watcher_.schedule_hour_tick(listener_, check_at);
}

void CloudScheduler::on_hour_check() {
  if (state_ != State::kOnDemand || engine_->active() || !holding_) return;
  {
    auto e = trace_event(obs::EventKind::kBillingHourTick, obs::code::kOnDemand);
    e.instance = holding_->id;
    e.market = holding_->market.str();
    trace(std::move(e));
  }
  const double threshold = od_threshold() * config_.reverse_price_margin;
  const auto best = placement_->choose_spot(provider_, config_,
                                            placement_query(threshold));
  if (best) {
    begin_reverse(*best);
  } else {
    schedule_hour_check();
  }
}

// ---------------------------------------------------------------------------
// Revocation warnings
// ---------------------------------------------------------------------------

void CloudScheduler::on_revocation_warning(InstanceId instance, SimTime t_term) {
  // A migration *destination* got warned before adoption: walk away from it
  // and retry through the normal trigger policy.
  if (const auto cls = engine_->dest_warned(instance)) {
    on_voluntary_dest_failed(*cls);
    return;
  }
  if (!holding_ || instance != holding_->id) return;  // stale warning

  if (!config_.on_demand_allowed()) {
    // Pure-spot baseline: checkpoint, go down, wait for the market.
    const auto timings =
        engine_->planner().plan(virt::MigrationClass::kForced, spec_,
                                holding_->market.region, holding_->market.region);
    const SimTime t_stop = std::max(clock_.now(),
                                    t_term - sim::from_seconds(timings.flush_s));
    // Service-local: in a pinned fleet the outage bookkeeping runs on the
    // shard lane (inside a parallel window), so read the lane clock — the
    // global clock lags inside a window. t_term stays global: it drives
    // reacquisition through the provider.
    lane_clock_->at(t_stop, [this] {
      if (service_.is_up()) {
        service_.begin_outage(lane_clock_->now(),
                              workload::OutageCause::kSpotLoss);
      }
    });
    clock_.at(t_term, [this] {
      holding_.reset();
      state_ = State::kDown;
      pure_spot_reacquire();
    });
    return;
  }

  // If a voluntary transfer is already in flight and will finish before the
  // axe falls, just let it finish.
  if (const auto completion = engine_->voluntary_completion_time();
      completion && *completion <= t_term) {
    return;
  }

  engine_->begin_forced(t_term, holding_->id, holding_->market);
}

// ---------------------------------------------------------------------------
// MigrationHost notifications
// ---------------------------------------------------------------------------

void CloudScheduler::on_forced_begin() { cancel_scheduled_planned(); }

void CloudScheduler::on_source_lost() {
  holding_.reset();
  state_ = State::kDown;
}

void CloudScheduler::on_source_released() { hour_check_event_.cancel(); }

// ---------------------------------------------------------------------------
// Pure-spot baseline
// ---------------------------------------------------------------------------

void CloudScheduler::pure_spot_reacquire() {
  if (pending_acquire_ != cloud::kInvalidInstance) return;
  const MarketId& home = config_.home_market;
  const double bid = bidding_->bid_for(provider_, config_, home, clock_.now());
  if (provider_.price(home) > bid) return;  // wait for a price-change event
  pending_acquire_ = provider_.request_spot(
      home, bid,
      [this, home](InstanceId iid) {
        pending_acquire_ = cloud::kInvalidInstance;
        if (!service_live_ || service_.is_up()) {
          adopt(iid, home, /*on_demand=*/false);
          return;
        }
        // Restoring after an outage: resume from the checkpoint volume.
        const auto timings =
            engine_->planner().plan(virt::MigrationClass::kForced, spec_,
                                    home.region, home.region);
        const SimTime restore = engine_->jittered(timings.restore_s);
        const SimTime degraded = engine_->jittered(timings.degraded_s);
        clock_.after(restore, [this, iid, home, degraded] {
          if (!service_.is_up()) {
            service_.end_outage(clock_.now(), degraded > 0);
            if (degraded > 0) {
              // Service-local tail of a global-lane callback: absolute time
              // (the lane clock may lag here), lane-resident execution.
              lane_clock_->at(clock_.now() + degraded, [this] {
                service_.end_degraded(lane_clock_->now());
              });
            }
          }
          adopt(iid, home, /*on_demand=*/false);
        });
      },
      [this, home](cloud::AllocFailure reason) {
        pending_acquire_ = cloud::kInvalidInstance;
        auto e = trace_event(obs::EventKind::kSpotRequestFailed, obs::code::kNone);
        e.market = config_.home_market.str();
        trace(std::move(e));
        if (reason == cloud::AllocFailure::kInsufficientCapacity) {
          // Injected capacity fault: the price is fine, so no price-change
          // trigger will come — back off and retry the same market.
          on_acquire_capacity_failed(home, /*was_spot=*/false);
        }
        // Price failure: wait for the next price change; on_price_change
        // retries.
      });
  if (owner_tag_ != cloud::kNoOwner) {
    provider_.set_instance_owner(pending_acquire_, owner_tag_);
  }
}

// ---------------------------------------------------------------------------

void CloudScheduler::finalize(SimTime horizon) {
  if (service_live_) {
    service_.finalize(horizon);
  } else {
    // Never came up (e.g. pure-spot market above bid for the whole run):
    // the whole horizon is an outage.
    service_.go_live(0);
    service_.begin_outage(0, workload::OutageCause::kSpotLoss);
    service_.finalize(horizon);
  }
}

}  // namespace spothost::sched
