// The cloud scheduler (Sec. 3): hosts an always-on service on spot servers,
// migrating between spot and on-demand servers with the paper's three
// migration classes:
//
//  * forced  — the provider issued a revocation warning; the bounded
//    checkpoint is flushed in the grace window, an on-demand replacement is
//    requested immediately, and the service resumes from the checkpoint on
//    the replacement (full or lazy restore);
//  * planned — the spot price crossed the on-demand price; the scheduler
//    voluntarily moves to the best destination (a cheaper spot market when
//    multi-market/multi-region bidding allows, else on-demand), by default
//    timed near the end of the current billing hour (the running hour is
//    already paid at its cheap hour-start price);
//  * reverse — while on on-demand, a spot market drops below the on-demand
//    price again; near the end of each on-demand billing hour the scheduler
//    re-procures spot capacity and migrates back.
//
// With `fallback = Fallback::kPureSpot` the same machinery degenerates to
// the pure-spot baseline of Fig. 11: a revocation simply leaves the service
// down until the market price returns below the bid.
//
// Observability: every trigger and migration phase is emitted as an
// obs::TraceEvent. The events always feed the scheduler's own CounterSink —
// the backing store stats() is derived from — and additionally fan out to
// any tracer attached to the Simulation (Simulation::set_tracer).
#pragma once

#include <optional>
#include <vector>

#include "cloud/provider.hpp"
#include "obs/counter_sink.hpp"
#include "sched/bidding.hpp"
#include "sched/market_selection.hpp"
#include "sched/scheduler_config.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulation.hpp"
#include "virt/mechanisms.hpp"
#include "workload/endpoint.hpp"

namespace spothost::sched {

class CloudScheduler {
 public:
  enum class State { kAcquiring, kOnSpot, kOnDemand, kDown };

  CloudScheduler(sim::Simulation& simulation, cloud::CloudProvider& provider,
                 workload::ServiceEndpoint& service, SchedulerConfig config,
                 sim::RngStream timing_rng);

  /// Kicks off initial acquisition. Call once before running the simulation.
  void start();

  /// Closes service accounting at the horizon. Call after run_until(horizon)
  /// and before reading availability. (Provider finalization is separate.)
  void finalize(sim::SimTime horizon);

  [[nodiscard]] State state() const noexcept { return state_; }
  /// Aggregate view derived on demand from the trace-event counters; by
  /// construction it can never disagree with an attached trace sink.
  [[nodiscard]] SchedulerStats stats() const { return scheduler_stats_from(counters_); }
  /// The raw per-event-kind counters backing stats().
  [[nodiscard]] const obs::CounterSink& counters() const noexcept { return counters_; }
  [[nodiscard]] const SchedulerConfig& config() const noexcept { return config_; }
  [[nodiscard]] const virt::VmSpec& vm_spec() const noexcept { return spec_; }
  [[nodiscard]] cloud::InstanceId current_instance() const noexcept {
    return holding_ ? holding_->id : cloud::kInvalidInstance;
  }

  /// Capacity the hosted endpoint needs, in small-units (after any
  /// override) — the basis for effective-price packing and attribution.
  [[nodiscard]] int units_needed() const;

 private:
  struct Holding {
    cloud::InstanceId id = cloud::kInvalidInstance;
    cloud::MarketId market;
    bool on_demand = false;
  };

  struct Migration {
    virt::MigrationClass cls{};
    cloud::MarketId target;
    bool target_on_demand = false;
    cloud::InstanceId dest = cloud::kInvalidInstance;
    bool dest_ready = false;
    bool transfer_started = false;
    sim::SimTime switchover_at = -1;
    virt::MigrationTimings timings{};
    sim::EventId switchover_event = sim::kInvalidEventId;
  };

  struct Forced {
    sim::SimTime t_term = 0;
    cloud::InstanceId dest = cloud::kInvalidInstance;
    bool dest_ready = false;
    sim::SimTime dest_ready_at = -1;
    bool service_stopped = false;
    bool resume_scheduled = false;
    virt::MigrationTimings timings{};
  };

  // --- triggers -------------------------------------------------------
  void on_price_change(const cloud::MarketId& market, double new_price);
  void on_revocation_warning(cloud::InstanceId instance, sim::SimTime t_term);
  void on_hour_check();

  // --- acquisition ----------------------------------------------------
  void acquire_initial();
  void adopt(cloud::InstanceId instance, const cloud::MarketId& market,
             bool on_demand);

  /// Why an in-flight planned/reverse migration was torn down. Only
  /// kPriceRecovered counts as a "spike cancellation" in the stats.
  enum class AbandonReason : std::uint8_t {
    kPriceRecovered,  ///< the price trigger evaporated before transfer
    kDestRevoked,     ///< the destination instance got a revocation warning
    kPreempted,       ///< superseded by a forced migration of the source
  };

  // --- planned / reverse ----------------------------------------------
  void maybe_schedule_planned();
  void cancel_scheduled_planned();
  void begin_planned();
  void begin_reverse(const cloud::MarketId& target);
  void start_transfer();
  void complete_switchover();
  void abandon_migration(AbandonReason reason);
  void schedule_hour_check();

  // --- forced ----------------------------------------------------------
  void begin_forced(sim::SimTime t_term);
  void forced_try_resume();

  // --- pure spot --------------------------------------------------------
  void pure_spot_reacquire();

  // --- helpers ----------------------------------------------------------
  [[nodiscard]] double od_threshold() const;  ///< p_on comparator in current region
  [[nodiscard]] SelectionOptions selection_options(double threshold) const;
  [[nodiscard]] sim::SimTime jittered(double seconds);
  [[nodiscard]] sim::SimTime planned_lead() const;
  [[nodiscard]] sim::SimTime reverse_lead() const;
  [[nodiscard]] sim::SimTime next_instance_hour_boundary() const;
  void end_outage_with_restore(sim::SimTime resume_at, double restore_s,
                               double degraded_s);

  /// Feeds the event into counters_ (the stats backing store) and forwards
  /// it to the simulation's tracer, if one is attached.
  void trace(obs::TraceEvent event);
  [[nodiscard]] obs::TraceEvent trace_event(obs::EventKind kind,
                                            std::uint8_t code) const;

  sim::Simulation& simulation_;
  cloud::CloudProvider& provider_;
  workload::ServiceEndpoint& service_;
  SchedulerConfig config_;
  virt::MigrationPlanner planner_;
  sim::RngStream rng_;
  virt::VmSpec spec_;

  State state_ = State::kAcquiring;
  bool service_live_ = false;
  std::optional<Holding> holding_;
  std::optional<Migration> migration_;
  std::optional<Forced> forced_;
  sim::EventId planned_begin_event_ = sim::kInvalidEventId;
  sim::EventId hour_check_event_ = sim::kInvalidEventId;
  cloud::InstanceId pending_acquire_ = cloud::kInvalidInstance;
  obs::CounterSink counters_;
  /// Last observed home-market-above-threshold state, for edge-triggered
  /// price-crossing events. Reset whenever a new instance is adopted.
  std::optional<bool> price_above_;
};

}  // namespace spothost::sched
