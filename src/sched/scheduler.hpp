// The cloud scheduler (Sec. 3): hosts an always-on service on spot servers,
// migrating between spot and on-demand servers with the paper's three
// migration classes:
//
//  * forced  — the provider issued a revocation warning; the bounded
//    checkpoint is flushed in the grace window, an on-demand replacement is
//    requested immediately, and the service resumes from the checkpoint on
//    the replacement (full or lazy restore);
//  * planned — the spot price crossed the on-demand price; the scheduler
//    voluntarily moves to the best destination (a cheaper spot market when
//    multi-market/multi-region bidding allows, else on-demand), by default
//    timed near the end of the current billing hour (the running hour is
//    already paid at its cheap hour-start price);
//  * reverse — while on on-demand, a spot market drops below the on-demand
//    price again; near the end of each on-demand billing hour the scheduler
//    re-procures spot capacity and migrates back.
//
// With `allow_on_demand = false` the same machinery degenerates to the
// pure-spot baseline of Fig. 11: a revocation simply leaves the service
// down until the market price returns below the bid.
#pragma once

#include <optional>
#include <vector>

#include "cloud/provider.hpp"
#include "sched/bidding.hpp"
#include "sched/market_selection.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulation.hpp"
#include "virt/mechanisms.hpp"
#include "workload/endpoint.hpp"

namespace spothost::sched {

/// When a planned migration begins after the price crosses p_on.
enum class PlannedTiming {
  kHourEnd,    ///< ride out the already-paid hour; leave just before it ends
  kImmediate,  ///< begin as soon as the crossing is observed
};

struct SchedulerConfig {
  BidPolicy bid{};
  virt::MechanismCombo combo = virt::MechanismCombo::kCkptLazyLive;
  virt::MechanismParams mech = virt::typical_mechanism_params();
  MarketScope scope = MarketScope::kSingleMarket;
  cloud::MarketId home_market{"us-east-1a", cloud::InstanceSize::kSmall};
  /// Regions searchable under kMultiRegion (empty = every provider region).
  std::vector<std::string> allowed_regions{};
  /// false => pure-spot baseline: no on-demand fallback at all.
  bool allow_on_demand = true;
  /// Proactive spike cancellation: abandon a planned migration whose price
  /// trigger evaporated before the transfer started.
  bool cancel_planned_on_price_drop = true;
  PlannedTiming planned_timing = PlannedTiming::kHourEnd;
  /// A spot market must be below margin * p_on to justify a reverse (or
  /// cross-market planned) move — hysteresis against flapping.
  double reverse_price_margin = 0.92;
  /// Lognormal CV applied to transfer/restore durations (measurement noise).
  double timing_jitter_cv = 0.05;
  /// VM being hosted. memory_gb == 0 => derive from the home market size.
  virt::VmSpec vm_spec{.memory_gb = 0.0};
  /// Stability-aware market selection (the paper's stated future work).
  bool stability_aware = false;
  double stability_penalty_weight = 1.0;
  sim::SimTime stability_window = 3 * sim::kDay;
  /// Capacity the endpoint needs, in small-units. 0 = derive from the home
  /// market size (one whole server). Set to the group size when hosting a
  /// packed workload::ServiceGroup.
  int capacity_units_override = 0;
};

struct SchedulerStats {
  int forced = 0;             ///< revocation-driven migrations executed
  int planned = 0;            ///< voluntary spot->elsewhere moves completed
  int reverse = 0;            ///< on-demand->spot moves completed
  int cancelled_planned = 0;  ///< spike cancellations
  int market_switches = 0;    ///< planned moves that landed on another spot market
  int spot_request_failures = 0;
  int od_hours_started = 0;   ///< bookkeeping cross-check (unused by metrics)
};

class CloudScheduler {
 public:
  enum class State { kAcquiring, kOnSpot, kOnDemand, kDown };

  CloudScheduler(sim::Simulation& simulation, cloud::CloudProvider& provider,
                 workload::ServiceEndpoint& service, SchedulerConfig config,
                 sim::RngStream timing_rng);

  /// Kicks off initial acquisition. Call once before running the simulation.
  void start();

  /// Closes service accounting at the horizon. Call after run_until(horizon)
  /// and before reading availability. (Provider finalization is separate.)
  void finalize(sim::SimTime horizon);

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] const SchedulerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const SchedulerConfig& config() const noexcept { return config_; }
  [[nodiscard]] const virt::VmSpec& vm_spec() const noexcept { return spec_; }
  [[nodiscard]] cloud::InstanceId current_instance() const noexcept {
    return holding_ ? holding_->id : cloud::kInvalidInstance;
  }

  /// Capacity the hosted endpoint needs, in small-units (after any
  /// override) — the basis for effective-price packing and attribution.
  [[nodiscard]] int units_needed() const;

 private:
  struct Holding {
    cloud::InstanceId id = cloud::kInvalidInstance;
    cloud::MarketId market;
    bool on_demand = false;
  };

  struct Migration {
    virt::MigrationClass cls{};
    cloud::MarketId target;
    bool target_on_demand = false;
    cloud::InstanceId dest = cloud::kInvalidInstance;
    bool dest_ready = false;
    bool transfer_started = false;
    sim::SimTime switchover_at = -1;
    virt::MigrationTimings timings{};
    sim::EventId switchover_event = sim::kInvalidEventId;
  };

  struct Forced {
    sim::SimTime t_term = 0;
    cloud::InstanceId dest = cloud::kInvalidInstance;
    bool dest_ready = false;
    sim::SimTime dest_ready_at = -1;
    bool service_stopped = false;
    bool resume_scheduled = false;
    virt::MigrationTimings timings{};
  };

  // --- triggers -------------------------------------------------------
  void on_price_change(const cloud::MarketId& market, double new_price);
  void on_revocation_warning(cloud::InstanceId instance, sim::SimTime t_term);
  void on_hour_check();

  // --- acquisition ----------------------------------------------------
  void acquire_initial();
  void adopt(cloud::InstanceId instance, const cloud::MarketId& market,
             bool on_demand);

  // --- planned / reverse ----------------------------------------------
  void maybe_schedule_planned();
  void cancel_scheduled_planned();
  void begin_planned();
  void begin_reverse(const cloud::MarketId& target);
  void start_transfer();
  void complete_switchover();
  void abandon_migration(bool count_cancel);
  void schedule_hour_check();

  // --- forced ----------------------------------------------------------
  void begin_forced(sim::SimTime t_term);
  void forced_try_resume();

  // --- pure spot --------------------------------------------------------
  void pure_spot_reacquire();

  // --- helpers ----------------------------------------------------------
  [[nodiscard]] double od_threshold() const;  ///< p_on comparator in current region
  [[nodiscard]] SelectionOptions selection_options(double threshold) const;
  [[nodiscard]] sim::SimTime jittered(double seconds);
  [[nodiscard]] sim::SimTime planned_lead() const;
  [[nodiscard]] sim::SimTime reverse_lead() const;
  [[nodiscard]] sim::SimTime next_instance_hour_boundary() const;
  void end_outage_with_restore(sim::SimTime resume_at, double restore_s,
                               double degraded_s);

  sim::Simulation& simulation_;
  cloud::CloudProvider& provider_;
  workload::ServiceEndpoint& service_;
  SchedulerConfig config_;
  virt::MigrationPlanner planner_;
  sim::RngStream rng_;
  virt::VmSpec spec_;

  State state_ = State::kAcquiring;
  bool service_live_ = false;
  std::optional<Holding> holding_;
  std::optional<Migration> migration_;
  std::optional<Forced> forced_;
  sim::EventId planned_begin_event_ = sim::kInvalidEventId;
  sim::EventId hour_check_event_ = sim::kInvalidEventId;
  cloud::InstanceId pending_acquire_ = cloud::kInvalidInstance;
  SchedulerStats stats_;
};

}  // namespace spothost::sched
