// The cloud scheduler (Sec. 3): hosts an always-on service on spot servers,
// migrating between spot and on-demand servers with the paper's three
// migration classes (forced / planned / reverse).
//
// The scheduler is a thin state machine composing three layers:
//
//  * MarketWatcher  (sched/market_watcher.hpp) — *when* to move: price
//    ticks, billing-hour boundaries, and revocation warnings arrive as
//    typed triggers. A watcher can be shared by a whole fleet, holding one
//    provider subscription per market however many schedulers listen.
//  * PlacementPolicy (sched/placement.hpp) — *where* to move: destination
//    market, billing mode, and bid. The scope-driven default reproduces the
//    paper's single/multi-market/multi-region selection; custom policies
//    plug in via SchedulerConfig::placement.
//  * MigrationEngine (sched/migration_engine.hpp) — *how* to move: the
//    forced / planned / reverse mechanics, driving the VM mechanism models
//    and instance lifecycle, reporting back through MigrationHost.
//
// What remains here is the paper's *decision logic*: the state machine
// (acquiring / on-spot / on-demand / down), edge-triggered price-crossing
// detection, hour-end planned timing, reverse hour checks, spike
// cancellation, and the pure-spot baseline (Fig. 11) where a revocation
// simply leaves the service down until the market price returns.
//
// Observability: every trigger and migration phase is emitted as an
// obs::TraceEvent. The events always feed the scheduler's own CounterSink —
// the backing store stats() is derived from — and additionally fan out to
// any tracer attached to the Simulation (Simulation::set_tracer).
#pragma once

#include <memory>
#include <optional>

#include "cloud/provider.hpp"
#include "obs/counter_sink.hpp"
#include "sched/bidding.hpp"
#include "sched/market_selection.hpp"
#include "sched/market_watcher.hpp"
#include "sched/migration_engine.hpp"
#include "sched/placement.hpp"
#include "sched/scheduler_config.hpp"
#include "simcore/rng.hpp"
#include "simcore/clock.hpp"
#include "virt/mechanisms.hpp"
#include "workload/endpoint.hpp"

namespace spothost::sched {

class CloudScheduler : private MigrationHost,
                       private MarketWatcher::TriggerListener {
 public:
  enum class State { kAcquiring, kOnSpot, kOnDemand, kDown };

  /// Standalone scheduler: owns a private MarketWatcher. `clock` is the
  /// narrow scheduling interface (a Simulation&, implicitly) — the scheduler
  /// never touches the engine beyond it.
  CloudScheduler(sim::Clock& clock, cloud::CloudProvider& provider,
                 workload::ServiceEndpoint& service, SchedulerConfig config,
                 sim::RngStream timing_rng);

  /// Fleet composition: listens on a shared MarketWatcher, so N schedulers
  /// over M markets cost O(M) provider subscriptions instead of O(N×M).
  /// The watcher must outlive the scheduler.
  CloudScheduler(sim::Clock& clock, cloud::CloudProvider& provider,
                 MarketWatcher& watcher, workload::ServiceEndpoint& service,
                 SchedulerConfig config, sim::RngStream timing_rng);

  ~CloudScheduler() override;

  /// Kicks off initial acquisition. Call once before running the simulation.
  void start();

  /// Closes service accounting at the horizon. Call after run_until(horizon)
  /// and before reading availability. (Provider finalization is separate.)
  void finalize(sim::SimTime horizon);

  [[nodiscard]] State state() const noexcept { return state_; }
  /// Aggregate view derived on demand from the trace-event counters; by
  /// construction it can never disagree with an attached trace sink.
  [[nodiscard]] SchedulerStats stats() const { return scheduler_stats_from(counters_); }
  /// The raw per-event-kind counters backing stats().
  [[nodiscard]] const obs::CounterSink& counters() const noexcept { return counters_; }
  [[nodiscard]] const SchedulerConfig& config() const noexcept { return config_; }
  [[nodiscard]] const virt::VmSpec& vm_spec() const noexcept { return spec_; }
  [[nodiscard]] cloud::InstanceId current_instance() const noexcept {
    return holding_ ? holding_->id : cloud::kInvalidInstance;
  }
  /// The trigger layer this scheduler listens on (owned or shared).
  [[nodiscard]] const MarketWatcher& watcher() const noexcept { return watcher_; }
  /// The destination-selection strategy in effect.
  [[nodiscard]] const PlacementPolicy& placement() const noexcept { return *placement_; }
  [[nodiscard]] const BidStrategy& bid_strategy() const noexcept { return *bidding_; }

  /// Capacity the hosted endpoint needs, in small-units (after any
  /// override) — the basis for effective-price packing and attribution.
  [[nodiscard]] int units_needed() const;

  /// Pins this scheduler's shard-eligible work to `shard` of `router`:
  /// price triggers are pre-screened by wants_trigger() on that lane
  /// (MarketWatcher::assign_shard) and the service-local timers — outage
  /// begin at a revocation deadline, degraded-mode ends — move to the
  /// shard's clock so they execute inside parallel windows. Everything
  /// that touches the provider (requests, adoption, retries, hour checks)
  /// stays on the global clock; see DESIGN.md §9.2 for the full table.
  /// Serial-phase setup only; the watcher must be bound to the same router
  /// first (FleetScheduler does both).
  void pin_to_shard(sim::ShardRouter& router, std::size_t shard);

  /// The clock shard-eligible timers run on: the pinned shard's clock, or
  /// the global clock when unpinned (then identical to the ctor's clock).
  [[nodiscard]] sim::Clock& lane_clock() const noexcept { return *lane_clock_; }

  /// Tags every instance this scheduler acquires from now on with `owner`
  /// in the provider's billing ledger, so fleet cost attribution can
  /// pro-rate each lease by the owning service's capacity need.
  void set_owner_tag(std::uint64_t owner);

 private:
  CloudScheduler(sim::Clock& clock, cloud::CloudProvider& provider,
                 std::unique_ptr<MarketWatcher> owned_watcher,
                 MarketWatcher* shared_watcher, workload::ServiceEndpoint& service,
                 SchedulerConfig config, sim::RngStream timing_rng);

  struct Holding {
    cloud::InstanceId id = cloud::kInvalidInstance;
    cloud::MarketId market;
    bool on_demand = false;
  };

  // --- triggers (MarketWatcher listener) ------------------------------
  /// MarketWatcher::TriggerListener — direct interface delivery; no
  /// per-scheduler std::function on the price-tick path.
  void on_trigger(const MarketWatcher::Trigger& trigger) override;
  /// Shard-lane pre-screen: true iff on_trigger(trigger) would do work.
  /// Mirrors on_price_change's no-op enumeration exactly — every early
  /// return there must map to `false` here (over-reporting true is safe,
  /// merely unparallel). Const-pure: reads scheduler state and frozen
  /// market prices only.
  [[nodiscard]] bool wants_trigger(const MarketWatcher::Trigger& trigger) const override;
  void on_price_change(const cloud::MarketId& market, double new_price);
  void on_hour_check();

  // --- acquisition ----------------------------------------------------
  void acquire_initial();
  /// Fault-recovery ladder for injected capacity failures while acquiring:
  /// bounded backoff retries walking the avoid-list fallback chain
  /// (next-cheapest spot market, then on-demand), then graceful degradation
  /// (slow polling at the backoff cap) or give-up per config_.retry.
  void on_acquire_capacity_failed(const cloud::MarketId& market, bool was_spot);

  // --- planned / reverse decision logic --------------------------------
  void maybe_schedule_planned();
  void cancel_scheduled_planned();
  void begin_planned();
  void begin_reverse(const Placement& target);
  void schedule_hour_check();

  // --- pure spot --------------------------------------------------------
  void pure_spot_reacquire();

  // --- helpers ----------------------------------------------------------
  [[nodiscard]] double od_threshold() const;  ///< p_on comparator in current region
  [[nodiscard]] PlacementQuery placement_query(double threshold) const;
  [[nodiscard]] sim::SimTime planned_lead() const;
  [[nodiscard]] sim::SimTime reverse_lead() const;
  [[nodiscard]] sim::SimTime next_instance_hour_boundary() const;

  // --- MigrationHost (the engine's view of this scheduler) --------------
  [[nodiscard]] cloud::InstanceId source_instance() const noexcept override {
    return holding_ ? holding_->id : cloud::kInvalidInstance;
  }
  [[nodiscard]] cloud::MarketId source_market() const override {
    return holding_ ? holding_->market : config_.home_market;
  }
  void adopt(cloud::InstanceId instance, const cloud::MarketId& market,
             bool on_demand) override;
  void on_forced_begin() override;
  void on_source_lost() override;
  void on_source_released() override;
  void on_voluntary_dest_failed(virt::MigrationClass cls) override;
  void on_revocation_warning(cloud::InstanceId instance, sim::SimTime t_term) override;

  /// Feeds the event into counters_ (the stats backing store) and forwards
  /// it to the clock's tracer, if one is attached.
  void trace(obs::TraceEvent event) override;
  [[nodiscard]] obs::TraceEvent trace_event(obs::EventKind kind,
                                            std::uint8_t code) const override;

  sim::Clock& clock_;
  /// Where shard-eligible timers land: &clock_ until pin_to_shard installs
  /// the shard's clock. Callbacks scheduled here must read lane_clock_->
  /// now(), not clock_.now() — inside a window the global clock still shows
  /// the previous barrier.
  sim::Clock* lane_clock_;
  cloud::CloudProvider& provider_;
  workload::ServiceEndpoint& service_;
  SchedulerConfig config_;
  sim::RngStream rng_;
  virt::VmSpec spec_;
  std::unique_ptr<MarketWatcher> owned_watcher_;  ///< standalone mode only
  MarketWatcher& watcher_;
  std::shared_ptr<const PlacementPolicy> placement_;
  std::shared_ptr<const BidStrategy> bidding_;
  std::unique_ptr<MigrationEngine> engine_;
  MarketWatcher::ListenerId listener_ = MarketWatcher::kInvalidListener;

  State state_ = State::kAcquiring;
  bool service_live_ = false;
  std::optional<Holding> holding_;
  sim::EventHandle planned_begin_event_;
  sim::EventHandle hour_check_event_;
  cloud::InstanceId pending_acquire_ = cloud::kInvalidInstance;
  obs::CounterSink counters_;
  // --- fault-recovery state (reset on every adopt) ----------------------
  int acquire_attempts_ = 0;  ///< capacity-failed acquisitions this episode
  /// Markets that capacity-failed this episode; placement skips them so each
  /// retry walks to the next-cheapest market and finally on-demand.
  std::vector<cloud::MarketId> avoid_markets_;
  bool degraded_acquire_ = false;  ///< slow-poll degraded mode announced
  /// Edge-triggered crossings of the on-demand threshold, relative to the
  /// adopted market. Reset whenever a new instance is adopted.
  CrossingDetector crossing_;
  /// Ledger attribution tag for every instance this scheduler requests
  /// (kNoOwner = untagged, the standalone default).
  std::uint64_t owner_tag_ = cloud::kNoOwner;
};

}  // namespace spothost::sched
