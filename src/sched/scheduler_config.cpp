#include "sched/scheduler_config.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/counter_sink.hpp"

namespace spothost::sched {

double RetryPolicy::backoff_s(int attempt) const noexcept {
  if (attempt <= 0) return 0.0;
  double delay = backoff_base_s;
  for (int i = 1; i < attempt; ++i) {
    delay *= backoff_factor;
    if (delay >= backoff_max_s) break;
  }
  return std::min(delay, backoff_max_s);
}

std::string_view to_string(PlannedTiming timing) noexcept {
  switch (timing) {
    case PlannedTiming::kHourEnd: return "hour-end";
    case PlannedTiming::kImmediate: return "immediate";
  }
  return "?";
}

std::string_view to_string(Fallback fallback) noexcept {
  switch (fallback) {
    case Fallback::kOnDemand: return "on-demand";
    case Fallback::kPureSpot: return "pure-spot";
  }
  return "?";
}

void SchedulerConfig::validate() const {
  if (home_market.region.empty()) {
    throw std::invalid_argument("SchedulerConfig: home_market region is empty");
  }
  if (reverse_price_margin < 0.0) {
    throw std::invalid_argument(
        "SchedulerConfig: reverse_price_margin must be >= 0 (got " +
        std::to_string(reverse_price_margin) + ")");
  }
  if (timing_jitter_cv < 0.0) {
    throw std::invalid_argument(
        "SchedulerConfig: timing_jitter_cv must be >= 0 (got " +
        std::to_string(timing_jitter_cv) + ")");
  }
  if (capacity_units_override < 0) {
    throw std::invalid_argument(
        "SchedulerConfig: capacity_units_override must be >= 0 (got " +
        std::to_string(capacity_units_override) + ")");
  }
  if (bid.proactive_multiple <= 0.0) {
    throw std::invalid_argument(
        "SchedulerConfig: bid.proactive_multiple must be > 0 (got " +
        std::to_string(bid.proactive_multiple) + ")");
  }
  if (placement_salt < 0) {
    throw std::invalid_argument(
        "SchedulerConfig: placement_salt must be >= 0 (got " +
        std::to_string(placement_salt) + ")");
  }
  if (stability_penalty_weight < 0.0) {
    throw std::invalid_argument(
        "SchedulerConfig: stability_penalty_weight must be >= 0 (got " +
        std::to_string(stability_penalty_weight) + ")");
  }
  if (stability_window <= 0) {
    throw std::invalid_argument(
        "SchedulerConfig: stability_window must be > 0");
  }
  if (vm_spec.memory_gb < 0.0) {
    throw std::invalid_argument(
        "SchedulerConfig: vm_spec.memory_gb must be >= 0 (got " +
        std::to_string(vm_spec.memory_gb) + ")");
  }
  if (retry.max_attempts < 0) {
    throw std::invalid_argument(
        "SchedulerConfig: retry.max_attempts must be >= 0 (got " +
        std::to_string(retry.max_attempts) + ")");
  }
  if (retry.backoff_base_s < 0.0) {
    throw std::invalid_argument(
        "SchedulerConfig: retry.backoff_base_s must be >= 0 (got " +
        std::to_string(retry.backoff_base_s) + ")");
  }
  if (retry.backoff_factor < 1.0) {
    throw std::invalid_argument(
        "SchedulerConfig: retry.backoff_factor must be >= 1 (got " +
        std::to_string(retry.backoff_factor) + ")");
  }
  if (retry.backoff_max_s < retry.backoff_base_s) {
    throw std::invalid_argument(
        "SchedulerConfig: retry.backoff_max_s must be >= backoff_base_s (got " +
        std::to_string(retry.backoff_max_s) + " < " +
        std::to_string(retry.backoff_base_s) + ")");
  }
}

SchedulerConfig SchedulerConfig::validated() const {
  validate();
  return *this;
}

SchedulerConfigBuilder::SchedulerConfigBuilder(cloud::MarketId home_market) {
  cfg_.home_market = std::move(home_market);
}

SchedulerConfigBuilder& SchedulerConfigBuilder::bid(BidPolicy policy) {
  cfg_.bid = policy;
  return *this;
}

SchedulerConfigBuilder& SchedulerConfigBuilder::combo(virt::MechanismCombo combo) {
  cfg_.combo = combo;
  return *this;
}

SchedulerConfigBuilder& SchedulerConfigBuilder::mechanism_params(
    virt::MechanismParams params) {
  cfg_.mech = params;
  return *this;
}

SchedulerConfigBuilder& SchedulerConfigBuilder::scope(MarketScope scope) {
  cfg_.scope = scope;
  return *this;
}

SchedulerConfigBuilder& SchedulerConfigBuilder::allowed_regions(
    std::vector<std::string> regions) {
  cfg_.allowed_regions = std::move(regions);
  return *this;
}

SchedulerConfigBuilder& SchedulerConfigBuilder::fallback(Fallback fallback) {
  cfg_.fallback = fallback;
  return *this;
}

SchedulerConfigBuilder& SchedulerConfigBuilder::cancel_planned_on_price_drop(
    bool cancel) {
  cfg_.cancel_planned_on_price_drop = cancel;
  return *this;
}

SchedulerConfigBuilder& SchedulerConfigBuilder::planned_timing(
    PlannedTiming timing) {
  cfg_.planned_timing = timing;
  return *this;
}

SchedulerConfigBuilder& SchedulerConfigBuilder::reverse_price_margin(
    double margin) {
  cfg_.reverse_price_margin = margin;
  return *this;
}

SchedulerConfigBuilder& SchedulerConfigBuilder::timing_jitter_cv(double cv) {
  cfg_.timing_jitter_cv = cv;
  return *this;
}

SchedulerConfigBuilder& SchedulerConfigBuilder::vm_spec(virt::VmSpec spec) {
  cfg_.vm_spec = spec;
  return *this;
}

SchedulerConfigBuilder& SchedulerConfigBuilder::stability(StabilityPolicy policy) {
  cfg_.stability = policy;
  return *this;
}

SchedulerConfigBuilder& SchedulerConfigBuilder::stability_penalty_weight(
    double weight) {
  cfg_.stability_penalty_weight = weight;
  return *this;
}

SchedulerConfigBuilder& SchedulerConfigBuilder::stability_window(
    sim::SimTime window) {
  cfg_.stability_window = window;
  return *this;
}

SchedulerConfigBuilder& SchedulerConfigBuilder::capacity_units_override(int units) {
  cfg_.capacity_units_override = units;
  return *this;
}

SchedulerConfigBuilder& SchedulerConfigBuilder::placement(
    std::shared_ptr<const PlacementPolicy> policy) {
  cfg_.placement = std::move(policy);
  return *this;
}

SchedulerConfigBuilder& SchedulerConfigBuilder::bidding(
    std::shared_ptr<const BidStrategy> strategy) {
  cfg_.bidding = std::move(strategy);
  return *this;
}

SchedulerConfigBuilder& SchedulerConfigBuilder::placement_salt(int salt) {
  cfg_.placement_salt = salt;
  return *this;
}

SchedulerConfigBuilder& SchedulerConfigBuilder::retry(RetryPolicy policy) {
  cfg_.retry = policy;
  return *this;
}

SchedulerConfig SchedulerConfigBuilder::build() const { return cfg_.validated(); }

SchedulerStats scheduler_stats_from(const obs::CounterSink& counters) {
  using obs::EventKind;
  const auto n = [](std::uint64_t v) { return static_cast<int>(v); };
  SchedulerStats s;
  s.forced = n(counters.count(EventKind::kMigrationBegin, obs::code::kForced));
  s.planned =
      n(counters.count(EventKind::kMigrationSwitchover, obs::code::kPlanned));
  s.reverse =
      n(counters.count(EventKind::kMigrationSwitchover, obs::code::kReverse));
  s.cancelled_planned = n(counters.count(EventKind::kMigrationAbandon,
                                         obs::code::kAbandonPriceRecovered));
  s.market_switches = n(counters.count(EventKind::kMarketSwitch));
  s.spot_request_failures = n(counters.count(EventKind::kSpotRequestFailed));
  s.od_hours_started = n(counters.count(EventKind::kBillingHourTick));
  s.retries = n(counters.count(EventKind::kRetryScheduled));
  s.degraded_entries = n(counters.count(EventKind::kDegradedMode));
  return s;
}

}  // namespace spothost::sched
