// Scheduler configuration: the knobs of Sec. 3, a validating factory, and a
// fluent builder. Split out of scheduler.hpp so configuration, validation,
// and presets (baselines.hpp) evolve independently of the scheduler's state
// machine.
//
// Construction paths, from loosest to strictest:
//  * aggregate-initialize SchedulerConfig and rely on CloudScheduler to
//    validate at attach time (it always does);
//  * SchedulerConfig{...}.validated() — returns the config or throws
//    std::invalid_argument with a message naming the offending field;
//  * SchedulerConfigBuilder — fluent construction whose build() validates.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cloud/market.hpp"
#include "sched/bidding.hpp"
#include "sched/market_selection.hpp"
#include "simcore/time.hpp"
#include "virt/mechanisms.hpp"
#include "virt/vm.hpp"

namespace spothost::obs {
class CounterSink;  // obs/counter_sink.hpp
}

namespace spothost::sched {

class PlacementPolicy;  // sched/placement.hpp

/// When a planned migration begins after the price crosses p_on.
enum class PlannedTiming {
  kHourEnd,    ///< ride out the already-paid hour; leave just before it ends
  kImmediate,  ///< begin as soon as the crossing is observed
};

/// What the scheduler does when no spot market qualifies. Replaces the old
/// `bool allow_on_demand` flag.
enum class Fallback {
  kOnDemand,  ///< migrate to an on-demand server (the paper's scheduler)
  kPureSpot,  ///< Fig. 11 baseline: ride out the outage, no fallback at all
};

std::string_view to_string(PlannedTiming timing) noexcept;
std::string_view to_string(Fallback fallback) noexcept;

/// Bounded retry + exponential backoff for *fault-induced* failures (the
/// src/faults injection layer): capacity errors while acquiring, forced-flow
/// destination failures, mid-flight migration faults. Price-driven failures
/// (spot rejected because the market moved) are handled by the paper's
/// trigger policy and never consult this — fault-free runs are byte-for-byte
/// unaffected by these knobs.
///
/// Attempt n (1-based) backs off backoff_base_s * backoff_factor^(n-1),
/// capped at backoff_max_s. After max_attempts, graceful_degradation decides:
/// degrade (fall back to on-demand / keep polling at the cap) or give up.
/// `{.max_attempts = 0, .graceful_degradation = false}` is the retries-off
/// ablation arm of bench_ablation_faults.
struct RetryPolicy {
  int max_attempts = 3;          ///< bounded-backoff attempts before degrading
  double backoff_base_s = 20.0;  ///< first retry delay
  double backoff_factor = 2.0;   ///< growth per attempt (>= 1)
  double backoff_max_s = 300.0;  ///< cap; also the degraded-mode poll period
  bool graceful_degradation = true;  ///< degrade after the budget, vs. give up

  [[nodiscard]] bool retries_enabled() const noexcept { return max_attempts > 0; }
  /// Backoff before attempt `attempt` (1-based), in seconds.
  [[nodiscard]] double backoff_s(int attempt) const noexcept;
};

struct SchedulerConfig {
  BidPolicy bid{};
  virt::MechanismCombo combo = virt::MechanismCombo::kCkptLazyLive;
  virt::MechanismParams mech = virt::typical_mechanism_params();
  MarketScope scope = MarketScope::kSingleMarket;
  cloud::MarketId home_market{"us-east-1a", cloud::InstanceSize::kSmall};
  /// Regions searchable under kMultiRegion (empty = every provider region).
  std::vector<std::string> allowed_regions{};
  /// kPureSpot => Fig. 11 baseline: no on-demand fallback at all.
  Fallback fallback = Fallback::kOnDemand;
  /// Proactive spike cancellation: abandon a planned migration whose price
  /// trigger evaporated before the transfer started.
  bool cancel_planned_on_price_drop = true;
  PlannedTiming planned_timing = PlannedTiming::kHourEnd;
  /// A spot market must be below margin * p_on to justify a reverse (or
  /// cross-market planned) move — hysteresis against flapping.
  double reverse_price_margin = 0.92;
  /// Lognormal CV applied to transfer/restore durations (measurement noise).
  double timing_jitter_cv = 0.05;
  /// VM being hosted. memory_gb == 0 => derive from the home market size.
  virt::VmSpec vm_spec{.memory_gb = 0.0};
  /// Stability-aware market selection (the paper's stated future work).
  StabilityPolicy stability = StabilityPolicy::kIgnore;
  double stability_penalty_weight = 1.0;
  sim::SimTime stability_window = 3 * sim::kDay;
  /// Capacity the endpoint needs, in small-units. 0 = derive from the home
  /// market size (one whole server). Set to the group size when hosting a
  /// packed workload::ServiceGroup.
  int capacity_units_override = 0;
  /// Destination-selection strategy. Null = the scope-driven default
  /// (ScopedPlacementPolicy); supply a custom PlacementPolicy to change
  /// where the scheduler migrates without touching its internals. Shipped
  /// alternatives live in sched/policy_zoo.hpp; docs/POLICIES.md is the
  /// author's guide.
  std::shared_ptr<const PlacementPolicy> placement{};
  /// Bid-selection strategy. Null = the static `bid` above (reactive /
  /// proactive multiples); supply a BidStrategy (e.g. ForecastBidPolicy) to
  /// derive bids from market history instead.
  std::shared_ptr<const BidStrategy> bidding{};
  /// Deterministic per-service offset consulted by placement policies that
  /// rotate preference over time (PortfolioPlacementPolicy): replicas with
  /// distinct salts spread across the basket instead of stampeding one
  /// market. FleetScheduler assigns per-service salts under
  /// FleetConfig::stagger_placement; single services leave it 0.
  int placement_salt = 0;
  /// Fault-recovery policy (retry / backoff / graceful degradation); see
  /// RetryPolicy. Only consulted when the fault injector actually fires.
  RetryPolicy retry{};

  [[nodiscard]] bool on_demand_allowed() const noexcept {
    return fallback == Fallback::kOnDemand;
  }

  /// Throws std::invalid_argument (naming the field) on nonsense values:
  /// negative reverse_price_margin, jitter CV < 0, empty home-market region,
  /// capacity_units_override < 0, non-positive bid multiple, ...
  void validate() const;

  /// Validating factory: returns *this if valid, else throws as validate().
  [[nodiscard]] SchedulerConfig validated() const;
};

/// Fluent construction; build() validates. Example:
///   auto cfg = SchedulerConfigBuilder({"us-east-1a", InstanceSize::kSmall})
///                  .bid(BidPolicy{.mode = BiddingMode::kProactive})
///                  .scope(MarketScope::kMultiMarket)
///                  .build();
class SchedulerConfigBuilder {
 public:
  explicit SchedulerConfigBuilder(cloud::MarketId home_market);

  SchedulerConfigBuilder& bid(BidPolicy policy);
  SchedulerConfigBuilder& combo(virt::MechanismCombo combo);
  SchedulerConfigBuilder& mechanism_params(virt::MechanismParams params);
  SchedulerConfigBuilder& scope(MarketScope scope);
  SchedulerConfigBuilder& allowed_regions(std::vector<std::string> regions);
  SchedulerConfigBuilder& fallback(Fallback fallback);
  SchedulerConfigBuilder& cancel_planned_on_price_drop(bool cancel);
  SchedulerConfigBuilder& planned_timing(PlannedTiming timing);
  SchedulerConfigBuilder& reverse_price_margin(double margin);
  SchedulerConfigBuilder& timing_jitter_cv(double cv);
  SchedulerConfigBuilder& vm_spec(virt::VmSpec spec);
  SchedulerConfigBuilder& stability(StabilityPolicy policy);
  SchedulerConfigBuilder& stability_penalty_weight(double weight);
  SchedulerConfigBuilder& stability_window(sim::SimTime window);
  SchedulerConfigBuilder& capacity_units_override(int units);
  SchedulerConfigBuilder& placement(std::shared_ptr<const PlacementPolicy> policy);
  SchedulerConfigBuilder& bidding(std::shared_ptr<const BidStrategy> strategy);
  SchedulerConfigBuilder& placement_salt(int salt);
  SchedulerConfigBuilder& retry(RetryPolicy policy);

  /// Validates and returns the finished config (throws on nonsense).
  [[nodiscard]] SchedulerConfig build() const;

 private:
  SchedulerConfig cfg_;
};

/// End-of-run aggregates. Derived from the scheduler's trace-event counters
/// (obs::CounterSink) — see scheduler_stats_from — so these numbers can
/// never disagree with an attached trace sink's view of the same run.
struct SchedulerStats {
  int forced = 0;             ///< revocation-driven migrations executed
  int planned = 0;            ///< voluntary spot->elsewhere moves completed
  int reverse = 0;            ///< on-demand->spot moves completed
  int cancelled_planned = 0;  ///< spike cancellations
  int market_switches = 0;    ///< planned moves that landed on another spot market
  int spot_request_failures = 0;
  int od_hours_started = 0;   ///< on-demand billing hours with a reverse check
  int retries = 0;            ///< fault-recovery retries scheduled
  int degraded_entries = 0;   ///< graceful-degradation fallbacks taken
};

/// Maps trace-event counters onto the classic aggregate view:
///   forced             = migration_begin[forced]
///   planned / reverse  = migration_switchover[planned / reverse]
///   cancelled_planned  = migration_abandon[price_recovered]
///   market_switches    = market_switch
///   spot_request_failures = spot_request_failed
///   od_hours_started   = billing_hour_tick
///   retries            = retry_scheduled
///   degraded_entries   = degraded_mode
SchedulerStats scheduler_stats_from(const obs::CounterSink& counters);

}  // namespace spothost::sched
