// Move-only small-buffer callable: the event queues' dispatch currency.
//
// Every scheduled event stores one of these. PR 6's fleet-scale profiling
// showed std::function dispatch cost dominating once the timing wheel made
// the queue itself O(1): libstdc++'s std::function inlines captures only up
// to 16 bytes, so the engine's most common capture shapes — `[this, id]`
// (16 B, inline) but also `[this, point]` with a 16-byte PricePoint (24 B,
// heap) — straddle its buffer boundary, and its copyability forces a
// virtual-dispatch move that checks for the heap case on every queue
// shuffle.
//
// sim::Callback fixes the shape to what the engine actually needs:
//
//   * move-only — events fire exactly once and the arena moves the callback
//     out at dispatch, so copy support buys nothing and costs type erasure
//     the ability to hold move-only captures (e.g. a std::promise);
//   * 24-byte inline buffer — covers `[this]`, `[this, integral id]`, and
//     `[this, PricePoint]`, the three shapes every hot scheduling site in
//     the provider/market/scheduler uses. With the vtable pointer the whole
//     object is 32 bytes, exactly the size of libstdc++'s std::function, so
//     the EventArena slot stays one cache line (see event_arena.hpp);
//   * larger captures (a copied std::function handler plus ids, a Placement
//     with a MarketId string) fall back to the heap, as they already did
//     under std::function — never silently, never slower than before.
//
// Invocation is one indirect call through a static per-type ops table; moves
// of inline captures dispatch through the same table (memcpy-speed for the
// trivially-relocatable common shapes), and heap captures move as a pointer
// swap without touching the callable.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace spothost::sim {

class Callback {
 public:
  /// Inline capture budget. Chosen so sizeof(Callback) matches libstdc++'s
  /// std::function (32 bytes) while covering one pointer more of capture.
  static constexpr std::size_t kInlineBytes = 24;

  /// True if a callable of type F is stored inline (no allocation).
  template <class F>
  static constexpr bool stores_inline() noexcept {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(void*) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  constexpr Callback() noexcept = default;
  constexpr Callback(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Callback(F&& f) {  // NOLINT(runtime/explicit) — mirrors std::function
    using D = std::decay_t<F>;
    if constexpr (stores_inline<F>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      void* p = new D(std::forward<F>(f));
      std::memcpy(storage_, &p, sizeof(p));
      ops_ = &kHeapOps<D>;
    }
  }

  Callback(Callback&& other) noexcept { steal(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  Callback& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  /// Invokes the stored callable. Precondition: non-empty. Const like
  /// std::function's call operator: constness of the wrapper does not
  /// propagate to the target.
  void operator()() const { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// Destroys the stored callable (captured state released promptly).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs dst's storage from src's and destroys src's callable.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <class D>
  static constexpr Ops kInlineOps{
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* dst, void* src) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); }};

  template <class D>
  [[nodiscard]] static D* heap_target(void* s) noexcept {
    void* p;
    std::memcpy(&p, s, sizeof(p));
    return static_cast<D*>(p);
  }

  template <class D>
  static constexpr Ops kHeapOps{
      [](void* s) { (*heap_target<D>(s))(); },
      [](void* dst, void* src) noexcept {
        std::memcpy(dst, src, sizeof(void*));  // pointer changes hands
      },
      [](void* s) noexcept { delete heap_target<D>(s); }};

  void steal(Callback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(void*) mutable unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace spothost::sim
