// The narrow scheduling interface policy code programs against.
//
// Schedulers, migration engines, and watchers need exactly four things from
// the engine: the current time, a way to schedule at an absolute or relative
// time, and a way to cancel. Clock is that contract. Two engines implement
// it — sim::Simulation (virtual time, simcore/simulation.hpp) and
// live::WallClock (wall time / paced replay, live/wall_clock.hpp) — and
// policy code holds a Clock& so the same scheduler runs a backtest or a live
// feed without knowing which. The layering is enforced, not promised:
// scripts/check_layering.sh fails CI if sched/virt/cloud code includes the
// concrete engine header.
//
// Two pieces of per-run context ride along with the clock: the trace
// dispatcher and the fault injector. Both are attach-once, engine-owned
// pointers that every component wired to the same run must agree on, so the
// clock — the one object they all already share — is their natural home.
//
// Scheduling returns an EventHandle, a small value type that pairs the event
// id with the clock that issued it. Handles make the common lifecycle
// explicit: `if (h) h.cancel();` replaces the scattered
// `if (id != kInvalidEventId) sim.cancel(id);` dance, and a cancelled or
// fired handle can be cancelled again harmlessly (generation-validated ids
// make stale cancels a no-op returning false).
#pragma once

#include <cstdint>
#include <utility>

#include "simcore/callback.hpp"
#include "simcore/time.hpp"

namespace spothost::obs {
class Tracer;  // obs/sink.hpp — simcore stays independent of obs
}

namespace spothost::faults {
class FaultInjector;  // faults/injector.hpp — simcore stays independent of faults
}

namespace spothost::sim {

/// Opaque identifier for a scheduled event; usable to cancel it. Packed as
/// (generation << 32 | arena index) by the queue backends, so ids are unique
/// for the lifetime of a queue and stale cancels are detected, not UB.
using EventId = std::uint64_t;

/// Sentinel returned for operations that never produce a real event.
/// Backends start generations at 1, so no real id is ever 0.
inline constexpr EventId kInvalidEventId = 0;

class EventHandle;

/// What policy code may do with time. Implemented by sim::Simulation and
/// live::WallClock (via sim::Engine). All scheduling is single-threaded
/// within a run; see Simulation for the engine's threading contract.
class Clock {
 public:
  /// Move-only small-buffer callable (simcore/callback.hpp); lambdas convert
  /// implicitly, exactly as they did when this was std::function.
  using Callback = sim::Callback;

  virtual ~Clock() = default;

  /// Current time.
  [[nodiscard]] virtual SimTime now() const noexcept = 0;

  /// Schedules `cb` at absolute time `when` (must be >= now()).
  virtual EventHandle at(SimTime when, Callback cb) = 0;

  /// Schedules `cb` after a relative delay (must be >= 0).
  virtual EventHandle after(SimTime delay, Callback cb) = 0;

  /// Cancels a pending event; returns false if it already fired, was already
  /// cancelled, or never existed. Prefer EventHandle::cancel().
  virtual bool cancel(EventId id) = 0;

  /// The run's trace dispatcher (nullptr = tracing disabled). See
  /// Simulation::set_tracer for the attach point.
  [[nodiscard]] virtual obs::Tracer* tracer() const noexcept = 0;

  /// The run's fault-injection source (nullptr = no injection). See
  /// Simulation::set_fault_injector for the attach point.
  [[nodiscard]] virtual faults::FaultInjector* fault_injector() const noexcept = 0;
};

/// A cancellable claim on one scheduled event. Copyable value type: copies
/// refer to the same event, and cancelling through any of them invalidates
/// the event for all (later cancels return false). Default-constructed or
/// reset() handles are inert.
class EventHandle {
 public:
  constexpr EventHandle() noexcept = default;
  constexpr EventHandle(Clock* clock, EventId id) noexcept
      : clock_(clock), id_(id) {}

  /// True if this handle was issued for a real event and has not been
  /// cancelled *through this handle*. Does not query the queue: a fired
  /// event's handle stays "valid" until cancelled or reset (the cancel then
  /// returns false).
  [[nodiscard]] constexpr bool valid() const noexcept {
    return clock_ != nullptr && id_ != kInvalidEventId;
  }
  [[nodiscard]] constexpr explicit operator bool() const noexcept {
    return valid();
  }

  /// Cancels the event through the issuing clock and resets this handle.
  /// Returns false (harmlessly) if the event already fired, was cancelled,
  /// or the handle was inert.
  bool cancel() {
    if (!valid()) return false;
    Clock* clock = std::exchange(clock_, nullptr);
    const EventId id = std::exchange(id_, kInvalidEventId);
    return clock->cancel(id);
  }

  /// Forgets the event without cancelling it (e.g. after it fired).
  constexpr void reset() noexcept {
    clock_ = nullptr;
    id_ = kInvalidEventId;
  }

  /// The raw id, for logging and tests.
  [[nodiscard]] constexpr EventId id() const noexcept { return id_; }

 private:
  Clock* clock_ = nullptr;
  EventId id_ = kInvalidEventId;
};

}  // namespace spothost::sim
