// The run-control seam above sim::Clock.
//
// Clock is what policy code *inside* a run needs (now/at/after/cancel);
// Engine is what the code *around* a run needs: drive the event loop to a
// horizon, attach the run-scoped tracer and fault injector, and read the
// dispatch counter for profiling. Two engines implement it:
//
//   * sim::Simulation — virtual time; run_until() consumes the queue as fast
//     as the CPU allows (simcore/simulation.hpp).
//   * live::WallClock — wall time; run_until() sleeps between events, or
//     fast-replays deterministically at --speed max (live/wall_clock.hpp).
//
// The experiment layer (sched::World, metrics) programs against Engine so
// the same wiring runs a backtest or a live session; only code that needs
// Simulation-only hooks (step(), the dispatch hook) names the concrete type.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>

#include "simcore/clock.hpp"
#include "simcore/time.hpp"

namespace spothost::sim {

class Engine : public Clock {
 public:
  /// Runs events until the queue is empty or the clock would pass `horizon`;
  /// events at exactly `horizon` do fire, and the clock is left at `horizon`
  /// (or at the last event time if `horizon` is the run-forever sentinel).
  /// A wall-clock engine blocks in real time; a simulation never does.
  virtual void run_until(SimTime horizon) = 0;

  /// Runs until the queue drains completely.
  void run() { run_until(std::numeric_limits<SimTime>::max()); }

  /// Events dispatched so far (profiling, tests).
  [[nodiscard]] virtual std::uint64_t dispatched() const noexcept = 0;

  /// Pending live events.
  [[nodiscard]] virtual std::size_t pending() const = 0;

  /// Attaches the run's trace dispatcher (not owned; nullptr disables).
  /// Components holding a Clock& read it back via Clock::tracer(), so one
  /// attach point covers everything wired to this engine.
  virtual void set_tracer(obs::Tracer* tracer) noexcept = 0;

  /// Attaches the run's fault-injection source (not owned; nullptr = none).
  virtual void set_fault_injector(faults::FaultInjector* injector) noexcept = 0;
};

/// Constructs the default simulation engine behind the Engine interface,
/// honouring SPOTHOST_EVENT_QUEUE and SPOTHOST_SHARDS (> 1 selects the
/// sharded engine, simcore/sharded_sim.hpp; the sharded run is byte-identical
/// to the serial one). Lets engine-agnostic code (sched::World) build the
/// default engine without including simulation.hpp — the layering lint
/// forbids that below the experiment layer.
[[nodiscard]] std::unique_ptr<Engine> make_simulation_engine();

/// Same, with explicit shard selection: 0 = the SPOTHOST_SHARDS default,
/// 1 = plain serial Simulation, K > 1 = the sharded engine with exactly K
/// shard lanes (an explicit program choice is not hardware-clamped).
[[nodiscard]] std::unique_ptr<Engine> make_simulation_engine(std::size_t shards);

}  // namespace spothost::sim
