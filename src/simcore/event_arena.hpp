// Dense slab storage for pending events, shared by every queue backend.
//
// Events live in one array of fixed-size Slot records indexed by a 32-bit
// slot number; slots are recycled through a free list, and each carries a
// generation counter so a recycled slot invalidates ids issued for its
// previous occupant. An EventId packs (generation << 32 | slot), which buys
// every backend:
//
//   * O(1) cancel — decode, compare generations, done. No hash lookup.
//   * stale-cancel safety — a handle kept past its event's firing simply
//     fails the generation check.
//   * a dispatch path that *moves* the callback out of storage (take()) —
//     sim::Callback is move-only, so copies are impossible by construction.
//
// The record is deliberately array-of-structures: time, sequence,
// generation, a backend scratch byte, and the callback sit in ONE record
// (56 bytes with the 32-byte sim::Callback — same size std::function had,
// with 24 inline capture bytes instead of libstdc++'s 16), so scheduling,
// cancelling, or firing an event touches a single cache line. The earlier
// structure-of-arrays layout spread each event over seven vectors — seven
// potential misses per touch — which dominated the event-core profile at
// fleet scale long before algorithmic complexity did.
//
// Generations start at 1 and slots are recycled LIFO (still deterministic:
// recycling order is a pure function of the operation sequence), so no live
// id ever equals kInvalidEventId and ids stay unique per queue lifetime for
// ~2^32 recyclings of a slot.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "simcore/clock.hpp"
#include "simcore/time.hpp"

namespace spothost::sim {

class EventArena {
 public:
  using Callback = sim::Callback;  // simcore/callback.hpp, via clock.hpp

  /// "No slot" marker for index-valued returns and backend link fields.
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct Alloc {
    EventId id;
    std::uint32_t slot;
  };

  /// Stores an event and returns its id and slot. The slot stays stable
  /// until release(). The backend scratch byte (loc) is NOT reset — the
  /// owning backend writes it when it files the slot.
  Alloc allocate(SimTime when, Callback cb) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      Slot& s = slots_[slot];
      s.when = when;
      s.seq = next_seq_++;
      s.cb = std::move(cb);
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      Slot& s = slots_.emplace_back();
      s.when = when;
      s.seq = next_seq_++;
      s.gen = 1;
      s.cb = std::move(cb);
    }
    ++live_;
    return Alloc{make_id(slots_[slot].gen, slot), slot};
  }

  /// Decodes `id`; returns its slot if the event is still live, else kNoSlot.
  [[nodiscard]] std::uint32_t slot_if_live(EventId id) const {
    const std::uint32_t slot = slot_of(id);
    if (slot >= slots_.size() || slots_[slot].gen != gen_of(id)) return kNoSlot;
    return slot;
  }

  /// Moves the callback out of a live slot (dispatch path). The slot still
  /// counts as live until release().
  [[nodiscard]] Callback take(std::uint32_t slot) {
    return std::move(slots_[slot].cb);
  }

  /// Frees a live slot: bumps its generation (invalidating outstanding ids),
  /// drops the callback so captured state is destroyed promptly, and
  /// recycles the slot.
  void release(std::uint32_t slot) {
    assert(live_ > 0);
    Slot& s = slots_[slot];
    ++s.gen;
    s.cb = nullptr;
    free_.push_back(slot);
    --live_;
  }

  [[nodiscard]] SimTime when(std::uint32_t slot) const {
    return slots_[slot].when;
  }
  [[nodiscard]] std::uint64_t seq(std::uint32_t slot) const {
    return slots_[slot].seq;
  }
  [[nodiscard]] std::uint32_t gen(std::uint32_t slot) const {
    return slots_[slot].gen;
  }
  [[nodiscard]] EventId id_at(std::uint32_t slot) const {
    return make_id(slots_[slot].gen, slot);
  }

  /// Backend scratch byte (the timing wheel records which structure holds
  /// the event so cancel knows whether an eager erase is needed). Living
  /// inside the record keeps the update on the line allocate() just wrote.
  [[nodiscard]] std::uint8_t& loc(std::uint32_t slot) {
    return slots_[slot].loc;
  }
  [[nodiscard]] std::uint8_t loc(std::uint32_t slot) const {
    return slots_[slot].loc;
  }

  /// Live (allocated, not yet released) events.
  [[nodiscard]] std::size_t live() const noexcept { return live_; }

  /// Total slots ever allocated (live + recyclable). Backends size their
  /// per-slot side tables off this.
  [[nodiscard]] std::size_t slots() const noexcept { return slots_.size(); }

  /// Releases everything. Generations survive (bumped for every slot), so
  /// ids issued before clear() still fail validation rather than aliasing.
  void clear() {
    free_.clear();
    for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
      ++slots_[slot].gen;
      slots_[slot].cb = nullptr;
      free_.push_back(slot);
    }
    live_ = 0;
  }

  static constexpr std::uint32_t slot_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id & 0xffffffffu);
  }
  static constexpr std::uint32_t gen_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }

 private:
  struct Slot {
    SimTime when = 0;
    std::uint64_t seq = 0;  // global FIFO tie-break at equal times
    std::uint32_t gen = 0;
    std::uint8_t loc = 0;   // backend scratch: which structure holds it
    Callback cb;
  };

  static constexpr EventId make_id(std::uint32_t gen, std::uint32_t slot) noexcept {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace spothost::sim
