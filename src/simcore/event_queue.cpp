#include "simcore/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "simcore/timing_wheel.hpp"

namespace spothost::sim {

const char* to_string(QueueBackend backend) noexcept {
  switch (backend) {
    case QueueBackend::kTimingWheel:
      return "wheel";
    case QueueBackend::kBinaryHeap:
      return "heap";
  }
  return "?";
}

QueueBackend default_queue_backend() {
  // Plain getenv (not the exec layer's helpers): simcore sits below exec in
  // the dependency order.
  const char* value = std::getenv("SPOTHOST_EVENT_QUEUE");
  if (value == nullptr || *value == '\0') return QueueBackend::kTimingWheel;
  if (std::strcmp(value, "wheel") == 0) return QueueBackend::kTimingWheel;
  if (std::strcmp(value, "heap") == 0) return QueueBackend::kBinaryHeap;
  static bool warned = false;
  if (!warned) {
    warned = true;
    std::fprintf(stderr,
                 "spothost: ignoring unrecognised SPOTHOST_EVENT_QUEUE=%s "
                 "(expected \"wheel\" or \"heap\"); using wheel\n",
                 value);
  }
  return QueueBackend::kTimingWheel;
}

std::unique_ptr<EventQueue> make_event_queue(QueueBackend backend) {
  switch (backend) {
    case QueueBackend::kBinaryHeap:
      return std::make_unique<BinaryHeapQueue>();
    case QueueBackend::kTimingWheel:
      break;
  }
  return std::make_unique<TimingWheelQueue>();
}

namespace {
// Below this heap size a rebuild costs more than the stale entries do.
constexpr std::size_t kCompactFloor = 64;
}  // namespace

EventId BinaryHeapQueue::schedule(SimTime when, Callback cb) {
  const EventArena::Alloc alloc = arena_.allocate(when, std::move(cb));
  heap_.push_back(
      Entry{when, arena_.seq(alloc.slot), alloc.slot, arena_.gen(alloc.slot)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return alloc.id;
}

bool BinaryHeapQueue::cancel(EventId id) {
  const std::uint32_t slot = arena_.slot_if_live(id);
  if (slot == EventArena::kNoSlot) return false;
  arena_.release(slot);
  compact_if_stale();
  return true;
}

void BinaryHeapQueue::compact_if_stale() {
  if (heap_.size() < kCompactFloor || heap_.size() <= 2 * arena_.live()) return;
  std::erase_if(heap_, [this](const Entry& e) { return stale(e); });
  // Same comparator as the incremental pushes, so pop order — and therefore
  // simulation determinism — is unchanged.
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

void BinaryHeapQueue::skim() const {
  while (!heap_.empty() && stale(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

SimTime BinaryHeapQueue::next_time() const {
  skim();
  assert(!heap_.empty());
  return heap_.front().time;
}

EventQueue::Fired BinaryHeapQueue::pop() {
  skim();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry top = heap_.back();
  heap_.pop_back();
  Fired fired{top.time, arena_.id_at(top.slot), arena_.take(top.slot)};
  arena_.release(top.slot);
  return fired;
}

bool BinaryHeapQueue::pop_due(SimTime horizon, Fired& out) {
  skim();
  if (heap_.empty() || heap_.front().time > horizon) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry top = heap_.back();
  heap_.pop_back();
  out.time = top.time;
  out.id = arena_.id_at(top.slot);
  out.callback = arena_.take(top.slot);
  arena_.release(top.slot);
  return true;
}

void BinaryHeapQueue::clear() {
  heap_.clear();
  arena_.clear();
}

}  // namespace spothost::sim
