#include "simcore/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace spothost::sim {

namespace {
// Below this heap size a rebuild costs more than the stale entries do.
constexpr std::size_t kCompactFloor = 64;
}  // namespace

EventId EventQueue::schedule(SimTime when, Callback cb) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{when, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  callbacks_.emplace(id, std::move(cb));
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  assert(live_count_ > 0);
  --live_count_;
  compact_if_stale();
  return true;
}

void EventQueue::compact_if_stale() {
  if (heap_.size() < kCompactFloor || heap_.size() <= 2 * live_count_) return;
  std::erase_if(heap_, [this](const Entry& e) {
    return callbacks_.find(e.id) == callbacks_.end();
  });
  // Same comparator as the incremental pushes, so pop order — and therefore
  // simulation determinism — is unchanged.
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::skim() const {
  while (!heap_.empty() &&
         callbacks_.find(heap_.front().id) == callbacks_.end()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() const {
  skim();
  assert(!heap_.empty());
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  skim();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry top = heap_.back();
  heap_.pop_back();
  auto it = callbacks_.find(top.id);
  assert(it != callbacks_.end());
  Fired fired{top.time, top.id, std::move(it->second)};
  callbacks_.erase(it);
  --live_count_;
  return fired;
}

void EventQueue::clear() {
  heap_.clear();
  callbacks_.clear();
  live_count_ = 0;
}

}  // namespace spothost::sim
