#include "simcore/event_queue.hpp"

#include <cassert>
#include <utility>

namespace spothost::sim {

EventId EventQueue::schedule(SimTime when, Callback cb) {
  const EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  assert(live_count_ > 0);
  --live_count_;
  return true;
}

void EventQueue::skim() const {
  while (!heap_.empty() && callbacks_.find(heap_.top().id) == callbacks_.end()) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  skim();
  assert(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  skim();
  assert(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.id);
  assert(it != callbacks_.end());
  Fired fired{top.time, top.id, std::move(it->second)};
  callbacks_.erase(it);
  --live_count_;
  return fired;
}

void EventQueue::clear() {
  heap_ = {};
  callbacks_.clear();
  live_count_ = 0;
}

}  // namespace spothost::sim
