// Cancellable discrete-event queue.
//
// Events at equal timestamps fire in scheduling order (FIFO), which keeps
// simulations deterministic regardless of heap internals. Cancellation is
// lazy: cancelled entries stay in the heap and are skipped on pop, so both
// schedule and cancel are O(log n) amortised. When cancelled entries come to
// outnumber live ones (long fleet runs with proactive bidding accumulate
// cancelled switchover/hour-tick events faster than they pop), the heap is
// compacted in one O(n) rebuild, bounding memory at ~2x the live count.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "simcore/time.hpp"

namespace spothost::sim {

/// Opaque identifier for a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

/// Sentinel returned for operations that never produce a real event.
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Enqueues `cb` to fire at absolute time `when`. Returns a cancellation id.
  EventId schedule(SimTime when, Callback cb);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_count_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Timestamp of the earliest live event. Precondition: !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest live event. Precondition: !empty().
  struct Fired {
    SimTime time;
    EventId id;
    Callback callback;
  };
  Fired pop();

  /// Drops all pending events.
  void clear();

  /// Total heap entries, live + cancelled-but-not-yet-dropped. Exposed so
  /// tests can assert compaction keeps this bounded relative to size().
  [[nodiscard]] std::size_t heap_entries() const noexcept { return heap_.size(); }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Pops cancelled entries off the heap top.
  void skim() const;
  // Rebuilds the heap without cancelled entries once they exceed the live
  // count (above a small floor, so tiny queues never pay for a rebuild).
  void compact_if_stale();

  // Max-heap under Later (= earliest event at front), maintained with
  // std::push_heap/pop_heap; a plain vector so compaction can erase stale
  // entries in place. Mutable: skim() drops dead entries from const reads.
  mutable std::vector<Entry> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::size_t live_count_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
};

}  // namespace spothost::sim
