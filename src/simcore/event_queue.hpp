// Cancellable discrete-event queue.
//
// Events at equal timestamps fire in scheduling order (FIFO), which keeps
// simulations deterministic regardless of heap internals. Cancellation is
// lazy: cancelled entries stay in the heap and are skipped on pop, so both
// schedule and cancel are O(log n) amortised.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "simcore/time.hpp"

namespace spothost::sim {

/// Opaque identifier for a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

/// Sentinel returned for operations that never produce a real event.
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Enqueues `cb` to fire at absolute time `when`. Returns a cancellation id.
  EventId schedule(SimTime when, Callback cb);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_count_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Timestamp of the earliest live event. Precondition: !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest live event. Precondition: !empty().
  struct Fired {
    SimTime time;
    EventId id;
    Callback callback;
  };
  Fired pop();

  /// Drops all pending events.
  void clear();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Pops cancelled entries off the heap top.
  void skim() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::size_t live_count_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
};

}  // namespace spothost::sim
