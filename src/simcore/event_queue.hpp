// Cancellable discrete-event queue: the backend seam.
//
// EventQueue is the abstract contract the Simulation drives; two backends
// implement it over the shared EventArena slab (simcore/event_arena.hpp):
//
//   * TimingWheelQueue (simcore/timing_wheel.hpp) — hierarchical timing
//     wheel, O(1) schedule/cancel/pop for the massively periodic hour-tick
//     and poll events that dominate fleet runs. The default.
//   * BinaryHeapQueue (below) — the classic O(log n) heap. Kept as the
//     differential-testing oracle and as a fallback.
//
// Determinism contract (both backends, enforced by the differential fuzz
// test in tests/simcore): events pop in (time, schedule order) — FIFO among
// equal timestamps — so same-seed runs are byte-identical regardless of
// backend, and the wheel can be the default without re-pinning goldens.
//
// Select a backend per-Simulation via the constructor, or process-wide with
// SPOTHOST_EVENT_QUEUE=wheel|heap (read by default_queue_backend()).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "simcore/clock.hpp"
#include "simcore/event_arena.hpp"
#include "simcore/time.hpp"

namespace spothost::sim {

/// Which EventQueue implementation backs a Simulation.
enum class QueueBackend : std::uint8_t {
  kTimingWheel,  ///< hierarchical timing wheel (default)
  kBinaryHeap,   ///< binary heap oracle
};

[[nodiscard]] const char* to_string(QueueBackend backend) noexcept;

/// The process-wide default: SPOTHOST_EVENT_QUEUE=wheel|heap if set (an
/// unrecognised value warns on stderr once and falls through), else the
/// timing wheel.
[[nodiscard]] QueueBackend default_queue_backend();

class EventQueue {
 public:
  using Callback = sim::Callback;  // simcore/callback.hpp, via clock.hpp

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  virtual ~EventQueue() = default;

  /// Enqueues `cb` to fire at absolute time `when`. Returns a cancellation
  /// id. Backends may require monotone scheduling (when >= the time of the
  /// last pop); the Simulation's now() guard guarantees it.
  virtual EventId schedule(SimTime when, Callback cb) = 0;

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed.
  virtual bool cancel(EventId id) = 0;

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] virtual bool empty() const = 0;

  /// Number of live events.
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Timestamp of the earliest live event. Precondition: !empty().
  [[nodiscard]] virtual SimTime next_time() const = 0;

  /// Removes and returns the earliest live event. The callback is *moved*
  /// out of storage — dispatch never copies a callable.
  /// Precondition: !empty().
  struct Fired {
    SimTime time;
    EventId id;
    Callback callback;
  };
  virtual Fired pop() = 0;

  /// Fused peek-and-pop, the dispatch loop's fast path: when the earliest
  /// live event fires at or before `horizon`, pops it into `out` and
  /// returns true; otherwise returns false with `out` untouched. One
  /// virtual call per dispatched event instead of three (empty / next_time
  /// / pop), and backends skip the duplicated find-the-earliest work.
  virtual bool pop_due(SimTime horizon, Fired& out) {
    if (empty() || next_time() > horizon) return false;
    out = pop();
    return true;
  }

  /// Drops all pending events. Ids issued before clear() stay invalid.
  virtual void clear() = 0;

  [[nodiscard]] virtual QueueBackend backend() const noexcept = 0;
};

/// Constructs the requested backend.
[[nodiscard]] std::unique_ptr<EventQueue> make_event_queue(QueueBackend backend);

/// Binary-heap backend. Events at equal timestamps fire in scheduling order
/// (FIFO) via a global sequence tie-break. Cancellation is O(1) in the arena
/// but lazy in the heap: cancelled entries stay until skimmed on pop. When
/// cancelled entries come to outnumber live ones (long fleet runs with
/// proactive bidding accumulate cancelled switchover/hour-tick events faster
/// than they pop), the heap is compacted in one O(n) rebuild, bounding
/// memory at ~2x the live count.
class BinaryHeapQueue final : public EventQueue {
 public:
  EventId schedule(SimTime when, Callback cb) override;
  bool cancel(EventId id) override;
  [[nodiscard]] bool empty() const override { return arena_.live() == 0; }
  [[nodiscard]] std::size_t size() const override { return arena_.live(); }
  [[nodiscard]] SimTime next_time() const override;
  Fired pop() override;
  bool pop_due(SimTime horizon, Fired& out) override;
  void clear() override;
  [[nodiscard]] QueueBackend backend() const noexcept override {
    return QueueBackend::kBinaryHeap;
  }

  /// Total heap entries, live + cancelled-but-not-yet-dropped. Exposed so
  /// tests can assert compaction keeps this bounded relative to size().
  [[nodiscard]] std::size_t heap_entries() const noexcept { return heap_.size(); }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::uint32_t slot;
    std::uint32_t gen;  // entry is stale once the arena generation moves on
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] bool stale(const Entry& e) const {
    return arena_.gen(e.slot) != e.gen;
  }
  // Pops cancelled entries off the heap top.
  void skim() const;
  // Rebuilds the heap without cancelled entries once they exceed the live
  // count (above a small floor, so tiny queues never pay for a rebuild).
  void compact_if_stale();

  // Max-heap under Later (= earliest event at front), maintained with
  // std::push_heap/pop_heap; a plain vector so compaction can erase stale
  // entries in place. Mutable: skim() drops dead entries from const reads.
  mutable std::vector<Entry> heap_;
  EventArena arena_;
};

}  // namespace spothost::sim
