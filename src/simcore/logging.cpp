#include "simcore/logging.hpp"

#include <iostream>

namespace spothost::sim {

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger::Logger() {
  set_sink(nullptr);
}

Logger& Logger::global() {
  static Logger instance;
  return instance;
}

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, const std::string& msg) {
      std::cerr << "[" << to_string(level) << "] " << msg << '\n';
    };
  }
}

void Logger::log(LogLevel level, SimTime when, const std::string& message) {
  if (!enabled(level)) return;
  sink_(level, format_time(when) + " " + message);
}

}  // namespace spothost::sim
