// Minimal leveled logger for simulation traces.
//
// Experiments run thousands of simulations, so logging must cost nothing when
// disabled: callers check `enabled(level)` (or use the SPOTHOST_LOG macro)
// before formatting. The default sink is stderr; tests can capture via
// set_sink().
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "simcore/time.hpp"

namespace spothost::sim {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

const char* to_string(LogLevel level) noexcept;

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Global logger used by the library.
  static Logger& global();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept { return level >= level_; }

  /// Replaces the sink (default: stderr). Pass nullptr to restore default.
  void set_sink(Sink sink);

  /// Emits one record; `when` is the simulation timestamp for the prefix.
  void log(LogLevel level, SimTime when, const std::string& message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

}  // namespace spothost::sim

/// Log with lazy formatting: the stream expression is evaluated only when the
/// level is enabled. `sim_now` is a SimTime.
#define SPOTHOST_LOG(level, sim_now, expr)                                          \
  do {                                                                              \
    auto& spothost_logger_ = ::spothost::sim::Logger::global();                     \
    if (spothost_logger_.enabled(level)) {                                          \
      std::ostringstream spothost_oss_;                                             \
      spothost_oss_ << expr;                                                        \
      spothost_logger_.log(level, (sim_now), spothost_oss_.str());                  \
    }                                                                               \
  } while (0)
