#include "simcore/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace spothost::sim {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001B3ULL;
  }
  return h;
}

double RngStream::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double RngStream::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("exponential: mean must be > 0");
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

double RngStream::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

double RngStream::lognormal_mean_cv(double mean, double cv) {
  if (mean <= 0 || cv < 0) {
    throw std::invalid_argument("lognormal_mean_cv: mean must be > 0 and cv >= 0");
  }
  if (cv == 0) return mean;
  // If X ~ LogNormal(mu, sigma): E[X] = exp(mu + sigma^2/2),
  // CV[X]^2 = exp(sigma^2) - 1. Invert for (mu, sigma).
  const double sigma2 = std::log1p(cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  std::lognormal_distribution<double> d(mu, std::sqrt(sigma2));
  return d(engine_);
}

double RngStream::pareto(double x_m, double alpha) {
  if (x_m <= 0 || alpha <= 0) {
    throw std::invalid_argument("pareto: x_m and alpha must be > 0");
  }
  // Inverse-CDF sampling; guard u away from 0 to avoid infinity.
  std::uniform_real_distribution<double> d(0.0, 1.0);
  double u = d(engine_);
  if (u < 1e-12) u = 1e-12;
  return x_m / std::pow(u, 1.0 / alpha);
}

bool RngStream::chance(double p) {
  std::bernoulli_distribution d(p);
  return d(engine_);
}

RngStream RngFactory::stream(std::string_view name) const {
  std::uint64_t state = master_seed_ ^ fnv1a(name);
  // Two warm-up steps decorrelate nearby master seeds.
  (void)splitmix64(state);
  return RngStream(splitmix64(state));
}

RngStream RngFactory::stream(std::string_view name, std::uint64_t index) const {
  std::uint64_t state = master_seed_ ^ fnv1a(name) ^ (index * 0x9E3779B97F4A7C15ULL);
  (void)splitmix64(state);
  return RngStream(splitmix64(state));
}

}  // namespace spothost::sim
