// Deterministic random-number streams.
//
// Every stochastic component draws from its own named stream derived from the
// experiment's master seed, so adding a component (or reordering draws inside
// one) never perturbs the numbers another component sees. Stream derivation
// uses SplitMix64 over (master_seed, fnv1a(name)).
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace spothost::sim {

/// SplitMix64 step — used for seed derivation, also handy in tests.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// FNV-1a 64-bit hash of a string (stream names).
std::uint64_t fnv1a(std::string_view s) noexcept;

/// A single random stream with the distributions the simulator needs.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal parameterised by the *target* mean and coefficient of
  /// variation (cv = stddev/mean) of the resulting distribution — far easier
  /// to calibrate from measured latency tables than (mu, sigma).
  double lognormal_mean_cv(double mean, double cv);

  /// Pareto with scale x_m > 0 and shape alpha > 0 (heavy-tailed spikes).
  double pareto(double x_m, double alpha);

  /// Bernoulli.
  bool chance(double p);

  /// Raw engine access (for std:: distributions in tests).
  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Derives independent named streams from one master seed.
class RngFactory {
 public:
  explicit RngFactory(std::uint64_t master_seed) : master_seed_(master_seed) {}

  /// Stream for a named component, e.g. "market/us-east-1a/small".
  [[nodiscard]] RngStream stream(std::string_view name) const;

  /// Stream for a named component plus an index (per-run, per-instance, ...).
  [[nodiscard]] RngStream stream(std::string_view name, std::uint64_t index) const;

  [[nodiscard]] std::uint64_t master_seed() const noexcept { return master_seed_; }

 private:
  std::uint64_t master_seed_;
};

}  // namespace spothost::sim
