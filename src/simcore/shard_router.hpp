// ShardRouter: the narrow sharding seam policy code programs against.
//
// The sharded engine (simcore/sharded_sim.hpp) partitions per-service work
// across K shard lanes that advance in parallel between market-event
// barriers. Components above simcore (MarketWatcher, fleets) need exactly
// three things from it: how many shards exist, a per-shard sim::Clock to
// schedule lane-local events on, and a mailbox post to hand a batch of work
// to a shard at a barrier. ShardRouter is that contract — the sharded
// analogue of sim::Clock — so sched code can route work to shards without
// including the concrete engine header (scripts/check_layering.sh enforces
// this, exactly as it does for simulation.hpp).
//
// Threading/determinism contract (see sharded_sim.hpp for the full rules):
//
//  * shard_clock(k) may be used to schedule from the serial phase (setup or
//    a barrier) or from a callback already running on shard k; scheduling on
//    shard k from shard j's window context throws.
//  * post() is serial-phase only. The callback runs on shard k's thread at
//    the start of the next parallel window, at the simulation time of the
//    posting barrier, after every event of the posting timestamp and before
//    any later event. Mailboxes drain in post order — identical delivery
//    order for every shard count, including 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simcore/clock.hpp"

namespace spothost::sim {

class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  /// Number of shard lanes (>= 1).
  [[nodiscard]] virtual std::size_t shard_count() const noexcept = 0;

  /// The scheduling interface of shard `k` (0-based, < shard_count()).
  [[nodiscard]] virtual Clock& shard_clock(std::size_t shard) = 0;

  /// Appends `cb` to shard `k`'s mailbox (deferred delivery, see above).
  virtual void post(std::size_t shard, Callback cb) = 0;

  /// Runs `tasks[k]` on shard k's execution context, all shards in
  /// parallel, and returns when every task has finished (tasks.size() must
  /// equal shard_count(); a null Callback skips that shard). Serial-phase
  /// only — calling from inside a window throws.
  ///
  /// A stage is the read-only complement of post(): tasks are PURE
  /// evaluators that may read their own shard's state plus shared state
  /// frozen for the current timestamp (market prices between steps, const
  /// config), and write only shard-private scratch handed to them by the
  /// caller. They must not schedule, cancel, post, or trace — the sharded
  /// engine throws std::logic_error on any of these, so a run either has
  /// deterministic stages or fails loudly. The caller applies the scratch
  /// results serially after the stage returns, preserving bit-identity
  /// with a serial engine that never staged at all.
  virtual void run_stage(std::vector<Callback> tasks) = 0;
};

/// Deterministic service-id -> shard partition, stable across runs,
/// platforms, and shard counts' common divisors. splitmix64's finalizer
/// avalanches the dense sequential ids real fleets use, so consecutive
/// services land on different shards instead of filling shard 0 first.
[[nodiscard]] constexpr std::size_t shard_of_key(std::uint64_t key,
                                                 std::size_t shards) noexcept {
  key ^= key >> 30;
  key *= 0xbf58476d1ce4e5b9ull;
  key ^= key >> 27;
  key *= 0x94d049bb133111ebull;
  key ^= key >> 31;
  return shards <= 1 ? 0 : static_cast<std::size_t>(key % shards);
}

}  // namespace spothost::sim
