#include "simcore/sharded_sim.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "exec/env.hpp"
#include "exec/thread_pool.hpp"
#include "obs/shard_buffer.hpp"
#include "obs/sink.hpp"
#include "simcore/event_arena.hpp"
#include "simcore/simulation.hpp"

namespace spothost::sim {

namespace {

// The lane whose window callback is executing on THIS thread (nullptr in the
// serial phase). What makes "window callbacks schedule only on their own
// shard" enforceable instead of aspirational: the driving thread participates
// in window batches too, so a phase flag alone cannot tell "the barrier
// thread doing serial work" from "the barrier thread running lane 3's task".
thread_local const void* tl_window_lane = nullptr;

struct WindowLaneScope {
  explicit WindowLaneScope(const void* lane) { tl_window_lane = lane; }
  ~WindowLaneScope() { tl_window_lane = nullptr; }
};

// True while THIS thread runs a run_stage() task. Stage tasks are pure
// evaluators (see shard_router.hpp): unlike window callbacks they may not
// even schedule or cancel on their own lane — a stage has no dispatch log
// entry to attribute children to, and vgs assignment is serial-phase state.
thread_local bool tl_stage_task = false;

struct StageTaskScope {
  StageTaskScope() { tl_stage_task = true; }
  ~StageTaskScope() { tl_stage_task = false; }
};

constexpr SimTime kForever = std::numeric_limits<SimTime>::max();

}  // namespace

struct ShardedSimulation::Lane final : public Clock {
  Lane(ShardedSimulation* engine, std::size_t lane_index, QueueBackend backend)
      : owner(engine),
        index(lane_index),
        queue(make_event_queue(backend)) {
    tracer_obj.add_sink(&sink);
  }

  // Clock — delegates to the owner so every phase rule lives in one place.
  [[nodiscard]] SimTime now() const noexcept override { return now_t; }
  EventHandle at(SimTime when, Callback cb) override {
    return owner->lane_at(*this, when, std::move(cb));
  }
  EventHandle after(SimTime delay, Callback cb) override {
    if (delay < 0) {
      throw std::invalid_argument("ShardedSimulation: negative delay");
    }
    return owner->lane_at(*this, now_t + delay, std::move(cb));
  }
  bool cancel(EventId id) override { return owner->lane_cancel(*this, id); }
  [[nodiscard]] obs::Tracer* tracer() const noexcept override {
    if (owner->downstream_ == nullptr) return nullptr;
    // The global lane's traces always go straight downstream (it only runs
    // in the serial phase); shard lanes emit through the routing buffer.
    if (index == 0) return owner->downstream_;
    return &tracer_obj;
  }
  [[nodiscard]] faults::FaultInjector* fault_injector() const noexcept override {
    return owner->injector_;
  }

  struct Mail {
    SimTime time;        // the posting barrier's time
    std::uint64_t vgs;   // assigned at post — mails ARE schedule ops
    Callback cb;
  };
  // One window dispatch. `self` identifies queue events (vgs looked up in
  // `cells` at merge time); mails carry their vgs directly (self == 0).
  struct LogEntry {
    SimTime time;
    EventId self;
    std::uint64_t mail_vgs;
    std::uint32_t children;
    std::uint32_t traces;
  };
  struct VgsCell {
    std::uint32_t gen = 0;
    std::uint64_t vgs = 0;
  };

  ShardedSimulation* owner;
  std::size_t index;  // 0 = global lane, 1 + k = shard k
  std::unique_ptr<EventQueue> queue;
  SimTime now_t = 0;
  std::uint64_t dispatched = 0;
  // vgs of every pending event, indexed by arena slot. Slot reuse is safe:
  // a cell is (re)written in merge order strictly before any read of the new
  // generation, and generations disambiguate in debug builds.
  std::vector<VgsCell> cells;
  std::vector<LogEntry> log;       // this window's dispatches, lane order
  std::vector<EventId> child_ids;  // this window's schedules, schedule order
  std::vector<Mail> mailbox;
  mutable obs::Tracer tracer_obj;
  obs::ShardTraceBuffer sink;
  double busy_seconds = 0.0;
};

ShardedSimulation::ShardedSimulation(std::size_t shards, QueueBackend backend,
                                     exec::ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &exec::ThreadPool::shared()) {
  if (shards < 1) {
    throw std::invalid_argument("ShardedSimulation: shards must be >= 1");
  }
  lanes_.reserve(shards + 1);
  for (std::size_t i = 0; i <= shards; ++i) {
    lanes_.push_back(std::make_unique<Lane>(this, i, backend));
  }
}

ShardedSimulation::~ShardedSimulation() = default;

SimTime ShardedSimulation::now() const noexcept { return lanes_[0]->now_t; }

EventHandle ShardedSimulation::at(SimTime when, Callback cb) {
  return lane_at(*lanes_[0], when, std::move(cb));
}

EventHandle ShardedSimulation::after(SimTime delay, Callback cb) {
  if (delay < 0) {
    throw std::invalid_argument("ShardedSimulation: negative delay");
  }
  return lane_at(*lanes_[0], lanes_[0]->now_t + delay, std::move(cb));
}

bool ShardedSimulation::cancel(EventId id) {
  return lane_cancel(*lanes_[0], id);
}

obs::Tracer* ShardedSimulation::tracer() const noexcept { return downstream_; }

faults::FaultInjector* ShardedSimulation::fault_injector() const noexcept {
  return injector_;
}

std::uint64_t ShardedSimulation::dispatched() const noexcept {
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) total += lane->dispatched;
  return total;
}

std::size_t ShardedSimulation::pending() const {
  std::size_t total = 0;
  for (const auto& lane : lanes_) {
    total += lane->queue->size() + lane->mailbox.size();
  }
  return total;
}

void ShardedSimulation::set_tracer(obs::Tracer* tracer) noexcept {
  downstream_ = tracer;
  for (auto& lane : lanes_) lane->sink.set_passthrough(tracer);
}

void ShardedSimulation::set_fault_injector(faults::FaultInjector* injector) noexcept {
  injector_ = injector;
}

std::size_t ShardedSimulation::shard_count() const noexcept {
  return lanes_.size() - 1;
}

Clock& ShardedSimulation::shard_clock(std::size_t shard) {
  if (shard >= shard_count()) {
    throw std::out_of_range("ShardedSimulation::shard_clock: bad shard");
  }
  return *lanes_[1 + shard];
}

void ShardedSimulation::post(std::size_t shard, Callback cb) {
  if (shard >= shard_count()) {
    throw std::out_of_range("ShardedSimulation::post: bad shard");
  }
  if (in_window()) {
    throw std::logic_error(
        "ShardedSimulation::post: mailbox posts are serial-phase only "
        "(post from a barrier, not from a window callback)");
  }
  lanes_[1 + shard]->mailbox.push_back(
      Lane::Mail{lanes_[0]->now_t, next_vgs_++, std::move(cb)});
}

void ShardedSimulation::run_stage(std::vector<Callback> tasks) {
  if (in_window()) {
    throw std::logic_error(
        "ShardedSimulation::run_stage: stages are serial-phase only "
        "(run from a barrier, not from a window callback)");
  }
  if (tasks.size() != shard_count()) {
    throw std::invalid_argument(
        "ShardedSimulation::run_stage: one task slot per shard required");
  }
  active_.clear();
  for (std::size_t k = 0; k < tasks.size(); ++k) {
    if (!tasks[k]) continue;
    Lane& lane = *lanes_[1 + k];
    // Lanes lag the global clock between their own events; align so a stage
    // task reading its shard clock sees the barrier time being evaluated.
    lane.now_t = std::max(lane.now_t, lanes_[0]->now_t);
    lane.sink.set_passthrough(nullptr);  // catch illegal traces via buffered()
    active_.push_back(&lane);
  }
  if (active_.empty()) return;
  ++stats_.stages;
  const auto t0 = std::chrono::steady_clock::now();
  auto run_task = [](Lane& lane, Callback& task) {
    WindowLaneScope scope(&lane);
    StageTaskScope stage;
    const auto s0 = std::chrono::steady_clock::now();
    task();
    lane.busy_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - s0)
            .count();
  };
  // Same phase-flag discipline as run_windows: set even for one active lane
  // so stage legality does not depend on how many shards participate.
  in_window_.store(true, std::memory_order_relaxed);
  try {
    if (active_.size() == 1) {
      Lane& lane = *active_.front();
      run_task(lane, tasks[lane.index - 1]);
    } else {
      std::vector<std::function<void()>> batch;
      batch.reserve(active_.size());
      for (Lane* lane : active_) {
        Callback& task = tasks[lane->index - 1];
        batch.emplace_back([&run_task, lane, &task] { run_task(*lane, task); });
      }
      pool_->run_batch(batch);
    }
  } catch (...) {
    in_window_.store(false, std::memory_order_relaxed);
    throw;  // a throwing stage task leaves scratch state torn; fail the run
  }
  in_window_.store(false, std::memory_order_relaxed);
  stats_.window_wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (Lane* lane : active_) {
    const bool traced = lane->sink.buffered() != 0;
    lane->sink.clear_buffered();
    lane->sink.set_passthrough(downstream_);
    if (traced) {
      throw std::logic_error(
          "ShardedSimulation::run_stage: a stage task emitted traces — "
          "stages are pure evaluation and have no merge slot");
    }
  }
  active_.clear();
}

ShardedSimulation::Stats ShardedSimulation::stats() const noexcept {
  Stats s = stats_;
  for (const auto& lane : lanes_) s.lane_busy_seconds += lane->busy_seconds;
  return s;
}

EventHandle ShardedSimulation::lane_at(Lane& lane, SimTime when, Callback cb) {
  if (tl_stage_task) {
    throw std::logic_error(
        "ShardedSimulation: scheduling from a run_stage task (stages are "
        "pure evaluation — schedule from the serial phase afterwards)");
  }
  if (when < lane.now_t) {
    throw std::invalid_argument("ShardedSimulation: scheduling in the past");
  }
  if (in_window()) {
    if (tl_window_lane != &lane) {
      throw std::logic_error(
          lane.index == 0
              ? "ShardedSimulation: global-lane scheduling from a parallel "
                "window (cross-shard work must move via post() at a barrier)"
              : "ShardedSimulation: cross-shard scheduling from a parallel "
                "window (a callback may only schedule on its own shard)");
    }
    const EventId id = lane.queue->schedule(when, std::move(cb));
    lane.child_ids.push_back(id);
    ++lane.log.back().children;
    return EventHandle{&lane, id};
  }
  const EventId id = lane.queue->schedule(when, std::move(cb));
  assign_vgs(lane, id, next_vgs_++);
  return EventHandle{&lane, id};
}

bool ShardedSimulation::lane_cancel(Lane& lane, EventId id) {
  if (tl_stage_task) {
    throw std::logic_error(
        "ShardedSimulation: cancel from a run_stage task (stages are pure "
        "evaluation — cancel from the serial phase afterwards)");
  }
  if (in_window() && tl_window_lane != &lane) {
    throw std::logic_error(
        "ShardedSimulation: cross-shard cancel from a parallel window");
  }
  if (lane.queue->cancel(id)) return true;
  // Barrier step: run_time pops every event due at the barrier time before
  // running any of them, but the serial engine pops one at a time — so a
  // callback canceling a same-tick event that has not yet fired must still
  // suppress it. Staged-but-not-run entries (strictly after staged_exec_i_)
  // are exactly those events; entries at or before it already fired, where
  // the serial cancel fails too. staged_ is empty outside the barrier step.
  for (std::size_t i = staged_exec_i_ + 1; i < staged_.size(); ++i) {
    Staged& s = staged_[i];
    if (s.lane == &lane && s.id == id && !s.canceled) {
      s.canceled = true;
      return true;
    }
  }
  return false;
}

void ShardedSimulation::assign_vgs(Lane& lane, EventId id, std::uint64_t vgs) {
  const std::uint32_t slot = EventArena::slot_of(id);
  if (slot >= lane.cells.size()) lane.cells.resize(slot + 1);
  lane.cells[slot] = Lane::VgsCell{EventArena::gen_of(id), vgs};
}

std::uint64_t ShardedSimulation::vgs_of(const Lane& lane, EventId id) const {
  // Checked unconditionally (this sits on the serial merge path, not the
  // parallel hot loop): an event reaching dispatch with no vgs assigned
  // must fail diagnosably, not reorder events on a garbage sequence number.
  const std::uint32_t slot = EventArena::slot_of(id);
  if (slot >= lane.cells.size() ||
      lane.cells[slot].gen != EventArena::gen_of(id)) {
    throw std::logic_error(
        "ShardedSimulation::vgs_of: cell read before assignment — "
        "merge-order invariant broken");
  }
  return lane.cells[slot].vgs;
}

// One shard's slice of a parallel window: deliver the mailbox (post order —
// mail times precede every remaining queue event), then drain lane events
// strictly below the barrier. Runs on a pool thread (or the driver via
// run_batch participation); touches only this lane.
void ShardedSimulation::run_window_lane(Lane& lane, SimTime barrier) {
  WindowLaneScope scope(&lane);
  const auto t0 = std::chrono::steady_clock::now();
  for (Lane::Mail& mail : lane.mailbox) {
    lane.now_t = mail.time;
    ++lane.dispatched;
    lane.log.push_back(Lane::LogEntry{mail.time, kInvalidEventId, mail.vgs, 0, 0});
    const std::size_t before = lane.sink.buffered();
    mail.cb();
    lane.log.back().traces =
        static_cast<std::uint32_t>(lane.sink.buffered() - before);
  }
  lane.mailbox.clear();
  EventQueue::Fired fired;
  while (lane.queue->pop_due(barrier - 1, fired)) {
    lane.now_t = fired.time;
    ++lane.dispatched;
    lane.log.push_back(Lane::LogEntry{fired.time, fired.id, 0, 0, 0});
    const std::size_t before = lane.sink.buffered();
    fired.callback();
    lane.log.back().traces =
        static_cast<std::uint32_t>(lane.sink.buffered() - before);
  }
  lane.busy_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

void ShardedSimulation::run_windows(SimTime barrier) {
  active_.clear();
  for (std::size_t k = 1; k < lanes_.size(); ++k) {
    Lane& lane = *lanes_[k];
    if (!lane.mailbox.empty() ||
        (!lane.queue->empty() && lane.queue->next_time() < barrier)) {
      active_.push_back(&lane);
    }
  }
  if (active_.empty()) return;
  ++stats_.windows;
  const auto t0 = std::chrono::steady_clock::now();
  // Buffer shard traces for the deterministic merge; the global lane never
  // dispatches inside a window, so its passthrough is irrelevant here.
  for (Lane* lane : active_) lane->sink.set_passthrough(nullptr);
  // The phase flag is set even when only one shard has work (the window then
  // runs inline, skipping the pool handshake): the scheduling rules must not
  // depend on how many shards happen to be busy, or a policy bug would throw
  // under one shard count and pass under another.
  in_window_.store(true, std::memory_order_relaxed);
  try {
    if (active_.size() == 1) {
      run_window_lane(*active_.front(), barrier);
    } else {
      std::vector<std::function<void()>> tasks;
      tasks.reserve(active_.size());
      for (Lane* lane : active_) {
        tasks.emplace_back(
            [this, lane, barrier] { run_window_lane(*lane, barrier); });
      }
      pool_->run_batch(tasks);
    }
  } catch (...) {
    in_window_.store(false, std::memory_order_relaxed);
    throw;  // engine state is torn mid-window; the run is unrecoverable
  }
  in_window_.store(false, std::memory_order_relaxed);
  stats_.window_wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (Lane* lane : active_) lane->sink.set_passthrough(downstream_);
  merge_windows();
}

// Serial k-way walk over the lane dispatch logs in (time, vgs) order — which
// is exactly the order the serial engine would have dispatched — assigning
// each dispatch's children the next virtual global sequence numbers and
// splicing its trace slice downstream. Per-lane invariant making this a
// plain merge: a log is sorted by (time, vgs), and an entry's vgs is always
// assigned before the entry reaches the head of its lane (its parent, if
// windowed, precedes it in the same lane's log).
void ShardedSimulation::merge_windows() {
  struct Cursor {
    std::size_t log_i = 0;
    std::size_t child_i = 0;
    std::size_t trace_i = 0;
  };
  // Lane 0 never logs; cursor slot kept for index symmetry.
  std::vector<Cursor> cur(lanes_.size());
  for (;;) {
    Lane* best = nullptr;
    std::uint64_t best_vgs = 0;
    SimTime best_time = 0;
    for (std::size_t k = 1; k < lanes_.size(); ++k) {
      Lane& lane = *lanes_[k];
      const Cursor& c = cur[k];
      if (c.log_i >= lane.log.size()) continue;
      const Lane::LogEntry& e = lane.log[c.log_i];
      const std::uint64_t v =
          e.self != kInvalidEventId ? vgs_of(lane, e.self) : e.mail_vgs;
      if (best == nullptr || e.time < best_time ||
          (e.time == best_time && v < best_vgs)) {
        best = &lane;
        best_time = e.time;
        best_vgs = v;
      }
    }
    if (best == nullptr) break;
    Cursor& c = cur[best->index];
    const Lane::LogEntry& e = best->log[c.log_i++];
    ++stats_.merged;
    if (downstream_ != nullptr && e.traces > 0) {
      best->sink.splice_to(*downstream_, c.trace_i, e.traces);
    }
    c.trace_i += e.traces;
    for (std::uint32_t j = 0; j < e.children; ++j) {
      assign_vgs(*best, best->child_ids[c.child_i++], next_vgs_++);
    }
  }
  for (auto& lane : lanes_) {
    lane->log.clear();
    lane->child_ids.clear();
    lane->sink.clear_buffered();
  }
}

// Executes every event at exactly time `t`, across all lanes, serially on
// the driving thread in vgs order. Zero-delay children scheduled during the
// step join later rounds; their vgs is necessarily larger than anything
// already staged, so round order preserves global order.
void ShardedSimulation::run_time(SimTime t) {
  bool any = false;
  for (;;) {
    staged_.clear();
    for (auto& lane_ptr : lanes_) {
      Lane& lane = *lane_ptr;
      EventQueue::Fired fired;
      while (lane.queue->pop_due(t, fired)) {
        staged_.push_back(Staged{vgs_of(lane, fired.id), fired.id, &lane,
                                 std::move(fired.callback), false});
      }
    }
    if (staged_.empty()) break;
    any = true;
    if (staged_.size() > 1) {
      std::sort(staged_.begin(), staged_.end(),
                [](const Staged& a, const Staged& b) { return a.vgs < b.vgs; });
    }
    for (std::size_t i = 0; i < staged_.size(); ++i) {
      staged_exec_i_ = i;
      Staged& s = staged_[i];
      if (s.canceled) continue;  // suppressed by an earlier same-tick event
      s.lane->now_t = t;
      ++s.lane->dispatched;
      s.cb();
    }
  }
  staged_.clear();
  if (any) ++stats_.barrier_steps;
  // Every lane reaches the barrier time — except under the run-forever
  // sentinel, where the contract is "clock stops at the last event".
  if (t == kForever) return;
  for (auto& lane : lanes_) lane->now_t = std::max(lane->now_t, t);
}

void ShardedSimulation::run_until(SimTime horizon) {
  for (;;) {
    // Pending mails are due at their posting time; they force a window
    // before the next barrier (unless the horizon stops short of them).
    bool mails = false;
    for (std::size_t k = 1; k < lanes_.size(); ++k) {
      const auto& box = lanes_[k]->mailbox;
      if (!box.empty() && box.front().time <= horizon) {
        mails = true;
        break;
      }
    }
    SimTime t_shard = kForever;
    for (std::size_t k = 1; k < lanes_.size(); ++k) {
      const auto& queue = *lanes_[k]->queue;
      if (!queue.empty()) t_shard = std::min(t_shard, queue.next_time());
    }
    const SimTime t_global =
        lanes_[0]->queue->empty() ? kForever : lanes_[0]->queue->next_time();
    const SimTime t_next = std::min(t_shard, t_global);
    // Done when every queue is drained (t_next is the kForever sentinel —
    // which never compares past a kForever horizon) or past the horizon.
    if (!mails && (t_next == kForever || t_next > horizon)) break;
    // The next barrier: the next global (market) event, horizon-capped.
    const SimTime barrier = std::min(t_global, horizon);
    if (mails || t_shard < barrier) run_windows(barrier);
    run_time(barrier);
  }
  if (horizon != kForever) {
    for (auto& lane : lanes_) lane->now_t = std::max(lane->now_t, horizon);
  } else {
    // run(): the serial engine's single clock stops at the last dispatched
    // event; align every lane to that maximum so now() agrees.
    SimTime last = 0;
    for (const auto& lane : lanes_) last = std::max(last, lane->now_t);
    for (auto& lane : lanes_) lane->now_t = last;
  }
}

std::size_t default_shard_count() {
  const auto hw = static_cast<long long>(
      std::max(1u, std::thread::hardware_concurrency()));
  const long long value = exec::env_int("SPOTHOST_SHARDS", 1, 1, 4096);
  if (value > hw) {
    // Engines are built concurrently from SweepRunner pool threads; the
    // warn-once latch must be a synchronized one, not a plain static bool.
    static std::once_flag warned;
    std::call_once(warned, [value, hw] {
      std::fprintf(stderr,
                   "spothost: clamping SPOTHOST_SHARDS=%lld to hardware "
                   "concurrency %lld\n",
                   value, hw);
    });
    return static_cast<std::size_t>(hw);
  }
  return static_cast<std::size_t>(value);
}

std::unique_ptr<Engine> make_simulation_engine(std::size_t shards) {
  if (shards == 0) shards = default_shard_count();
  if (shards == 1) return std::make_unique<Simulation>();
  return std::make_unique<ShardedSimulation>(shards);
}

}  // namespace spothost::sim
