// ShardedSimulation: multi-core execution of ONE simulation run, with
// bit-identity to the serial engine.
//
// The engine owns K + 1 event lanes: one *global* lane (the engine's own
// Clock — markets, provider, billing, anything with cross-shard reach) and K
// *shard* lanes (per-service work partitioned by shard_of_key). Lanes have
// their own EventQueue (wheel or heap, the PR 6 seam), their own clock, and
// their own trace buffer, so between barriers they share no mutable state
// and advance in parallel on the exec::ThreadPool. The run loop alternates:
//
//   window  — every shard drains its mailbox, then pops its own events
//             strictly below the next barrier time, in parallel, buffering
//             traces per lane;  then a serial merge (below) restores the
//             global order;
//   barrier — ALL events at exactly the barrier time (any lane, plus
//             zero-delay children) execute serially on the driving thread
//             in global order. Barrier times are the global lane's event
//             times — price steps, billing ticks, revocation warnings — the
//             only cross-shard couplings, exactly the decomposition the
//             paper's market structure allows.
//
// Bit-identity (the non-negotiable contract) works by *virtual global
// sequence* (vgs) reconstruction. The serial engine orders same-time events
// by schedule order — a single counter. Here every schedule op is assigned
// the value that counter would have had: serial-phase schedules take
// next_vgs_++ directly; window schedules are lane-local and merely logged
// (each lane records its dispatches: time, event, #children, #traces).
// At the merge, a k-way walk over the lane logs in (time, vgs) order —
// which IS the serial dispatch order — assigns children next_vgs_++ exactly
// where the serial run would have, and splices each dispatch's trace slice
// downstream. Induction over barriers gives: vgs == serial sequence, hence
// pop order, trace order, and bytes identical for every shard count,
// including the degenerate K with everything on the global lane (how
// sched::World runs today — see DESIGN.md "Sharded execution" for what may
// move onto shard lanes and why the provider stays global).
//
// Determinism rules for shard-safe callbacks (enforced where cheap):
//  * a window callback on shard k may touch only shard-k state and
//    read-only shared state (e.g. the const-thread-safe MarketTraceSet);
//  * window callbacks schedule/cancel only via their own shard's clock —
//    cross-shard or global-lane scheduling from a window throws;
//  * cross-shard work moves at barriers, via ShardRouter::post (serial
//    phase only; delivery at the head of the next window, in post order —
//    the same order for every K);
//  * fault-injection draws and RNG streams shared across shards are
//    serial-phase only (lane-private streams are fine).
//
// Select it with SPOTHOST_SHARDS=K (validated, clamped to hardware
// concurrency) or Scenario::shards / make_simulation_engine(K). Default is
// 1 = the plain serial Simulation, byte-transparent.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "simcore/engine.hpp"
#include "simcore/event_queue.hpp"
#include "simcore/shard_router.hpp"
#include "simcore/time.hpp"

namespace spothost::exec {
class ThreadPool;  // exec/thread_pool.hpp — window execution
}

namespace spothost::sim {

class ShardedSimulation final : public Engine, public ShardRouter {
 public:
  /// `shards` >= 1 shard lanes plus the global lane, all on `backend`
  /// queues. `pool` runs the windows (nullptr = exec::ThreadPool::shared());
  /// fewer workers than shards is fine — the driving thread participates.
  explicit ShardedSimulation(std::size_t shards,
                             QueueBackend backend = default_queue_backend(),
                             exec::ThreadPool* pool = nullptr);
  ~ShardedSimulation() override;

  // Clock (the GLOBAL lane; serial phase only — scheduling here from a
  // parallel window throws std::logic_error).
  [[nodiscard]] SimTime now() const noexcept override;
  EventHandle at(SimTime when, Callback cb) override;
  EventHandle after(SimTime delay, Callback cb) override;
  bool cancel(EventId id) override;
  [[nodiscard]] obs::Tracer* tracer() const noexcept override;
  [[nodiscard]] faults::FaultInjector* fault_injector() const noexcept override;

  // Engine.
  void run_until(SimTime horizon) override;
  [[nodiscard]] std::uint64_t dispatched() const noexcept override;
  [[nodiscard]] std::size_t pending() const override;
  void set_tracer(obs::Tracer* tracer) noexcept override;
  void set_fault_injector(faults::FaultInjector* injector) noexcept override;

  // ShardRouter.
  [[nodiscard]] std::size_t shard_count() const noexcept override;
  [[nodiscard]] Clock& shard_clock(std::size_t shard) override;
  void post(std::size_t shard, Callback cb) override;
  void run_stage(std::vector<Callback> tasks) override;

  /// Execution counters for the bench harness (real time, not sim state —
  /// never feeds back into event order).
  struct Stats {
    std::uint64_t windows = 0;        ///< parallel windows run
    std::uint64_t barrier_steps = 0;  ///< serially executed timestamps
    std::uint64_t merged = 0;         ///< window dispatches merged
    std::uint64_t stages = 0;         ///< parallel run_stage() evaluations
    double window_wall_seconds = 0.0; ///< driver wall time inside windows
    double lane_busy_seconds = 0.0;   ///< summed per-lane work in windows
    /// Fraction of window capacity (K lanes x wall) spent waiting at the
    /// barrier rather than dispatching — the Amdahl term the bench reports.
    [[nodiscard]] double barrier_stall(std::size_t shards) const noexcept {
      const double cap = window_wall_seconds * static_cast<double>(shards);
      return cap > 0.0 ? 1.0 - lane_busy_seconds / cap : 0.0;
    }
  };
  [[nodiscard]] Stats stats() const noexcept;

 private:
  struct Lane;  // defined in sharded_sim.cpp (owns queue/log/trace buffer)

  EventHandle lane_at(Lane& lane, SimTime when, Callback cb);
  bool lane_cancel(Lane& lane, EventId id);
  void assign_vgs(Lane& lane, EventId id, std::uint64_t vgs);
  [[nodiscard]] std::uint64_t vgs_of(const Lane& lane, EventId id) const;
  [[nodiscard]] bool in_window() const noexcept {
    return in_window_.load(std::memory_order_relaxed);
  }
  void run_window_lane(Lane& lane, SimTime barrier);
  void run_windows(SimTime barrier);
  void merge_windows();
  void run_time(SimTime t);

  // lanes_[0] is the global lane; lanes_[1 + k] is shard k. unique_ptr for
  // stable Clock addresses across the vector.
  std::vector<std::unique_ptr<Lane>> lanes_;
  exec::ThreadPool* pool_;
  std::atomic<bool> in_window_{false};
  /// The serial engine's schedule counter, reconstructed. Starts at 1 so 0
  /// can mean "unassigned" in debug assertions.
  std::uint64_t next_vgs_ = 1;
  obs::Tracer* downstream_ = nullptr;
  faults::FaultInjector* injector_ = nullptr;
  Stats stats_{};

  // Serial-phase scratch, reused across barriers.
  struct Staged {
    std::uint64_t vgs;
    EventId id;
    Lane* lane;
    Callback cb;
    bool canceled;
  };
  std::vector<Staged> staged_;
  /// Index of the staged entry whose callback is currently executing.
  /// Entries after it are events the serial engine would not yet have
  /// popped, so cancel must still be able to suppress them (lane_cancel
  /// flags them canceled when the queue no longer knows the id).
  std::size_t staged_exec_i_ = 0;
  std::vector<Lane*> active_;
  friend struct Lane;
};

/// SPOTHOST_SHARDS validated via exec::env_int (0/negative/garbage warn and
/// fall back to 1) and capped at hardware concurrency with a logged clamp.
/// Unset -> 1. Backs make_simulation_engine(0) — see engine.hpp for the
/// factory the layers below the experiment layer use.
[[nodiscard]] std::size_t default_shard_count();

}  // namespace spothost::sim
