#include "simcore/simulation.hpp"

#include <stdexcept>

#include "simcore/sharded_sim.hpp"

namespace spothost::sim {

EventHandle Simulation::at(SimTime when, Callback cb) {
  if (when < now_) {
    throw std::invalid_argument("Simulation::at: scheduling in the past");
  }
  return EventHandle{this, queue_->schedule(when, std::move(cb))};
}

EventHandle Simulation::after(SimTime delay, Callback cb) {
  if (delay < 0) {
    throw std::invalid_argument("Simulation::after: negative delay");
  }
  return EventHandle{this, queue_->schedule(now_ + delay, std::move(cb))};
}

void Simulation::run_until(SimTime horizon) {
  EventQueue::Fired fired;
  while (queue_->pop_due(horizon, fired)) {
    now_ = fired.time;
    ++dispatched_;
    if (dispatch_hook_) dispatch_hook_(now_, dispatched_);
    fired.callback();
  }
  if (now_ < horizon && horizon != std::numeric_limits<SimTime>::max()) {
    now_ = horizon;
  }
}

bool Simulation::step() {
  if (queue_->empty()) return false;
  auto fired = queue_->pop();
  now_ = fired.time;
  ++dispatched_;
  if (dispatch_hook_) dispatch_hook_(now_, dispatched_);
  fired.callback();
  return true;
}

std::unique_ptr<Engine> make_simulation_engine() {
  // 0 = "ask the environment": SPOTHOST_SHARDS selects the sharded engine,
  // defaulting to 1 — the plain serial Simulation, byte-transparent.
  return make_simulation_engine(0);
}

}  // namespace spothost::sim
