// The discrete-event simulation engine.
//
// A Simulation owns the clock and the event queue. Components schedule
// callbacks at absolute or relative times; run_until() advances the clock to
// each event in order. The engine is single-threaded by design: determinism
// matters more than parallel event dispatch at the event rates these
// experiments generate (a 30-day hosting run is ~10^4 events). Experiments
// parallelise across *runs* (seeds), not within a run.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "simcore/event_queue.hpp"
#include "simcore/time.hpp"

namespace spothost::obs {
class Tracer;  // obs/sink.hpp — simcore stays independent of obs
}

namespace spothost::faults {
class FaultInjector;  // faults/injector.hpp — simcore stays independent of faults
}

namespace spothost::sim {

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulation time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `when` (must be >= now()).
  EventId at(SimTime when, EventQueue::Callback cb);

  /// Schedules `cb` after a relative delay (must be >= 0).
  EventId after(SimTime delay, EventQueue::Callback cb);

  /// Cancels a pending event; returns false if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs events until the queue is empty or the clock would pass `horizon`.
  /// The clock is left at min(horizon, last event time); events scheduled at
  /// exactly `horizon` do fire.
  void run_until(SimTime horizon);

  /// Runs until the queue drains completely.
  void run() { run_until(std::numeric_limits<SimTime>::max()); }

  /// Fires the single next event, if any. Returns false when idle.
  bool step();

  /// Number of events dispatched so far (for perf benchmarking and tests).
  [[nodiscard]] std::uint64_t dispatched() const noexcept { return dispatched_; }

  /// Pending live events.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Attaches the run's trace dispatcher (not owned; nullptr disables).
  /// Components that hold a Simulation& read the tracer from here, so one
  /// attach point covers the provider, scheduler, and anything else wired to
  /// this engine. Disabled tracing costs emitters a single null check.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

  /// Attaches the run's fault-injection source (not owned; nullptr = no
  /// injection). Mirrors set_tracer: components holding a Simulation& read
  /// the injector from here, so one attach point covers the provider and
  /// the migration engine without constructor plumbing. An injector with an
  /// empty FaultPlan is equivalent to none (zero draws, zero events).
  void set_fault_injector(faults::FaultInjector* injector) noexcept {
    fault_injector_ = injector;
  }
  [[nodiscard]] faults::FaultInjector* fault_injector() const noexcept {
    return fault_injector_;
  }

  /// Observation hook fired on every event dispatch, before the callback
  /// runs, with (event time, total dispatched so far). Unset by default —
  /// the hot path then pays one branch. Not part of the trace stream.
  using DispatchHook = std::function<void(SimTime, std::uint64_t)>;
  void set_dispatch_hook(DispatchHook hook) { dispatch_hook_ = std::move(hook); }

 private:
  SimTime now_ = 0;
  EventQueue queue_;
  std::uint64_t dispatched_ = 0;
  obs::Tracer* tracer_ = nullptr;
  faults::FaultInjector* fault_injector_ = nullptr;
  DispatchHook dispatch_hook_;
};

}  // namespace spothost::sim
