// The discrete-event simulation engine.
//
// A Simulation owns the clock and the event queue. Components schedule
// callbacks at absolute or relative times; run_until() advances the clock to
// each event in order. The engine is single-threaded by design: determinism
// matters more than parallel event dispatch at the event rates these
// experiments generate (a 30-day hosting run is ~10^4 events). Experiments
// parallelise across *runs* (seeds), not within a run.
#pragma once

#include <cstdint>
#include <limits>

#include "simcore/event_queue.hpp"
#include "simcore/time.hpp"

namespace spothost::sim {

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulation time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `when` (must be >= now()).
  EventId at(SimTime when, EventQueue::Callback cb);

  /// Schedules `cb` after a relative delay (must be >= 0).
  EventId after(SimTime delay, EventQueue::Callback cb);

  /// Cancels a pending event; returns false if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs events until the queue is empty or the clock would pass `horizon`.
  /// The clock is left at min(horizon, last event time); events scheduled at
  /// exactly `horizon` do fire.
  void run_until(SimTime horizon);

  /// Runs until the queue drains completely.
  void run() { run_until(std::numeric_limits<SimTime>::max()); }

  /// Fires the single next event, if any. Returns false when idle.
  bool step();

  /// Number of events dispatched so far (for perf benchmarking and tests).
  [[nodiscard]] std::uint64_t dispatched() const noexcept { return dispatched_; }

  /// Pending live events.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  SimTime now_ = 0;
  EventQueue queue_;
  std::uint64_t dispatched_ = 0;
};

}  // namespace spothost::sim
