// The discrete-event simulation engine.
//
// A Simulation owns the clock and the event queue. Components schedule
// callbacks at absolute or relative times; run_until() advances the clock to
// each event in order. The engine is single-threaded by design: determinism
// matters more than parallel event dispatch *within* a run — experiments
// parallelise across runs (seeds) instead. What changed with fleet scale is
// the event rate a single run must sustain: a 30-day single-service run is
// ~10^4 events, but one simulation carrying a 100k-1M-service fleet pushes
// 10^8-10^9 periodic hour-tick/poll events through this loop, which is why
// the queue behind it is a hierarchical timing wheel (O(1) per event; see
// simcore/timing_wheel.hpp) with the binary heap retained as a
// differential-testing oracle behind the EventQueue seam.
//
// Policy code should not depend on this class: it programs against the
// narrow sim::Clock interface (simcore/clock.hpp) that Simulation
// implements, and manages its pending events through the EventHandle values
// that at()/after() return. Run-control code (the experiment layer) uses
// the sim::Engine interface (simcore/engine.hpp) so the same wiring can
// drive a live::WallClock instead; scripts/check_layering.sh keeps this
// header out of sched/virt/cloud.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>

#include "simcore/clock.hpp"
#include "simcore/engine.hpp"
#include "simcore/event_queue.hpp"
#include "simcore/time.hpp"

namespace spothost::sim {

class Simulation final : public Engine {
 public:
  /// Backed by `backend`; the default honours SPOTHOST_EVENT_QUEUE and
  /// otherwise picks the timing wheel.
  explicit Simulation(QueueBackend backend = default_queue_backend())
      : queue_(make_event_queue(backend)) {}
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulation time.
  [[nodiscard]] SimTime now() const noexcept override { return now_; }

  /// Schedules `cb` at absolute time `when` (must be >= now()).
  EventHandle at(SimTime when, Callback cb) override;

  /// Schedules `cb` after a relative delay (must be >= 0).
  EventHandle after(SimTime delay, Callback cb) override;

  /// Cancels a pending event; returns false if it already fired. Prefer
  /// EventHandle::cancel() in policy code.
  bool cancel(EventId id) override { return queue_->cancel(id); }

  /// Runs events until the queue is empty or the clock would pass `horizon`.
  /// The clock is left at min(horizon, last event time); events scheduled at
  /// exactly `horizon` do fire.
  void run_until(SimTime horizon) override;

  /// Fires the single next event, if any. Returns false when idle.
  bool step();

  /// Number of events dispatched so far (for perf benchmarking and tests).
  [[nodiscard]] std::uint64_t dispatched() const noexcept override {
    return dispatched_;
  }

  /// Pending live events.
  [[nodiscard]] std::size_t pending() const override { return queue_->size(); }

  /// Which EventQueue implementation this simulation runs on.
  [[nodiscard]] QueueBackend backend() const noexcept {
    return queue_->backend();
  }

  /// Attaches the run's trace dispatcher (not owned; nullptr disables).
  /// Components that hold a Clock& read the tracer from here, so one attach
  /// point covers the provider, scheduler, and anything else wired to this
  /// engine. Disabled tracing costs emitters a single null check.
  void set_tracer(obs::Tracer* tracer) noexcept override { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const noexcept override { return tracer_; }

  /// Attaches the run's fault-injection source (not owned; nullptr = no
  /// injection). Mirrors set_tracer: components holding a Clock& read the
  /// injector from here, so one attach point covers the provider and the
  /// migration engine without constructor plumbing. An injector with an
  /// empty FaultPlan is equivalent to none (zero draws, zero events).
  void set_fault_injector(faults::FaultInjector* injector) noexcept override {
    fault_injector_ = injector;
  }
  [[nodiscard]] faults::FaultInjector* fault_injector() const noexcept override {
    return fault_injector_;
  }

  /// Observation hook fired on every event dispatch, before the callback
  /// runs, with (event time, total dispatched so far). Unset by default —
  /// the hot path then pays one branch. Not part of the trace stream.
  using DispatchHook = std::function<void(SimTime, std::uint64_t)>;
  void set_dispatch_hook(DispatchHook hook) { dispatch_hook_ = std::move(hook); }

 private:
  SimTime now_ = 0;
  std::unique_ptr<EventQueue> queue_;
  std::uint64_t dispatched_ = 0;
  obs::Tracer* tracer_ = nullptr;
  faults::FaultInjector* fault_injector_ = nullptr;
  DispatchHook dispatch_hook_;
};

}  // namespace spothost::sim
