#include "simcore/time.hpp"

#include <cstdio>

namespace spothost::sim {

std::string format_time(SimTime t) {
  const bool neg = t < 0;
  if (neg) t = -t;
  const SimTime ms = t % kSecond;
  const SimTime s = (t / kSecond) % 60;
  const SimTime m = (t / kMinute) % 60;
  const SimTime h = (t / kHour) % 24;
  const SimTime d = t / kDay;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%lldd%02lld:%02lld:%02lld.%03lld",
                neg ? "-" : "", static_cast<long long>(d), static_cast<long long>(h),
                static_cast<long long>(m), static_cast<long long>(s),
                static_cast<long long>(ms));
  return buf;
}

}  // namespace spothost::sim
