// Simulation time base for spothost.
//
// All simulation timestamps are integer milliseconds (SimTime) so that event
// ordering is exact and runs are bit-reproducible across platforms; floating
// point enters only at the metric/reporting boundary.
#pragma once

#include <cstdint>
#include <string>

namespace spothost::sim {

/// Absolute simulation time or a duration, in milliseconds.
using SimTime = std::int64_t;

inline constexpr SimTime kMillisecond = 1;
inline constexpr SimTime kSecond = 1000 * kMillisecond;
inline constexpr SimTime kMinute = 60 * kSecond;
inline constexpr SimTime kHour = 60 * kMinute;
inline constexpr SimTime kDay = 24 * kHour;

/// Converts a duration or timestamp to fractional seconds.
constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts a duration or timestamp to fractional hours.
constexpr double to_hours(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kHour);
}

/// Converts fractional seconds to SimTime, rounding to nearest millisecond.
constexpr SimTime from_seconds(double s) noexcept {
  return static_cast<SimTime>(s * static_cast<double>(kSecond) + (s >= 0 ? 0.5 : -0.5));
}

/// Converts fractional hours to SimTime, rounding to nearest millisecond.
constexpr SimTime from_hours(double h) noexcept {
  return from_seconds(h * 3600.0);
}

/// Start of the billing hour containing `t` (hours are aligned to t = 0).
constexpr SimTime hour_floor(SimTime t) noexcept {
  return (t / kHour) * kHour - ((t % kHour < 0) ? kHour : 0);
}

/// Start of the first billing hour strictly after `t`.
constexpr SimTime next_hour_boundary(SimTime t) noexcept {
  return hour_floor(t) + kHour;
}

/// Human-readable "DdHH:MM:SS.mmm" rendering, for logs and tables.
std::string format_time(SimTime t);

}  // namespace spothost::sim
