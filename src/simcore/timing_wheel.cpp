#include "simcore/timing_wheel.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace spothost::sim {

namespace {

constexpr std::uint32_t kNoSlot = EventArena::kNoSlot;

// Idle buffers above this capacity are released rather than recycled. A
// whole fleet's periodic burst lands in ONE higher-level bucket per period,
// and the slot it lands in rotates, so letting every bucket keep its
// high-water capacity strands burst-sized allocations across all 64 slots
// of every level (observed: ~5x the heap backend's footprint at 100k
// services). Re-growing a just-released buffer is a warm malloc, amortised
// against streaming the burst itself.
constexpr std::size_t kMaxIdleCapacity = 4096;

// True when `when` falls outside the wheel's 64^6-aligned current window.
constexpr bool past_window(SimTime when, SimTime cur) noexcept {
  return ((static_cast<std::uint64_t>(when) ^ static_cast<std::uint64_t>(cur)) >>
          (TimingWheelQueue::kLevelBits * TimingWheelQueue::kLevels)) != 0;
}

}  // namespace

std::pair<int, int> TimingWheelQueue::place(SimTime when) const {
  const std::uint64_t diff = static_cast<std::uint64_t>(when) ^
                             static_cast<std::uint64_t>(cur_);
  const int level =
      diff == 0 ? 0 : (63 - std::countl_zero(diff)) / kLevelBits;
  const int slot = static_cast<int>(
      (static_cast<std::uint64_t>(when) >> (level * kLevelBits)) & (kSlots - 1));
  return {level, slot};
}

void TimingWheelQueue::shed(std::vector<Entry>& v) {
  if (v.capacity() > kMaxIdleCapacity) {
    std::vector<Entry>().swap(v);
  } else {
    v.clear();
  }
}

void TimingWheelQueue::file(const Entry& entry) {
  const auto [level, ws] = place(entry.when);
  buckets_[static_cast<std::size_t>(level)][static_cast<std::size_t>(ws)]
      .push_back(entry);
  occupied_[static_cast<std::size_t>(level)] |= std::uint64_t{1} << ws;
}

EventId TimingWheelQueue::schedule(SimTime when, Callback cb) {
  if (when < floor_) {
    throw std::invalid_argument(
        "TimingWheelQueue::schedule: time precedes the latest pop");
  }
  const EventArena::Alloc alloc = arena_.allocate(when, std::move(cb));
  const std::uint64_t seq = arena_.seq(alloc.slot);
  if (when < cur_) {
    // The frontier has run past this time (a peek advanced the wheel); the
    // event is still valid — park it in the holding area, merged at pop.
    pre_.emplace(std::make_pair(when, seq), alloc.id);
    arena_.loc(alloc.slot) = kLocPre;
  } else if (past_window(when, cur_)) {
    overflow_.emplace(std::make_pair(when, seq), alloc.id);
    arena_.loc(alloc.slot) = kLocOverflow;
  } else {
    file(Entry{when, seq, alloc.id});
    arena_.loc(alloc.slot) = kLocWheel;
  }
  return alloc.id;
}

bool TimingWheelQueue::cancel(EventId id) {
  const std::uint32_t slot = arena_.slot_if_live(id);
  if (slot == kNoSlot) return false;
  switch (arena_.loc(slot)) {
    case kLocOverflow:
      overflow_.erase(std::make_pair(arena_.when(slot), arena_.seq(slot)));
      break;
    case kLocPre:
      pre_.erase(std::make_pair(arena_.when(slot), arena_.seq(slot)));
      break;
    default:
      // Wheel or drain record: cancelled lazily. The generation bump below
      // invalidates the record's id, and the bucket drops it when drained.
      break;
  }
  arena_.release(slot);
  return true;
}

void TimingWheelQueue::advance_and_drain() {
  for (;;) {
    // Level 0: the current slot itself may be due (events at exactly cur_).
    {
      const int cs = static_cast<int>(static_cast<std::uint64_t>(cur_) &
                                      (kSlots - 1));
      const std::uint64_t due = occupied_[0] & (~std::uint64_t{0} << cs);
      if (due != 0) {
        const int ws = std::countr_zero(due);
        cur_ = static_cast<SimTime>(
            (static_cast<std::uint64_t>(cur_) & ~std::uint64_t{kSlots - 1}) |
            static_cast<std::uint64_t>(ws));
        // Swap the whole bucket out: one batch per simulated millisecond,
        // and the drain buffer's capacity goes back to the bucket.
        drain_.swap(buckets_[0][static_cast<std::size_t>(ws)]);
        occupied_[0] &= ~(std::uint64_t{1} << ws);
        // Bucket order mixes direct schedules with cascade arrivals; sort
        // by global sequence to restore exact FIFO among this millisecond.
        std::sort(drain_.begin(), drain_.end(),
                  [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
        return;
      }
    }
    // Higher levels: strictly beyond the current slot (an event sharing
    // cur_'s digit at a level always lives at a lower level, by the XOR
    // placement rule), lowest occupied level first.
    bool cascaded = false;
    for (int level = 1; level < kLevels; ++level) {
      const int cs = static_cast<int>(
          (static_cast<std::uint64_t>(cur_) >> (level * kLevelBits)) &
          (kSlots - 1));
      const std::uint64_t due =
          cs + 1 >= kSlots ? 0
                           : occupied_[static_cast<std::size_t>(level)] &
                                 (~std::uint64_t{0} << (cs + 1));
      if (due == 0) continue;
      const int ws = std::countr_zero(due);
      // Jump the clock to the bucket's start (digits below the level
      // zeroed) and stream its records down; every one re-places at a
      // strictly lower level. No arena access: the records carry their
      // times. Dead (lazily cancelled) records ride along and are dropped
      // when their millisecond drains.
      const std::uint64_t below =
          (std::uint64_t{1} << ((level + 1) * kLevelBits)) - 1;
      cur_ = static_cast<SimTime>(
          (static_cast<std::uint64_t>(cur_) & ~below) |
          (static_cast<std::uint64_t>(ws) << (level * kLevelBits)));
      scratch_.swap(
          buckets_[static_cast<std::size_t>(level)][static_cast<std::size_t>(ws)]);
      occupied_[static_cast<std::size_t>(level)] &= ~(std::uint64_t{1} << ws);
      for (const Entry& entry : scratch_) file(entry);
      shed(scratch_);
      cascaded = true;
      break;
    }
    if (cascaded) continue;
    // Wheel exhausted: jump to the first overflow event and migrate every
    // overflow entry that now fits the window. Safe because overflow times
    // are strictly later than anything the wheel held.
    assert(!overflow_.empty());
    cur_ = overflow_.begin()->first.first;
    while (!overflow_.empty() &&
           !past_window(overflow_.begin()->first.first, cur_)) {
      const auto& [key, id] = *overflow_.begin();
      file(Entry{key.first, key.second, id});
      arena_.loc(EventArena::slot_of(id)) = kLocWheel;
      overflow_.erase(overflow_.begin());
    }
  }
}

std::uint32_t TimingWheelQueue::ready() {
  for (;;) {
    while (drain_pos_ < drain_.size()) {
      const std::uint32_t slot = arena_.slot_if_live(drain_[drain_pos_].id);
      if (slot != kNoSlot) return slot;
      ++drain_pos_;  // cancelled while pending
    }
    shed(drain_);
    drain_pos_ = 0;
    assert(arena_.live() > pre_.size());
    advance_and_drain();
  }
}

SimTime TimingWheelQueue::next_time() const {
  // Logically const: running the wheel forward to the next due slot never
  // changes the observable pop order. Schedules issued after the peek at
  // times the frontier has passed land in pre_ and merge back in at pop, so
  // nothing depends on when the wheel advances — and the advance work is
  // never repeated (mirrors the heap backend's skim()).
  auto* self = const_cast<TimingWheelQueue*>(this);
  SimTime best = std::numeric_limits<SimTime>::max();
  if (arena_.live() > pre_.size()) best = arena_.when(self->ready());
  if (!pre_.empty()) best = std::min(best, pre_.begin()->first.first);
  return best;
}

bool TimingWheelQueue::pop_due(SimTime horizon, Fired& out) {
  std::uint32_t slot = kNoSlot;
  if (arena_.live() > pre_.size()) slot = ready();
  if (!pre_.empty() &&
      (slot == kNoSlot ||
       pre_.begin()->first <
           std::make_pair(arena_.when(slot), arena_.seq(slot)))) {
    // The holding area owns the earliest event (exact (time, seq) order).
    if (pre_.begin()->first.first > horizon) return false;
    slot = EventArena::slot_of(pre_.begin()->second);
    pre_.erase(pre_.begin());
  } else {
    if (slot == kNoSlot || arena_.when(slot) > horizon) return false;
    ++drain_pos_;
  }
  floor_ = arena_.when(slot);
  out.time = floor_;
  out.id = arena_.id_at(slot);
  out.callback = arena_.take(slot);
  arena_.release(slot);
  return true;
}

EventQueue::Fired TimingWheelQueue::pop() {
  Fired fired;
  const bool popped = pop_due(std::numeric_limits<SimTime>::max(), fired);
  assert(popped);  // precondition: !empty()
  (void)popped;
  return fired;
}

void TimingWheelQueue::clear() {
  arena_.clear();
  for (auto& word : occupied_) word = 0;
  for (auto& level : buckets_) {
    for (auto& bucket : level) shed(bucket);
  }
  overflow_.clear();
  pre_.clear();
  shed(drain_);
  drain_pos_ = 0;
  shed(scratch_);
  cur_ = 0;
  floor_ = 0;
}

}  // namespace spothost::sim
