// Hierarchical timing wheel: the default EventQueue backend.
//
// Layout: 6 levels x 64 slots. Level 0 slots are exactly one millisecond
// wide; each level above covers 64x the span of the one below, so the wheel
// as a whole spans 64^6 ms (~2.2 years) from the current time — two orders
// of magnitude past the paper's 30-day horizon. Events beyond the span land
// in a sorted overflow bucket and migrate into the wheel when it drains down
// to them (overflow times are strictly later than every wheel entry, because
// the wheel window is 64^6-aligned).
//
// Placement uses the classic XOR rule: an event at time `when` lives at
// level = position of the highest bit where `when` differs from the wheel's
// current time, slot = `when`'s 6-bit digit at that level. Advancing the
// clock to a higher-level slot cascades its bucket down (each entry
// re-places at a strictly lower level), so by the time a millisecond is due,
// all its events sit in one level-0 bucket. That bucket is drained as a
// batch sorted by global schedule sequence — restoring exact (time, FIFO)
// order, the same determinism contract the heap backend provides (see
// event_queue.hpp).
//
// Buckets are contiguous vectors of small {when, seq, id} records rather
// than linked lists: a cascade streams one vector into a handful of others
// without touching the event arena at all, so moving an event down a level
// costs a 24-byte copy instead of a cache miss. The price is lazy
// cancellation on the wheel path — cancel() frees the arena slot (O(1),
// invalidating the id via its generation) and leaves the bucket record
// behind; dead records are dropped when their bucket is drained, and they
// ride cascades at most kLevels-1 times before that. Far-future (overflow)
// and behind-the-frontier (pre) events stay in sorted maps with eager erase.
//
// Costs: schedule, cancel, and pop are O(1) amortised (occupancy bitmaps
// make the next-slot scan two bit instructions per level; each event
// cascades at most kLevels-1 times over its lifetime). This is what lets
// one simulation carry 100k-1M services' periodic hour-tick and poll events
// (see bench/bench_fleet_scale.cpp), where a heap pays O(log n) per
// operation on a million-entry queue.
//
// Requirement (stronger than the base contract, guaranteed by Simulation):
// scheduling is monotone — `when` must be >= the time of the latest pop.
// Violations throw std::invalid_argument.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "simcore/event_queue.hpp"

namespace spothost::sim {

class TimingWheelQueue final : public EventQueue {
 public:
  static constexpr int kLevelBits = 6;
  static constexpr int kSlots = 1 << kLevelBits;  // 64
  static constexpr int kLevels = 6;
  /// Span covered by the wheel from the current time; events at or past
  /// cur + span (window-aligned) go to the overflow bucket.
  static constexpr SimTime kSpanMs = SimTime{1}
                                     << (kLevelBits * kLevels);  // ~795 days

  TimingWheelQueue() = default;

  EventId schedule(SimTime when, Callback cb) override;
  bool cancel(EventId id) override;
  [[nodiscard]] bool empty() const override { return arena_.live() == 0; }
  [[nodiscard]] std::size_t size() const override { return arena_.live(); }
  [[nodiscard]] SimTime next_time() const override;
  Fired pop() override;
  bool pop_due(SimTime horizon, Fired& out) override;
  void clear() override;
  [[nodiscard]] QueueBackend backend() const noexcept override {
    return QueueBackend::kTimingWheel;
  }

  /// Events currently parked in the far-future overflow bucket (test hook).
  [[nodiscard]] std::size_t overflow_entries() const noexcept {
    return overflow_.size();
  }

  /// The schedule floor: the time of the latest pop. Scheduling below this
  /// throws (test hook).
  [[nodiscard]] SimTime wheel_time() const noexcept { return floor_; }

  /// Events parked in the between-floor-and-frontier holding area — only
  /// populated by schedules issued after a next_time() peek ran the wheel
  /// ahead, i.e. outside the simulation's dispatch loop (test hook).
  [[nodiscard]] std::size_t pre_entries() const noexcept { return pre_.size(); }

 private:
  // Values of the arena's per-slot loc field (backend scratch byte). Wheel
  // and drain records are cancelled lazily, so they share one value; the
  // sorted maps erase eagerly and need to be told apart.
  enum Loc : std::uint8_t {
    kLocWheel = 0,
    kLocOverflow = 1,
    kLocPre = 2,
  };

  // One pending event as the wheel buckets store it. `when` rides along so
  // cascading re-places the record without reading the arena; `seq` so the
  // due-millisecond FIFO sort runs over the contiguous batch; `id` so the
  // dispatch path can drop records whose event was cancelled (generation
  // mismatch) after they were filed.
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    EventId id;
  };

  // Files an entry into the bucket for its time relative to cur_.
  void file(const Entry& entry);
  // Empties a consumed buffer, releasing its memory when the capacity is
  // burst-sized (see kMaxIdleCapacity in the .cpp).
  static void shed(std::vector<Entry>& v);
  // Finds (level, wheel slot) for a pending time relative to cur_.
  [[nodiscard]] std::pair<int, int> place(SimTime when) const;
  // Advances cur_ (cascading higher-level buckets, pulling overflow when
  // the wheel is empty) until one level-0 bucket is due, then swaps it into
  // drain_ sorted by schedule sequence. Precondition: the wheel or the
  // overflow bucket holds at least one live event.
  void advance_and_drain();
  // Returns the arena slot of the earliest live wheel event, leaving its
  // record at drain_[drain_pos_]. Same precondition as advance_and_drain.
  [[nodiscard]] std::uint32_t ready();

  EventArena arena_;
  std::array<std::uint64_t, kLevels> occupied_{};  // one bit per bucket
  std::array<std::array<std::vector<Entry>, kSlots>, kLevels> buckets_;
  // The wheel frontier. May run ahead of floor_ (a next_time() peek
  // advances it to the next due slot so the scan work is never repeated);
  // schedules landing in [floor_, cur_) go to pre_ instead of the wheel.
  SimTime cur_ = 0;
  // Time of the latest pop: the monotone-schedule bound.
  SimTime floor_ = 0;
  // Far-future events, ordered by (time, seq) so migration preserves FIFO.
  std::map<std::pair<SimTime, std::uint64_t>, EventId> overflow_;
  // Events at times the frontier has already passed (>= floor_, < cur_).
  // Only ever fed by schedules issued between simulation phases — the
  // dispatch loop schedules at/after the event being fired, which is never
  // below the frontier — so this stays tiny; ordered by (time, seq) and
  // merged with the wheel at pop for exact global FIFO.
  std::map<std::pair<SimTime, std::uint64_t>, EventId> pre_;
  // The level-0 bucket currently being dispatched (swapped out wholesale,
  // so batch capacity circulates between the buckets and this buffer),
  // sorted by sequence. Records whose event was cancelled while pending
  // fail the generation check and are skipped.
  std::vector<Entry> drain_;
  std::size_t drain_pos_ = 0;
  // Cascade redistribution buffer (member so its capacity is reused).
  std::vector<Entry> scratch_;
};

}  // namespace spothost::sim
