// Umbrella header for the spothost library.
//
// spothost reproduces "Cutting the Cost of Hosting Online Services Using
// Cloud Spot Markets" (HPDC'15): a cloud scheduler that hosts always-on
// services on spot servers with proactive bidding and VM-migration
// mechanisms, evaluated on a discrete-event cloud simulator.
//
// Typical entry points:
//   sched::Scenario / sched::World      — build a simulated cloud
//   sched::SchedulerConfig / presets    — configure the scheduler
//   metrics::run_hosting_scenario       — one full hosting run
//   metrics::ExperimentRunner           — multi-seed aggregation
//   metrics::SweepRunner                — multi-arm sweeps, memoized traces
//   live::WallClock + HostingSession    — the same policy layer on wall time
//   live::PriceFeed / FeedDriver        — streamed price updates (serve mode)
//   exec::ThreadPool                    — the shared bounded worker pool
//   obs::Tracer + sinks                 — structured run tracing
//   faults::FaultPlan / FaultInjector   — deterministic fault injection
#pragma once

#include "cloud/billing.hpp"
#include "cloud/instance_types.hpp"
#include "exec/env.hpp"
#include "exec/thread_pool.hpp"
#include "cloud/market.hpp"
#include "cloud/provider.hpp"
#include "cloud/volume.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "live/feed_driver.hpp"
#include "live/hosting_session.hpp"
#include "live/price_feed.hpp"
#include "live/wall_clock.hpp"
#include "metrics/experiment.hpp"
#include "metrics/run_metrics.hpp"
#include "metrics/sweep.hpp"
#include "metrics/table.hpp"
#include "obs/counter_sink.hpp"
#include "obs/event.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/profile.hpp"
#include "obs/ring_sink.hpp"
#include "obs/sink.hpp"
#include "sched/analysis.hpp"
#include "sched/baselines.hpp"
#include "sched/bid_advisor.hpp"
#include "sched/bidding.hpp"
#include "sched/config.hpp"
#include "sched/fleet.hpp"
#include "sched/market_selection.hpp"
#include "sched/market_traces.hpp"
#include "sched/market_watcher.hpp"
#include "sched/migration_engine.hpp"
#include "sched/placement.hpp"
#include "sched/policy_zoo.hpp"
#include "sched/scheduler.hpp"
#include "sched/scheduler_config.hpp"
#include "simcore/event_queue.hpp"
#include "simcore/logging.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulation.hpp"
#include "simcore/time.hpp"
#include "trace/auction_market.hpp"
#include "trace/csv.hpp"
#include "trace/features.hpp"
#include "trace/price_trace.hpp"
#include "trace/profiles.hpp"
#include "trace/stats.hpp"
#include "trace/synthetic.hpp"
#include "virt/checkpoint.hpp"
#include "virt/checkpoint_process.hpp"
#include "virt/live_migration.hpp"
#include "virt/mechanisms.hpp"
#include "virt/memory_model.hpp"
#include "virt/nested.hpp"
#include "virt/network_model.hpp"
#include "virt/restore.hpp"
#include "virt/vm.hpp"
#include "workload/availability.hpp"
#include "workload/diurnal.hpp"
#include "workload/endpoint.hpp"
#include "workload/experience.hpp"
#include "workload/group.hpp"
#include "workload/iobench.hpp"
#include "workload/outage_stats.hpp"
#include "workload/queueing.hpp"
#include "workload/service.hpp"
#include "workload/tpcw.hpp"
