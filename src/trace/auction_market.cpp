#include "trace/auction_market.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <set>
#include <stdexcept>
#include <vector>

namespace spothost::trace {
namespace {

struct TenantRec {
  sim::SimTime arrive = 0;
  sim::SimTime leave = 0;
  double bid = 0.0;     // $/hr per unit
  double demand = 0.0;  // units
};

// Capacity eaten by on-demand customers at time t (diurnal swing).
double od_consumed(const AuctionMarketParams& p, sim::SimTime t) {
  const double hours = sim::to_hours(t);
  const double phase = 2.0 * std::numbers::pi * (hours - p.od_peak_hour) / 24.0;
  const double frac = p.od_load_min_fraction +
                      (p.od_load_max_fraction - p.od_load_min_fraction) *
                          (1.0 + std::cos(phase)) / 2.0;
  return frac * p.capacity_units;
}

// Uniform-price clearing: admit tenants by descending bid until the spot
// capacity runs out; price = highest rejected bid, else the floor.
double clear(const AuctionMarketParams& p,
             std::vector<const TenantRec*>& active, double spot_capacity,
             double pon) {
  std::sort(active.begin(), active.end(),
            [](const TenantRec* a, const TenantRec* b) {
              if (a->bid != b->bid) return a->bid > b->bid;
              return a->arrive < b->arrive;  // deterministic tie-break
            });
  double used = 0.0;
  double price = p.floor_multiple * pon;
  for (const TenantRec* t : active) {
    if (used + t->demand <= spot_capacity) {
      used += t->demand;
    } else {
      price = std::max(price, t->bid);
      break;  // every lower bid is rejected too
    }
  }
  return std::min(price, p.price_cap_multiple * pon);
}

}  // namespace

PriceTrace generate_auction_market(const AuctionMarketParams& params,
                                   double on_demand_price, sim::SimTime horizon,
                                   sim::RngStream& rng) {
  if (horizon <= 0 || on_demand_price <= 0 || params.capacity_units <= 0 ||
      params.tenant_arrival_per_hour <= 0) {
    throw std::invalid_argument("generate_auction_market: bad arguments");
  }

  // Tenant population over the horizon.
  std::vector<TenantRec> tenants;
  {
    const double mean_gap_h = 1.0 / params.tenant_arrival_per_hour;
    sim::SimTime t = sim::from_hours(rng.exponential(mean_gap_h));
    while (t < horizon) {
      TenantRec rec;
      rec.arrive = t;
      rec.leave = t + std::max<sim::SimTime>(
                          sim::kMinute,
                          sim::from_hours(rng.exponential(params.tenant_mean_stay_hours)));
      rec.bid = on_demand_price *
                rng.lognormal_mean_cv(params.bid_mean_multiple, params.bid_cv);
      rec.demand =
          std::max(1.0, rng.exponential(params.tenant_mean_demand_units));
      tenants.push_back(rec);
      t += sim::from_hours(rng.exponential(mean_gap_h));
    }
  }

  // Re-clear at every arrival, departure, and a 15-minute grid (the
  // on-demand load moves continuously).
  std::set<sim::SimTime> breakpoints{0};
  for (const auto& rec : tenants) {
    if (rec.arrive < horizon) breakpoints.insert(rec.arrive);
    if (rec.leave < horizon) breakpoints.insert(rec.leave);
  }
  for (sim::SimTime t = 0; t < horizon; t += 15 * sim::kMinute) {
    breakpoints.insert(t);
  }

  PriceTrace trace;
  std::vector<const TenantRec*> active;
  for (const sim::SimTime when : breakpoints) {
    active.clear();
    for (const auto& rec : tenants) {
      if (rec.arrive <= when && when < rec.leave) active.push_back(&rec);
    }
    const double spot_capacity =
        std::max(1.0, params.capacity_units - od_consumed(params, when));
    const double price = clear(params, active, spot_capacity, on_demand_price);
    if (trace.empty() || when > trace.points().back().time) {
      trace.append(when, price);
    }
  }
  trace.set_end(horizon);
  return trace;
}

}  // namespace spothost::trace
