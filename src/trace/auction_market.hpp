// Endogenous spot-price formation: a uniform-price auction.
//
// The regime-switching model (synthetic.hpp) *imitates* observed price
// series; this model *generates* them from the mechanism the paper describes
// in Sec. 2.1: "prices are low when there is plenty of unused capacity ...
// the price rises when there is more demand", with customers holding the
// lowest bids losing their servers first.
//
// Tenants arrive (Poisson), each demanding some capacity at a private bid,
// and stay for a random duration; on-demand load independently eats into
// the spare capacity available to the spot pool. At every arrival/departure
// the market clears: tenants are admitted in bid order until capacity runs
// out, and the clearing price is the highest *rejected* bid (or the floor
// when everyone fits) — a textbook uniform-price auction, which is how EC2
// described spot pricing.
#pragma once

#include "simcore/rng.hpp"
#include "trace/price_trace.hpp"

namespace spothost::trace {

struct AuctionMarketParams {
  double capacity_units = 140.0;        ///< spot pool size in server units
  double tenant_arrival_per_hour = 4.0; ///< Poisson tenant arrivals
  double tenant_mean_stay_hours = 3.0;  ///< exponential stay
  double tenant_mean_demand_units = 6.0;///< exponential per-tenant demand
  /// Tenant private bids: lognormal multiple of the on-demand price (most
  /// bidders bid below p_on; a few "availability buyers" bid far above).
  double bid_mean_multiple = 0.55;
  double bid_cv = 1.2;
  /// Price floor when capacity is slack (provider's reserve), x p_on.
  double floor_multiple = 0.12;
  /// On-demand demand stealing capacity from the pool: sinusoidal daily
  /// swing between these fractions of capacity.
  double od_load_min_fraction = 0.08;
  double od_load_max_fraction = 0.45;
  double od_peak_hour = 19.0;
  /// Clearing price cap (EC2 bounded effective prices), x p_on.
  double price_cap_multiple = 12.0;
};

/// Generates a price trace for [0, horizon) by running the auction.
PriceTrace generate_auction_market(const AuctionMarketParams& params,
                                   double on_demand_price, sim::SimTime horizon,
                                   sim::RngStream& rng);

}  // namespace spothost::trace
