#include "trace/csv.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace spothost::trace {
namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
  std::ostringstream oss;
  oss << "trace CSV parse error at line " << line_no << ": " << why;
  throw std::runtime_error(oss.str());
}

}  // namespace

void save_csv(const PriceTrace& trace, std::ostream& out) {
  out << "time_ms,price_per_hour\n";
  // max_digits10: doubles round-trip exactly through the text format.
  out.precision(17);
  for (const auto& p : trace.points()) {
    out << p.time << ',' << p.price << '\n';
  }
  out << "end," << trace.end() << '\n';
}

void save_csv_file(const PriceTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  save_csv(trace, out);
}

PriceTrace load_csv(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  if (!std::getline(in, line)) fail(1, "empty input");
  ++line_no;
  if (line != "time_ms,price_per_hour") fail(line_no, "bad header: " + line);

  PriceTrace trace;
  bool saw_end = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto comma = line.find(',');
    if (comma == std::string::npos) fail(line_no, "missing comma");
    const std::string lhs = line.substr(0, comma);
    const std::string rhs = line.substr(comma + 1);
    if (lhs == "end") {
      sim::SimTime end = 0;
      const auto [p, ec] = std::from_chars(rhs.data(), rhs.data() + rhs.size(), end);
      if (ec != std::errc{} || p != rhs.data() + rhs.size()) {
        fail(line_no, "bad end timestamp: " + rhs);
      }
      trace.set_end(end);
      saw_end = true;
      continue;
    }
    if (saw_end) fail(line_no, "data after end marker");
    sim::SimTime t = 0;
    {
      const auto [p, ec] = std::from_chars(lhs.data(), lhs.data() + lhs.size(), t);
      if (ec != std::errc{} || p != lhs.data() + lhs.size()) {
        fail(line_no, "bad timestamp: " + lhs);
      }
    }
    double price = 0.0;
    try {
      std::size_t consumed = 0;
      price = std::stod(rhs, &consumed);
      if (consumed != rhs.size()) fail(line_no, "trailing junk in price: " + rhs);
    } catch (const std::logic_error&) {
      fail(line_no, "bad price: " + rhs);
    }
    try {
      trace.append(t, price);
    } catch (const std::invalid_argument& e) {
      fail(line_no, e.what());
    }
  }
  if (trace.empty()) fail(line_no, "no data rows");
  return trace;
}

PriceTrace load_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return load_csv(in);
}

}  // namespace spothost::trace
