// CSV persistence for price traces.
//
// Format: a header line "time_ms,price_per_hour" followed by one change
// event per line. A trailing pseudo-row "end,<time_ms>" records the trace's
// validity end so round-trips are exact. Real EC2 price-history exports can
// be converted to this format to drive the simulator with measured data.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/price_trace.hpp"

namespace spothost::trace {

void save_csv(const PriceTrace& trace, std::ostream& out);
void save_csv_file(const PriceTrace& trace, const std::string& path);

/// Throws std::runtime_error with a line number on malformed input.
PriceTrace load_csv(std::istream& in);
PriceTrace load_csv_file(const std::string& path);

}  // namespace spothost::trace
