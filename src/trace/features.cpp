#include "trace/features.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "trace/stats.hpp"

namespace spothost::trace {
namespace {

double relative_error(double a, double b) {
  const double denom = std::max({std::abs(a), std::abs(b), 1e-12});
  return std::abs(a - b) / denom;
}

}  // namespace

TraceFeatures extract_features(const PriceTrace& price_trace,
                               double reference_price) {
  if (price_trace.empty()) {
    throw std::invalid_argument("extract_features: empty trace");
  }
  return extract_features(price_trace, reference_price, price_trace.start(),
                          price_trace.end());
}

TraceFeatures extract_features(const PriceTrace& price_trace,
                               double reference_price, sim::SimTime from,
                               sim::SimTime to) {
  if (price_trace.empty()) {
    throw std::invalid_argument("extract_features: empty trace");
  }
  if (reference_price <= 0) {
    throw std::invalid_argument("extract_features: reference must be > 0");
  }
  if (from < price_trace.start() || to > price_trace.end() || from >= to) {
    throw std::invalid_argument(
        "extract_features: window must satisfy start() <= from < to <= end()");
  }
  const double days = static_cast<double>(to - from) / static_cast<double>(sim::kDay);

  // Every pass below restarts at `from`; the shared cursor costs one
  // binary-search rewind per pass and then scans each walk linearly.
  PriceCursor cursor;
  TraceFeatures f;
  f.mean_price = price_trace.time_average(from, to, cursor);
  f.stddev = trace_stddev(price_trace, from, to);
  f.min_price = price_trace.min_price(from, to, cursor);
  f.max_price = price_trace.max_price(from, to, cursor);
  f.fraction_below_reference =
      price_trace.fraction_below(reference_price, from, to, cursor);
  f.max_over_reference = f.max_price / reference_price;

  // Excursions above the reference; the same walk counts the price segments
  // intersecting [from, to) — over the full window that count equals
  // size(), so changes_per_day is unchanged for full-trace callers.
  std::size_t segments = 0;
  sim::SimTime t = from;
  bool in_excursion = false;
  sim::SimTime excursion_start = 0;
  sim::SimTime excursion_total = 0;
  while (t < to) {
    ++segments;
    const double price = price_trace.price_at(t, cursor);
    const auto next = price_trace.next_change_after(t, cursor);
    const sim::SimTime segment_end = next ? std::min(next->time, to) : to;
    if (price > reference_price && !in_excursion) {
      in_excursion = true;
      excursion_start = t;
    } else if (price <= reference_price && in_excursion) {
      in_excursion = false;
      ++f.excursions_above_reference;
      excursion_total += t - excursion_start;
    }
    t = segment_end;
  }
  f.changes_per_day = static_cast<double>(segments) / std::max(days, 1e-9);
  if (in_excursion) {
    ++f.excursions_above_reference;
    excursion_total += to - excursion_start;
  }
  if (f.excursions_above_reference > 0) {
    f.mean_excursion_minutes =
        sim::to_seconds(excursion_total) / 60.0 / f.excursions_above_reference;
  }

  // Lag-1h autocorrelation on a 5-minute grid.
  const auto samples = price_trace.sample(from, to, 5 * sim::kMinute, cursor);
  constexpr std::size_t kLag = 12;  // 12 x 5min = 1h
  if (samples.size() > kLag + 2) {
    const std::size_t n = samples.size() - kLag;
    std::vector<double> head(samples.begin(),
                             samples.begin() + static_cast<std::ptrdiff_t>(n));
    std::vector<double> tail(samples.begin() + kLag, samples.end());
    f.hourly_autocorrelation = pearson(head, tail);
  }
  return f;
}

double feature_distance(const TraceFeatures& a, const TraceFeatures& b) {
  double sum = 0.0;
  int dims = 0;
  auto add = [&](double x, double y) {
    sum += relative_error(x, y);
    ++dims;
  };
  add(a.mean_price, b.mean_price);
  add(a.stddev, b.stddev);
  add(a.changes_per_day, b.changes_per_day);
  add(a.fraction_below_reference, b.fraction_below_reference);
  add(static_cast<double>(a.excursions_above_reference),
      static_cast<double>(b.excursions_above_reference));
  add(a.mean_excursion_minutes, b.mean_excursion_minutes);
  add(a.max_over_reference, b.max_over_reference);
  return sum / dims;
}

}  // namespace spothost::trace
