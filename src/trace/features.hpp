// Trace feature extraction: the statistical fingerprint of a spot-price
// series. Used to calibrate the synthetic models against real EC2 exports
// and to compare the regime-switching and auction generators against each
// other (and against the paper's qualitative descriptions).
#pragma once

#include <vector>

#include "trace/price_trace.hpp"

namespace spothost::trace {

struct TraceFeatures {
  double mean_price = 0.0;           ///< time-weighted $/hr
  double stddev = 0.0;               ///< time-weighted
  double min_price = 0.0;
  double max_price = 0.0;
  double changes_per_day = 0.0;      ///< price-change event rate
  double fraction_below_reference = 0.0;   ///< time below p_ref
  int excursions_above_reference = 0;      ///< maximal intervals above p_ref
  double mean_excursion_minutes = 0.0;
  double max_over_reference = 0.0;         ///< max price / p_ref
  /// Lag-1-hour autocorrelation of the 5-minute-sampled series.
  double hourly_autocorrelation = 0.0;
};

/// Extracts features over the trace's full window, against a reference
/// price (typically the market's on-demand price).
TraceFeatures extract_features(const PriceTrace& price_trace,
                               double reference_price);

/// Windowed form: features over [from, to) only. Used by trailing-window
/// consumers (the revocation-predictive placement policy scores markets by
/// crossing statistics against its own bid). Requires a non-empty trace,
/// reference_price > 0, and start() <= from < to <= end(). In the windowed
/// form changes_per_day counts price segments intersecting the window.
TraceFeatures extract_features(const PriceTrace& price_trace,
                               double reference_price, sim::SimTime from,
                               sim::SimTime to);

/// Scalar dissimilarity between two fingerprints: mean relative error over
/// the comparable feature dimensions (0 = identical fingerprints). Useful
/// as a calibration objective.
double feature_distance(const TraceFeatures& a, const TraceFeatures& b);

}  // namespace spothost::trace
