#include "trace/price_trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace spothost::trace {

PriceTrace::PriceTrace(std::vector<PricePoint> points, sim::SimTime end) {
  for (const auto& p : points) {
    append(p.time, p.price);
  }
  set_end(end);
}

void PriceTrace::append(sim::SimTime time, double price) {
  if (!(price > 0) || !std::isfinite(price)) {
    throw std::invalid_argument("PriceTrace::append: price must be finite and > 0");
  }
  if (!points_.empty()) {
    if (time <= points_.back().time) {
      throw std::invalid_argument("PriceTrace::append: non-increasing timestamp");
    }
    if (points_.back().price == price) {
      end_ = std::max(end_, time);
      return;  // coalesce equal consecutive prices
    }
  }
  points_.push_back(PricePoint{time, price});
  end_ = std::max(end_, time);
}

void PriceTrace::amend_last(double price) {
  if (!(price > 0) || !std::isfinite(price)) {
    throw std::invalid_argument(
        "PriceTrace::amend_last: price must be finite and > 0");
  }
  if (points_.empty()) {
    throw std::logic_error("PriceTrace::amend_last: empty trace");
  }
  points_.back().price = price;
}

void PriceTrace::set_end(sim::SimTime end) {
  if (!points_.empty() && end < points_.back().time) {
    throw std::invalid_argument("PriceTrace::set_end: end before last point");
  }
  end_ = end;
}

sim::SimTime PriceTrace::start() const {
  if (points_.empty()) throw std::logic_error("PriceTrace::start: empty trace");
  return points_.front().time;
}

namespace {

// Forward hops tried linearly before falling back to binary search: covers
// the simulator's step-by-step advance without degrading a far jump past
// O(log n).
constexpr std::size_t kLinearScanLimit = 8;

}  // namespace

std::size_t PriceTrace::index_at(sim::SimTime t, PriceCursor& cursor) const {
  if (points_.empty() || t < points_.front().time || t >= end_) {
    throw std::out_of_range("PriceTrace: query outside [start, end)");
  }
  std::size_t i = cursor.index_ < points_.size() ? cursor.index_ : 0;
  if (points_[i].time <= t) {
    // Forward from the cursor: the monotone common case lands within a few
    // hops; a long jump gallops into a binary search of the remaining tail.
    std::size_t hops = 0;
    while (i + 1 < points_.size() && points_[i + 1].time <= t) {
      if (++hops > kLinearScanLimit) {
        const auto it = std::upper_bound(
            points_.begin() + static_cast<std::ptrdiff_t>(i + 1), points_.end(),
            t,
            [](sim::SimTime lhs, const PricePoint& p) { return lhs < p.time; });
        i = static_cast<std::size_t>(std::distance(points_.begin(), it)) - 1;
        break;
      }
      ++i;
    }
  } else {
    // Rewind: binary search the prefix before the cursor.
    const auto it = std::upper_bound(
        points_.begin(), points_.begin() + static_cast<std::ptrdiff_t>(i), t,
        [](sim::SimTime lhs, const PricePoint& p) { return lhs < p.time; });
    i = static_cast<std::size_t>(std::distance(points_.begin(), it)) - 1;
  }
  cursor.index_ = i;
  return i;
}

void PriceTrace::check_interval(const char* name, sim::SimTime from,
                                sim::SimTime to) const {
  if (from >= to) {
    throw std::invalid_argument(std::string(name) + ": empty interval");
  }
  if (to > end_) {
    // The step function is undefined past end(); silently extrapolating the
    // last price would fabricate data (and used to, for four of the five
    // interval statistics).
    throw std::out_of_range(std::string(name) +
                            ": interval extends past the trace end()");
  }
}

double PriceTrace::price_at(sim::SimTime t) const {
  PriceCursor cursor;
  return price_at(t, cursor);
}

double PriceTrace::price_at(sim::SimTime t, PriceCursor& cursor) const {
  return points_[index_at(t, cursor)].price;
}

std::optional<PricePoint> PriceTrace::next_change_after(sim::SimTime t) const {
  PriceCursor cursor;
  return next_change_after(t, cursor);
}

std::optional<PricePoint> PriceTrace::next_change_after(sim::SimTime t,
                                                        PriceCursor& cursor) const {
  if (points_.empty()) return std::nullopt;
  if (t < points_.front().time) {
    if (points_.front().time >= end_) return std::nullopt;
    return points_.front();
  }
  if (t >= end_) return std::nullopt;
  // t lies in [start, end): the next change is the point after t's segment.
  const std::size_t i = index_at(t, cursor);
  if (i + 1 < points_.size() && points_[i + 1].time < end_) return points_[i + 1];
  return std::nullopt;
}

double PriceTrace::time_average(sim::SimTime from, sim::SimTime to) const {
  PriceCursor cursor;
  return time_average(from, to, cursor);
}

double PriceTrace::time_average(sim::SimTime from, sim::SimTime to,
                                PriceCursor& cursor) const {
  check_interval("time_average", from, to);
  std::size_t i = index_at(from, cursor);
  double weighted = 0.0;
  sim::SimTime t = from;
  while (t < to) {
    const sim::SimTime seg_end =
        (i + 1 < points_.size()) ? std::min(points_[i + 1].time, to) : to;
    weighted += points_[i].price * static_cast<double>(seg_end - t);
    t = seg_end;
    if (t < to) ++i;
  }
  cursor.index_ = i;
  return weighted / static_cast<double>(to - from);
}

double PriceTrace::fraction_below(double threshold, sim::SimTime from,
                                  sim::SimTime to) const {
  PriceCursor cursor;
  return fraction_below(threshold, from, to, cursor);
}

double PriceTrace::fraction_below(double threshold, sim::SimTime from,
                                  sim::SimTime to, PriceCursor& cursor) const {
  check_interval("fraction_below", from, to);
  std::size_t i = index_at(from, cursor);
  sim::SimTime below = 0;
  sim::SimTime t = from;
  while (t < to) {
    const sim::SimTime seg_end =
        (i + 1 < points_.size()) ? std::min(points_[i + 1].time, to) : to;
    if (points_[i].price < threshold) below += seg_end - t;
    t = seg_end;
    if (t < to) ++i;
  }
  cursor.index_ = i;
  return static_cast<double>(below) / static_cast<double>(to - from);
}

double PriceTrace::min_price(sim::SimTime from, sim::SimTime to) const {
  PriceCursor cursor;
  return min_price(from, to, cursor);
}

double PriceTrace::min_price(sim::SimTime from, sim::SimTime to,
                             PriceCursor& cursor) const {
  check_interval("min_price", from, to);
  std::size_t i = index_at(from, cursor);
  double lo = points_[i].price;
  while (i + 1 < points_.size() && points_[i + 1].time < to) {
    ++i;
    lo = std::min(lo, points_[i].price);
  }
  cursor.index_ = i;
  return lo;
}

double PriceTrace::max_price(sim::SimTime from, sim::SimTime to) const {
  PriceCursor cursor;
  return max_price(from, to, cursor);
}

double PriceTrace::max_price(sim::SimTime from, sim::SimTime to,
                             PriceCursor& cursor) const {
  check_interval("max_price", from, to);
  std::size_t i = index_at(from, cursor);
  double hi = points_[i].price;
  while (i + 1 < points_.size() && points_[i + 1].time < to) {
    ++i;
    hi = std::max(hi, points_[i].price);
  }
  cursor.index_ = i;
  return hi;
}

std::vector<double> PriceTrace::sample(sim::SimTime from, sim::SimTime to,
                                       sim::SimTime step) const {
  PriceCursor cursor;
  return sample(from, to, step, cursor);
}

std::vector<double> PriceTrace::sample(sim::SimTime from, sim::SimTime to,
                                       sim::SimTime step,
                                       PriceCursor& cursor) const {
  if (step <= 0) throw std::invalid_argument("sample: step must be > 0");
  if (to > end_) {
    throw std::out_of_range("sample: interval extends past the trace end()");
  }
  std::vector<double> out;
  if (from >= to) return out;
  out.reserve(static_cast<std::size_t>((to - from) / step) + 1);
  // Single linear merge of the sample grid against the change points —
  // O(samples + points) instead of a lookup per sample.
  std::size_t i = index_at(from, cursor);
  for (sim::SimTime t = from; t < to; t += step) {
    while (i + 1 < points_.size() && points_[i + 1].time <= t) ++i;
    out.push_back(points_[i].price);
  }
  cursor.index_ = i;
  return out;
}

}  // namespace spothost::trace
