// Spot-price traces as right-continuous step functions.
//
// EC2 publishes spot prices as a sequence of (timestamp, price) change
// events; the price holds between events. PriceTrace stores exactly that and
// answers the queries the simulator needs: point lookup, next change after t,
// exact time-weighted integrals, and uniform resampling for statistics.
//
// Thread safety: a PriceTrace is built once (append/set_end) and immutable
// afterwards — every const query is a pure read, so one instance may be
// queried from any number of threads concurrently (this is what lets the
// experiment layer's memoized MarketTraceSets be shared across pool threads
// without copying). The monotone-scan acceleration state lives in an
// explicit per-reader PriceCursor owned by the caller, never in the trace.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "simcore/time.hpp"

namespace spothost::trace {

struct PricePoint {
  sim::SimTime time;  ///< instant the price takes effect
  double price;       ///< $/hour from `time` until the next point
};

/// Per-reader read position for amortized-O(1) monotone PriceTrace queries.
///
/// The scheduler and billing meter only move forward in simulation time, so
/// remembering the last segment served turns their point lookups into a
/// short linear scan (with a binary-search fallback for jumps and rewinds).
/// That memory is *reader* state, not trace state: each reader — a
/// SpotMarket, one statistics walk, one bench loop — owns its own cursor
/// and passes it to the cursor-taking query overloads. A cursor is cheap to
/// construct, belongs to one trace at a time (reusing it on another trace
/// is safe but degrades the first query to a search), and must not be
/// shared between threads — the trace itself may be.
class PriceCursor {
 public:
  PriceCursor() = default;

  /// Forgets the remembered position; the next query re-searches.
  void reset() noexcept { index_ = 0; }

 private:
  friend class PriceTrace;
  std::size_t index_ = 0;  ///< last segment index served
};

class PriceTrace {
 public:
  PriceTrace() = default;

  /// Builds from pre-sorted points (strictly increasing times, prices > 0).
  /// `end` is the exclusive end of the trace's validity window.
  PriceTrace(std::vector<PricePoint> points, sim::SimTime end);

  /// Appends a change event. `time` must be strictly after the last point
  /// (the first append defines start()). Equal consecutive prices are
  /// coalesced. Extends end() to at least `time`.
  void append(sim::SimTime time, double price);

  /// Marks the trace valid through `end` (exclusive). Must be >= last point.
  void set_end(sim::SimTime end);

  /// Replaces the last point's price in place (build phase only; throws on
  /// an empty trace). Exists for live accumulation (cloud::SpotMarket's
  /// push-fed billing record): two feed updates landing in the same
  /// millisecond collapse to one point, last price wins — append() cannot
  /// express that because its timestamps must strictly increase.
  void amend_last(double price);

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] sim::SimTime start() const;
  [[nodiscard]] sim::SimTime end() const noexcept { return end_; }

  // Every query comes in two const-safe flavours: a cursor-taking overload
  // (amortized O(1) along a monotone pass — pass the same cursor to each
  // successive call) and a cursorless convenience that searches from
  // scratch (O(log n)). Neither mutates the trace.

  /// Price in effect at `t`. Precondition: start() <= t < end().
  [[nodiscard]] double price_at(sim::SimTime t) const;
  [[nodiscard]] double price_at(sim::SimTime t, PriceCursor& cursor) const;

  /// First change event strictly after `t`, or nullopt if none before end().
  [[nodiscard]] std::optional<PricePoint> next_change_after(sim::SimTime t) const;
  [[nodiscard]] std::optional<PricePoint> next_change_after(
      sim::SimTime t, PriceCursor& cursor) const;

  // Interval statistics over [from, to). All of them require
  // start() <= from < to <= end(): an interval reaching past the validity
  // window throws std::out_of_range (the step function is unknown there),
  // an empty interval throws std::invalid_argument.

  /// Exact time-weighted average over [from, to) of the step function.
  [[nodiscard]] double time_average(sim::SimTime from, sim::SimTime to) const;
  [[nodiscard]] double time_average(sim::SimTime from, sim::SimTime to,
                                    PriceCursor& cursor) const;

  /// Fraction of [from, to) during which price < threshold (time-weighted).
  [[nodiscard]] double fraction_below(double threshold, sim::SimTime from,
                                      sim::SimTime to) const;
  [[nodiscard]] double fraction_below(double threshold, sim::SimTime from,
                                      sim::SimTime to, PriceCursor& cursor) const;

  /// Minimum / maximum price over [from, to).
  [[nodiscard]] double min_price(sim::SimTime from, sim::SimTime to) const;
  [[nodiscard]] double min_price(sim::SimTime from, sim::SimTime to,
                                 PriceCursor& cursor) const;
  [[nodiscard]] double max_price(sim::SimTime from, sim::SimTime to) const;
  [[nodiscard]] double max_price(sim::SimTime from, sim::SimTime to,
                                 PriceCursor& cursor) const;

  /// Samples price at from, from+step, ... (< to) — for correlation grids.
  /// Requires to <= end(); an empty interval yields an empty vector.
  [[nodiscard]] std::vector<double> sample(sim::SimTime from, sim::SimTime to,
                                           sim::SimTime step) const;
  [[nodiscard]] std::vector<double> sample(sim::SimTime from, sim::SimTime to,
                                           sim::SimTime step,
                                           PriceCursor& cursor) const;

  [[nodiscard]] const std::vector<PricePoint>& points() const noexcept { return points_; }

 private:
  // Index of the point governing time t (largest i with points_[i].time <= t).
  // Starts from the caller's cursor: a short linear scan forward for the
  // monotone common case, binary search otherwise; leaves the cursor at the
  // result.
  [[nodiscard]] std::size_t index_at(sim::SimTime t, PriceCursor& cursor) const;

  // Shared [from, to) validation for the interval statistics.
  void check_interval(const char* name, sim::SimTime from, sim::SimTime to) const;

  std::vector<PricePoint> points_;
  sim::SimTime end_ = 0;
};

}  // namespace spothost::trace
