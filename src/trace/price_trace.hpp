// Spot-price traces as right-continuous step functions.
//
// EC2 publishes spot prices as a sequence of (timestamp, price) change
// events; the price holds between events. PriceTrace stores exactly that and
// answers the queries the simulator needs: point lookup, next change after t,
// exact time-weighted integrals, and uniform resampling for statistics.
//
// Lookups keep a read cursor at the last segment served: the scheduler and
// billing only move forward in simulation time, so point queries are
// amortized O(1) along a monotone pass (with a binary-search fallback for
// jumps and rewinds). The cursor makes const queries mutate internal state —
// a PriceTrace instance is therefore NOT safe for concurrent queries; give
// each thread its own copy (copies are independent, and the experiment
// layer's memoized trace sets are only ever copied from, never queried
// concurrently).
#pragma once

#include <optional>
#include <vector>

#include "simcore/time.hpp"

namespace spothost::trace {

struct PricePoint {
  sim::SimTime time;  ///< instant the price takes effect
  double price;       ///< $/hour from `time` until the next point
};

class PriceTrace {
 public:
  PriceTrace() = default;

  /// Builds from pre-sorted points (strictly increasing times, prices > 0).
  /// `end` is the exclusive end of the trace's validity window.
  PriceTrace(std::vector<PricePoint> points, sim::SimTime end);

  /// Appends a change event. `time` must be strictly after the last point
  /// (the first append defines start()). Equal consecutive prices are
  /// coalesced. Extends end() to at least `time`.
  void append(sim::SimTime time, double price);

  /// Marks the trace valid through `end` (exclusive). Must be >= last point.
  void set_end(sim::SimTime end);

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] sim::SimTime start() const;
  [[nodiscard]] sim::SimTime end() const noexcept { return end_; }

  /// Price in effect at `t`. Precondition: start() <= t < end().
  [[nodiscard]] double price_at(sim::SimTime t) const;

  /// First change event strictly after `t`, or nullopt if none before end().
  [[nodiscard]] std::optional<PricePoint> next_change_after(sim::SimTime t) const;

  /// Exact time-weighted average over [from, to) of the step function.
  [[nodiscard]] double time_average(sim::SimTime from, sim::SimTime to) const;

  /// Fraction of [from, to) during which price < threshold (time-weighted).
  [[nodiscard]] double fraction_below(double threshold, sim::SimTime from,
                                      sim::SimTime to) const;

  /// Minimum / maximum price over [from, to).
  [[nodiscard]] double min_price(sim::SimTime from, sim::SimTime to) const;
  [[nodiscard]] double max_price(sim::SimTime from, sim::SimTime to) const;

  /// Samples price at from, from+step, ... (< to) — for correlation grids.
  [[nodiscard]] std::vector<double> sample(sim::SimTime from, sim::SimTime to,
                                           sim::SimTime step) const;

  [[nodiscard]] const std::vector<PricePoint>& points() const noexcept { return points_; }

 private:
  // Index of the point governing time t (largest i with points_[i].time <= t).
  // Starts from the cursor: a short linear scan forward for the monotone
  // common case, binary search otherwise; leaves the cursor at the result.
  [[nodiscard]] std::size_t index_at(sim::SimTime t) const;

  std::vector<PricePoint> points_;
  sim::SimTime end_ = 0;
  // Last segment index served by index_at. Pure acceleration state: no query
  // result depends on it. Mutated by const lookups (see header comment).
  mutable std::size_t cursor_ = 0;
};

}  // namespace spothost::trace
