#include "trace/profiles.hpp"

#include <array>
#include <stdexcept>
#include <string>

namespace spothost::trace {
namespace {

constexpr std::array<std::string_view, 4> kRegions{
    "us-east-1a", "us-east-1b", "us-west-1a", "eu-west-1a"};

constexpr std::array<std::string_view, 4> kSizes{"small", "medium", "large", "xlarge"};

struct RegionTuning {
  std::string_view region;
  double base_fraction;
  double base_jitter_sigma;
  double spike_rate_per_day;
  double spike_pareto_xm;
  double spike_pareto_alpha;  ///< lower alpha = heavier tail = sharper markets
  double spike_duration_mean_minutes;
  double shared_spike_fraction;
  /// Per-size base-price dispersion (small..xlarge). Real spot markets of
  /// different sizes in one region priced very unevenly relative to their
  /// on-demand price — this dispersion is what makes multi-market bidding
  /// pay off (Fig. 8(a)'s 8-52 % reductions).
  std::array<double, 4> size_base_scale;
};

// us-east: cheap and volatile with heavy spike tails; us-west: middling;
// eu-west: pricier, stable, light tails. Tail exponents are chosen so that
// roughly half of us-east spikes exceed the on-demand price and about a
// third of those blow past the 4x proactive bid (Sec. 4.2/4.3 dynamics).
constexpr std::array<RegionTuning, 4> kRegionTuning{{
    {"us-east-1a", 0.22, 0.22, 0.45, 0.50, 0.80, 45.0, 0.30,
     {1.00, 0.82, 0.70, 0.95}},
    {"us-east-1b", 0.24, 0.20, 0.42, 0.50, 0.85, 40.0, 0.30,
     {0.95, 1.05, 0.72, 0.80}},
    {"us-west-1a", 0.32, 0.14, 0.20, 0.45, 1.05, 35.0, 0.20,
     {1.00, 0.85, 1.10, 0.75}},
    {"eu-west-1a", 0.40, 0.10, 0.09, 0.40, 1.30, 30.0, 0.15,
     {1.00, 0.92, 0.78, 0.98}},
}};

// Larger instance markets spike more often — matching Fig. 10's stddev
// growth with size.
struct SizeTuning {
  std::string_view size;
  std::size_t index;
  double spike_rate_scale;
};

constexpr std::array<SizeTuning, 4> kSizeTuning{{
    {"small", 0, 1.00},
    {"medium", 1, 1.10},
    {"large", 2, 1.25},
    {"xlarge", 3, 1.40},
}};

const RegionTuning& region_tuning(std::string_view region) {
  for (const auto& t : kRegionTuning) {
    if (t.region == region) return t;
  }
  throw std::invalid_argument("unknown region: " + std::string(region));
}

const SizeTuning& size_tuning(std::string_view size) {
  for (const auto& t : kSizeTuning) {
    if (t.size == size) return t;
  }
  throw std::invalid_argument("unknown size: " + std::string(size));
}

}  // namespace

std::span<const std::string_view> canonical_regions() { return kRegions; }

std::span<const std::string_view> canonical_sizes() { return kSizes; }

MarketProfile profile_for(std::string_view region, std::string_view size) {
  const RegionTuning& rt = region_tuning(region);
  const SizeTuning& st = size_tuning(size);
  MarketProfile p;
  p.base_fraction = rt.base_fraction * rt.size_base_scale[st.index];
  p.base_jitter_sigma = rt.base_jitter_sigma;
  p.spike_rate_per_day = rt.spike_rate_per_day * st.spike_rate_scale;
  p.spike_pareto_xm = rt.spike_pareto_xm;
  p.spike_pareto_alpha = rt.spike_pareto_alpha;
  p.spike_duration_mean_minutes = rt.spike_duration_mean_minutes;
  p.shared_spike_fraction = rt.shared_spike_fraction;
  return p;
}

double region_shared_spike_rate(std::string_view region) {
  return region_tuning(region).spike_rate_per_day;
}

}  // namespace spothost::trace
