// Canonical market profiles for the four regions the paper evaluates
// (Sec. 4.1): us-east-1a, us-east-1b, us-west-1a, eu-west-1a.
//
// Calibration targets, from the paper:
//  * Fig. 1: long cheap stretches, spikes to several x the on-demand price;
//  * Fig. 10: us-east prices noticeably more variable than us-west/eu-west;
//  * Sec. 4.5: us-east cheaper but volatile, eu-west pricier but stable;
//  * Fig. 8(b)/9(b): weak correlation within and across regions.
// Profiles are expressed relative to the on-demand price, so one profile
// serves all four instance sizes of its region (with mild per-size scaling —
// bigger instances historically showed choppier spot markets).
#pragma once

#include <span>
#include <string_view>

#include "trace/synthetic.hpp"

namespace spothost::trace {

/// The four canonical regions, in evaluation order.
std::span<const std::string_view> canonical_regions();

/// The four canonical size names, in evaluation order.
std::span<const std::string_view> canonical_sizes();

/// Profile for a (region, size) market. Throws std::invalid_argument for an
/// unknown region or size name.
MarketProfile profile_for(std::string_view region, std::string_view size);

/// Spike rate used for a region's shared (correlated) spike schedule.
double region_shared_spike_rate(std::string_view region);

}  // namespace spothost::trace
