#include "trace/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spothost::trace {

double mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("mean: empty sample");
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  const double m = mean(xs);
  double s = 0.0;
  for (const double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("pearson: length mismatch");
  }
  if (xs.empty()) throw std::invalid_argument("pearson: empty sample");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  // Degenerate (constant) sides have undefined correlation; the comparison
  // uses a relative epsilon because accumulating a constant leaves O(eps)
  // dust in the centered sums that would otherwise read as correlation 1.
  const double n = static_cast<double>(xs.size());
  const double x_eps = 1e-9 * std::abs(mx);
  const double y_eps = 1e-9 * std::abs(my);
  if (sxx <= x_eps * x_eps * n || syy <= y_eps * y_eps * n) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double trace_stddev(const PriceTrace& trace, sim::SimTime from, sim::SimTime to) {
  if (from >= to) throw std::invalid_argument("trace_stddev: empty interval");
  PriceCursor cursor;
  const double m = trace.time_average(from, to, cursor);
  // Walk the step function segments and accumulate weighted squared error.
  double acc = 0.0;
  sim::SimTime t = from;
  while (t < to) {
    const double p = trace.price_at(t, cursor);
    const auto next = trace.next_change_after(t, cursor);
    const sim::SimTime seg_end = next ? std::min(next->time, to) : to;
    acc += (p - m) * (p - m) * static_cast<double>(seg_end - t);
    t = seg_end;
  }
  return std::sqrt(acc / static_cast<double>(to - from));
}

double trace_correlation(const PriceTrace& a, const PriceTrace& b, sim::SimTime step) {
  const sim::SimTime from = std::max(a.start(), b.start());
  const sim::SimTime to = std::min(a.end(), b.end());
  if (from >= to) throw std::invalid_argument("trace_correlation: disjoint windows");
  const auto xs = a.sample(from, to, step);
  const auto ys = b.sample(from, to, step);
  return pearson(xs, ys);
}

double mean_pairwise_correlation(std::span<const PriceTrace> traces, sim::SimTime step) {
  if (traces.size() < 2) {
    throw std::invalid_argument("mean_pairwise_correlation: need >= 2 traces");
  }
  double sum = 0.0;
  int pairs = 0;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    for (std::size_t j = i + 1; j < traces.size(); ++j) {
      sum += trace_correlation(traces[i], traces[j], step);
      ++pairs;
    }
  }
  return sum / pairs;
}

}  // namespace spothost::trace
