// Statistics over price traces: the quantities the paper plots in
// Fig. 8(b), 9(b) (Pearson correlation) and Fig. 10 (price stddev).
#pragma once

#include <span>
#include <vector>

#include "trace/price_trace.hpp"

namespace spothost::trace {

/// Arithmetic mean of a sample vector. Throws on empty input.
double mean(std::span<const double> xs);

/// Population standard deviation of a sample vector. Throws on empty input.
double stddev(std::span<const double> xs);

/// Pearson correlation coefficient of two equal-length sample vectors.
/// Returns 0 when either side is constant (correlation undefined).
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Time-weighted standard deviation of a trace over [from, to) — exact over
/// the step function, matching Fig. 10's per-market variability measure.
double trace_stddev(const PriceTrace& trace, sim::SimTime from, sim::SimTime to);

/// Pearson correlation of two traces sampled on a uniform grid over their
/// common validity window — matching Fig. 8(b)/9(b).
double trace_correlation(const PriceTrace& a, const PriceTrace& b,
                         sim::SimTime step = 5 * sim::kMinute);

/// Mean pairwise trace correlation across a set of traces (Fig. 8(b) bars).
double mean_pairwise_correlation(std::span<const PriceTrace> traces,
                                 sim::SimTime step = 5 * sim::kMinute);

}  // namespace spothost::trace
