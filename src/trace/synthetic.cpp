#include "trace/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace spothost::trace {
namespace {

constexpr double kMinPrice = 0.001;  // floor, $/hr — EC2 never quotes 0

// Price contributed by a spike at time t (0 if t outside the spike).
double spike_level_at(const SpikeEvent& s, sim::SimTime t, double base_floor) {
  if (t < s.start || t >= s.end) return 0.0;
  // Onset ramp: step r of ramp_steps reaches magnitude * (r+1)/ramp_steps.
  const sim::SimTime since = t - s.start;
  const int step = (s.ramp_spacing > 0)
                       ? static_cast<int>(since / s.ramp_spacing)
                       : s.ramp_steps;
  const int level = std::min(step + 1, s.ramp_steps);
  const double frac = static_cast<double>(level) / static_cast<double>(s.ramp_steps);
  return std::max(base_floor, s.magnitude * frac);
}

}  // namespace

SpikeEvent SyntheticSpotModel::draw_spike(sim::SimTime at, double on_demand_price,
                                          const MarketProfile& profile,
                                          sim::RngStream& rng) {
  SpikeEvent s;
  s.start = at;
  double magnitude =
      on_demand_price * rng.pareto(profile.spike_pareto_xm, profile.spike_pareto_alpha);
  magnitude = std::min(magnitude, on_demand_price * profile.spike_cap_multiple);
  s.magnitude = magnitude;
  const double duration_min = rng.lognormal_mean_cv(profile.spike_duration_mean_minutes,
                                                    profile.spike_duration_cv);
  const sim::SimTime duration =
      std::max<sim::SimTime>(sim::kMinute, sim::from_seconds(duration_min * 60.0));
  s.end = at + duration;
  s.ramp_steps = (profile.max_ramp_steps <= 1)
                     ? 1
                     : static_cast<int>(rng.uniform_int(1, profile.max_ramp_steps));
  s.ramp_spacing = (s.ramp_steps > 1)
                       ? sim::from_seconds(std::max(
                             1.0, rng.exponential(profile.ramp_step_mean_seconds)))
                       : 0;
  return s;
}

SharedSpikeSchedule SyntheticSpotModel::generate_shared_spikes(
    double rate_per_day, const MarketProfile& profile, sim::SimTime horizon,
    sim::RngStream& rng) {
  std::vector<SpikeEvent> spikes;
  if (rate_per_day <= 0) return SharedSpikeSchedule{};
  const double mean_gap_ms = static_cast<double>(sim::kDay) / rate_per_day;
  sim::SimTime t = sim::from_seconds(rng.exponential(mean_gap_ms / 1000.0));
  while (t < horizon) {
    // Magnitude relative to p_on = 1; consumers rescale per market.
    spikes.push_back(draw_spike(t, 1.0, profile, rng));
    t += sim::from_seconds(rng.exponential(mean_gap_ms / 1000.0));
  }
  return SharedSpikeSchedule(std::move(spikes));
}

PriceTrace SyntheticSpotModel::generate(const MarketProfile& profile,
                                        double on_demand_price, sim::SimTime horizon,
                                        sim::RngStream& rng,
                                        const SharedSpikeSchedule* shared) {
  if (horizon <= 0) throw std::invalid_argument("SyntheticSpotModel: horizon <= 0");
  if (on_demand_price <= 0) {
    throw std::invalid_argument("SyntheticSpotModel: on-demand price <= 0");
  }

  // 1. Base level changes: (time, base price) step sequence.
  std::vector<PricePoint> base;
  const double mean_base = on_demand_price * profile.base_fraction;
  auto draw_base = [&]() {
    const double level = mean_base * std::exp(rng.normal(0.0, profile.base_jitter_sigma));
    return std::max(kMinPrice, level);
  };
  sim::SimTime t = 0;
  base.push_back({0, draw_base()});
  while (true) {
    const double gap_min = rng.exponential(profile.base_change_mean_minutes);
    t += std::max<sim::SimTime>(sim::kSecond, sim::from_seconds(gap_min * 60.0));
    if (t >= horizon) break;
    base.push_back({t, draw_base()});
  }

  // 2. Own spikes (Poisson), plus adopted shared spikes.
  std::vector<SpikeEvent> spikes;
  const double own_rate = profile.spike_rate_per_day * (1.0 - profile.shared_spike_fraction);
  if (own_rate > 0) {
    const double mean_gap_s = 86400.0 / own_rate;
    sim::SimTime st = sim::from_seconds(rng.exponential(mean_gap_s));
    while (st < horizon) {
      spikes.push_back(draw_spike(st, on_demand_price, profile, rng));
      st += sim::from_seconds(rng.exponential(mean_gap_s));
    }
  }
  if (shared != nullptr && profile.shared_spike_fraction > 0) {
    for (const SpikeEvent& s : shared->spikes()) {
      if (rng.chance(profile.shared_spike_fraction) && s.start < horizon) {
        SpikeEvent scaled = s;  // shared magnitudes are multiples of p_on
        scaled.magnitude *= on_demand_price;
        spikes.push_back(scaled);
      }
    }
  }

  // 3. Merge into a step function: evaluate at every base change, spike ramp
  // step, and spike end; price = max(base, active spike levels).
  std::map<sim::SimTime, char> breakpoints;  // value unused; map = sorted set
  for (const auto& b : base) breakpoints[b.time];
  for (const auto& s : spikes) {
    for (int r = 0; r < s.ramp_steps; ++r) {
      const sim::SimTime rt = s.start + static_cast<sim::SimTime>(r) * s.ramp_spacing;
      if (rt < horizon) breakpoints[rt];
    }
    if (s.end < horizon) breakpoints[s.end];
  }

  auto base_at = [&](sim::SimTime when) {
    auto it = std::upper_bound(
        base.begin(), base.end(), when,
        [](sim::SimTime lhs, const PricePoint& p) { return lhs < p.time; });
    return std::prev(it)->price;
  };

  PriceTrace out;
  for (const auto& [when, unused] : breakpoints) {
    (void)unused;
    double price = base_at(when);
    for (const auto& s : spikes) {
      price = std::max(price, spike_level_at(s, when, price));
    }
    if (out.empty()) {
      out.append(when, price);
    } else if (when > out.points().back().time) {
      out.append(when, price);
    }
  }
  out.set_end(horizon);
  return out;
}

}  // namespace spothost::trace
