// Regime-switching synthetic spot-price model.
//
// The scheduler in the paper exploits three statistical features of EC2 spot
// prices (Sec. 2.1, Fig. 1, Fig. 10): (1) long calm stretches well below the
// on-demand price, (2) sharp, short demand spikes that can exceed several
// times the on-demand price, and (3) weak correlation across markets and
// regions. The model reproduces exactly those features:
//
//   price(t) = max(base(t), spike_level(t))
//
// * base(t): piecewise-constant multiplicative random walk around
//   base_fraction * p_on; change inter-arrivals are exponential.
// * spikes: Poisson arrivals; magnitude is Pareto-distributed (heavy tail —
//   most excursions stay below p_on, a few blow past the 4x proactive bid);
//   onset ramps over 1..max_ramp_steps discrete jumps; duration lognormal.
// * correlation: a fraction of spikes is copied from a per-region shared
//   schedule, giving weak positive intra-region correlation.
#pragma once

#include <cstdint>
#include <vector>

#include "simcore/rng.hpp"
#include "simcore/time.hpp"
#include "trace/price_trace.hpp"

namespace spothost::trace {

/// Parameters of one market's price process, expressed relative to the
/// market's on-demand price so the same profile scales across sizes.
struct MarketProfile {
  double base_fraction = 0.28;     ///< mean calm price / p_on
  double base_jitter_sigma = 0.18; ///< stddev of log base around its mean
  double base_change_mean_minutes = 35.0;  ///< mean base-change inter-arrival
  double spike_rate_per_day = 0.35;        ///< Poisson spike arrival rate
  double spike_pareto_xm = 0.55;           ///< spike magnitude scale (× p_on)
  double spike_pareto_alpha = 1.25;        ///< spike magnitude tail exponent
  double spike_cap_multiple = 12.0;        ///< magnitude clamp (× p_on)
  double spike_duration_mean_minutes = 40.0;
  double spike_duration_cv = 0.9;
  int max_ramp_steps = 3;                  ///< spike onset jumps (1 = instant)
  double ramp_step_mean_seconds = 45.0;    ///< spacing between onset jumps
  double shared_spike_fraction = 0.25;     ///< spikes copied from region schedule
};

/// One spike interval: onset ramp start, full-magnitude plateau, and decay.
struct SpikeEvent {
  sim::SimTime start = 0;      ///< first ramp jump
  sim::SimTime end = 0;        ///< price returns to base
  double magnitude = 0.0;      ///< plateau level in $/hr
  int ramp_steps = 1;
  sim::SimTime ramp_spacing = 0;
};

/// A per-region schedule of shared spikes that correlated markets can adopt.
class SharedSpikeSchedule {
 public:
  SharedSpikeSchedule() = default;
  explicit SharedSpikeSchedule(std::vector<SpikeEvent> spikes)
      : spikes_(std::move(spikes)) {}
  [[nodiscard]] const std::vector<SpikeEvent>& spikes() const noexcept { return spikes_; }

 private:
  std::vector<SpikeEvent> spikes_;
};

class SyntheticSpotModel {
 public:
  /// Generates the shared (region-level) spike schedule for [0, horizon).
  /// Shared spike magnitudes are stored as *multiples of p_on* so one
  /// schedule serves markets of every size; generate() rescales them.
  /// `rate_per_day` should roughly match the profiles that will consume it.
  static SharedSpikeSchedule generate_shared_spikes(double rate_per_day,
                                                    const MarketProfile& profile,
                                                    sim::SimTime horizon,
                                                    sim::RngStream& rng);

  /// Generates a price trace for [0, horizon). `shared` may be null for a
  /// fully independent market.
  static PriceTrace generate(const MarketProfile& profile, double on_demand_price,
                             sim::SimTime horizon, sim::RngStream& rng,
                             const SharedSpikeSchedule* shared = nullptr);

 private:
  static SpikeEvent draw_spike(sim::SimTime at, double on_demand_price,
                               const MarketProfile& profile, sim::RngStream& rng);
};

}  // namespace spothost::trace
