#include "virt/checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace spothost::virt {

BoundedCheckpointer::BoundedCheckpointer(CheckpointParams params) : params_(params) {
  if (params_.bound_tau_s <= 0 || params_.write_rate_mb_s <= 0) {
    throw std::invalid_argument("BoundedCheckpointer: tau and write rate must be > 0");
  }
}

double BoundedCheckpointer::max_incremental_mb(const VmSpec& spec) const {
  return std::min(spec.working_set_mb, params_.bound_tau_s * params_.write_rate_mb_s);
}

double BoundedCheckpointer::checkpoint_period_s(const VmSpec& spec) const {
  const double cap = max_incremental_mb(spec);
  if (spec.dirty_rate_mb_s <= 0) return std::numeric_limits<double>::infinity();
  if (cap >= spec.working_set_mb) {
    // The dirty set saturates below the cap: flushing is always within
    // bound, so checkpoint lazily (once per saturation interval).
    return spec.working_set_mb / spec.dirty_rate_mb_s;
  }
  return cap / spec.dirty_rate_mb_s;
}

double BoundedCheckpointer::flush_time_s(const VmSpec& spec) const {
  return max_incremental_mb(spec) / params_.write_rate_mb_s;
}

double BoundedCheckpointer::full_checkpoint_time_s(const VmSpec& spec) const {
  return spec.memory_mb() / params_.write_rate_mb_s;
}

double BoundedCheckpointer::background_overhead_fraction(const VmSpec& spec) const {
  const double period = checkpoint_period_s(spec);
  if (!std::isfinite(period) || period <= 0) return 0.0;
  const double write_s = max_incremental_mb(spec) / params_.write_rate_mb_s;
  return std::min(1.0, write_s / period);
}

}  // namespace spothost::virt
