// Bounded memory checkpointing, modelled on Yank (Singh et al., NSDI'13).
//
// A background process continuously writes memory state to a network volume.
// Given a bound tau, the checkpoint period is adapted so that the incremental
// dirty state at any instant can be flushed within tau seconds — exactly what
// a 2-minute revocation warning needs (Sec. 3.2).
#pragma once

#include "virt/vm.hpp"

namespace spothost::virt {

struct CheckpointParams {
  double bound_tau_s = 10.0;       ///< guaranteed flush bound
  double write_rate_mb_s = 36.0;   ///< network-volume sequential write rate
};

class BoundedCheckpointer {
 public:
  explicit BoundedCheckpointer(CheckpointParams params);

  [[nodiscard]] const CheckpointParams& params() const noexcept { return params_; }

  /// Largest incremental state the bound permits: min(working set, tau * rate).
  [[nodiscard]] double max_incremental_mb(const VmSpec& spec) const;

  /// Background checkpoint period that keeps increments under the cap.
  /// Infinite (very large) when the guest dirties slower than the cap fills.
  [[nodiscard]] double checkpoint_period_s(const VmSpec& spec) const;

  /// Worst-case flush time on a revocation warning; always <= tau.
  [[nodiscard]] double flush_time_s(const VmSpec& spec) const;

  /// Time for the initial full checkpoint of all RAM.
  [[nodiscard]] double full_checkpoint_time_s(const VmSpec& spec) const;

  /// Fraction of storage write bandwidth consumed by background checkpoints
  /// in steady state (increment size / period / rate).
  [[nodiscard]] double background_overhead_fraction(const VmSpec& spec) const;

 private:
  CheckpointParams params_;
};

}  // namespace spothost::virt
