#include "virt/checkpoint_process.hpp"

#include <algorithm>
#include <stdexcept>

#include "virt/memory_model.hpp"

namespace spothost::virt {

CheckpointProcess::CheckpointProcess(sim::Clock& clock, VmSpec spec,
                                     CheckpointParams params)
    : clock_(clock), spec_(spec), params_(params) {
  if (params_.bound_tau_s <= 0 || params_.write_rate_mb_s <= 0) {
    throw std::invalid_argument("CheckpointProcess: bad parameters");
  }
}

double CheckpointProcess::dirty_since(sim::SimTime since) const {
  const double elapsed_s = sim::to_seconds(clock_.now() - since);
  return dirty_mb_after(spec_, std::max(0.0, elapsed_s));
}

double CheckpointProcess::cap_mb() const {
  return std::min(spec_.working_set_mb,
                  params_.bound_tau_s * params_.write_rate_mb_s);
}

double CheckpointProcess::trigger_mb() const {
  // Yank's adjustment: dirt arriving while the background write drains must
  // still leave the post-write staleness under the cap.
  return cap_mb() / (1.0 + spec_.dirty_rate_mb_s / params_.write_rate_mb_s);
}

double CheckpointProcess::staleness_mb() const {
  if (!initial_done_) return spec_.memory_mb();  // nothing captured yet
  // The clamp is the throttle: the guest is stunned rather than allowed to
  // outrun the checkpoint stream.
  return std::min(dirty_since(clean_point_), cap_mb());
}

bool CheckpointProcess::is_throttling() const {
  if (!initial_done_) return false;
  return dirty_since(clean_point_) > cap_mb();
}

double CheckpointProcess::flush_time_now_s() const {
  return staleness_mb() / params_.write_rate_mb_s;
}

void CheckpointProcess::start() {
  if (started_) throw std::logic_error("CheckpointProcess: started twice");
  started_ = true;
  // Initial full checkpoint of all RAM.
  writing_ = true;
  write_began_ = clock_.now();
  const double full_s = spec_.memory_mb() / params_.write_rate_mb_s;
  pending_event_ = clock_.after(sim::from_seconds(full_s), [this] {
    pending_event_.reset();
    writing_ = false;
    initial_done_ = true;
    ++completed_;
    clean_point_ = write_began_;
    schedule_next_trigger();
  });
}

void CheckpointProcess::stop() {
  stopped_ = true;
  pending_event_.cancel();
  writing_ = false;
}

void CheckpointProcess::set_dirty_rate(double dirty_mb_s) {
  if (dirty_mb_s < 0) {
    throw std::invalid_argument("CheckpointProcess: negative dirty rate");
  }
  // Account dirt accumulated at the old rate by moving the clean point so
  // that the current staleness is preserved under the new rate.
  if (initial_done_ && !writing_) {
    const double staleness = staleness_mb();
    spec_.dirty_rate_mb_s = dirty_mb_s;
    if (dirty_mb_s > 0) {
      const double equivalent_s = staleness / dirty_mb_s;
      clean_point_ = clock_.now() - sim::from_seconds(equivalent_s);
    } else {
      clean_point_ = clock_.now();
    }
    pending_event_.cancel();
    schedule_next_trigger();
  } else {
    spec_.dirty_rate_mb_s = dirty_mb_s;
  }
}

void CheckpointProcess::schedule_next_trigger() {
  if (stopped_) return;
  if (spec_.dirty_rate_mb_s <= 0) return;  // idle guest: nothing will dirty
  const double staleness = staleness_mb();
  const double trigger = trigger_mb();
  const double wait_s = (staleness >= trigger)
                            ? 0.0
                            : (trigger - staleness) / spec_.dirty_rate_mb_s;
  pending_event_ = clock_.after(sim::from_seconds(wait_s), [this] {
    pending_event_.reset();
    begin_write();
  });
}

void CheckpointProcess::begin_write() {
  if (stopped_) return;
  writing_ = true;
  write_began_ = clock_.now();
  const double increment = staleness_mb();
  const double write_s = increment / params_.write_rate_mb_s;
  pending_event_ = clock_.after(sim::from_seconds(write_s), [this] {
    pending_event_.reset();
    writing_ = false;
    ++completed_;
    clean_point_ = write_began_;
    schedule_next_trigger();
  });
}

}  // namespace spothost::virt
