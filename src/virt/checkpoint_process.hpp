// Yank-style background checkpointing as a live discrete-event process.
//
// The MigrationPlanner prices forced migrations with the *guaranteed* flush
// bound tau. This process is the mechanism that makes the guarantee true:
// it continuously writes incremental checkpoints, adapting its trigger point
// to the current dirty rate so that the unflushed state never exceeds
// tau * write_rate — even while a background write is in flight (new dirt
// accumulates during a write, so the trigger must be tightened by
// 1 / (1 + dirty_rate/write_rate), exactly Yank's adjustment).
//
// When the guest dirties faster than the volume can absorb, no schedule can
// keep the increment bounded — Yank then *throttles* (stuns) the guest so
// writes never outrun the checkpoint stream. The model reflects that:
// unflushed state is clamped at the bound's cap, and is_throttling() reports
// when the clamp (i.e. guest slowdown) is active.
//
// Invariant (tested): once the initial full checkpoint has completed,
// flush_time_now_s() <= tau at every instant.
#pragma once

#include "simcore/clock.hpp"
#include "virt/checkpoint.hpp"
#include "virt/vm.hpp"

namespace spothost::virt {

class CheckpointProcess {
 public:
  CheckpointProcess(sim::Clock& clock, VmSpec spec,
                    CheckpointParams params);

  /// Begins with a full checkpoint, then runs adaptive incrementals. Call
  /// once.
  void start();

  /// Stops scheduling further checkpoints (the VM suspended or moved away).
  void stop();

  /// Changes the guest's dirty rate (workload shift). Takes effect for
  /// staleness growth immediately and re-plans the next trigger.
  void set_dirty_rate(double dirty_mb_s);

  /// MB of guest state not yet safely on the volume, at the current time.
  /// Capped at the working set (re-dirtying the same pages) and — once the
  /// initial checkpoint is in — at the bound cap (guest throttling).
  [[nodiscard]] double staleness_mb() const;

  /// True when the bound is only being met by throttling the guest (the
  /// unclamped dirty accumulation exceeds the cap). A performance alarm,
  /// not a correctness problem.
  [[nodiscard]] bool is_throttling() const;

  /// The staleness clamp: min(working set, tau * write rate).
  [[nodiscard]] double cap_mb() const;

  /// Time to flush if a revocation warning arrived right now (VM paused, so
  /// no new dirt during the flush). Guaranteed <= params.bound_tau_s once
  /// the initial full checkpoint has completed.
  [[nodiscard]] double flush_time_now_s() const;

  /// Trigger level for the next incremental checkpoint (MB), after Yank's
  /// in-flight-dirt adjustment.
  [[nodiscard]] double trigger_mb() const;

  [[nodiscard]] int completed_checkpoints() const noexcept { return completed_; }
  [[nodiscard]] bool write_in_progress() const noexcept { return writing_; }
  [[nodiscard]] bool initial_checkpoint_done() const noexcept {
    return initial_done_;
  }
  [[nodiscard]] const VmSpec& spec() const noexcept { return spec_; }

 private:
  void schedule_next_trigger();
  void begin_write();
  [[nodiscard]] double dirty_since(sim::SimTime since) const;

  sim::Clock& clock_;
  VmSpec spec_;
  CheckpointParams params_;

  bool started_ = false;
  bool stopped_ = false;
  bool writing_ = false;
  bool initial_done_ = false;
  int completed_ = 0;
  /// Instant whose guest state is fully captured by the last completed
  /// checkpoint (= the moment that write *began*).
  sim::SimTime clean_point_ = 0;
  /// Begin time of the in-flight write (valid while writing_).
  sim::SimTime write_began_ = 0;
  sim::EventHandle pending_event_;
};

}  // namespace spothost::virt
