#include "virt/live_migration.hpp"

#include <stdexcept>

#include "virt/memory_model.hpp"

namespace spothost::virt {

LiveMigrationResult simulate_live_migration(const VmSpec& spec, double bandwidth_mb_s,
                                            const LiveMigrationParams& params) {
  if (bandwidth_mb_s <= 0) {
    throw std::invalid_argument("simulate_live_migration: bandwidth must be > 0");
  }
  if (params.max_rounds < 1) {
    throw std::invalid_argument("simulate_live_migration: max_rounds must be >= 1");
  }

  LiveMigrationResult result;
  double to_send_mb = spec.memory_mb();  // round 0: full RAM
  for (int round = 0; round < params.max_rounds; ++round) {
    const double round_time_s = to_send_mb / bandwidth_mb_s;
    result.duration_s += round_time_s;
    result.transferred_mb += to_send_mb;
    result.rounds = round + 1;
    const double dirtied_mb = dirty_mb_after(spec, round_time_s);
    if (dirtied_mb <= params.stop_copy_threshold_mb) {
      result.converged = true;
      to_send_mb = dirtied_mb;
      break;
    }
    // No progress (dirtying outpaces the link): stop-copy the working set.
    if (dirtied_mb >= to_send_mb && round > 0) {
      to_send_mb = dirtied_mb;
      break;
    }
    to_send_mb = dirtied_mb;
  }

  // Final stop-copy: guest paused while the residual dirty set is copied.
  const double final_copy_s = to_send_mb / bandwidth_mb_s;
  result.downtime_s = final_copy_s + params.switchover_s;
  result.duration_s += final_copy_s + params.switchover_s;
  result.transferred_mb += to_send_mb;
  return result;
}

}  // namespace spothost::virt
