// Pre-copy live migration (Clark et al., NSDI'05), as used in Sec. 3.2.
//
// Round 0 copies all of RAM while the guest keeps running; each subsequent
// round copies the pages dirtied during the previous round. When the dirty
// set shrinks below the stop-copy threshold (or rounds are exhausted), the
// guest pauses for the final copy plus switchover — that pause is the
// migration's downtime.
#pragma once

#include "virt/vm.hpp"

namespace spothost::virt {

struct LiveMigrationParams {
  double stop_copy_threshold_mb = 32.0;
  int max_rounds = 12;
  double switchover_s = 0.2;  ///< ARP/route/handoff cost after the final copy
};

struct LiveMigrationResult {
  double duration_s = 0.0;     ///< total wall time, including downtime
  double downtime_s = 0.0;     ///< guest paused (final copy + switchover)
  int rounds = 0;              ///< pre-copy rounds executed (>= 1)
  bool converged = false;      ///< dirty set reached the threshold
  double transferred_mb = 0.0; ///< total bytes moved (round retransfers included)
};

/// Closed-form simulation of pre-copy against the dirty-page model.
/// `bandwidth_mb_s` is the effective migration stream bandwidth.
LiveMigrationResult simulate_live_migration(const VmSpec& spec, double bandwidth_mb_s,
                                            const LiveMigrationParams& params = {});

}  // namespace spothost::virt
