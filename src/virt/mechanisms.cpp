#include "virt/mechanisms.hpp"

namespace spothost::virt {

std::string_view to_string(MechanismCombo combo) noexcept {
  switch (combo) {
    case MechanismCombo::kCkpt: return "CKPT";
    case MechanismCombo::kCkptLazy: return "CKPT LR";
    case MechanismCombo::kCkptLive: return "CKPT + Live";
    case MechanismCombo::kCkptLazyLive: return "CKPT LR + Live";
  }
  return "?";
}

bool uses_live_migration(MechanismCombo combo) noexcept {
  return combo == MechanismCombo::kCkptLive || combo == MechanismCombo::kCkptLazyLive;
}

bool uses_lazy_restore(MechanismCombo combo) noexcept {
  return combo == MechanismCombo::kCkptLazy || combo == MechanismCombo::kCkptLazyLive;
}

std::string_view to_string(MigrationClass cls) noexcept {
  switch (cls) {
    case MigrationClass::kForced: return "forced";
    case MigrationClass::kPlanned: return "planned";
    case MigrationClass::kReverse: return "reverse";
  }
  return "?";
}

MechanismParams typical_mechanism_params() {
  return MechanismParams{};  // defaults are the Table 2 calibration
}

MechanismParams pessimistic_mechanism_params() {
  MechanismParams p;
  // "in the worst case, the downtime during migration of a 4GB virtual
  // machine can be 10s" — Sec. 4.3.
  p.live.switchover_s = 10.0;
  // "120s latency for lazy restoration" — Sec. 4.3.
  p.restore.lazy_resume_latency_s = 120.0;
  // Standard restore degrades to streaming the full image from heavily
  // contended storage — minutes for a small VM, far worse than even the
  // pessimistic lazy resume (Fig. 7's CKPT bar towers over CKPT LR).
  p.restore.read_rate_mb_s = 5.0;
  p.restore.lazy_slowdown_factor = 2.0;
  // Checkpoint flushes use the full grace allowance under contention.
  p.checkpoint.bound_tau_s = 30.0;
  p.checkpoint.write_rate_mb_s = 17.0;
  return p;
}

MigrationPlanner::MigrationPlanner(MechanismCombo combo, MechanismParams params,
                                   NetworkModel network)
    : combo_(combo), params_(params), network_(std::move(network)) {}

MigrationTimings MigrationPlanner::plan(MigrationClass cls, const VmSpec& spec,
                                        const std::string& src_region,
                                        const std::string& dst_region) const {
  if (cls == MigrationClass::kForced) {
    // Forced migrations replace the revoked spot server with an on-demand
    // server in the same region; the checkpoint volume is already there.
    return plan_forced(spec);
  }
  return plan_voluntary(spec, network_.link(src_region, dst_region));
}

MigrationTimings MigrationPlanner::plan_forced(const VmSpec& spec) const {
  const BoundedCheckpointer ckpt(params_.checkpoint);
  MigrationTimings t;
  t.flush_s = ckpt.flush_time_s(spec);
  const RestoreResult restore = uses_lazy_restore(combo_)
                                    ? simulate_lazy_restore(spec, params_.restore)
                                    : simulate_full_restore(spec, params_.restore);
  t.restore_s = restore.downtime_s;
  t.degraded_s = restore.degraded_s;
  // Scheduler computes true downtime (flush + wait-for-destination +
  // restore); this is the mechanism-intrinsic floor.
  t.downtime_s = t.flush_s + t.restore_s;
  return t;
}

MigrationTimings MigrationPlanner::plan_voluntary(const VmSpec& spec,
                                                  const LinkSpec& link) const {
  MigrationTimings t;
  const double disk_copy_s =
      (link.disk_copy_rate_mb_s > 0) ? spec.disk_mb() / link.disk_copy_rate_mb_s : 0.0;
  if (uses_live_migration(combo_)) {
    const LiveMigrationResult live =
        simulate_live_migration(spec, link.mem_bandwidth_mb_s, params_.live);
    t.prepare_s = disk_copy_s + (live.duration_s - live.downtime_s);
    t.downtime_s = live.downtime_s + link.switch_penalty_s;
  } else {
    // Suspend/resume: flush the bounded increment, then restore on the
    // destination (the background checkpoint stream keeps the image fresh).
    const BoundedCheckpointer ckpt(params_.checkpoint);
    const RestoreResult restore = uses_lazy_restore(combo_)
                                      ? simulate_lazy_restore(spec, params_.restore)
                                      : simulate_full_restore(spec, params_.restore);
    t.prepare_s = disk_copy_s;
    t.flush_s = ckpt.flush_time_s(spec);
    t.restore_s = restore.downtime_s;
    t.degraded_s = restore.degraded_s;
    t.downtime_s = t.flush_s + t.restore_s + link.switch_penalty_s;
  }
  return t;
}

}  // namespace spothost::virt
