// The four mechanism combinations evaluated in Fig. 7 and the planner that
// turns (combo, migration class, VM, route) into concrete timings.
//
//   CKPT          forced & planned via suspend/resume with standard restore
//   CKPT+LR       as above, with lazy restore
//   CKPT+Live     planned/reverse via live migration; forced via CKPT
//   CKPT+LR+Live  planned/reverse via live migration; forced via CKPT+LR
//
// Forced migrations can never use live migration: the source disappears at
// the end of the grace window, so state must hit the network volume first.
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "virt/checkpoint.hpp"
#include "virt/live_migration.hpp"
#include "virt/network_model.hpp"
#include "virt/restore.hpp"

namespace spothost::virt {

enum class MechanismCombo { kCkpt, kCkptLazy, kCkptLive, kCkptLazyLive };

inline constexpr std::array<MechanismCombo, 4> kAllCombos{
    MechanismCombo::kCkpt, MechanismCombo::kCkptLazy, MechanismCombo::kCkptLive,
    MechanismCombo::kCkptLazyLive};

std::string_view to_string(MechanismCombo combo) noexcept;
bool uses_live_migration(MechanismCombo combo) noexcept;
bool uses_lazy_restore(MechanismCombo combo) noexcept;

/// Forced = provider revocation (deadline!); planned = voluntary spot -> on-
/// demand; reverse = voluntary on-demand -> spot.
enum class MigrationClass { kForced, kPlanned, kReverse };

std::string_view to_string(MigrationClass cls) noexcept;

/// Timing decomposition of one migration. The scheduler assembles end-to-end
/// downtime from these plus destination-acquisition timing (forced downtime
/// also depends on when the on-demand server actually arrives).
struct MigrationTimings {
  /// Work done while the source still serves traffic (pre-copy rounds,
  /// WAN disk copy). Voluntary migrations only.
  double prepare_s = 0.0;
  /// Service-stopped time intrinsic to the mechanism. For suspend/resume
  /// this includes flush and restore; for live it is the stop-copy pause.
  double downtime_s = 0.0;
  /// Checkpoint flush before source termination (forced only; <= tau).
  double flush_s = 0.0;
  /// Restore latency once the destination holds/reads the image.
  double restore_s = 0.0;
  /// Post-resume degraded window (lazy restore).
  double degraded_s = 0.0;
};

/// All tunables of the mechanism stack, bundled so experiments can switch
/// between "typical" and "pessimistic" (Fig. 7) in one place.
struct MechanismParams {
  CheckpointParams checkpoint;
  RestoreParams restore;
  LiveMigrationParams live;
};

/// Fig. 7's pessimistic scenario: 10 s live-migration outage (Clark'05 /
/// Salfner'11 worst cases), 120 s lazy restore, degraded storage rates.
MechanismParams typical_mechanism_params();
MechanismParams pessimistic_mechanism_params();

class MigrationPlanner {
 public:
  MigrationPlanner(MechanismCombo combo, MechanismParams params, NetworkModel network);

  [[nodiscard]] MechanismCombo combo() const noexcept { return combo_; }
  [[nodiscard]] const MechanismParams& params() const noexcept { return params_; }
  [[nodiscard]] const NetworkModel& network() const noexcept { return network_; }

  /// Plans a migration of `spec` from `src_region` to `dst_region`.
  [[nodiscard]] MigrationTimings plan(MigrationClass cls, const VmSpec& spec,
                                      const std::string& src_region,
                                      const std::string& dst_region) const;

 private:
  [[nodiscard]] MigrationTimings plan_forced(const VmSpec& spec) const;
  [[nodiscard]] MigrationTimings plan_voluntary(const VmSpec& spec,
                                                const LinkSpec& link) const;

  MechanismCombo combo_;
  MechanismParams params_;
  NetworkModel network_;
};

}  // namespace spothost::virt
