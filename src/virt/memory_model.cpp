#include "virt/memory_model.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace spothost::virt {

double dirty_mb_after(const VmSpec& spec, double elapsed_s) {
  if (elapsed_s < 0) throw std::invalid_argument("dirty_mb_after: negative time");
  return std::min(spec.working_set_mb, spec.dirty_rate_mb_s * elapsed_s);
}

double time_to_dirty_s(const VmSpec& spec, double target_mb) {
  if (target_mb < 0) throw std::invalid_argument("time_to_dirty_s: negative target");
  if (target_mb > spec.working_set_mb) {
    return std::numeric_limits<double>::infinity();
  }
  if (spec.dirty_rate_mb_s <= 0) {
    return target_mb == 0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return target_mb / spec.dirty_rate_mb_s;
}

}  // namespace spothost::virt
