// Dirty-page accumulation model.
//
// While the guest serves load it dirties pages at spec.dirty_rate_mb_s; the
// dirty set saturates at the writable working set (re-dirtying the same
// pages). This single curve drives live-migration round convergence and
// bounded-checkpoint increment sizes.
#pragma once

#include "virt/vm.hpp"

namespace spothost::virt {

/// MB of dirty memory accumulated `elapsed_s` after a clean point.
double dirty_mb_after(const VmSpec& spec, double elapsed_s);

/// Time (s) to accumulate `target_mb` of dirty memory; infinity if the
/// target exceeds the working set (never reached).
double time_to_dirty_s(const VmSpec& spec, double target_mb);

}  // namespace spothost::virt
