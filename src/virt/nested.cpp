#include "virt/nested.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spothost::virt {

double nested_io_throughput(double native_throughput, const NestedVirtParams& params) {
  if (native_throughput < 0) {
    throw std::invalid_argument("nested_io_throughput: negative throughput");
  }
  return native_throughput * (1.0 - params.io_throughput_penalty);
}

double nested_cpu_demand_factor(double utilization, const NestedVirtParams& params) {
  const double u = std::clamp(utilization, 0.0, 1.0);
  return 1.0 + params.cpu_overhead_max * std::pow(u, params.cpu_overhead_exponent);
}

}  // namespace spothost::virt
