// Nested-virtualization (Xen-Blanket) performance overhead model, Sec. 6.
//
// Measured behaviour the model reproduces:
//  * disk and network I/O through the nested hypervisor lose only ~2 %
//    (Table 4);
//  * CPU-bound work suffers a load-dependent overhead of up to 50 %
//    (Fig. 12(b)) — at light load the extra layer is barely visible, near
//    saturation every cycle of hypervisor work displaces guest work.
#pragma once

namespace spothost::virt {

struct NestedVirtParams {
  double io_throughput_penalty = 0.02;  ///< fractional loss on I/O paths
  double cpu_overhead_max = 0.50;       ///< added CPU demand at full load
  /// Shape of the load dependence: overhead = max * utilization^exponent.
  double cpu_overhead_exponent = 1.0;
};

/// Throughput of an I/O stream through the nested stack, given the native
/// throughput in any unit (Mbps, MB/s, IOPS).
double nested_io_throughput(double native_throughput, const NestedVirtParams& params);

/// Multiplier on CPU service demand at a given utilization in [0, 1].
/// 1.0 = native; 1.5 = the 50 % worst case.
double nested_cpu_demand_factor(double utilization, const NestedVirtParams& params);

}  // namespace spothost::virt
