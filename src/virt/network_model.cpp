#include "virt/network_model.hpp"

#include <array>
#include <cctype>
#include <stdexcept>

namespace spothost::virt {
namespace {

struct FamilyPairLink {
  std::string_view a;
  std::string_view b;
  double mem_bandwidth_mb_s;
  double disk_copy_rate_mb_s;
};

// Calibrated to Table 2 (2 GB nested VM):
//   us-east <-> us-west: live 73.7 s => ~29 MB/s eff; disk 122.4 s/GB => 8.4 MB/s
//   us-east <-> eu-west: live 74.6 s => ~29 MB/s eff; disk 140.5 s/GB => 7.3 MB/s
//   us-west <-> eu-west: live 140.2 s => ~15 MB/s eff; disk 171.6 s/GB => 6.0 MB/s
constexpr std::array<FamilyPairLink, 3> kFamilyLinks{{
    {"us-east", "us-west", 30.0, 8.4},
    {"us-east", "eu-west", 29.5, 7.3},
    {"us-west", "eu-west", 15.5, 6.0},
}};

}  // namespace

NetworkModel::NetworkModel() = default;

std::string NetworkModel::region_family(std::string_view region) {
  // Strip a trailing "-<digits><letters>" availability-zone suffix.
  const auto dash = region.rfind('-');
  if (dash == std::string_view::npos || dash + 1 >= region.size()) {
    return std::string(region);
  }
  const std::string_view suffix = region.substr(dash + 1);
  bool digits_then_letters = std::isdigit(static_cast<unsigned char>(suffix.front())) != 0;
  for (const char c : suffix) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      digits_then_letters = false;
      break;
    }
  }
  return digits_then_letters ? std::string(region.substr(0, dash))
                             : std::string(region);
}

LinkSpec NetworkModel::link(std::string_view src_region,
                            std::string_view dst_region) const {
  if (src_region == dst_region) {
    // Same zone: LAN migration; disk lives on shared network storage.
    return LinkSpec{lan_bandwidth_mb_s_, 0.0, 0.0};
  }
  const std::string fa = region_family(src_region);
  const std::string fb = region_family(dst_region);
  if (fa == fb) {
    // Cross-AZ, same region: nearly LAN-speed memory stream, but storage is
    // zonal so the disk must be copied (fast intra-region path).
    return LinkSpec{lan_bandwidth_mb_s_ * 0.9, 20.0, 0.5};
  }
  for (const auto& l : kFamilyLinks) {
    if ((l.a == fa && l.b == fb) || (l.a == fb && l.b == fa)) {
      return LinkSpec{l.mem_bandwidth_mb_s, l.disk_copy_rate_mb_s, 1.0};
    }
  }
  // Unknown pair: conservative long-haul defaults.
  return LinkSpec{14.0, 5.5, 1.0};
}

void NetworkModel::set_checkpoint_write_rate_mb_s(double rate) {
  if (rate <= 0) throw std::invalid_argument("checkpoint rate must be > 0");
  checkpoint_rate_mb_s_ = rate;
}

void NetworkModel::set_restore_read_rate_mb_s(double rate) {
  if (rate <= 0) throw std::invalid_argument("restore rate must be > 0");
  restore_rate_mb_s_ = rate;
}

void NetworkModel::set_lan_bandwidth_mb_s(double rate) {
  if (rate <= 0) throw std::invalid_argument("lan bandwidth must be > 0");
  lan_bandwidth_mb_s_ = rate;
}

}  // namespace spothost::virt
