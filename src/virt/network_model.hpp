// Network capacity model for migrations, calibrated to Table 2.
//
// Three tiers:
//  * same zone (e.g. us-east-1a -> us-east-1a): LAN; network storage is
//    shared, so no disk copy is needed;
//  * cross zone, same region family (us-east-1a -> us-east-1b): fast WAN;
//  * cross region family (us-east -> eu-west): slow WAN; disk state must be
//    copied (2-3 min/GB in Table 2).
// Bandwidths are "effective migration bandwidth" — Table 2's 2 GB live
// migration in ~58 s implies ~38 MB/s raw once dirty-round retransfers are
// accounted for.
#pragma once

#include <string>
#include <string_view>

namespace spothost::virt {

struct LinkSpec {
  double mem_bandwidth_mb_s = 38.0;   ///< live-migration / checkpoint streams
  double disk_copy_rate_mb_s = 0.0;   ///< 0 => no disk copy needed (shared storage)
  double switch_penalty_s = 0.0;      ///< extra switchover cost (WAN reconfig)
};

class NetworkModel {
 public:
  NetworkModel();

  /// Region family: "us-east-1a" -> "us-east". Everything up to the last
  /// '-<digit><letter>' suffix; returns the input when no suffix matches.
  static std::string region_family(std::string_view region);

  [[nodiscard]] LinkSpec link(std::string_view src_region,
                              std::string_view dst_region) const;

  /// Sequential write rate of checkpoints to network storage (Table 2:
  /// ~28 s/GB => ~36 MB/s) and the read-back rate for restores.
  [[nodiscard]] double checkpoint_write_rate_mb_s() const noexcept {
    return checkpoint_rate_mb_s_;
  }
  [[nodiscard]] double restore_read_rate_mb_s() const noexcept {
    return restore_rate_mb_s_;
  }

  /// Overrides for sensitivity studies / pessimistic scenarios.
  void set_checkpoint_write_rate_mb_s(double rate);
  void set_restore_read_rate_mb_s(double rate);
  void set_lan_bandwidth_mb_s(double rate);

 private:
  double lan_bandwidth_mb_s_ = 38.0;
  double checkpoint_rate_mb_s_ = 36.0;
  double restore_rate_mb_s_ = 36.0;
};

}  // namespace spothost::virt
