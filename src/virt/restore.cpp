#include "virt/restore.hpp"

#include <algorithm>
#include <stdexcept>

namespace spothost::virt {

RestoreResult simulate_full_restore(const VmSpec& spec, const RestoreParams& params) {
  if (params.read_rate_mb_s <= 0) {
    throw std::invalid_argument("simulate_full_restore: read rate must be > 0");
  }
  RestoreResult r;
  r.downtime_s = spec.memory_mb() / params.read_rate_mb_s;
  r.degraded_s = 0.0;
  return r;
}

RestoreResult simulate_lazy_restore(const VmSpec& spec, const RestoreParams& params) {
  if (params.read_rate_mb_s <= 0 || params.lazy_resume_latency_s < 0) {
    throw std::invalid_argument("simulate_lazy_restore: bad parameters");
  }
  RestoreResult r;
  r.downtime_s = params.lazy_resume_latency_s;
  // The prefix read during the resume latency is already in; the remainder
  // streams in while the guest runs degraded.
  const double prefix_mb = params.lazy_resume_latency_s * params.read_rate_mb_s;
  const double remaining_mb = std::max(0.0, spec.memory_mb() - prefix_mb);
  r.degraded_s = remaining_mb / params.read_rate_mb_s;
  return r;
}

}  // namespace spothost::virt
