// VM restoration from a checkpoint: standard (read everything, then resume)
// versus lazy (resume after a small prefix; page the rest in on demand).
//
// The paper assumes a ~20 s lazy resume latency independent of memory size
// (per Hines & Gopalan, VEE'09) and a ~28 s/GB standard restore (Table 2).
#pragma once

#include "virt/vm.hpp"

namespace spothost::virt {

struct RestoreParams {
  double read_rate_mb_s = 36.0;        ///< network-volume sequential read rate
  double lazy_resume_latency_s = 20.0; ///< memory-size independent
  /// Mean slowdown of the guest while the background restore stream runs
  /// (page faults against not-yet-fetched pages).
  double lazy_slowdown_factor = 1.5;
};

struct RestoreResult {
  double downtime_s = 0.0;  ///< guest unavailable
  double degraded_s = 0.0;  ///< guest running but slowed (lazy only)
};

/// Standard restore: the full memory image is read before resuming.
RestoreResult simulate_full_restore(const VmSpec& spec, const RestoreParams& params);

/// Lazy restore: resume after a fixed prefix; the rest streams in while the
/// guest runs (degraded window = remaining image / read rate).
RestoreResult simulate_lazy_restore(const VmSpec& spec, const RestoreParams& params);

}  // namespace spothost::virt
