#include "virt/vm.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace spothost::virt {

VmSpec default_spec_for_memory(double memory_gb, double disk_gb) {
  VmSpec spec;
  spec.memory_gb = memory_gb;
  spec.disk_gb = disk_gb;
  spec.working_set_mb = std::min(0.25 * memory_gb * 1024.0, 1024.0);
  spec.dirty_rate_mb_s = 30.0;
  return spec;
}

std::string_view to_string(VmState state) noexcept {
  switch (state) {
    case VmState::kRunning: return "running";
    case VmState::kSuspended: return "suspended";
    case VmState::kDown: return "down";
    case VmState::kDegraded: return "degraded";
  }
  return "?";
}

void Vm::transition(VmState next, sim::SimTime at) {
  if (at < last_transition_) {
    throw std::logic_error("Vm::transition: time regression");
  }
  const bool legal = [&] {
    switch (state_) {
      case VmState::kRunning:
        return next == VmState::kSuspended || next == VmState::kDown;
      case VmState::kSuspended:
        // resume fully, resume lazily, or lose the host
        return next == VmState::kRunning || next == VmState::kDegraded ||
               next == VmState::kDown;
      case VmState::kDown:
        return next == VmState::kRunning || next == VmState::kDegraded;
      case VmState::kDegraded:
        return next == VmState::kRunning || next == VmState::kSuspended ||
               next == VmState::kDown;
    }
    return false;
  }();
  if (!legal) {
    throw std::logic_error(std::string("Vm::transition: illegal ") +
                           std::string(to_string(state_)) + " -> " +
                           std::string(to_string(next)));
  }
  state_ = next;
  last_transition_ = at;
}

}  // namespace spothost::virt
