// Virtual-machine resource description and lifecycle state machine.
//
// The VmSpec feeds every migration-cost model: live-migration convergence is
// governed by memory size, dirty rate and writable working set; checkpoint
// flush sizes by the same; WAN migrations also copy the disk.
#pragma once

#include <string_view>

#include "simcore/time.hpp"

namespace spothost::virt {

struct VmSpec {
  double memory_gb = 2.0;
  double disk_gb = 8.0;
  /// Rate at which the guest dirties memory (MB/s) while serving load.
  double dirty_rate_mb_s = 30.0;
  /// Writable working set (MB): the dirty set saturates at this size.
  double working_set_mb = 512.0;

  [[nodiscard]] double memory_mb() const noexcept { return memory_gb * 1024.0; }
  [[nodiscard]] double disk_mb() const noexcept { return disk_gb * 1024.0; }
};

/// Builds a spec for a guest with `memory_gb` of RAM using the default
/// dirty-page behaviour (working set = min(25% of RAM, 1 GB)).
VmSpec default_spec_for_memory(double memory_gb, double disk_gb);

/// VM lifecycle states. kDegraded models lazy restore's post-resume window:
/// the VM is up (not counted as downtime) but page faults against the
/// background restore stream slow it down.
enum class VmState { kRunning, kSuspended, kDown, kDegraded };

std::string_view to_string(VmState state) noexcept;

/// Validated state machine with timestamps; the service layer listens to
/// transitions to drive availability accounting.
class Vm {
 public:
  explicit Vm(VmSpec spec) : spec_(spec) {}

  [[nodiscard]] const VmSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] VmState state() const noexcept { return state_; }
  [[nodiscard]] sim::SimTime last_transition() const noexcept { return last_transition_; }

  /// Moves to `next` at time `at`. Throws std::logic_error on an illegal
  /// transition (e.g. kDown -> kSuspended) or a time regression.
  void transition(VmState next, sim::SimTime at);

 private:
  VmSpec spec_;
  VmState state_ = VmState::kRunning;
  sim::SimTime last_transition_ = 0;
};

}  // namespace spothost::virt
