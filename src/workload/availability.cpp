#include "workload/availability.hpp"

#include <algorithm>
#include <stdexcept>

namespace spothost::workload {

void AvailabilityTracker::start(sim::SimTime t0) {
  if (started_) throw std::logic_error("AvailabilityTracker: started twice");
  started_ = true;
  t0_ = t0;
}

void AvailabilityTracker::mark_down(sim::SimTime t) {
  if (!started_ || finalized_) {
    throw std::logic_error("AvailabilityTracker: mark_down outside tracking window");
  }
  if (down_since_ >= 0) throw std::logic_error("AvailabilityTracker: already down");
  down_since_ = t;
}

void AvailabilityTracker::mark_up(sim::SimTime t) {
  if (down_since_ < 0) throw std::logic_error("AvailabilityTracker: not down");
  if (t < down_since_) throw std::logic_error("AvailabilityTracker: time regression");
  outages_.push_back(OutageRecord{down_since_, t});
  total_down_ += t - down_since_;
  down_since_ = -1;
}

void AvailabilityTracker::mark_degraded(sim::SimTime t) {
  if (!started_ || finalized_) {
    throw std::logic_error("AvailabilityTracker: mark_degraded outside window");
  }
  if (degraded_since_ < 0) degraded_since_ = t;
}

void AvailabilityTracker::mark_normal(sim::SimTime t) {
  if (degraded_since_ >= 0) {
    total_degraded_ += t - degraded_since_;
    degraded_since_ = -1;
  }
}

void AvailabilityTracker::finalize(sim::SimTime t_end) {
  if (!started_ || finalized_) {
    throw std::logic_error("AvailabilityTracker: bad finalize");
  }
  if (down_since_ >= 0) mark_up(t_end);
  mark_normal(t_end);
  t_end_ = t_end;
  finalized_ = true;
}

sim::SimTime AvailabilityTracker::longest_outage() const noexcept {
  sim::SimTime longest = 0;
  for (const auto& o : outages_) longest = std::max(longest, o.duration());
  return longest;
}

double AvailabilityTracker::unavailability() const {
  if (!finalized_) throw std::logic_error("AvailabilityTracker: not finalized");
  const sim::SimTime horizon = t_end_ - t0_;
  if (horizon <= 0) return 0.0;
  return static_cast<double>(total_down_) / static_cast<double>(horizon);
}

}  // namespace spothost::workload
