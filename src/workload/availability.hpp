// Service availability accounting.
//
// The paper's headline availability metric is unavailability percent over a
// long horizon (four nines = 0.01 %). The tracker records outage and
// degraded intervals and reports totals, counts, and the worst single event.
#pragma once

#include <cstdint>
#include <vector>

#include "simcore/time.hpp"

namespace spothost::workload {

struct OutageRecord {
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  [[nodiscard]] sim::SimTime duration() const noexcept { return end - start; }
};

class AvailabilityTracker {
 public:
  /// Begins tracking at `t0`; the service is considered up.
  void start(sim::SimTime t0);

  /// Marks the service down at `t`. Throws if already down or not started.
  void mark_down(sim::SimTime t);

  /// Marks the service back up at `t`. Throws if not down.
  void mark_up(sim::SimTime t);

  /// Begins/ends a degraded (up but slowed) window. Degraded time does not
  /// count as downtime; it is reported separately. Nested calls collapse.
  void mark_degraded(sim::SimTime t);
  void mark_normal(sim::SimTime t);

  /// Closes the books at `t_end` (an open outage/degraded window is closed).
  void finalize(sim::SimTime t_end);

  [[nodiscard]] bool is_down() const noexcept { return down_since_ >= 0; }
  [[nodiscard]] sim::SimTime total_downtime() const noexcept { return total_down_; }
  [[nodiscard]] sim::SimTime total_degraded() const noexcept { return total_degraded_; }
  [[nodiscard]] std::size_t outage_count() const noexcept { return outages_.size(); }
  [[nodiscard]] const std::vector<OutageRecord>& outages() const noexcept {
    return outages_;
  }
  [[nodiscard]] sim::SimTime longest_outage() const noexcept;

  /// Unavailability as a fraction of the tracked horizon (0..1).
  /// Valid after finalize().
  [[nodiscard]] double unavailability() const;
  /// Unavailability in percent (the unit of Figs. 6(b), 7, 8(c), 9(c), 11(b)).
  [[nodiscard]] double unavailability_percent() const { return unavailability() * 100.0; }

 private:
  bool started_ = false;
  bool finalized_ = false;
  sim::SimTime t0_ = 0;
  sim::SimTime t_end_ = 0;
  sim::SimTime down_since_ = -1;
  sim::SimTime degraded_since_ = -1;
  sim::SimTime total_down_ = 0;
  sim::SimTime total_degraded_ = 0;
  std::vector<OutageRecord> outages_;
};

}  // namespace spothost::workload
