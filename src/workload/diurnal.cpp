#include "workload/diurnal.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace spothost::workload {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

void validate(const DiurnalPattern& p) {
  if (p.off_peak < 0 || p.peak < p.off_peak) {
    throw std::invalid_argument("DiurnalPattern: need 0 <= off_peak <= peak");
  }
}

}  // namespace

double DiurnalPattern::load_at(sim::SimTime t) const {
  validate(*this);
  const double hours = sim::to_hours(t);
  const double phase = kTwoPi * (hours - peak_hour) / 24.0;
  return off_peak + (peak - off_peak) * (1.0 + std::cos(phase)) / 2.0;
}

double DiurnalPattern::load_integral(sim::SimTime from, sim::SimTime to) const {
  validate(*this);
  if (to < from) throw std::invalid_argument("load_integral: to < from");
  // integral of off + A*(1+cos(w(h - p)))/2 dh, h in hours, converted to s:
  //   = off*H + A/2*H + A/2 * (sin(w(h2-p)) - sin(w(h1-p)))/w     [hours]
  const double amplitude = peak - off_peak;
  const double h1 = sim::to_hours(from);
  const double h2 = sim::to_hours(to);
  const double w = kTwoPi / 24.0;
  const double linear = (off_peak + amplitude / 2.0) * (h2 - h1);
  const double oscillation =
      amplitude / 2.0 * (std::sin(w * (h2 - peak_hour)) - std::sin(w * (h1 - peak_hour))) /
      w;
  return (linear + oscillation) * 3600.0;  // load-seconds
}

int DiurnalPattern::users_at(sim::SimTime t, int peak_users) const {
  return static_cast<int>(std::lround(load_at(t) * peak_users));
}

double DiurnalPattern::dirty_rate_at(sim::SimTime t, double peak_rate_mb_s) const {
  return load_at(t) * peak_rate_mb_s;
}

double load_weighted_unavailability(const AvailabilityTracker& tracker,
                                    const DiurnalPattern& pattern,
                                    sim::SimTime horizon) {
  const double total = pattern.load_integral(0, horizon);
  if (total <= 0) return 0.0;
  double lost = 0.0;
  for (const auto& outage : tracker.outages()) {
    const sim::SimTime start = std::clamp<sim::SimTime>(outage.start, 0, horizon);
    const sim::SimTime end = std::clamp<sim::SimTime>(outage.end, 0, horizon);
    if (end > start) lost += pattern.load_integral(start, end);
  }
  return lost / total;
}

}  // namespace spothost::workload
