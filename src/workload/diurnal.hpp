// Diurnal load patterns for always-on services.
//
// The paper's availability metric weights every second equally, but an
// e-commerce outage at the evening peak costs far more than one at 4 am.
// DiurnalPattern models the classic sinusoidal daily load curve; the
// load-weighted unavailability re-weights each outage by the traffic it
// actually hit. The pattern also scales workload-dependent quantities
// (dirty rate, concurrent TPC-W browsers) over the day.
#pragma once

#include "simcore/time.hpp"
#include "workload/availability.hpp"

namespace spothost::workload {

struct DiurnalPattern {
  double off_peak = 0.25;   ///< load level in the trough, in [0, 1]
  double peak = 1.0;        ///< load level at the peak
  double peak_hour = 20.0;  ///< hour-of-day of the peak (0..24)

  /// Instantaneous load in [off_peak, peak]:
  ///   load(t) = off + (peak - off) * (1 + cos(2*pi*(h(t) - peak_hour)/24)) / 2
  [[nodiscard]] double load_at(sim::SimTime t) const;

  /// Exact integral of load over [from, to) in load-seconds.
  [[nodiscard]] double load_integral(sim::SimTime from, sim::SimTime to) const;

  /// Concurrent users at `t`, scaling a peak population.
  [[nodiscard]] int users_at(sim::SimTime t, int peak_users) const;

  /// Guest dirty rate at `t`, scaling a peak rate (busier site = more
  /// writable working set churn).
  [[nodiscard]] double dirty_rate_at(sim::SimTime t, double peak_rate_mb_s) const;
};

/// Unavailability weighted by the traffic each outage actually hit:
///   sum over outages of integral(load) / integral(load over the horizon).
/// A peak-hour outage counts up to peak/off_peak times a trough outage.
double load_weighted_unavailability(const AvailabilityTracker& tracker,
                                    const DiurnalPattern& pattern,
                                    sim::SimTime horizon);

}  // namespace spothost::workload
