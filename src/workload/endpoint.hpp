// The surface a scheduler drives: anything that can go live, go down, come
// back (possibly degraded), and be finalized. AlwaysOnService implements it
// for one nested VM; ServiceGroup implements it for a packed group of VMs
// that live and migrate together on one server.
#pragma once

#include "simcore/time.hpp"

namespace spothost::workload {

/// Why the service went down (indexes per-cause counters).
enum class OutageCause {
  kForcedMigration,
  kPlannedMigration,
  kReverseMigration,
  kSpotLoss,
  kOther,
};

class ServiceEndpoint {
 public:
  virtual ~ServiceEndpoint() = default;

  virtual void go_live(sim::SimTime t0) = 0;
  virtual void begin_outage(sim::SimTime t, OutageCause cause) = 0;
  virtual void end_outage(sim::SimTime t, bool degraded) = 0;
  virtual void end_degraded(sim::SimTime t) = 0;
  virtual void finalize(sim::SimTime t_end) = 0;
  [[nodiscard]] virtual bool is_up() const = 0;
};

}  // namespace spothost::workload
