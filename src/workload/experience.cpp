#include "workload/experience.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace spothost::workload {
namespace {

struct Window {
  sim::SimTime start;
  sim::SimTime end;
};

bool inside(const std::vector<Window>& windows, sim::SimTime t) {
  for (const auto& w : windows) {
    if (t >= w.start && t < w.end) return true;
  }
  return false;
}

}  // namespace

ExperienceReport evaluate_experience(const AvailabilityTracker& tracker,
                                     sim::SimTime horizon,
                                     const ExperienceConfig& config) {
  if (horizon <= 0) throw std::invalid_argument("evaluate_experience: horizon <= 0");
  if (config.sample_step <= 0) {
    throw std::invalid_argument("evaluate_experience: sample_step <= 0");
  }

  // Outage windows, and approximate degraded windows right after each outage
  // (lazy restore streams pages in immediately after resumption).
  std::vector<Window> down;
  std::vector<Window> degraded;
  down.reserve(tracker.outages().size());
  const sim::SimTime degraded_each =
      tracker.outage_count() > 0
          ? tracker.total_degraded() / static_cast<sim::SimTime>(tracker.outage_count())
          : 0;
  for (const auto& o : tracker.outages()) {
    down.push_back({o.start, o.end});
    if (degraded_each > 0) degraded.push_back({o.end, o.end + degraded_each});
  }

  const TpcwModel normal(config.tpcw);
  TpcwConfig slow_cfg = config.tpcw;
  slow_cfg.cpu_demand_s *= config.degraded_slowdown_factor;
  const TpcwModel degraded_model(slow_cfg);

  ExperienceReport report;
  double ok_weight = 0.0;
  double response_weighted = 0.0;
  double apdex_weighted = 0.0;

  // Failed traffic is integrated exactly over the outage windows — grid
  // sampling would miss the paper's typical 10-60 s outages entirely.
  report.total_requests = config.traffic.load_integral(0, horizon);
  double failed_weight = 0.0;
  for (const auto& w : down) {
    const sim::SimTime start = std::clamp<sim::SimTime>(w.start, 0, horizon);
    const sim::SimTime end = std::clamp<sim::SimTime>(w.end, 0, horizon);
    if (end > start) failed_weight += config.traffic.load_integral(start, end);
  }

  for (sim::SimTime t = 0; t < horizon; t += config.sample_step) {
    const double weight =
        config.traffic.load_at(t) * sim::to_seconds(config.sample_step);
    if (inside(down, t)) continue;  // already accounted exactly above
    const bool is_degraded = inside(degraded, t);
    const TpcwModel& model = is_degraded ? degraded_model : normal;
    const int browsers =
        std::max(1, config.traffic.users_at(t, config.peak_browsers));
    const double response_ms =
        model.response_time_ms(browsers, config.scenario, config.host);
    if (is_degraded) report.degraded_fraction += weight;
    ok_weight += weight;
    response_weighted += response_ms * weight;
    if (response_ms <= config.satisfied_threshold_ms) {
      apdex_weighted += weight;
    } else if (response_ms <= 4.0 * config.satisfied_threshold_ms) {
      apdex_weighted += 0.5 * weight;
    }
  }

  if (report.total_requests > 0) {
    report.failed_fraction = failed_weight / report.total_requests;
    report.degraded_fraction /= report.total_requests;
  }
  if (ok_weight > 0) {
    report.mean_response_ms = response_weighted / ok_weight;
    // Apdex over all arrivals: the satisfaction rate among served traffic,
    // scaled down by the failed share (failed requests score zero).
    report.apdex = apdex_weighted / ok_weight * (1.0 - report.failed_fraction);
  }
  return report;
}

}  // namespace spothost::workload
