// User-experience accounting: what the month of hosting felt like to the
// site's visitors.
//
// Combines the hosting run's availability history with the diurnal traffic
// pattern and the TPC-W response-time model:
//   * while up     — requests arrive at the diurnal rate and complete at the
//     load-dependent TPC-W response time;
//   * while degraded — lazy restore is streaming pages in, so CPU demand is
//     inflated by the configured slowdown factor;
//   * while down   — every arriving request fails.
// The report gives the failed-request fraction, time-weighted mean response
// time, and an Apdex-style satisfaction score.
#pragma once

#include "virt/restore.hpp"
#include "workload/availability.hpp"
#include "workload/diurnal.hpp"
#include "workload/tpcw.hpp"

namespace spothost::workload {

struct ExperienceConfig {
  DiurnalPattern traffic{};
  int peak_browsers = 250;
  TpcwScenario scenario = TpcwScenario::kWithImages;
  HostKind host = HostKind::kNestedVm;
  TpcwConfig tpcw{};
  /// CPU-demand inflation while a lazy restore streams in the background.
  double degraded_slowdown_factor = 1.5;
  /// Response-time threshold for a "satisfied" request (Apdex T).
  double satisfied_threshold_ms = 500.0;
  /// Evaluation grid (finer = slower, more accurate).
  sim::SimTime sample_step = 15 * sim::kMinute;
};

struct ExperienceReport {
  double total_requests = 0.0;       ///< arrivals over the horizon (normalized units)
  double failed_fraction = 0.0;      ///< arrived during an outage
  double degraded_fraction = 0.0;    ///< served during a lazy-restore window
  double mean_response_ms = 0.0;     ///< over successful requests
  /// Apdex-style score in [0, 1]: satisfied = 1, tolerating (< 4T) = 0.5,
  /// frustrated or failed = 0.
  double apdex = 0.0;
};

/// Evaluates the experience over [0, horizon) given the finalized
/// availability history of the hosting run. Degraded windows are taken from
/// the tracker's degraded bookkeeping only in aggregate; per-sample degraded
/// status is approximated by distributing degraded time right after each
/// outage (where lazy restore actually puts it).
ExperienceReport evaluate_experience(const AvailabilityTracker& tracker,
                                     sim::SimTime horizon,
                                     const ExperienceConfig& config = {});

}  // namespace spothost::workload
