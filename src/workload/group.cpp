#include "workload/group.hpp"

#include <stdexcept>

namespace spothost::workload {

ServiceGroup::ServiceGroup(const std::string& prefix, int count,
                           virt::VmSpec member_spec) {
  if (count <= 0) throw std::invalid_argument("ServiceGroup: count must be > 0");
  members_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    members_.push_back(std::make_unique<AlwaysOnService>(
        prefix + "-" + std::to_string(i), member_spec));
  }
}

const AlwaysOnService& ServiceGroup::member(int index) const {
  return *members_.at(static_cast<std::size_t>(index));
}

virt::VmSpec ServiceGroup::aggregate_spec() const {
  virt::VmSpec agg = members_.front()->spec();
  const auto n = static_cast<double>(members_.size());
  agg.memory_gb *= n;
  agg.disk_gb *= n;
  agg.working_set_mb *= n;
  agg.dirty_rate_mb_s *= n;
  return agg;
}

void ServiceGroup::go_live(sim::SimTime t0) {
  for (auto& m : members_) m->go_live(t0);
}

void ServiceGroup::begin_outage(sim::SimTime t, OutageCause cause) {
  for (auto& m : members_) m->begin_outage(t, cause);
}

void ServiceGroup::end_outage(sim::SimTime t, bool degraded) {
  for (auto& m : members_) m->end_outage(t, degraded);
}

void ServiceGroup::end_degraded(sim::SimTime t) {
  for (auto& m : members_) m->end_degraded(t);
}

void ServiceGroup::finalize(sim::SimTime t_end) {
  for (auto& m : members_) m->finalize(t_end);
}

bool ServiceGroup::is_up() const {
  return members_.front()->is_up();
}

double ServiceGroup::mean_unavailability_percent() const {
  double sum = 0.0;
  for (const auto& m : members_) sum += m->availability().unavailability_percent();
  return sum / static_cast<double>(members_.size());
}

}  // namespace spothost::workload
