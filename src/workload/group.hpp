// A packed group of nested VMs sharing one server (Sec. 4's multi-market
// packing: "a multi-market strategy involves packing multiple nested VMs
// onto a larger spot or on-demand server").
//
// The group presents the ServiceEndpoint surface to the scheduler: when the
// shared server migrates or is revoked, every member goes down and comes
// back together. Each member keeps its own availability books, so fleet
// metrics and per-tenant SLO reporting still work.
#pragma once

#include <memory>
#include <vector>

#include "workload/endpoint.hpp"
#include "workload/service.hpp"

namespace spothost::workload {

class ServiceGroup final : public ServiceEndpoint {
 public:
  /// `count` members named "<prefix>-0".."<prefix>-<count-1>", each a nested
  /// VM of `member_spec`.
  ServiceGroup(const std::string& prefix, int count, virt::VmSpec member_spec);

  [[nodiscard]] int size() const noexcept { return static_cast<int>(members_.size()); }
  [[nodiscard]] const AlwaysOnService& member(int index) const;

  /// Aggregate VM spec for migration planning: transfers of the members'
  /// memory/disk happen back-to-back over the same stream, so the group
  /// migrates like one VM of the summed size (working set and dirty rate sum
  /// as well — every member keeps serving until suspension).
  [[nodiscard]] virt::VmSpec aggregate_spec() const;

  // --- ServiceEndpoint -------------------------------------------------
  void go_live(sim::SimTime t0) override;
  void begin_outage(sim::SimTime t, OutageCause cause) override;
  void end_outage(sim::SimTime t, bool degraded) override;
  void end_degraded(sim::SimTime t) override;
  void finalize(sim::SimTime t_end) override;
  [[nodiscard]] bool is_up() const override;

  /// Mean unavailability across members (identical books in lockstep, but
  /// exposed for symmetry with fleet reporting).
  [[nodiscard]] double mean_unavailability_percent() const;

 private:
  std::vector<std::unique_ptr<AlwaysOnService>> members_;
};

}  // namespace spothost::workload
