#include "workload/iobench.hpp"

#include <stdexcept>

namespace spothost::workload {

IoBench::IoBench(IoBenchBaselines baselines, virt::NestedVirtParams nested,
                 double jitter_cv)
    : baselines_(baselines), nested_(nested), jitter_cv_(jitter_cv) {
  if (jitter_cv_ < 0) throw std::invalid_argument("IoBench: negative jitter");
}

double IoBench::run(IoBenchKind kind, HostKind host, sim::RngStream& rng) const {
  double native = 0.0;
  // Network paths through Xen-Blanket's NAT are effectively line-rate
  // (Table 4 shows no measurable TX/RX loss); disk I/O pays the ~2 % tax.
  bool penalized = false;
  switch (kind) {
    case IoBenchKind::kNetworkTx: native = baselines_.network_tx_mbps; break;
    case IoBenchKind::kNetworkRx: native = baselines_.network_rx_mbps; break;
    case IoBenchKind::kDiskRead:
      native = baselines_.disk_read_mbps;
      penalized = true;
      break;
    case IoBenchKind::kDiskWrite:
      native = baselines_.disk_write_mbps;
      penalized = true;
      break;
  }
  double rate = native;
  if (host == HostKind::kNestedVm && penalized) {
    rate = virt::nested_io_throughput(native, nested_);
  }
  if (jitter_cv_ > 0) {
    rate = rng.lognormal_mean_cv(rate, jitter_cv_);
  }
  return rate;
}

double IoBench::mean_of_runs(IoBenchKind kind, HostKind host, int runs,
                             sim::RngStream& rng) const {
  if (runs <= 0) throw std::invalid_argument("IoBench: runs must be > 0");
  double sum = 0.0;
  for (int i = 0; i < runs; ++i) sum += run(kind, host, rng);
  return sum / runs;
}

}  // namespace spothost::workload
