// Simulated I/O microbenchmarks (Table 4): iperf network throughput and dd
// disk throughput, run against a native Amazon VM or through the nested
// (Xen-Blanket) stack. Baseline rates are the paper's measured values; the
// nested path applies the NestedVirtParams I/O penalty, and a seeded jitter
// reproduces run-to-run measurement noise.
#pragma once

#include "simcore/rng.hpp"
#include "virt/nested.hpp"
#include "workload/tpcw.hpp"  // HostKind

namespace spothost::workload {

enum class IoBenchKind { kNetworkTx, kNetworkRx, kDiskRead, kDiskWrite };

struct IoBenchBaselines {
  // Table 4 native-VM values, Mbps.
  double network_tx_mbps = 304.0;
  double network_rx_mbps = 316.0;
  double disk_read_mbps = 304.6;
  double disk_write_mbps = 280.4;
};

class IoBench {
 public:
  IoBench(IoBenchBaselines baselines, virt::NestedVirtParams nested,
          double jitter_cv = 0.01);

  /// One benchmark run; returns measured throughput in Mbps.
  [[nodiscard]] double run(IoBenchKind kind, HostKind host, sim::RngStream& rng) const;

  /// Mean over `runs` repetitions (what Table 4 reports).
  [[nodiscard]] double mean_of_runs(IoBenchKind kind, HostKind host, int runs,
                                    sim::RngStream& rng) const;

 private:
  IoBenchBaselines baselines_;
  virt::NestedVirtParams nested_;
  double jitter_cv_;
};

}  // namespace spothost::workload
