#include "workload/outage_stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace spothost::workload {
namespace {

double nearest_rank(const std::vector<double>& sorted, double percentile) {
  if (sorted.empty()) return 0.0;
  const double rank = percentile / 100.0 * static_cast<double>(sorted.size());
  const auto index = static_cast<std::size_t>(std::max(0.0, std::ceil(rank) - 1.0));
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

OutageStats compute_outage_stats(const AvailabilityTracker& tracker,
                                 sim::SimTime horizon) {
  OutageStats stats;
  std::vector<double> durations;
  durations.reserve(tracker.outages().size());
  double total = 0.0;
  for (const auto& outage : tracker.outages()) {
    const double d = sim::to_seconds(outage.duration());
    durations.push_back(d);
    total += d;
  }
  stats.count = static_cast<int>(durations.size());
  if (stats.count == 0) {
    stats.mtbf_hours = std::numeric_limits<double>::infinity();
    return stats;
  }
  std::sort(durations.begin(), durations.end());
  stats.mean_s = total / stats.count;
  stats.mttr_s = stats.mean_s;
  stats.p50_s = nearest_rank(durations, 50.0);
  stats.p95_s = nearest_rank(durations, 95.0);
  stats.max_s = durations.back();
  const double uptime_s = sim::to_seconds(horizon) - total;
  stats.mtbf_hours = std::max(0.0, uptime_s) / 3600.0 / stats.count;
  return stats;
}

}  // namespace spothost::workload
