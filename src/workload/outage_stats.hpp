// Reliability statistics over an availability history: MTTR/MTBF and outage
// duration percentiles — the numbers an SRE reads off a month of hosting.
#pragma once

#include "workload/availability.hpp"

namespace spothost::workload {

struct OutageStats {
  int count = 0;
  double mean_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double max_s = 0.0;
  /// Mean time to repair = mean outage duration.
  double mttr_s = 0.0;
  /// Mean time between failures = up-time / failure count (hours).
  /// Infinity when there were no failures.
  double mtbf_hours = 0.0;
};

/// Computes stats over a finalized tracker's outage history spanning
/// `horizon` of tracked time. Percentiles use the nearest-rank method.
OutageStats compute_outage_stats(const AvailabilityTracker& tracker,
                                 sim::SimTime horizon);

}  // namespace spothost::workload
