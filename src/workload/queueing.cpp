#include "workload/queueing.hpp"

#include <stdexcept>

namespace spothost::workload {

MvaResult solve_closed_mva(std::span<const Station> stations, int customers,
                           double think_time_s) {
  if (customers < 0) throw std::invalid_argument("solve_closed_mva: customers < 0");
  if (think_time_s < 0) throw std::invalid_argument("solve_closed_mva: negative Z");
  for (const auto& s : stations) {
    if (s.demand_s < 0) {
      throw std::invalid_argument("solve_closed_mva: negative demand at " + s.name);
    }
  }

  const std::size_t k = stations.size();
  std::vector<double> queue(k, 0.0);
  std::vector<double> residence(k, 0.0);
  double throughput = 0.0;
  double response = 0.0;

  for (int n = 1; n <= customers; ++n) {
    response = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      residence[i] = stations[i].delay_center
                         ? stations[i].demand_s
                         : stations[i].demand_s * (1.0 + queue[i]);
      response += residence[i];
    }
    throughput = static_cast<double>(n) / (think_time_s + response);
    for (std::size_t i = 0; i < k; ++i) {
      queue[i] = throughput * residence[i];
    }
  }

  MvaResult result;
  result.response_time_s = response;
  result.throughput_per_s = throughput;
  result.queue_lengths = queue;
  result.utilizations.resize(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    result.utilizations[i] =
        stations[i].delay_center ? 0.0 : throughput * stations[i].demand_s;
  }
  return result;
}

}  // namespace spothost::workload
