// Exact Mean Value Analysis for closed product-form queueing networks.
//
// Used to reproduce the TPC-W experiment (Fig. 12): N emulated browsers with
// a think time circulate through CPU and I/O stations. MVA recurrence:
//   R_i(n) = D_i * (1 + Q_i(n-1))        (queueing station)
//   R_i(n) = D_i                          (delay station)
//   X(n)   = n / (Z + sum_i R_i(n))
//   Q_i(n) = X(n) * R_i(n)
#pragma once

#include <span>
#include <string>
#include <vector>

namespace spothost::workload {

struct Station {
  std::string name;
  double demand_s = 0.0;      ///< total service demand per interaction
  bool delay_center = false;  ///< no queueing (infinite servers)
};

struct MvaResult {
  double response_time_s = 0.0;         ///< sum of station residence times
  double throughput_per_s = 0.0;        ///< interactions per second
  std::vector<double> queue_lengths;    ///< per station
  std::vector<double> utilizations;     ///< per queueing station (X * D)
};

/// Solves the network for `customers` circulating jobs with `think_time_s`.
/// Throws std::invalid_argument on customers < 0 or a negative demand.
MvaResult solve_closed_mva(std::span<const Station> stations, int customers,
                           double think_time_s);

}  // namespace spothost::workload
