#include "workload/service.hpp"

#include <stdexcept>

#include "obs/sink.hpp"

namespace spothost::workload {

namespace {

std::uint8_t cause_code(OutageCause cause) noexcept {
  switch (cause) {
    case OutageCause::kForcedMigration: return obs::code::kCauseForcedMigration;
    case OutageCause::kPlannedMigration: return obs::code::kCausePlannedMigration;
    case OutageCause::kReverseMigration: return obs::code::kCauseReverseMigration;
    case OutageCause::kSpotLoss: return obs::code::kCauseSpotLoss;
    case OutageCause::kOther: return obs::code::kCauseOther;
  }
  return obs::code::kCauseOther;
}

}  // namespace

AlwaysOnService::AlwaysOnService(std::string name, virt::VmSpec spec)
    : name_(std::move(name)), vm_(spec) {}

void AlwaysOnService::go_live(sim::SimTime t0) {
  tracker_.start(t0);
}

void AlwaysOnService::begin_outage(sim::SimTime t, OutageCause cause) {
  if (vm_.state() == virt::VmState::kDegraded) {
    tracker_.mark_normal(t);  // the degraded window ends where the outage starts
  }
  tracker_.mark_down(t);
  vm_.transition(virt::VmState::kDown, t);
  ++cause_counts_[static_cast<std::size_t>(cause)];
  if (tracer_ != nullptr && tracer_->enabled()) {
    obs::TraceEvent e;
    e.t = t;
    e.kind = obs::EventKind::kOutageBegin;
    e.code = cause_code(cause);
    e.note = name_;
    tracer_->emit(e);
  }
}

void AlwaysOnService::end_outage(sim::SimTime t, bool degraded) {
  tracker_.mark_up(t);
  if (degraded) {
    vm_.transition(virt::VmState::kDegraded, t);
    tracker_.mark_degraded(t);
  } else {
    vm_.transition(virt::VmState::kRunning, t);
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    obs::TraceEvent e;
    e.t = t;
    e.kind = obs::EventKind::kOutageEnd;
    e.code = obs::code::kNone;
    e.value = degraded ? 1.0 : 0.0;
    e.note = name_;
    tracer_->emit(e);
  }
}

void AlwaysOnService::end_degraded(sim::SimTime t) {
  if (vm_.state() == virt::VmState::kDegraded) {
    vm_.transition(virt::VmState::kRunning, t);
    tracker_.mark_normal(t);
    if (tracer_ != nullptr && tracer_->enabled()) {
      obs::TraceEvent e;
      e.t = t;
      e.kind = obs::EventKind::kDegradedEnd;
      e.code = obs::code::kNone;
      e.note = name_;
      tracer_->emit(e);
    }
  }
}

void AlwaysOnService::finalize(sim::SimTime t_end) {
  tracker_.finalize(t_end);
}

int AlwaysOnService::outage_count(OutageCause cause) const {
  return cause_counts_[static_cast<std::size_t>(cause)];
}

}  // namespace spothost::workload
