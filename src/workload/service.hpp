// The always-on Internet service being hosted: a nested VM plus availability
// accounting, with outages attributed to the migration class that caused
// them. The scheduler drives this facade; examples and tests read it.
#pragma once

#include <array>
#include <string>

#include "simcore/time.hpp"
#include "virt/mechanisms.hpp"
#include "virt/vm.hpp"
#include "workload/availability.hpp"
#include "workload/endpoint.hpp"

namespace spothost::obs {
class Tracer;  // obs/sink.hpp
}

namespace spothost::workload {

class AlwaysOnService final : public ServiceEndpoint {
 public:
  AlwaysOnService(std::string name, virt::VmSpec spec);

  /// Attach a tracer so availability transitions show up in the run's trace
  /// (outage_begin/outage_end/degraded_end). Null detaches; not owned.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const virt::Vm& vm() const noexcept { return vm_; }
  [[nodiscard]] const virt::VmSpec& spec() const noexcept { return vm_.spec(); }
  [[nodiscard]] const AvailabilityTracker& availability() const noexcept {
    return tracker_;
  }

  /// Starts serving at `t0` (the initial provisioning period is not counted
  /// as an outage — the service "goes live" when first up).
  void go_live(sim::SimTime t0) override;

  /// Service-stopping outage begins (VM suspended or lost).
  void begin_outage(sim::SimTime t, OutageCause cause) override;

  /// Service resumes; if `degraded`, a lazy-restore degraded window follows
  /// (the caller calls end_degraded when it elapses).
  void end_outage(sim::SimTime t, bool degraded) override;

  /// Ends a degraded window begun by end_outage(..., true).
  void end_degraded(sim::SimTime t) override;

  /// Closes accounting at the experiment horizon.
  void finalize(sim::SimTime t_end) override;

  [[nodiscard]] int outage_count(OutageCause cause) const;
  [[nodiscard]] bool is_up() const override { return !tracker_.is_down(); }

 private:
  std::string name_;
  virt::Vm vm_;
  AvailabilityTracker tracker_;
  std::array<int, 5> cause_counts_{};
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace spothost::workload
