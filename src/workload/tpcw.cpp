#include "workload/tpcw.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

namespace spothost::workload {

TpcwModel::TpcwModel(TpcwConfig config) : config_(config) {
  if (config_.think_time_s < 0 || config_.cpu_demand_s <= 0 ||
      config_.io_demand_with_images_s <= 0 || config_.io_demand_no_images_s <= 0) {
    throw std::invalid_argument("TpcwModel: demands must be positive");
  }
}

MvaResult TpcwModel::solve(int browsers, TpcwScenario scenario, HostKind host) const {
  const double io_demand = (scenario == TpcwScenario::kWithImages)
                               ? config_.io_demand_with_images_s
                               : config_.io_demand_no_images_s;
  // I/O through the nested stack loses only the small Table 4 penalty.
  const double io_eff = (host == HostKind::kNestedVm)
                            ? io_demand / (1.0 - config_.nested.io_throughput_penalty)
                            : io_demand;

  double cpu_factor = 1.0;
  MvaResult result;
  for (int it = 0; it < config_.fixed_point_iterations; ++it) {
    const double cpu_demand = config_.cpu_demand_s * cpu_factor;
    const std::array<Station, 2> stations{
        Station{"cpu", cpu_demand, false},
        Station{"io", io_eff, false},
    };
    result = solve_closed_mva(stations, browsers, config_.think_time_s);
    if (host != HostKind::kNestedVm) break;
    const double cpu_util = result.utilizations[0];
    const double next_factor = virt::nested_cpu_demand_factor(cpu_util, config_.nested);
    if (std::abs(next_factor - cpu_factor) < 1e-9) break;
    cpu_factor = next_factor;
  }
  return result;
}

double TpcwModel::response_time_ms(int browsers, TpcwScenario scenario,
                                   HostKind host) const {
  return solve(browsers, scenario, host).response_time_s * 1000.0;
}

double TpcwModel::throughput_per_s(int browsers, TpcwScenario scenario,
                                   HostKind host) const {
  return solve(browsers, scenario, host).throughput_per_s;
}

}  // namespace spothost::workload
