// TPC-W response-time model (Sec. 6.2, Fig. 12).
//
// A multi-tiered e-commerce site is modelled as a closed queueing network:
// N emulated browsers (EBs) with a think time circulate through a CPU
// station and an I/O (disk+network) station. Two scenarios:
//  * kWithImages ("browsers fetch images"): demand dominated by I/O, where
//    the nested hypervisor is near-native — curves overlap (Fig. 12(a));
//  * kNoImages (images served by a CDN): demand dominated by CPU, where the
//    nested layer adds up to 50 % — curves diverge under load (Fig. 12(b)).
// The nested CPU overhead is load-dependent, so the model iterates MVA and
// the overhead factor to a fixed point.
#pragma once

#include "virt/nested.hpp"
#include "workload/queueing.hpp"

namespace spothost::workload {

enum class TpcwScenario { kWithImages, kNoImages };

enum class HostKind { kNativeVm, kNestedVm };

struct TpcwConfig {
  double think_time_s = 7.0;       ///< TPC-W standard think time
  double cpu_demand_s = 0.022;     ///< per interaction, native
  double io_demand_with_images_s = 0.060;
  double io_demand_no_images_s = 0.006;
  /// Nested overheads as seen by TPC-W. The CPU-demand inflation is
  /// calibrated so the *response-time* overhead at 400 EBs lands near the
  /// paper's measured "up to 50% worse" (closed-loop queueing amplifies a
  /// demand inflation well beyond its raw percentage at saturation).
  virt::NestedVirtParams nested{0.02, 0.18, 1.0};
  int fixed_point_iterations = 12;
};

class TpcwModel {
 public:
  explicit TpcwModel(TpcwConfig config = {});

  /// Mean response time (ms) for `browsers` EBs.
  [[nodiscard]] double response_time_ms(int browsers, TpcwScenario scenario,
                                        HostKind host) const;

  /// Site throughput (interactions/s) for `browsers` EBs.
  [[nodiscard]] double throughput_per_s(int browsers, TpcwScenario scenario,
                                        HostKind host) const;

  [[nodiscard]] const TpcwConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] MvaResult solve(int browsers, TpcwScenario scenario,
                                HostKind host) const;

  TpcwConfig config_;
};

}  // namespace spothost::workload
