#include "cloud/billing.hpp"

#include <gtest/gtest.h>

namespace spothost::cloud {
namespace {

using sim::kHour;
using sim::kMinute;

TEST(Billing, OnDemandBillsStartedHours) {
  EXPECT_DOUBLE_EQ(on_demand_cost(0.10, 0, 2 * kHour), 0.20);
  // A partial hour bills in full.
  EXPECT_DOUBLE_EQ(on_demand_cost(0.10, 0, 2 * kHour + 1), 0.30);
  EXPECT_DOUBLE_EQ(on_demand_cost(0.10, 0, kMinute), 0.10);
}

TEST(Billing, OnDemandZeroDurationFree) {
  EXPECT_DOUBLE_EQ(on_demand_cost(0.10, 500, 500), 0.0);
}

TEST(Billing, OnDemandHoursAlignToLaunchNotWallClock) {
  // Launch mid-wall-clock-hour; 1 instance-hour exactly.
  EXPECT_DOUBLE_EQ(on_demand_cost(0.10, 30 * kMinute, 90 * kMinute), 0.10);
}

TEST(Billing, OnDemandRejectsNegativeDuration) {
  EXPECT_THROW(on_demand_cost(0.10, 100, 50), std::invalid_argument);
}

trace::PriceTrace steps() {
  // 0.02 for the first 90 min, then 0.08.
  trace::PriceTrace t;
  t.append(0, 0.02);
  t.append(90 * kMinute, 0.08);
  t.set_end(10 * kHour);
  return t;
}

TEST(Billing, SpotBillsHourStartPrice) {
  const auto t = steps();
  // Launch at 0: hour 1 starts at price 0.02; hour 2 starts at 1h -> 0.02.
  // (Price changes at 90min, after hour 2 began.)
  EXPECT_DOUBLE_EQ(spot_cost(t, 0, 2 * kHour, TerminationCause::kCustomer),
                   0.02 + 0.02);
  // Hour 3 starts at 2h -> 0.08.
  EXPECT_DOUBLE_EQ(spot_cost(t, 0, 3 * kHour, TerminationCause::kCustomer),
                   0.02 + 0.02 + 0.08);
}

TEST(Billing, SpotPartialHourFreeOnRevocation) {
  const auto t = steps();
  // 1.5 hours: one complete hour billed; the partial second hour is free
  // because the provider revoked.
  EXPECT_DOUBLE_EQ(
      spot_cost(t, 0, 90 * kMinute, TerminationCause::kProviderRevoked), 0.02);
}

TEST(Billing, SpotPartialHourBilledOnCustomerTermination) {
  const auto t = steps();
  EXPECT_DOUBLE_EQ(spot_cost(t, 0, 90 * kMinute, TerminationCause::kCustomer),
                   0.02 + 0.02);
}

TEST(Billing, SpotBilledAtSpotPriceNotBid) {
  // The bid never appears in the billing path at all; hour-start price only.
  const auto t = steps();
  EXPECT_DOUBLE_EQ(spot_cost(t, 2 * kHour, 3 * kHour, TerminationCause::kCustomer),
                   0.08);
}

TEST(Billing, SpotInstanceHoursAlignToLaunch) {
  const auto t = steps();
  // Launch at 85min (price 0.02); instance-hour 2 starts at 145min (0.08).
  EXPECT_DOUBLE_EQ(spot_cost(t, 85 * kMinute, 85 * kMinute + 2 * kHour,
                             TerminationCause::kCustomer),
                   0.02 + 0.08);
}

TEST(Billing, SpotZeroDuration) {
  const auto t = steps();
  EXPECT_DOUBLE_EQ(spot_cost(t, kHour, kHour, TerminationCause::kCustomer), 0.0);
}

TEST(Billing, LedgerAccumulates) {
  BillingLedger ledger;
  ledger.add(BillingRecord{1, {"us-east-1a", InstanceSize::kSmall},
                           BillingMode::kSpot, 0, kHour,
                           TerminationCause::kCustomer, 0.02});
  ledger.add(BillingRecord{2, {"us-east-1a", InstanceSize::kSmall},
                           BillingMode::kOnDemand, kHour, 3 * kHour,
                           TerminationCause::kCustomer, 0.12});
  EXPECT_DOUBLE_EQ(ledger.total_cost(), 0.14);
  EXPECT_DOUBLE_EQ(ledger.total_cost(BillingMode::kSpot), 0.02);
  EXPECT_DOUBLE_EQ(ledger.total_cost(BillingMode::kOnDemand), 0.12);
  EXPECT_EQ(ledger.total_leased_time(BillingMode::kOnDemand), 2 * kHour);
  EXPECT_EQ(ledger.records().size(), 2u);
}

class SpotBillingSweep : public ::testing::TestWithParam<int> {};

TEST_P(SpotBillingSweep, CompletedHoursAlwaysBilledRegardlessOfCause) {
  const auto t = steps();
  const int hours = GetParam();
  const double billed_customer =
      spot_cost(t, 0, hours * kHour, TerminationCause::kCustomer);
  const double billed_revoked =
      spot_cost(t, 0, hours * kHour, TerminationCause::kProviderRevoked);
  // Exact-hour terminations have no partial hour, so cause cannot matter.
  EXPECT_DOUBLE_EQ(billed_customer, billed_revoked);
  // And revocation mid-hour only ever removes the final partial hour.
  const double mid_revoked =
      spot_cost(t, 0, hours * kHour + 30 * kMinute, TerminationCause::kProviderRevoked);
  EXPECT_DOUBLE_EQ(mid_revoked, billed_revoked);
}

INSTANTIATE_TEST_SUITE_P(Hours, SpotBillingSweep, ::testing::Values(1, 2, 3, 5, 9));

}  // namespace
}  // namespace spothost::cloud
