#include "cloud/instance_types.hpp"

#include <gtest/gtest.h>

namespace spothost::cloud {
namespace {

TEST(InstanceTypes, CatalogMatchesPaperPricing) {
  // "from 6 cents per hour for the small configuration" (Sec. 2.1).
  EXPECT_DOUBLE_EQ(type_info(InstanceSize::kSmall).on_demand_price, 0.06);
  // Each size doubles capacity and price.
  EXPECT_DOUBLE_EQ(type_info(InstanceSize::kMedium).on_demand_price, 0.12);
  EXPECT_DOUBLE_EQ(type_info(InstanceSize::kLarge).on_demand_price, 0.24);
  EXPECT_DOUBLE_EQ(type_info(InstanceSize::kXLarge).on_demand_price, 0.48);
}

TEST(InstanceTypes, CapacityUnitsDouble) {
  EXPECT_EQ(type_info(InstanceSize::kSmall).capacity_units, 1);
  EXPECT_EQ(type_info(InstanceSize::kMedium).capacity_units, 2);
  EXPECT_EQ(type_info(InstanceSize::kLarge).capacity_units, 4);
  EXPECT_EQ(type_info(InstanceSize::kXLarge).capacity_units, 8);
}

TEST(InstanceTypes, MemoryGrowsWithSize) {
  double prev = 0.0;
  for (const auto size : kAllSizes) {
    EXPECT_GT(type_info(size).memory_gb, prev);
    prev = type_info(size).memory_gb;
  }
}

TEST(InstanceTypes, NamesRoundTrip) {
  for (const auto size : kAllSizes) {
    EXPECT_EQ(size_from_string(to_string(size)), size);
  }
}

TEST(InstanceTypes, UnknownNameThrows) {
  EXPECT_THROW(size_from_string("tiny"), std::invalid_argument);
  EXPECT_THROW(size_from_string(""), std::invalid_argument);
}

TEST(InstanceTypes, RegionalMultipliers) {
  EXPECT_DOUBLE_EQ(region_price_multiplier("us-east-1a"), 1.0);
  EXPECT_DOUBLE_EQ(region_price_multiplier("us-east-1b"), 1.0);
  EXPECT_GT(region_price_multiplier("us-west-1a"), 1.0);
  EXPECT_GT(region_price_multiplier("eu-west-1a"),
            region_price_multiplier("us-west-1a"));
}

TEST(InstanceTypes, OnDemandPriceComposesSizeAndRegion) {
  EXPECT_DOUBLE_EQ(on_demand_price(InstanceSize::kSmall, "us-east-1a"), 0.06);
  EXPECT_NEAR(on_demand_price(InstanceSize::kLarge, "eu-west-1a"), 0.24 * 1.15,
              1e-12);
}

TEST(InstanceTypes, UnknownRegionDefaultsToReference) {
  EXPECT_DOUBLE_EQ(region_price_multiplier("ap-south-1a"), 1.0);
}

}  // namespace
}  // namespace spothost::cloud
