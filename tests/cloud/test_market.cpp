#include "cloud/market.hpp"
#include "simcore/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace spothost::cloud {
namespace {

using sim::kHour;
using sim::kMinute;

trace::PriceTrace simple_trace() {
  trace::PriceTrace t;
  t.append(0, 0.02);
  t.append(10 * kMinute, 0.05);
  t.append(20 * kMinute, 0.03);
  t.set_end(kHour);
  return t;
}

TEST(MarketId, EqualityAndString) {
  const MarketId a{"us-east-1a", InstanceSize::kSmall};
  const MarketId b{"us-east-1a", InstanceSize::kSmall};
  const MarketId c{"us-east-1a", InstanceSize::kLarge};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.str(), "us-east-1a/small");
}

TEST(MarketId, HashDistinguishesSizes) {
  const MarketIdHash h;
  EXPECT_NE(h(MarketId{"r", InstanceSize::kSmall}),
            h(MarketId{"r", InstanceSize::kMedium}));
}

TEST(SpotMarket, RejectsEmptyTrace) {
  sim::Simulation s;
  EXPECT_THROW(SpotMarket(s, MarketId{"r", InstanceSize::kSmall},
                          trace::PriceTrace{}, 0.06),
               std::invalid_argument);
}

TEST(SpotMarket, RejectsNonPositiveOnDemandPrice) {
  sim::Simulation s;
  EXPECT_THROW(
      SpotMarket(s, MarketId{"r", InstanceSize::kSmall}, simple_trace(), 0.0),
      std::invalid_argument);
}

TEST(SpotMarket, PriceTracksSimulationClock) {
  sim::Simulation s;
  SpotMarket m(s, MarketId{"r", InstanceSize::kSmall}, simple_trace(), 0.06);
  m.start();
  EXPECT_DOUBLE_EQ(m.price(), 0.02);
  s.run_until(15 * kMinute);
  EXPECT_DOUBLE_EQ(m.price(), 0.05);
  s.run_until(25 * kMinute);
  EXPECT_DOUBLE_EQ(m.price(), 0.03);
}

TEST(SpotMarket, ObserversFireOnEveryChange) {
  sim::Simulation s;
  SpotMarket m(s, MarketId{"r", InstanceSize::kSmall}, simple_trace(), 0.06);
  std::vector<double> seen;
  m.subscribe([&](const SpotMarket&, double p) { seen.push_back(p); });
  m.start();
  s.run_until(kHour);
  EXPECT_EQ(seen, (std::vector<double>{0.05, 0.03}));
}

TEST(SpotMarket, UnsubscribeStopsDelivery) {
  sim::Simulation s;
  SpotMarket m(s, MarketId{"r", InstanceSize::kSmall}, simple_trace(), 0.06);
  int count = 0;
  const auto sub = m.subscribe([&](const SpotMarket&, double) { ++count; });
  m.start();
  s.run_until(15 * kMinute);
  EXPECT_EQ(count, 1);
  m.unsubscribe(sub);
  s.run_until(kHour);
  EXPECT_EQ(count, 1);
}

TEST(SpotMarket, ObserverMaySubscribeReentrantly) {
  sim::Simulation s;
  SpotMarket m(s, MarketId{"r", InstanceSize::kSmall}, simple_trace(), 0.06);
  int inner = 0;
  m.subscribe([&](const SpotMarket& mk, double) {
    const_cast<SpotMarket&>(mk).subscribe(
        [&](const SpotMarket&, double) { ++inner; });
  });
  m.start();
  s.run_until(kHour);
  // First change adds one inner observer; second change fires it once (plus
  // adds another).
  EXPECT_EQ(inner, 1);
}

TEST(SpotMarket, StartTwiceThrows) {
  sim::Simulation s;
  SpotMarket m(s, MarketId{"r", InstanceSize::kSmall}, simple_trace(), 0.06);
  m.start();
  EXPECT_THROW(m.start(), std::logic_error);
}

TEST(SpotMarket, PriceClampedAtHorizonEdge) {
  sim::Simulation s;
  SpotMarket m(s, MarketId{"r", InstanceSize::kSmall}, simple_trace(), 0.06);
  m.start();
  s.run_until(kHour);  // clock parked exactly at trace end
  EXPECT_DOUBLE_EQ(m.price(), 0.03);
}

}  // namespace
}  // namespace spothost::cloud
