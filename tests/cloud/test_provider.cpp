#include "cloud/provider.hpp"
#include "simcore/simulation.hpp"

#include <gtest/gtest.h>

#include <optional>

namespace spothost::cloud {
namespace {

using sim::kHour;
using sim::kMinute;
using sim::kSecond;

const MarketId kSmallEast{"us-east-1a", InstanceSize::kSmall};

// Fixture with one market whose price starts cheap, spikes at t=2h, and
// recovers at t=3h; deterministic (zero-CV) allocation latencies.
class ProviderTest : public ::testing::Test {
 protected:
  ProviderTest() : rng_(1234), provider_(sim_, rng_) {
    trace::PriceTrace t;
    t.append(0, 0.02);
    t.append(2 * kHour, 0.50);  // above any sane bid
    t.append(3 * kHour, 0.02);
    t.set_end(48 * kHour);
    provider_.add_market(kSmallEast, std::move(t), 0.06);
    AllocationLatency lat;
    lat.on_demand_mean_s = 90.0;
    lat.on_demand_cv = 0.0;
    lat.spot_mean_s = 240.0;
    lat.spot_cv = 0.0;
    provider_.set_allocation_latency("us-east-1a", lat);
    provider_.start();
  }

  sim::Simulation sim_;
  sim::RngFactory rng_;
  CloudProvider provider_;
};

TEST_F(ProviderTest, OnDemandArrivesAfterAllocationLatency) {
  std::optional<sim::SimTime> ready_at;
  provider_.request_on_demand(kSmallEast,
                              [&](InstanceId) { ready_at = sim_.now(); });
  sim_.run_until(kHour);
  ASSERT_TRUE(ready_at.has_value());
  EXPECT_EQ(*ready_at, 90 * kSecond);
}

TEST_F(ProviderTest, SpotGrantedWhenPriceBelowBid) {
  std::optional<InstanceId> granted;
  bool failed = false;
  provider_.request_spot(
      kSmallEast, 0.06, [&](InstanceId iid) { granted = iid; },
      [&](AllocFailure) { failed = true; });
  sim_.run_until(kHour);
  ASSERT_TRUE(granted.has_value());
  EXPECT_FALSE(failed);
  const auto& inst = provider_.instance(*granted);
  EXPECT_EQ(inst.state, InstanceState::kRunning);
  EXPECT_EQ(inst.launch, 240 * kSecond);
}

TEST_F(ProviderTest, SpotRejectedWhenPriceAboveBidAtGrant) {
  // Request just before the spike; allocation completes inside the spike.
  bool granted = false;
  bool failed = false;
  sim_.at(2 * kHour - kMinute, [&] {
    provider_.request_spot(
        kSmallEast, 0.06, [&](InstanceId) { granted = true; }, [&](AllocFailure) { failed = true; });
  });
  sim_.run_until(4 * kHour);
  EXPECT_FALSE(granted);
  EXPECT_TRUE(failed);
}

TEST_F(ProviderTest, RevocationWarningThenGraceThenTermination) {
  std::optional<InstanceId> iid;
  provider_.request_spot(kSmallEast, 0.06, [&](InstanceId i) { iid = i; }, [](AllocFailure) {});
  sim_.run_until(kHour);
  ASSERT_TRUE(iid.has_value());

  std::optional<sim::SimTime> warned_at;
  std::optional<sim::SimTime> term_time;
  provider_.set_revocation_handler(*iid, [&](InstanceId, sim::SimTime t_term) {
    warned_at = sim_.now();
    term_time = t_term;
  });
  sim_.run_until(5 * kHour);
  ASSERT_TRUE(warned_at.has_value());
  EXPECT_EQ(*warned_at, 2 * kHour);                      // spike instant
  EXPECT_EQ(*term_time, 2 * kHour + 120 * kSecond);      // 2-minute grace
  EXPECT_EQ(provider_.instance(*iid).state, InstanceState::kTerminated);
}

TEST_F(ProviderTest, RevokedPartialHourIsFree) {
  std::optional<InstanceId> iid;
  provider_.request_spot(kSmallEast, 0.06, [&](InstanceId i) { iid = i; }, [](AllocFailure) {});
  sim_.run_until(5 * kHour);
  // Launched at 240 s, revoked at 2h+120s = 7320 s. Instance-hours tick at
  // 240s + k*3600s, so only [240, 3840) completed; the in-progress second
  // hour is free under provider revocation.
  ASSERT_EQ(provider_.ledger().records().size(), 1u);
  const auto& rec = provider_.ledger().records().front();
  EXPECT_EQ(rec.cause, TerminationCause::kProviderRevoked);
  EXPECT_DOUBLE_EQ(rec.cost, 0.02);
}

TEST_F(ProviderTest, CustomerTerminationBillsPartialHour) {
  std::optional<InstanceId> iid;
  provider_.request_spot(kSmallEast, 0.06, [&](InstanceId i) { iid = i; }, [](AllocFailure) {});
  sim_.run_until(kHour);  // running since 240s
  provider_.terminate(*iid);
  ASSERT_EQ(provider_.ledger().records().size(), 1u);
  const auto& rec = provider_.ledger().records().front();
  EXPECT_EQ(rec.cause, TerminationCause::kCustomer);
  EXPECT_DOUBLE_EQ(rec.cost, 0.02);  // partial first hour billed at start price
}

TEST_F(ProviderTest, CustomerCanBeatTheGracePeriod) {
  std::optional<InstanceId> iid;
  provider_.request_spot(kSmallEast, 0.06, [&](InstanceId i) { iid = i; }, [](AllocFailure) {});
  sim_.run_until(kHour);
  provider_.set_revocation_handler(*iid, [&](InstanceId i, sim::SimTime) {
    provider_.terminate(i);  // bail out immediately on warning
  });
  sim_.run_until(5 * kHour);
  ASSERT_EQ(provider_.ledger().records().size(), 1u);
  EXPECT_EQ(provider_.ledger().records().front().cause,
            TerminationCause::kCustomer);
}

TEST_F(ProviderTest, CancelPendingRequestPreventsGrant) {
  bool granted = false;
  const InstanceId iid = provider_.request_on_demand(
      kSmallEast, [&](InstanceId) { granted = true; });
  provider_.cancel_request(iid);
  sim_.run_until(kHour);
  EXPECT_FALSE(granted);
  EXPECT_EQ(provider_.instance(iid).state, InstanceState::kTerminated);
}

TEST_F(ProviderTest, OnDemandNeverRevoked) {
  std::optional<InstanceId> iid;
  provider_.request_on_demand(kSmallEast, [&](InstanceId i) { iid = i; });
  sim_.run_until(5 * kHour);  // through the spike
  EXPECT_EQ(provider_.instance(*iid).state, InstanceState::kRunning);
}

TEST_F(ProviderTest, SetRevocationHandlerOnOnDemandThrows) {
  std::optional<InstanceId> iid;
  provider_.request_on_demand(kSmallEast, [&](InstanceId i) { iid = i; });
  sim_.run_until(kHour);
  EXPECT_THROW(provider_.set_revocation_handler(*iid, [](InstanceId, sim::SimTime) {}),
               std::logic_error);
}

TEST_F(ProviderTest, FinalizeBillsRunningInstances) {
  provider_.request_on_demand(kSmallEast, [](InstanceId) {});
  sim_.run_until(10 * kHour);
  provider_.finalize(10 * kHour);
  ASSERT_EQ(provider_.ledger().records().size(), 1u);
  // Launched at 90s; 10h - 90s spans 10 started instance-hours.
  EXPECT_DOUBLE_EQ(provider_.ledger().records().front().cost, 0.60);
}

TEST_F(ProviderTest, FinalizeCancelsPendingRequests) {
  bool granted = false;
  provider_.request_on_demand(kSmallEast, [&](InstanceId) { granted = true; });
  provider_.finalize(0);
  sim_.run_until(kHour);
  EXPECT_FALSE(granted);
  EXPECT_TRUE(provider_.ledger().records().empty());
}

TEST_F(ProviderTest, UnknownMarketThrows) {
  const MarketId bogus{"nowhere-1z", InstanceSize::kSmall};
  EXPECT_THROW(provider_.request_on_demand(bogus, [](InstanceId) {}),
               std::out_of_range);
  EXPECT_THROW((void)provider_.price(bogus), std::out_of_range);
}

TEST_F(ProviderTest, UnknownInstanceThrows) {
  EXPECT_THROW(provider_.instance(987654), std::out_of_range);
}

TEST_F(ProviderTest, RegionAndMarketEnumeration) {
  EXPECT_TRUE(provider_.has_market(kSmallEast));
  EXPECT_EQ(provider_.all_markets().size(), 1u);
  EXPECT_EQ(provider_.markets_in_region("us-east-1a").size(), 1u);
  EXPECT_TRUE(provider_.markets_in_region("eu-west-1a").empty());
  EXPECT_EQ(provider_.regions(), std::vector<std::string>{"us-east-1a"});
}

TEST_F(ProviderTest, DuplicateMarketRejected) {
  trace::PriceTrace t;
  t.append(0, 0.01);
  t.set_end(kHour);
  EXPECT_THROW(provider_.add_market(kSmallEast, std::move(t), 0.06),
               std::logic_error);
}

TEST(Provider, NegativeGraceRejected) {
  sim::Simulation s;
  sim::RngFactory f(1);
  EXPECT_THROW(CloudProvider(s, f, -1), std::invalid_argument);
}

TEST(Provider, GracePeriodDefaultsTo120s) {
  sim::Simulation s;
  sim::RngFactory f(1);
  CloudProvider p(s, f);
  EXPECT_EQ(p.grace_period(), 120 * kSecond);
}

}  // namespace
}  // namespace spothost::cloud
