#include "cloud/volume.hpp"
#include "simcore/simulation.hpp"

#include <gtest/gtest.h>

#include <optional>

namespace spothost::cloud {
namespace {

using sim::kHour;
using sim::kSecond;

const MarketId kEast{"us-east-1a", InstanceSize::kSmall};
const MarketId kWest{"us-west-1a", InstanceSize::kSmall};

class VolumeTest : public ::testing::Test {
 protected:
  VolumeTest() : rng_(1), provider_(sim_, rng_), volumes_(sim_, provider_) {
    for (const auto& m : {kEast, kWest}) {
      trace::PriceTrace t;
      t.append(0, 0.01);
      t.set_end(24 * kHour);
      provider_.add_market(m, std::move(t), 0.06);
      AllocationLatency lat;
      lat.on_demand_mean_s = 60.0;
      lat.on_demand_cv = 0.0;
      provider_.set_allocation_latency(m.region, lat);
    }
    provider_.start();
  }

  InstanceId launch(const MarketId& market) {
    std::optional<InstanceId> iid;
    provider_.request_on_demand(market, [&](InstanceId i) { iid = i; });
    sim_.run_until(sim_.now() + 10 * 60 * kSecond);
    return *iid;
  }

  sim::Simulation sim_;
  sim::RngFactory rng_;
  CloudProvider provider_;
  VolumeManager volumes_;
};

TEST_F(VolumeTest, CreateAndInspect) {
  const VolumeId v = volumes_.create("us-east-1a", 8.0);
  EXPECT_NE(v, kInvalidVolume);
  EXPECT_EQ(volumes_.volume(v).region, "us-east-1a");
  EXPECT_DOUBLE_EQ(volumes_.volume(v).size_gb, 8.0);
  EXPECT_FALSE(volumes_.volume(v).attached_to.has_value());
  EXPECT_EQ(volumes_.count(), 1u);
}

TEST_F(VolumeTest, CreateRejectsBadSize) {
  EXPECT_THROW(volumes_.create("us-east-1a", 0.0), std::invalid_argument);
}

TEST_F(VolumeTest, AttachCompletesAfterLatency) {
  const VolumeId v = volumes_.create("us-east-1a", 8.0);
  const InstanceId i = launch(kEast);
  std::optional<sim::SimTime> attached_at;
  const sim::SimTime begun = sim_.now();
  volumes_.attach(v, i, [&](VolumeId) { attached_at = sim_.now(); });
  sim_.run_until(sim_.now() + kHour);
  ASSERT_TRUE(attached_at.has_value());
  EXPECT_EQ(*attached_at - begun, 4 * kSecond);
  EXPECT_EQ(volumes_.volume(v).attached_to, i);
}

TEST_F(VolumeTest, CrossRegionAttachRejected) {
  const VolumeId v = volumes_.create("us-east-1a", 8.0);
  const InstanceId i = launch(kWest);
  EXPECT_THROW(volumes_.attach(v, i, nullptr), std::logic_error);
}

TEST_F(VolumeTest, DoubleAttachRejected) {
  const VolumeId v = volumes_.create("us-east-1a", 8.0);
  const InstanceId i = launch(kEast);
  volumes_.attach(v, i, nullptr);
  EXPECT_THROW(volumes_.attach(v, i, nullptr), std::logic_error);
}

TEST_F(VolumeTest, DetachThenReattachElsewhere) {
  // The paper's availability story: the volume survives its instance.
  const VolumeId v = volumes_.create("us-east-1a", 8.0);
  const InstanceId a = launch(kEast);
  volumes_.attach(v, a, nullptr);
  provider_.terminate(a);
  volumes_.detach(v);
  const InstanceId b = launch(kEast);
  bool attached = false;
  volumes_.attach(v, b, [&](VolumeId) { attached = true; });
  sim_.run_until(sim_.now() + kHour);
  EXPECT_TRUE(attached);
  EXPECT_EQ(volumes_.volume(v).attached_to, b);
}

TEST_F(VolumeTest, AttachToTerminatedInstanceRejected) {
  const VolumeId v = volumes_.create("us-east-1a", 8.0);
  const InstanceId i = launch(kEast);
  provider_.terminate(i);
  EXPECT_THROW(volumes_.attach(v, i, nullptr), std::logic_error);
}

TEST_F(VolumeTest, DetachDuringAttachInFlightSuppressesCallback) {
  const VolumeId v = volumes_.create("us-east-1a", 8.0);
  const InstanceId i = launch(kEast);
  bool attached = false;
  volumes_.attach(v, i, [&](VolumeId) { attached = true; });
  volumes_.detach(v);  // before the 4 s attach latency elapses
  sim_.run_until(sim_.now() + kHour);
  EXPECT_FALSE(attached);
}

TEST_F(VolumeTest, RehomeMovesRegion) {
  const VolumeId v = volumes_.create("us-east-1a", 8.0);
  volumes_.rehome(v, "us-west-1a");
  EXPECT_EQ(volumes_.volume(v).region, "us-west-1a");
  const InstanceId i = launch(kWest);
  EXPECT_NO_THROW(volumes_.attach(v, i, nullptr));
}

TEST_F(VolumeTest, RehomeAttachedVolumeRejected) {
  const VolumeId v = volumes_.create("us-east-1a", 8.0);
  const InstanceId i = launch(kEast);
  volumes_.attach(v, i, nullptr);
  EXPECT_THROW(volumes_.rehome(v, "us-west-1a"), std::logic_error);
}

TEST_F(VolumeTest, UnknownVolumeThrows) {
  EXPECT_THROW(volumes_.volume(404), std::out_of_range);
  EXPECT_THROW(volumes_.detach(404), std::out_of_range);
}

}  // namespace
}  // namespace spothost::cloud
