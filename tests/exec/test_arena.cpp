#include "exec/arena.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace spothost::exec {
namespace {

TEST(FixedArena, StartsEmptyWithFixedCapacity) {
  FixedArena<int> a(4);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.capacity(), 4u);
}

TEST(FixedArena, EmplaceConstructsInPlace) {
  FixedArena<std::string> a(2);
  a.emplace_back("hello");
  a.emplace_back(3, 'x');
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], "hello");
  EXPECT_EQ(a[1], "xxx");
}

TEST(FixedArena, ReferencesStayStable) {
  // The whole point versus std::vector: emplace never relocates, so the
  // first element's address survives filling the arena.
  FixedArena<int> a(100);
  int& first = a.emplace_back(7);
  int* const addr = &first;
  for (int i = 1; i < 100; ++i) a.emplace_back(i);
  EXPECT_EQ(&a[0], addr);
  EXPECT_EQ(first, 7);
}

TEST(FixedArena, ThrowsWhenFull) {
  FixedArena<int> a(1);
  a.emplace_back(1);
  EXPECT_THROW(a.emplace_back(2), std::length_error);
  EXPECT_EQ(a.size(), 1u);
}

TEST(FixedArena, AtRangeChecks) {
  FixedArena<int> a(3);
  a.emplace_back(5);
  EXPECT_EQ(a.at(0), 5);
  EXPECT_THROW(a.at(1), std::out_of_range);  // within capacity, past size
}

TEST(FixedArena, IterationWalksConstructionOrder) {
  FixedArena<int> a(5);
  for (int i = 0; i < 5; ++i) a.emplace_back(i * 10);
  std::vector<int> seen(a.begin(), a.end());
  EXPECT_EQ(seen, (std::vector<int>{0, 10, 20, 30, 40}));
}

TEST(FixedArena, DestroysInReverseConstructionOrder) {
  struct Tracker {
    explicit Tracker(int id, std::vector<int>& log) : id_(id), log_(log) {}
    ~Tracker() { log_.push_back(id_); }
    int id_;
    std::vector<int>& log_;
  };
  std::vector<int> destroyed;
  {
    FixedArena<Tracker> a(3);
    for (int i = 0; i < 3; ++i) a.emplace_back(i, destroyed);
  }
  EXPECT_EQ(destroyed, (std::vector<int>{2, 1, 0}));
}

TEST(FixedArena, HoldsNonMovableTypes) {
  struct Pinned {
    explicit Pinned(int v) : value(v) {}
    Pinned(const Pinned&) = delete;
    Pinned& operator=(const Pinned&) = delete;
    Pinned(Pinned&&) = delete;
    Pinned& operator=(Pinned&&) = delete;
    int value;
  };
  FixedArena<Pinned> a(2);
  a.emplace_back(1);
  a.emplace_back(2);
  EXPECT_EQ(a[0].value, 1);
  EXPECT_EQ(a[1].value, 2);
}

TEST(FixedArena, ZeroCapacityIsLegal) {
  FixedArena<int> a(0);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.capacity(), 0u);
  EXPECT_THROW(a.emplace_back(1), std::length_error);
}

TEST(FixedArena, HonoursOveralignedTypes) {
  struct alignas(64) Wide {
    double payload[8];
  };
  FixedArena<Wide> a(3);
  for (int i = 0; i < 3; ++i) a.emplace_back();
  for (const Wide& w : a) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&w) % 64, 0u);
  }
}

}  // namespace
}  // namespace spothost::exec
