#include "exec/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace spothost::exec {
namespace {

constexpr const char* kVar = "SPOTHOST_TEST_ENV_KNOB";

class EnvParse : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv(kVar); }
  void set(const char* value) { ASSERT_EQ(setenv(kVar, value, 1), 0); }
};

TEST_F(EnvParse, UnsetYieldsFallback) {
  unsetenv(kVar);
  EXPECT_EQ(env_int(kVar, 5, 1, 100), 5);
  EXPECT_EQ(env_u64(kVar, 42u), 42u);
}

TEST_F(EnvParse, ValidValueParses) {
  set("17");
  EXPECT_EQ(env_int(kVar, 5, 1, 100), 17);
  EXPECT_EQ(env_u64(kVar, 42u), 17u);
}

TEST_F(EnvParse, TrailingJunkFallsBack) {
  set("3abc");  // atoi would happily return 3 here
  EXPECT_EQ(env_int(kVar, 5, 1, 100), 5);
  EXPECT_EQ(env_u64(kVar, 42u), 42u);
}

TEST_F(EnvParse, NonNumericFallsBack) {
  set("lots");
  EXPECT_EQ(env_int(kVar, 5, 1, 100), 5);
  set("");
  EXPECT_EQ(env_int(kVar, 5, 1, 100), 5);
}

TEST_F(EnvParse, OutOfRangeFallsBack) {
  set("0");
  EXPECT_EQ(env_int(kVar, 5, 1, 100), 5);
  set("101");
  EXPECT_EQ(env_int(kVar, 5, 1, 100), 5);
  set("99999999999999999999999999");  // overflows long long
  EXPECT_EQ(env_int(kVar, 5, 1, 100), 5);
}

TEST_F(EnvParse, BoundsAreInclusive) {
  set("1");
  EXPECT_EQ(env_int(kVar, 5, 1, 100), 1);
  set("100");
  EXPECT_EQ(env_int(kVar, 5, 1, 100), 100);
}

TEST_F(EnvParse, U64RejectsNegatives) {
  set("-1");  // strtoull would silently wrap this to UINT64_MAX
  EXPECT_EQ(env_u64(kVar, 42u), 42u);
}

TEST_F(EnvParse, U64AcceptsFullRange) {
  set("18446744073709551615");
  EXPECT_EQ(env_u64(kVar, 42u), 18446744073709551615ull);
  set("18446744073709551616");  // one past UINT64_MAX
  EXPECT_EQ(env_u64(kVar, 42u), 42u);
}

}  // namespace
}  // namespace spothost::exec
