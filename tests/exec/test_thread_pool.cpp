#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

namespace spothost::exec {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ConcurrencyNeverExceedsThreadCount) {
  constexpr std::size_t kThreads = 3;
  ThreadPool pool(kThreads);
  std::atomic<int> current{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 48; ++i) {
    futures.push_back(pool.submit([&] {
      const int now = ++current;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      --current;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_LE(peak.load(), static_cast<int>(kThreads));
  EXPECT_GE(peak.load(), 1);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  auto good = pool.submit([] { return 1; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A throwing task must not take its worker down with it.
  EXPECT_EQ(good.get(), 1);
  EXPECT_EQ(pool.submit([] { return 2; }).get(), 2);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> completed{0};
  {
    // One worker and many slow-ish tasks: most are still queued when the
    // destructor runs, and every one must still execute.
    ThreadPool pool(1);
    for (int i = 0; i < 64; ++i) {
      auto f = pool.submit([&completed] { ++completed; });
      (void)f;  // results intentionally unobserved
    }
  }
  EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPool, DefaultThreadCountReadsEnvOverride) {
  ASSERT_EQ(setenv("SPOTHOST_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3u);
  // Garbage falls back to hardware concurrency (>= 1), never 0.
  ASSERT_EQ(setenv("SPOTHOST_THREADS", "lots", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
  ASSERT_EQ(unsetenv("SPOTHOST_THREADS"), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.thread_count(), 1u);
  EXPECT_EQ(a.submit([] { return 11; }).get(), 11);
}

TEST(ThreadPool, RunBatchRunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    tasks.emplace_back([&hits, i] { ++hits[i]; });
  }
  pool.run_batch(tasks);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // The task vector is borrowed, not consumed: a second run re-fires all.
  pool.run_batch(tasks);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 2);
}

TEST(ThreadPool, RunBatchEmptyAndSingleAreInline) {
  ThreadPool pool(2);
  pool.run_batch({});
  int ran = 0;
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  std::vector<std::function<void()>> one;
  one.emplace_back([&] {
    ++ran;
    ran_on = std::this_thread::get_id();
  });
  pool.run_batch(one);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(ran_on, caller);  // a single task never pays the handshake
}

TEST(ThreadPool, RunBatchWorksOnSingleWorkerPool) {
  // The caller participates, so a 1-worker pool (or an entirely busy pool)
  // cannot deadlock a batch.
  ThreadPool pool(1);
  std::atomic<int> done{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 16; ++i) tasks.emplace_back([&done] { ++done; });
  pool.run_batch(tasks);
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, RunBatchNestedFromPoolTasksDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_done{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.emplace_back([&pool, &inner_done] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 8; ++j) inner.emplace_back([&inner_done] { ++inner_done; });
      pool.run_batch(inner);  // runs on a worker thread: must self-execute
    });
  }
  pool.run_batch(outer);
  EXPECT_EQ(inner_done.load(), 4 * 8);
}

TEST(ThreadPool, RunBatchRethrowsFirstExceptionByIndex) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([&ran] { ++ran; });
  tasks.emplace_back([] { throw std::runtime_error("batch task 1"); });
  tasks.emplace_back([] { throw std::logic_error("batch task 2"); });
  tasks.emplace_back([&ran] { ++ran; });
  // All tasks still run (an exception does not cancel the rest), and the
  // lowest-index error wins deterministically.
  EXPECT_THROW(
      {
        try {
          pool.run_batch(tasks);
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "batch task 1");
          throw;
        }
      },
      std::runtime_error);
  EXPECT_EQ(ran.load(), 2);
  // The pool survives a throwing batch.
  EXPECT_EQ(pool.submit([] { return 5; }).get(), 5);
}

}  // namespace
}  // namespace spothost::exec
