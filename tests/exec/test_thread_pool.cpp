#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

namespace spothost::exec {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ConcurrencyNeverExceedsThreadCount) {
  constexpr std::size_t kThreads = 3;
  ThreadPool pool(kThreads);
  std::atomic<int> current{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 48; ++i) {
    futures.push_back(pool.submit([&] {
      const int now = ++current;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      --current;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_LE(peak.load(), static_cast<int>(kThreads));
  EXPECT_GE(peak.load(), 1);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  auto good = pool.submit([] { return 1; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A throwing task must not take its worker down with it.
  EXPECT_EQ(good.get(), 1);
  EXPECT_EQ(pool.submit([] { return 2; }).get(), 2);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> completed{0};
  {
    // One worker and many slow-ish tasks: most are still queued when the
    // destructor runs, and every one must still execute.
    ThreadPool pool(1);
    for (int i = 0; i < 64; ++i) {
      auto f = pool.submit([&completed] { ++completed; });
      (void)f;  // results intentionally unobserved
    }
  }
  EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPool, DefaultThreadCountReadsEnvOverride) {
  ASSERT_EQ(setenv("SPOTHOST_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3u);
  // Garbage falls back to hardware concurrency (>= 1), never 0.
  ASSERT_EQ(setenv("SPOTHOST_THREADS", "lots", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
  ASSERT_EQ(unsetenv("SPOTHOST_THREADS"), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.thread_count(), 1u);
  EXPECT_EQ(a.submit([] { return 11; }).get(), 11);
}

}  // namespace
}  // namespace spothost::exec
