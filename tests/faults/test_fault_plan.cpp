#include "faults/fault_plan.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

namespace spothost::faults {
namespace {

TEST(FaultPlan, DefaultConstructedIsEmpty) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  for (const FaultKind kind : kAllFaultKinds) {
    EXPECT_EQ(plan.rate_of(kind), 0.0);
  }
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, WithRateArmsOneKind) {
  FaultPlan plan;
  plan.with_rate(FaultKind::kAllocTimeout, 0.25);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.rate_of(FaultKind::kAllocTimeout), 0.25);
  EXPECT_EQ(plan.rate_of(FaultKind::kWarningDropped), 0.0);
}

TEST(FaultPlan, AtOpportunityArmsOneKind) {
  FaultPlan plan;
  plan.at_opportunity(FaultKind::kLiveCopyAbort, 3);
  EXPECT_FALSE(plan.empty());
  ASSERT_EQ(plan.scheduled.size(), 1u);
  EXPECT_EQ(plan.scheduled.front().first, FaultKind::kLiveCopyAbort);
  EXPECT_EQ(plan.scheduled.front().second, 3u);
}

TEST(FaultPlan, BuilderCallsChain) {
  FaultPlan plan;
  plan.with_rate(FaultKind::kWarningDelayed, 0.1)
      .with_rate(FaultKind::kWarningDropped, 0.2)
      .at_opportunity(FaultKind::kCheckpointStall, 1);
  EXPECT_EQ(plan.rate_of(FaultKind::kWarningDelayed), 0.1);
  EXPECT_EQ(plan.rate_of(FaultKind::kWarningDropped), 0.2);
  EXPECT_EQ(plan.scheduled.size(), 1u);
}

TEST(FaultPlan, RejectsRateOutsideUnitInterval) {
  FaultPlan plan;
  EXPECT_THROW(plan.with_rate(FaultKind::kAllocTimeout, -0.1),
               std::invalid_argument);
  EXPECT_THROW(plan.with_rate(FaultKind::kAllocTimeout, 1.5),
               std::invalid_argument);
  FaultPlan direct;
  direct.rate[0] = 2.0;
  EXPECT_THROW(direct.validate(), std::invalid_argument);
}

TEST(FaultPlan, RejectsZeroOpportunityIndex) {
  FaultPlan plan;
  EXPECT_THROW(plan.at_opportunity(FaultKind::kAllocTimeout, 0),
               std::invalid_argument);
  FaultPlan direct;
  direct.scheduled.emplace_back(FaultKind::kAllocTimeout, 0u);
  EXPECT_THROW(direct.validate(), std::invalid_argument);
}

TEST(FaultPlan, RejectsNonsenseShapeParameters) {
  FaultPlan stall;
  stall.checkpoint_stall_factor = 0.5;
  EXPECT_THROW(stall.validate(), std::invalid_argument);

  FaultPlan delay;
  delay.warning_delay_s = -1.0;
  EXPECT_THROW(delay.validate(), std::invalid_argument);

  FaultPlan timeout;
  timeout.alloc_timeout_extra_s = -1.0;
  EXPECT_THROW(timeout.validate(), std::invalid_argument);
}

TEST(FaultPlan, KindNamesAreStableAndDistinct) {
  std::set<std::string> names;
  for (const FaultKind kind : kAllFaultKinds) {
    names.emplace(to_string(kind));
  }
  EXPECT_EQ(names.size(), kFaultKindCount);
  EXPECT_EQ(to_string(FaultKind::kAllocInsufficientCapacity),
            "alloc_insufficient_capacity");
  EXPECT_EQ(to_string(FaultKind::kCheckpointStall), "checkpoint_stall");
}

}  // namespace
}  // namespace spothost::faults
