// End-to-end fault-recovery behaviour: the injector wired into a full World,
// the scheduler's retry/backoff ladder, graceful degradation, and the
// provider-level warning faults. Everything here is deterministic — faults
// are either scheduled at exact opportunity indices or armed at rate 1.0.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>

#include "obs/jsonl_sink.hpp"
#include "obs/sink.hpp"
#include "simcore/simulation.hpp"
#include "spothost.hpp"

namespace spothost {
namespace {

using faults::FaultKind;
using faults::FaultPlan;

sched::Scenario small_scenario() {
  sched::Scenario scenario;
  scenario.seed = 20150615;
  scenario.horizon = 10 * sim::kDay;
  scenario.regions = {"us-east-1a", "us-east-1b"};
  scenario.sizes = {cloud::InstanceSize::kSmall, cloud::InstanceSize::kLarge};
  return scenario;
}

sched::SchedulerConfig multi_market_config() {
  sched::SchedulerConfig cfg =
      sched::proactive_config({"us-east-1a", cloud::InstanceSize::kSmall});
  cfg.scope = sched::MarketScope::kMultiMarket;
  return cfg;
}

struct RunResult {
  std::string jsonl;
  metrics::RunMetrics metrics;
};

/// run_hosting_scenario with two extras: the full JSONL trace is captured,
/// and `detach_injector` unplugs the injector from the simulation so we can
/// prove an *attached* empty plan changes nothing.
RunResult run_jsonl(const sched::Scenario& scenario,
                    const sched::SchedulerConfig& config,
                    bool detach_injector = false) {
  sched::World world(scenario);
  if (detach_injector) world.engine().set_fault_injector(nullptr);
  workload::AlwaysOnService service("hosted-service", virt::VmSpec{});
  std::ostringstream os;
  obs::Tracer tracer;
  obs::JsonlSink sink(os);
  tracer.add_sink(&sink);
  world.engine().set_tracer(&tracer);
  service.set_tracer(&tracer);
  sched::CloudScheduler scheduler(world.clock(), world.provider(), service,
                                  config, world.stream("scheduler-timing"));
  scheduler.start();
  world.engine().run_until(world.horizon());
  world.provider().finalize(world.horizon());
  scheduler.finalize(world.horizon());
  tracer.flush();

  const double baseline = sched::effective_on_demand_price(
      world.provider(), config.home_market.region, config.home_market.size);
  RunResult result;
  result.metrics = metrics::compute_run_metrics(world.provider(), scheduler,
                                                service, world.horizon(),
                                                baseline);
  result.metrics.faults_injected =
      static_cast<int>(world.faults().injected_total());
  result.jsonl = os.str();
  return result;
}

TEST(FaultRecovery, EmptyPlanAttachedMatchesDetachedByteForByte) {
  const RunResult attached = run_jsonl(small_scenario(), multi_market_config());
  const RunResult detached =
      run_jsonl(small_scenario(), multi_market_config(), /*detach=*/true);
  EXPECT_EQ(attached.jsonl, detached.jsonl);
  EXPECT_EQ(attached.metrics.faults_injected, 0);
  EXPECT_EQ(attached.metrics.retries, 0);
  EXPECT_EQ(attached.metrics.degraded_entries, 0);
}

TEST(FaultRecovery, FaultedRunsAreSeedReproducible) {
  sched::Scenario scenario = small_scenario();
  scenario.fault_plan.with_rate(FaultKind::kAllocInsufficientCapacity, 0.25)
      .with_rate(FaultKind::kWarningDelayed, 0.5)
      .with_rate(FaultKind::kLiveCopyAbort, 0.5);
  const RunResult a = run_jsonl(scenario, multi_market_config());
  const RunResult b = run_jsonl(scenario, multi_market_config());
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_EQ(a.metrics.faults_injected, b.metrics.faults_injected);
}

TEST(FaultRecovery, FaultsPerturbTheTraceAndAreVisibleInIt) {
  sched::Scenario faulted = small_scenario();
  faulted.fault_plan.with_rate(FaultKind::kWarningDelayed, 1.0)
      .at_opportunity(FaultKind::kAllocInsufficientCapacity, 1);
  const RunResult with_faults = run_jsonl(faulted, multi_market_config());
  const RunResult clean = run_jsonl(small_scenario(), multi_market_config());

  EXPECT_NE(with_faults.jsonl, clean.jsonl);
  EXPECT_NE(with_faults.jsonl.find("fault_injected"), std::string::npos);
  EXPECT_GT(with_faults.metrics.faults_injected, 0);
}

TEST(FaultRecovery, RetryRecoversFirstAcquisitionCapacityFault) {
  sched::Scenario scenario = small_scenario();
  scenario.fault_plan.at_opportunity(FaultKind::kAllocInsufficientCapacity, 1);

  // Retries on (defaults): one backoff, then the service comes up and stays
  // within a whisker of the fault-free availability.
  const RunResult on = run_jsonl(scenario, multi_market_config());
  EXPECT_GE(on.metrics.retries, 1);
  EXPECT_EQ(on.metrics.faults_injected, 1);
  EXPECT_LT(on.metrics.unavailability_pct, 5.0);

  // Retries off: the very first request dies and nothing re-arms acquisition,
  // so the service never starts — the whole horizon is an outage.
  sched::SchedulerConfig off_cfg = multi_market_config();
  off_cfg.retry = sched::RetryPolicy{.max_attempts = 0,
                                     .graceful_degradation = false};
  const RunResult off = run_jsonl(scenario, off_cfg);
  EXPECT_EQ(off.metrics.retries, 0);
  EXPECT_GT(off.metrics.unavailability_pct, 90.0);
}

TEST(FaultRecovery, ExhaustedBudgetDegradesToSlowRetryInsteadOfGivingUp) {
  sched::Scenario scenario = small_scenario();
  // Two consecutive capacity faults against a budget of one attempt: the
  // second failure exhausts the budget and graceful degradation must keep a
  // slow poll alive; opportunity 3 is clean and succeeds.
  scenario.fault_plan
      .at_opportunity(FaultKind::kAllocInsufficientCapacity, 1)
      .at_opportunity(FaultKind::kAllocInsufficientCapacity, 2);
  sched::SchedulerConfig cfg = multi_market_config();
  cfg.retry.max_attempts = 1;

  const RunResult r = run_jsonl(scenario, cfg);
  EXPECT_EQ(r.metrics.faults_injected, 2);
  EXPECT_GE(r.metrics.degraded_entries, 1);
  // Slow retry is capped at backoff_max_s, so the service still comes up
  // early in the 10-day horizon.
  EXPECT_LT(r.metrics.unavailability_pct, 5.0);
}

// --- provider-level warning faults -----------------------------------------

const cloud::MarketId kSmallEast{"us-east-1a", cloud::InstanceSize::kSmall};

/// One market: cheap at t=0, spikes above any sane bid at t=2h, recovers at
/// t=3h; zero-CV latencies so every timestamp below is exact.
class WarningFaultTest : public ::testing::Test {
 protected:
  explicit WarningFaultTest() : rng_(1234), provider_(sim_, rng_) {
    trace::PriceTrace t;
    t.append(0, 0.02);
    t.append(2 * sim::kHour, 0.50);
    t.append(3 * sim::kHour, 0.02);
    t.set_end(48 * sim::kHour);
    provider_.add_market(kSmallEast, std::move(t), 0.06);
    cloud::AllocationLatency lat;
    lat.on_demand_mean_s = 90.0;
    lat.on_demand_cv = 0.0;
    lat.spot_mean_s = 240.0;
    lat.spot_cv = 0.0;
    provider_.set_allocation_latency("us-east-1a", lat);
    provider_.start();
  }

  /// Arms the plan, attaches the injector, and runs one warned revocation.
  void run_revocation(const FaultPlan& plan) {
    injector_.emplace(sim_, rng_, plan);
    sim_.set_fault_injector(&*injector_);
    std::optional<cloud::InstanceId> iid;
    provider_.request_spot(
        kSmallEast, 0.06, [&](cloud::InstanceId i) { iid = i; },
        [](cloud::AllocFailure) {});
    sim_.run_until(sim::kHour);
    ASSERT_TRUE(iid.has_value());
    provider_.set_revocation_handler(
        *iid, [&](cloud::InstanceId i, sim::SimTime t_term) {
          warned_at_ = sim_.now();
          term_time_ = t_term;
          state_at_warning_ = provider_.instance(i).state;
        });
    sim_.run_until(5 * sim::kHour);
  }

  sim::Simulation sim_;
  sim::RngFactory rng_;
  cloud::CloudProvider provider_;
  std::optional<faults::FaultInjector> injector_;
  std::optional<sim::SimTime> warned_at_;
  std::optional<sim::SimTime> term_time_;
  std::optional<cloud::InstanceState> state_at_warning_;
};

TEST_F(WarningFaultTest, DroppedWarningStillDeliversAtTerminationTime) {
  FaultPlan plan;
  plan.with_rate(FaultKind::kWarningDropped, 1.0);
  run_revocation(plan);
  ASSERT_TRUE(warned_at_.has_value());
  // The advance notice is swallowed: the handler only hears about the
  // revocation at the termination instant itself (zero seconds of warning),
  // but it still fires *before* the instance is torn down.
  EXPECT_EQ(*term_time_, 2 * sim::kHour + 120 * sim::kSecond);
  EXPECT_EQ(*warned_at_, *term_time_);
  EXPECT_EQ(*state_at_warning_, cloud::InstanceState::kWarned);
}

TEST_F(WarningFaultTest, DelayedWarningShrinksTheGraceWindow) {
  FaultPlan plan;
  plan.with_rate(FaultKind::kWarningDelayed, 1.0);
  plan.warning_delay_s = 60.0;
  run_revocation(plan);
  ASSERT_TRUE(warned_at_.has_value());
  // 120 s of grace minus a 60 s delivery delay leaves 60 s of real notice.
  EXPECT_EQ(*warned_at_, 2 * sim::kHour + 60 * sim::kSecond);
  EXPECT_EQ(*term_time_, 2 * sim::kHour + 120 * sim::kSecond);
  EXPECT_EQ(*state_at_warning_, cloud::InstanceState::kWarned);
}

}  // namespace
}  // namespace spothost
