#include "faults/injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "obs/event.hpp"
#include "obs/ring_sink.hpp"
#include "obs/sink.hpp"
#include "simcore/rng.hpp"
#include "simcore/simulation.hpp"

namespace spothost::faults {
namespace {

TEST(FaultInjector, EmptyPlanNeverInjectsButCountsOpportunities) {
  sim::Simulation sim;
  sim::RngFactory rng(42);
  FaultInjector injector(sim, rng, FaultPlan{});
  for (int i = 0; i < 50; ++i) {
    for (const FaultKind kind : kAllFaultKinds) {
      EXPECT_FALSE(injector.should_inject(kind));
    }
  }
  for (const FaultKind kind : kAllFaultKinds) {
    EXPECT_EQ(injector.opportunities(kind), 50u);
    EXPECT_EQ(injector.injected(kind), 0u);
  }
  EXPECT_EQ(injector.injected_total(), 0u);
}

TEST(FaultInjector, ScheduledOpportunityReplaysExactly) {
  sim::Simulation sim;
  sim::RngFactory rng(42);
  FaultPlan plan;
  plan.at_opportunity(FaultKind::kAllocTimeout, 2);
  plan.at_opportunity(FaultKind::kAllocTimeout, 5);
  FaultInjector injector(sim, rng, plan);
  std::vector<bool> hits;
  for (int i = 0; i < 6; ++i) {
    hits.push_back(injector.should_inject(FaultKind::kAllocTimeout));
  }
  EXPECT_EQ(hits, (std::vector<bool>{false, true, false, false, true, false}));
  EXPECT_EQ(injector.injected(FaultKind::kAllocTimeout), 2u);
  EXPECT_EQ(injector.injected_total(), 2u);
}

TEST(FaultInjector, RateOneAlwaysInjects) {
  sim::Simulation sim;
  sim::RngFactory rng(42);
  FaultPlan plan;
  plan.with_rate(FaultKind::kWarningDropped, 1.0);
  FaultInjector injector(sim, rng, plan);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(injector.should_inject(FaultKind::kWarningDropped));
  }
  // The other kinds stay silent.
  EXPECT_FALSE(injector.should_inject(FaultKind::kWarningDelayed));
}

TEST(FaultInjector, SameSeedSamePlanReproducesDecisions) {
  FaultPlan plan;
  plan.with_rate(FaultKind::kAllocInsufficientCapacity, 0.3);

  const auto decisions = [&plan](std::uint64_t seed) {
    sim::Simulation sim;
    sim::RngFactory rng(seed);
    FaultInjector injector(sim, rng, plan);
    std::vector<bool> out;
    for (int i = 0; i < 200; ++i) {
      out.push_back(
          injector.should_inject(FaultKind::kAllocInsufficientCapacity));
    }
    return out;
  };

  EXPECT_EQ(decisions(7), decisions(7));
  EXPECT_NE(decisions(7), decisions(8));  // and the seed actually matters
}

TEST(FaultInjector, ArmingOneKindDoesNotPerturbAnother) {
  const auto capacity_decisions = [](bool also_arm_timeout) {
    sim::Simulation sim;
    sim::RngFactory rng(99);
    FaultPlan plan;
    plan.with_rate(FaultKind::kAllocInsufficientCapacity, 0.4);
    if (also_arm_timeout) plan.with_rate(FaultKind::kAllocTimeout, 0.4);
    FaultInjector injector(sim, rng, plan);
    std::vector<bool> out;
    for (int i = 0; i < 200; ++i) {
      // Interleave draws of both kinds; each kind has its own named stream,
      // so the interleaving must not change the capacity-kind sequence.
      (void)injector.should_inject(FaultKind::kAllocTimeout);
      out.push_back(
          injector.should_inject(FaultKind::kAllocInsufficientCapacity));
    }
    return out;
  };
  EXPECT_EQ(capacity_decisions(false), capacity_decisions(true));
}

TEST(FaultInjector, ScheduledHitsDoNotShiftTheRateStream) {
  // A scheduled hit is an index lookup, not a draw: adding one must leave
  // every rate-based decision at other opportunities unchanged.
  const auto rate_decisions = [](bool with_scheduled) {
    sim::Simulation sim;
    sim::RngFactory rng(123);
    FaultPlan plan;
    plan.with_rate(FaultKind::kLiveCopyAbort, 0.3);
    if (with_scheduled) plan.at_opportunity(FaultKind::kLiveCopyAbort, 4);
    FaultInjector injector(sim, rng, plan);
    std::vector<bool> out;
    for (int i = 0; i < 100; ++i) {
      out.push_back(injector.should_inject(FaultKind::kLiveCopyAbort));
    }
    return out;
  };
  const auto base = rate_decisions(false);
  auto with_sched = rate_decisions(true);
  // Opportunity 4 (index 3) is forced; everything else must match.
  EXPECT_TRUE(with_sched[3]);
  with_sched[3] = base[3];
  EXPECT_EQ(with_sched, base);
}

TEST(FaultInjector, InjectionEmitsTraceEvent) {
  sim::Simulation sim;
  sim::RngFactory rng(42);
  obs::Tracer tracer;
  obs::RingBufferSink ring(16);
  tracer.add_sink(&ring);
  sim.set_tracer(&tracer);

  FaultPlan plan;
  plan.at_opportunity(FaultKind::kCheckpointStall, 2);
  FaultInjector injector(sim, rng, plan);
  EXPECT_FALSE(injector.should_inject(FaultKind::kCheckpointStall, "m", 1));
  EXPECT_TRUE(injector.should_inject(FaultKind::kCheckpointStall, "us-east-1a/small", 7));

  const auto events = ring.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events.front().kind, obs::EventKind::kFaultInjected);
  EXPECT_EQ(events.front().code,
            static_cast<std::uint8_t>(FaultKind::kCheckpointStall));
  EXPECT_EQ(events.front().instance, 7u);
  EXPECT_EQ(events.front().value, 2.0);  // the opportunity index that hit
  EXPECT_EQ(events.front().market, "us-east-1a/small");
}

TEST(FaultInjector, InvalidPlanThrowsAtConstruction) {
  sim::Simulation sim;
  sim::RngFactory rng(42);
  FaultPlan plan;
  plan.rate[0] = -0.5;
  EXPECT_THROW((FaultInjector{sim, rng, plan}), std::invalid_argument);
}

}  // namespace
}  // namespace spothost::faults
