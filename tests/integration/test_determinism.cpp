// Reproducibility: identical (seed, config) pairs must give bit-identical
// metrics — the foundation for every experiment in bench/ — and, with a
// tracer attached, byte-identical JSONL trace streams.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "metrics/experiment.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/sink.hpp"
#include "sched/baselines.hpp"

namespace spothost {
namespace {

using cloud::InstanceSize;
using sim::kDay;

sched::Scenario scenario(std::uint64_t seed) {
  sched::Scenario s;
  s.seed = seed;
  s.horizon = 10 * kDay;
  s.regions = {"us-east-1a", "us-east-1b"};
  s.sizes = {InstanceSize::kSmall, InstanceSize::kLarge};
  return s;
}

void expect_identical(const metrics::RunMetrics& a, const metrics::RunMetrics& b) {
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  EXPECT_DOUBLE_EQ(a.attributed_cost, b.attributed_cost);
  EXPECT_DOUBLE_EQ(a.unavailability_pct, b.unavailability_pct);
  EXPECT_DOUBLE_EQ(a.downtime_s, b.downtime_s);
  EXPECT_EQ(a.forced, b.forced);
  EXPECT_EQ(a.planned, b.planned);
  EXPECT_EQ(a.reverse, b.reverse);
  EXPECT_EQ(a.cancelled_planned, b.cancelled_planned);
  EXPECT_EQ(a.outages, b.outages);
}

class DeterminismSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(DeterminismSweep, SameSeedSameMetrics) {
  const auto& [seed, mode] = GetParam();
  auto cfg = (mode == 0)
                 ? sched::proactive_config({"us-east-1a", InstanceSize::kSmall})
                 : (mode == 1)
                       ? sched::reactive_config({"us-east-1a", InstanceSize::kSmall})
                       : sched::pure_spot_config({"us-east-1a", InstanceSize::kSmall});
  if (mode == 0) cfg.scope = sched::MarketScope::kMultiMarket;
  const auto a = metrics::run_hosting_scenario(scenario(seed), cfg);
  const auto b = metrics::run_hosting_scenario(scenario(seed), cfg);
  expect_identical(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModes, DeterminismSweep,
    ::testing::Combine(::testing::Values(1u, 7u, 4242u),
                       ::testing::Values(0, 1, 2)));

std::string traced_run_jsonl(std::uint64_t seed) {
  std::ostringstream os;
  obs::Tracer tracer;
  obs::JsonlSink sink(os);
  tracer.add_sink(&sink);
  auto cfg = sched::proactive_config({"us-east-1a", InstanceSize::kSmall});
  cfg.scope = sched::MarketScope::kMultiMarket;
  (void)metrics::run_hosting_scenario(scenario(seed), cfg, &tracer, nullptr);
  return os.str();
}

TEST(Determinism, SameSeedGivesByteIdenticalTraceStream) {
  // Events carry simulation time only — never wall clock — so the full
  // serialized stream must be reproducible to the byte.
  const auto a = traced_run_jsonl(7);
  const auto b = traced_run_jsonl(7);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsGiveDifferentTraceStreams) {
  EXPECT_NE(traced_run_jsonl(1), traced_run_jsonl(2));
}

TEST(Determinism, DifferentSeedsGiveDifferentRuns) {
  const auto cfg = sched::proactive_config({"us-east-1a", InstanceSize::kSmall});
  const auto a = metrics::run_hosting_scenario(scenario(1), cfg);
  const auto b = metrics::run_hosting_scenario(scenario(2), cfg);
  EXPECT_NE(a.total_cost, b.total_cost);
}

TEST(Determinism, SimulationIsFinite) {
  // A full month over 16 markets finishes with a bounded event count.
  sched::World world(sched::Scenario{.seed = 3, .horizon = 30 * kDay});
  workload::AlwaysOnService service("svc", virt::VmSpec{});
  auto cfg = sched::proactive_config({"us-east-1a", InstanceSize::kSmall});
  cfg.scope = sched::MarketScope::kMultiRegion;
  sched::CloudScheduler scheduler(world.clock(), world.provider(), service,
                                  cfg, world.stream("t"));
  scheduler.start();
  world.engine().run_until(world.horizon());
  EXPECT_LT(world.engine().dispatched(), 2'000'000u);
  EXPECT_GT(world.engine().dispatched(), 100u);
}

}  // namespace
}  // namespace spothost
