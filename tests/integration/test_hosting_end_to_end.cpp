// End-to-end hosting runs over the full synthetic cloud: these assert the
// paper's headline claims as statistical properties over several seeds.
#include <gtest/gtest.h>

#include <map>

#include "metrics/experiment.hpp"
#include "sched/baselines.hpp"

namespace spothost {
namespace {

using cloud::InstanceSize;
using cloud::MarketId;
using metrics::ExperimentRunner;
using sim::kDay;

const MarketId kHome{"us-east-1a", InstanceSize::kSmall};

sched::Scenario month() {
  sched::Scenario s;
  s.horizon = 30 * kDay;
  s.regions = {"us-east-1a"};
  s.sizes = {InstanceSize::kSmall};
  return s;
}

class EndToEnd : public ::testing::Test {
 protected:
  const ExperimentRunner runner_{5, 31337};
};

TEST_F(EndToEnd, HeadlineCostReduction) {
  // "one-third to one-fifth the cost" — allow a generous band around it.
  const auto agg = runner_.run(month(), sched::proactive_config(kHome));
  EXPECT_GT(agg.normalized_cost_pct.mean, 10.0);
  EXPECT_LT(agg.normalized_cost_pct.mean, 45.0);
}

TEST_F(EndToEnd, HeadlineAvailability) {
  // Proactive + CKPT LR + Live keeps unavailability near the four-nines bar.
  const auto agg = runner_.run(month(), sched::proactive_config(kHome));
  EXPECT_LT(agg.unavailability_pct.mean, 0.02);
}

TEST_F(EndToEnd, ProactiveBeatsReactiveOnUnavailability) {
  const auto pro = runner_.run(month(), sched::proactive_config(kHome));
  const auto rea = runner_.run(month(), sched::reactive_config(kHome));
  EXPECT_LT(pro.unavailability_pct.mean, rea.unavailability_pct.mean);
  EXPECT_LT(pro.forced_per_hour.mean, rea.forced_per_hour.mean);
}

TEST_F(EndToEnd, ProactiveCostNoWorseThanReactive) {
  const auto pro = runner_.run(month(), sched::proactive_config(kHome));
  const auto rea = runner_.run(month(), sched::reactive_config(kHome));
  EXPECT_LT(pro.normalized_cost_pct.mean, rea.normalized_cost_pct.mean * 1.1);
}

TEST_F(EndToEnd, PureSpotUnavailabilityIsUnacceptable) {
  const auto spot = runner_.run(month(), sched::pure_spot_config(kHome));
  const auto pro = runner_.run(month(), sched::proactive_config(kHome));
  EXPECT_GT(spot.unavailability_pct.mean, 10.0 * pro.unavailability_pct.mean);
  EXPECT_GT(spot.unavailability_pct.mean, 0.1);
}

TEST_F(EndToEnd, MechanismLadderFig7) {
  // CKPT is the worst; lazy restore rescues it; live halves voluntary moves.
  std::map<virt::MechanismCombo, double> unavail;
  for (const auto combo : virt::kAllCombos) {
    auto cfg = sched::proactive_config(kHome);
    cfg.combo = combo;
    unavail[combo] = runner_.run(month(), cfg).unavailability_pct.mean;
  }
  using MC = virt::MechanismCombo;
  EXPECT_GT(unavail[MC::kCkpt], unavail[MC::kCkptLazy]);
  EXPECT_GT(unavail[MC::kCkpt], unavail[MC::kCkptLive]);
  EXPECT_GT(unavail[MC::kCkptLazy], unavail[MC::kCkptLazyLive]);
  EXPECT_GT(unavail[MC::kCkptLive], unavail[MC::kCkptLazyLive]);
}

TEST_F(EndToEnd, PessimisticParametersHurt) {
  auto cfg = sched::proactive_config(kHome);
  const auto typical = runner_.run(month(), cfg).unavailability_pct.mean;
  cfg.mech = virt::pessimistic_mechanism_params();
  const auto pessimistic = runner_.run(month(), cfg).unavailability_pct.mean;
  EXPECT_GT(pessimistic, typical);
}

TEST_F(EndToEnd, MultiMarketLowersCost) {
  sched::Scenario s;
  s.horizon = 30 * kDay;
  s.regions = {"us-east-1a"};
  s.sizes = {InstanceSize::kSmall, InstanceSize::kMedium, InstanceSize::kLarge,
             InstanceSize::kXLarge};

  // Average the four single-market schemes (Fig. 8's comparison).
  double single_sum = 0.0;
  for (const auto size : cloud::kAllSizes) {
    auto cfg = sched::proactive_config({"us-east-1a", size});
    single_sum += runner_.run(s, cfg).normalized_cost_pct.mean;
  }
  const double single_avg = single_sum / 4.0;

  auto multi_cfg = sched::proactive_config(kHome);
  multi_cfg.scope = sched::MarketScope::kMultiMarket;
  const auto multi = runner_.run(s, multi_cfg);
  EXPECT_LT(multi.normalized_cost_pct.mean, single_avg);
}

TEST_F(EndToEnd, BudgetsAreInternallyConsistent) {
  const auto agg = runner_.run(month(), sched::proactive_config(kHome));
  for (const auto& run : agg.per_run) {
    EXPECT_GE(run.total_cost, run.attributed_cost - 1e-9);
    EXPECT_GE(run.downtime_s, 0.0);
    EXPECT_NEAR(run.unavailability_pct,
                100.0 * run.downtime_s / (run.horizon_hours * 3600.0), 1e-6);
    EXPECT_GE(run.planned + run.reverse, 0);
  }
}

}  // namespace
}  // namespace spothost
