// Multi-market / multi-region scenario integration tests (Figs. 8 and 9).
#include <gtest/gtest.h>

#include "metrics/experiment.hpp"
#include "sched/baselines.hpp"

namespace spothost {
namespace {

using cloud::InstanceSize;
using cloud::MarketId;
using metrics::ExperimentRunner;
using sim::kDay;

sched::Scenario two_region_scenario() {
  sched::Scenario s;
  s.horizon = 20 * kDay;
  s.regions = {"us-east-1a", "eu-west-1a"};
  return s;  // all four sizes per region
}

class Scenarios : public ::testing::Test {
 protected:
  const ExperimentRunner runner_{4, 2024};
};

TEST_F(Scenarios, MultiRegionRunsAndSavesMoney) {
  auto cfg = sched::proactive_config({"us-east-1a", InstanceSize::kSmall});
  cfg.scope = sched::MarketScope::kMultiRegion;
  cfg.allowed_regions = {"us-east-1a", "eu-west-1a"};
  const auto multi = runner_.run(two_region_scenario(), cfg);
  EXPECT_GT(multi.normalized_cost_pct.mean, 3.0);
  EXPECT_LT(multi.normalized_cost_pct.mean, 40.0);

  // Single-region average over the two regions (Fig. 9's comparison).
  double single_sum = 0.0;
  for (const std::string region : {"us-east-1a", "eu-west-1a"}) {
    auto scfg = sched::proactive_config({region, InstanceSize::kSmall});
    scfg.scope = sched::MarketScope::kMultiMarket;
    single_sum += runner_.run(two_region_scenario(), scfg).normalized_cost_pct.mean;
  }
  EXPECT_LT(multi.normalized_cost_pct.mean, single_sum / 2.0 * 1.05);
}

TEST_F(Scenarios, MultiMarketReducesUnavailabilityVsSingle) {
  sched::Scenario s;
  s.horizon = 20 * kDay;
  s.regions = {"us-east-1a"};
  auto single = sched::proactive_config({"us-east-1a", InstanceSize::kSmall});
  auto multi = single;
  multi.scope = sched::MarketScope::kMultiMarket;
  const auto a = runner_.run(s, single);
  const auto b = runner_.run(s, multi);
  // Fig. 8(c): more escape routes => no worse availability (allow noise).
  EXPECT_LT(b.unavailability_pct.mean, a.unavailability_pct.mean * 1.5);
}

TEST_F(Scenarios, StabilityAwareSelectionDoesNotExplodeCost) {
  // The paper's future-work extension: penalising volatile markets should
  // trade a little cost for fewer disruptions.
  auto greedy = sched::proactive_config({"us-east-1a", InstanceSize::kSmall});
  greedy.scope = sched::MarketScope::kMultiRegion;
  auto stable = greedy;
  stable.stability = sched::StabilityPolicy::kPenalizeVolatility;
  stable.stability_penalty_weight = 2.0;
  const auto g = runner_.run(two_region_scenario(), greedy);
  const auto st = runner_.run(two_region_scenario(), stable);
  EXPECT_LT(st.normalized_cost_pct.mean, g.normalized_cost_pct.mean * 2.0);
  EXPECT_LT(st.unavailability_pct.mean, 0.05);
}

TEST_F(Scenarios, EveryScopeKeepsServiceNearlyAlwaysUp) {
  for (const auto scope :
       {sched::MarketScope::kSingleMarket, sched::MarketScope::kMultiMarket,
        sched::MarketScope::kMultiRegion}) {
    auto cfg = sched::proactive_config({"us-east-1a", InstanceSize::kSmall});
    cfg.scope = scope;
    const auto agg = runner_.run(two_region_scenario(), cfg);
    EXPECT_LT(agg.unavailability_pct.mean, 0.05) << to_string(scope);
  }
}

TEST_F(Scenarios, XlargeServiceAlsoHosts) {
  // Bigger VM: bigger checkpoints, longer restores — still four-nines-ish.
  sched::Scenario s;
  s.horizon = 20 * kDay;
  s.regions = {"us-east-1a"};
  const auto agg = runner_.run(
      s, sched::proactive_config({"us-east-1a", InstanceSize::kXLarge}));
  EXPECT_LT(agg.unavailability_pct.mean, 0.1);
  EXPECT_LT(agg.normalized_cost_pct.mean, 50.0);
}

}  // namespace
}  // namespace spothost
