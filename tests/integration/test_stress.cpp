// Stress / property suite: hostile synthetic markets across every policy,
// scope and mechanism combination. Individual outcomes are not asserted —
// instead, run-level invariants that must hold for ANY input:
//   * the simulation terminates (no event storms);
//   * availability books balance (downtime == sum of outages, within horizon);
//   * spending is bounded (a sane scheduler never pays wildly above the
//     on-demand baseline, even in pathological markets);
//   * migration counters are consistent with the outage causes recorded.
#include <gtest/gtest.h>

#include "metrics/experiment.hpp"
#include "sched/baselines.hpp"
#include "simcore/simulation.hpp"
#include "trace/profiles.hpp"

namespace spothost {
namespace {

using cloud::InstanceSize;
using sim::kDay;

// A much nastier market than the calibrated profiles: constant churn, spikes
// every few hours with violent tails.
trace::MarketProfile hostile_profile() {
  trace::MarketProfile p;
  p.base_fraction = 0.45;
  p.base_jitter_sigma = 0.5;
  p.base_change_mean_minutes = 4.0;
  p.spike_rate_per_day = 8.0;
  p.spike_pareto_xm = 0.8;
  p.spike_pareto_alpha = 0.6;
  p.spike_cap_multiple = 25.0;
  p.spike_duration_mean_minutes = 15.0;
  p.spike_duration_cv = 2.0;
  p.max_ramp_steps = 4;
  p.ramp_step_mean_seconds = 15.0;
  p.shared_spike_fraction = 0.0;
  return p;
}

struct StressCase {
  int policy;  // 0 proactive, 1 reactive, 2 pure spot
  sched::MarketScope scope;
  virt::MechanismCombo combo;
  std::uint64_t seed;
};

class StressSweep : public ::testing::TestWithParam<StressCase> {};

TEST_P(StressSweep, InvariantsSurviveHostileMarkets) {
  const auto& param = GetParam();

  // Hand-built world: every market uses the hostile profile.
  sim::RngFactory rng(param.seed);
  sim::Simulation simulation;
  cloud::CloudProvider provider(simulation, rng);
  const sim::SimTime horizon = 10 * kDay;
  for (const std::string region : {"us-east-1a", "us-east-1b"}) {
    provider.set_allocation_latency(region,
                                    sched::table1_allocation_latency(region));
    for (const auto size : cloud::kAllSizes) {
      const double od = cloud::on_demand_price(size, region);
      auto market_rng = rng.stream("hostile/" + region +
                                   std::string(cloud::to_string(size)));
      provider.add_market(
          cloud::MarketId{region, size},
          trace::SyntheticSpotModel::generate(hostile_profile(), od, horizon,
                                              market_rng),
          od);
    }
  }
  provider.start();

  workload::AlwaysOnService service("stress",
                                    virt::default_spec_for_memory(1.7, 8.0));
  sched::SchedulerConfig cfg;
  switch (param.policy) {
    case 0: cfg = sched::proactive_config({"us-east-1a", InstanceSize::kSmall}); break;
    case 1: cfg = sched::reactive_config({"us-east-1a", InstanceSize::kSmall}); break;
    default: cfg = sched::pure_spot_config({"us-east-1a", InstanceSize::kSmall});
  }
  if (param.policy != 2) cfg.scope = param.scope;
  cfg.combo = param.combo;
  sched::CloudScheduler scheduler(simulation, provider, service, cfg,
                                  rng.stream("timing"));
  scheduler.start();
  simulation.run_until(horizon);
  provider.finalize(horizon);
  scheduler.finalize(horizon);

  // 1. Termination with a bounded event count.
  EXPECT_LT(simulation.dispatched(), 3'000'000u);

  // 2. Books balance.
  const auto& avail = service.availability();
  sim::SimTime outage_sum = 0;
  for (const auto& o : avail.outages()) {
    EXPECT_GE(o.start, 0);
    EXPECT_LE(o.end, horizon);
    EXPECT_LE(o.start, o.end);
    outage_sum += o.duration();
  }
  EXPECT_EQ(outage_sum, avail.total_downtime());
  EXPECT_LE(avail.total_downtime(), horizon);

  // 3. Bounded spending: even chasing a hostile market, attributed cost
  // stays within a small multiple of the on-demand baseline.
  const auto metrics = metrics::compute_run_metrics(
      provider, scheduler, service, horizon,
      provider.od_price({"us-east-1a", InstanceSize::kSmall}));
  EXPECT_LT(metrics.normalized_cost_pct, 250.0);
  EXPECT_GE(metrics.total_cost, 0.0);

  // 4. Counter consistency: outages attributed to forced migrations cannot
  // exceed forced migrations begun (an in-flight one at the horizon may not
  // have produced its outage yet).
  EXPECT_LE(service.outage_count(workload::OutageCause::kForcedMigration),
            scheduler.stats().forced);
  EXPECT_GE(scheduler.stats().forced, 0);
  EXPECT_GE(scheduler.stats().planned, 0);
  EXPECT_GE(scheduler.stats().reverse, 0);
}

std::vector<StressCase> stress_cases() {
  std::vector<StressCase> cases;
  std::uint64_t seed = 1000;
  for (const int policy : {0, 1, 2}) {
    for (const auto scope :
         {sched::MarketScope::kSingleMarket, sched::MarketScope::kMultiMarket,
          sched::MarketScope::kMultiRegion}) {
      for (const auto combo :
           {virt::MechanismCombo::kCkpt, virt::MechanismCombo::kCkptLazyLive}) {
        cases.push_back({policy, scope, combo, seed});
        seed += 7;
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(HostileMarkets, StressSweep,
                         ::testing::ValuesIn(stress_cases()));

class SeedMarathon : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedMarathon, StandardWorldsNeverWedge) {
  sched::Scenario scenario;
  scenario.seed = GetParam();
  scenario.horizon = 30 * kDay;
  scenario.regions = {"us-east-1a", "us-east-1b", "us-west-1a", "eu-west-1a"};
  auto cfg = sched::proactive_config({"us-east-1a", InstanceSize::kSmall});
  cfg.scope = sched::MarketScope::kMultiRegion;
  const auto m = metrics::run_hosting_scenario(scenario, cfg);
  EXPECT_GE(m.normalized_cost_pct, 0.0);
  EXPECT_LT(m.normalized_cost_pct, 150.0);
  EXPECT_GE(m.unavailability_pct, 0.0);
  EXPECT_LT(m.unavailability_pct, 5.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedMarathon,
                         ::testing::Range<std::uint64_t>(5000, 5024));

}  // namespace
}  // namespace spothost
