// Golden-trace regression: the layered scheduler (watcher / placement /
// migration engine) must be bit-for-bit behaviour-preserving. This pins the
// full JSONL event trace of one proactive multi-market run — every event,
// every field, every ordering decision — to an FNV-1a hash captured from the
// pre-decomposition monolithic CloudScheduler. Any change to trigger fan-out
// order, RNG draw order, or trace emission points shows up here as a hash
// mismatch long before it shows up as a shifted figure.
//
// If this test fails after an INTENTIONAL behaviour change, re-capture: hash
// the bytes the embedded scenario produces and update the three constants
// together (the byte/line counts make "trace got longer" vs "same events,
// different order" diagnosable from the failure message alone).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "obs/jsonl_sink.hpp"
#include "obs/sink.hpp"
#include "spothost.hpp"

namespace spothost {
namespace {

// Captured from the monolithic scheduler at the commit preceding the
// trigger/placement/migration decomposition.
constexpr std::uint64_t kGoldenHash = 2417515329649513819ull;
constexpr std::size_t kGoldenBytes = 230427;
constexpr std::size_t kGoldenLines = 1717;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string run_golden_scenario(int shards) {
  sched::Scenario scenario;
  scenario.seed = 20150615;
  scenario.horizon = 10 * sim::kDay;
  scenario.regions = {"us-east-1a", "us-east-1b"};
  scenario.sizes = {cloud::InstanceSize::kSmall, cloud::InstanceSize::kLarge};
  scenario.shards = shards;
  sched::SchedulerConfig cfg =
      sched::proactive_config({"us-east-1a", cloud::InstanceSize::kSmall});
  cfg.scope = sched::MarketScope::kMultiMarket;

  std::ostringstream os;
  obs::Tracer tracer;
  obs::JsonlSink sink(os);
  tracer.add_sink(&sink);
  (void)metrics::run_hosting_scenario(scenario, cfg, &tracer, nullptr);
  return os.str();
}

void expect_golden(const std::string& text, const std::string& label) {
  std::size_t lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(text.size(), kGoldenBytes) << label;
  EXPECT_EQ(lines, kGoldenLines) << label;
  EXPECT_EQ(fnv1a(text), kGoldenHash) << label;
}

TEST(TraceGolden, ProactiveMultiMarketRunIsByteIdentical) {
  expect_golden(run_golden_scenario(/*shards=*/0), "serial default");
}

TEST(TraceGolden, ShardedRunIsByteIdenticalToSerial) {
  // Scenario::shards is an explicit program choice, so it is never
  // hardware-clamped: the sharded engine runs on every machine, and its
  // barrier/merge machinery must reproduce the serial bytes exactly —
  // under both queue backends.
  for (const char* backend : {"wheel", "heap"}) {
    ASSERT_EQ(setenv("SPOTHOST_EVENT_QUEUE", backend, 1), 0);
    for (const int shards : {2, 4}) {
      expect_golden(run_golden_scenario(shards),
                    std::string(backend) + " shards=" + std::to_string(shards));
    }
  }
  ASSERT_EQ(unsetenv("SPOTHOST_EVENT_QUEUE"), 0);
}

}  // namespace
}  // namespace spothost
