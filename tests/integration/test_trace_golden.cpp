// Golden-trace regression: the layered scheduler (watcher / placement /
// migration engine) must be bit-for-bit behaviour-preserving. This pins the
// full JSONL event trace of one proactive multi-market run — every event,
// every field, every ordering decision — to an FNV-1a hash captured from the
// pre-decomposition monolithic CloudScheduler. Any change to trigger fan-out
// order, RNG draw order, or trace emission points shows up here as a hash
// mismatch long before it shows up as a shifted figure.
//
// If this test fails after an INTENTIONAL behaviour change, re-capture: hash
// the bytes the embedded scenario produces and update the three constants
// together (the byte/line counts make "trace got longer" vs "same events,
// different order" diagnosable from the failure message alone).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "obs/jsonl_sink.hpp"
#include "obs/sink.hpp"
#include "simcore/sharded_sim.hpp"
#include "spothost.hpp"

namespace spothost {
namespace {

// Captured from the monolithic scheduler at the commit preceding the
// trigger/placement/migration decomposition.
constexpr std::uint64_t kGoldenHash = 2417515329649513819ull;
constexpr std::size_t kGoldenBytes = 230427;
constexpr std::size_t kGoldenLines = 1717;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string run_golden_scenario(int shards) {
  sched::Scenario scenario;
  scenario.seed = 20150615;
  scenario.horizon = 10 * sim::kDay;
  scenario.regions = {"us-east-1a", "us-east-1b"};
  scenario.sizes = {cloud::InstanceSize::kSmall, cloud::InstanceSize::kLarge};
  scenario.shards = shards;
  sched::SchedulerConfig cfg =
      sched::proactive_config({"us-east-1a", cloud::InstanceSize::kSmall});
  cfg.scope = sched::MarketScope::kMultiMarket;

  std::ostringstream os;
  obs::Tracer tracer;
  obs::JsonlSink sink(os);
  tracer.add_sink(&sink);
  (void)metrics::run_hosting_scenario(scenario, cfg, &tracer, nullptr);
  return os.str();
}

void expect_golden(const std::string& text, const std::string& label) {
  std::size_t lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(text.size(), kGoldenBytes) << label;
  EXPECT_EQ(lines, kGoldenLines) << label;
  EXPECT_EQ(fnv1a(text), kGoldenHash) << label;
}

TEST(TraceGolden, ProactiveMultiMarketRunIsByteIdentical) {
  expect_golden(run_golden_scenario(/*shards=*/0), "serial default");
}

TEST(TraceGolden, ShardedRunIsByteIdenticalToSerial) {
  // Scenario::shards is an explicit program choice, so it is never
  // hardware-clamped: the sharded engine runs on every machine, and its
  // barrier/merge machinery must reproduce the serial bytes exactly —
  // under both queue backends.
  for (const char* backend : {"wheel", "heap"}) {
    ASSERT_EQ(setenv("SPOTHOST_EVENT_QUEUE", backend, 1), 0);
    for (const int shards : {2, 4}) {
      expect_golden(run_golden_scenario(shards),
                    std::string(backend) + " shards=" + std::to_string(shards));
    }
  }
  ASSERT_EQ(unsetenv("SPOTHOST_EVENT_QUEUE"), 0);
}

// ---- fleet golden: shard-pinned fleets reproduce the serial bytes ---------

struct FleetRun {
  std::string jsonl;            ///< full event trace
  std::string table;            ///< rendered fleet-metrics table
  std::uint64_t windows = 0;    ///< parallel windows run (sharded only)
  std::uint64_t merged = 0;     ///< window dispatches merged (sharded only)
  std::uint64_t stages = 0;     ///< price-trigger pre-screen stages
};

FleetRun run_fleet_golden(int shards) {
  sched::Scenario scenario;
  scenario.seed = 20150615;
  scenario.horizon = 10 * sim::kDay;
  scenario.regions = {"us-east-1a", "us-east-1b"};
  scenario.sizes = {cloud::InstanceSize::kSmall, cloud::InstanceSize::kLarge};
  scenario.shards = shards;

  sched::FleetConfig cfg;
  cfg.num_services = 5;
  cfg.service_template =
      sched::proactive_config({"us-east-1a", cloud::InstanceSize::kSmall});
  cfg.service_template.scope = sched::MarketScope::kMultiMarket;
  // Stop-and-copy checkpointing: planned migrations carry real downtime, so
  // the shard-lane timers (service-up at up_at, degraded-mode ends) fire
  // inside parallel windows rather than degenerating to barrier-only work.
  cfg.service_template.combo = virt::MechanismCombo::kCkpt;
  cfg.home_markets = {{"us-east-1a", cloud::InstanceSize::kSmall},
                      {"us-east-1b", cloud::InstanceSize::kSmall}};
  cfg.stagger_placement = true;

  std::ostringstream os;
  obs::Tracer tracer;
  obs::JsonlSink sink(os);
  tracer.add_sink(&sink);

  sched::World world(scenario);
  world.engine().set_tracer(&tracer);
  sched::FleetScheduler fleet(world.clock(), world.provider(), cfg,
                              world.rng(), world.shard_router());
  fleet.start();
  world.engine().run_until(world.horizon());
  world.provider().finalize(world.horizon());
  fleet.finalize(world.horizon());
  tracer.flush();

  FleetRun r;
  r.jsonl = os.str();
  const sched::FleetMetrics m = fleet.metrics(world.horizon());
  // The bench-table rendering path (what bench_ablation_fleet prints):
  // every aggregate must reproduce down to the formatted digit.
  metrics::TextTable table({"services", "cost $", "attributed $", "cost %",
                            "mean unavail %", "worst unavail %", "any down %",
                            "max down", "forced", "planned", "reverse"});
  table.add_row({std::to_string(m.services), metrics::fmt(m.total_cost, 4),
                 metrics::fmt(m.attributed_cost, 4),
                 metrics::fmt(m.normalized_cost_pct, 3),
                 metrics::fmt(m.mean_unavailability_pct, 5),
                 metrics::fmt(m.worst_unavailability_pct, 5),
                 metrics::fmt(m.any_down_pct, 5),
                 std::to_string(m.max_concurrent_down),
                 std::to_string(m.total_forced), std::to_string(m.total_planned),
                 std::to_string(m.total_reverse)});
  std::ostringstream ts;
  table.print(ts);
  r.table = ts.str();

  if (const auto* sharded =
          dynamic_cast<const sim::ShardedSimulation*>(&world.engine())) {
    const auto stats = sharded->stats();
    r.windows = stats.windows;
    r.merged = stats.merged;
    r.stages = stats.stages;
  }
  return r;
}

TEST(FleetGolden, ShardPinnedFleetIsByteIdenticalToSerial) {
  for (const char* backend : {"wheel", "heap"}) {
    ASSERT_EQ(setenv("SPOTHOST_EVENT_QUEUE", backend, 1), 0);
    const FleetRun serial = run_fleet_golden(/*shards=*/1);
    ASSERT_FALSE(serial.jsonl.empty());
    for (const int shards : {2, 4}) {
      const FleetRun sharded = run_fleet_golden(shards);
      const std::string label =
          std::string(backend) + " shards=" + std::to_string(shards);
      EXPECT_EQ(sharded.jsonl, serial.jsonl) << label;
      EXPECT_EQ(sharded.table, serial.table) << label;
      // The identity must be earned, not vacuous: the run must have staged
      // price pre-screens and dispatched real lane work inside windows.
      EXPECT_GT(sharded.windows, 0u) << label;
      EXPECT_GT(sharded.merged, 0u) << label;
      EXPECT_GT(sharded.stages, 0u) << label;
    }
  }
  ASSERT_EQ(unsetenv("SPOTHOST_EVENT_QUEUE"), 0);
}

}  // namespace
}  // namespace spothost
