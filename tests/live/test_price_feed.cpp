// live::PriceFeed implementations: trace replay and the tail -f CSV/JSONL
// reader, including the edge cases a real growing feed file exhibits —
// writers caught mid-line, out-of-order rows, unknown markets, truncation.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "live/feed_driver.hpp"
#include "live/price_feed.hpp"
#include "live/wall_clock.hpp"
#include "trace/price_trace.hpp"

namespace spothost {
namespace {

using live::FileTailFeed;
using live::PriceFeed;
using live::PriceUpdate;
using live::TraceReplayFeed;

class TempFeedFile {
 public:
  explicit TempFeedFile(const std::string& name)
      : path_(::testing::TempDir() + name) {
    std::remove(path_.c_str());
  }
  ~TempFeedFile() { std::remove(path_.c_str()); }

  /// Appends exactly `text` (no newline added) and flushes to disk.
  void append(const std::string& text) {
    std::ofstream out(path_, std::ios::app | std::ios::binary);
    out << text;
    out.flush();
  }

  /// Truncates the file to empty.
  void truncate() {
    std::ofstream out(path_, std::ios::trunc | std::ios::binary);
  }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

TEST(TraceReplayFeed, ReplaysPointsInOrder) {
  trace::PriceTrace t;
  t.append(0, 0.10);
  t.append(1000, 0.20);
  t.append(5000, 0.15);
  TraceReplayFeed feed;
  feed.add_market("us-east-1a/small", &t);
  ASSERT_EQ(feed.markets(), std::vector<std::string>{"us-east-1a/small"});

  PriceUpdate u;
  ASSERT_EQ(feed.next("us-east-1a/small", u), PriceFeed::Status::kReady);
  EXPECT_EQ(u.time, 0);
  EXPECT_DOUBLE_EQ(u.price, 0.10);
  ASSERT_EQ(feed.next("us-east-1a/small", u), PriceFeed::Status::kReady);
  EXPECT_EQ(u.time, 1000);
  ASSERT_EQ(feed.next("us-east-1a/small", u), PriceFeed::Status::kReady);
  EXPECT_EQ(u.time, 5000);
  EXPECT_EQ(feed.next("us-east-1a/small", u), PriceFeed::Status::kEnd);
  EXPECT_THROW(feed.next("nope", u), std::out_of_range);
}

TEST(FileTailFeed, ParsesCsvHeaderCommentsAndJsonl) {
  TempFeedFile f("feed_basic.csv");
  f.append("# recorded 2026-08-08\n");
  f.append("time,market,price\n");
  f.append("0,us-east-1a/small,0.08\n");
  f.append("{\"t\": 60000, \"market\": \"us-east-1a/small\", \"price\": 0.12}\n");
  f.append("end,120000\n");

  FileTailFeed feed(f.path());
  EXPECT_EQ(feed.pump(), 2u);
  EXPECT_TRUE(feed.ended());
  EXPECT_EQ(feed.end_time(), 120000);
  EXPECT_EQ(feed.rejected_lines(), 0u);

  PriceUpdate u;
  ASSERT_EQ(feed.next("us-east-1a/small", u), PriceFeed::Status::kReady);
  EXPECT_EQ(u.time, 0);
  EXPECT_DOUBLE_EQ(u.price, 0.08);
  ASSERT_EQ(feed.next("us-east-1a/small", u), PriceFeed::Status::kReady);
  EXPECT_EQ(u.time, 60000);
  EXPECT_DOUBLE_EQ(u.price, 0.12);
  EXPECT_EQ(feed.next("us-east-1a/small", u), PriceFeed::Status::kEnd);
}

TEST(FileTailFeed, PartialTrailingLineWaitsForCompletion) {
  // A writer flushed mid-row: the fragment must not be parsed until its
  // newline lands, and must parse correctly once completed.
  TempFeedFile f("feed_partial.csv");
  f.append("0,m/small,0.10\n");
  f.append("60000,m/sm");  // torn mid-market-name, no newline

  FileTailFeed feed(f.path());
  EXPECT_EQ(feed.pump(), 1u);
  PriceUpdate u;
  ASSERT_EQ(feed.next("m/small", u), PriceFeed::Status::kReady);
  EXPECT_EQ(u.time, 0);
  EXPECT_EQ(feed.next("m/small", u), PriceFeed::Status::kWouldBlock);

  f.append("all,0.20\n");  // the rest of the torn row
  EXPECT_EQ(feed.pump(), 1u);
  ASSERT_EQ(feed.next("m/small", u), PriceFeed::Status::kReady);
  EXPECT_EQ(u.time, 60000);
  EXPECT_DOUBLE_EQ(u.price, 0.20);
  EXPECT_EQ(feed.rejected_lines(), 0u);
}

TEST(FileTailFeed, RejectsOutOfOrderRowsWithPosition) {
  TempFeedFile f("feed_ooo.csv");
  f.append("60000,m/small,0.10\n");
  f.append("30000,m/small,0.09\n");  // line 2: goes backwards
  f.append("60000,m/small,0.11\n");  // line 3: equal is also rejected
  f.append("90000,m/small,0.12\n");

  FileTailFeed feed(f.path());
  EXPECT_EQ(feed.pump(), 2u);
  EXPECT_EQ(feed.rejected_lines(), 2u);
  ASSERT_EQ(feed.errors().size(), 2u);
  EXPECT_EQ(feed.errors()[0].line, 2u);
  EXPECT_NE(feed.errors()[0].message.find("out-of-order"), std::string::npos);
  EXPECT_EQ(feed.errors()[1].line, 3u);

  // The well-ordered rows still flow.
  PriceUpdate u;
  ASSERT_EQ(feed.next("m/small", u), PriceFeed::Status::kReady);
  EXPECT_EQ(u.time, 60000);
  ASSERT_EQ(feed.next("m/small", u), PriceFeed::Status::kReady);
  EXPECT_EQ(u.time, 90000);
}

TEST(FileTailFeed, UnknownMarketRowsAreCountedAndDropped) {
  TempFeedFile f("feed_unknown.csv");
  f.append("0,known/small,0.10\n");
  f.append("1000,mystery/xlarge,0.50\n");
  f.append("2000,known/small,0.11\n");

  FileTailFeed::Options o;
  o.markets = {"known/small"};
  FileTailFeed feed(f.path(), o);
  EXPECT_EQ(feed.pump(), 2u);
  EXPECT_EQ(feed.unknown_market_lines(), 1u);
  EXPECT_EQ(feed.rejected_lines(), 0u);  // unknown != malformed
  EXPECT_EQ(feed.markets(), std::vector<std::string>{"known/small"});

  PriceUpdate u;
  ASSERT_EQ(feed.next("known/small", u), PriceFeed::Status::kReady);
  EXPECT_EQ(u.time, 0);
  ASSERT_EQ(feed.next("known/small", u), PriceFeed::Status::kReady);
  EXPECT_EQ(u.time, 2000);
}

TEST(FileTailFeed, MalformedRowsAreRejectedNotFatal) {
  TempFeedFile f("feed_bad.csv");
  f.append("not-a-number,m/small,0.10\n");
  f.append("1000,m/small,zero\n");
  f.append("2000,m/small,-3\n");
  f.append("3000\n");
  f.append("4000,m/small,0.10\n");

  FileTailFeed feed(f.path());
  EXPECT_EQ(feed.pump(), 1u);
  EXPECT_EQ(feed.rejected_lines(), 4u);
  PriceUpdate u;
  ASSERT_EQ(feed.next("m/small", u), PriceFeed::Status::kReady);
  EXPECT_EQ(u.time, 4000);
}

TEST(FileTailFeed, TruncationToShorterFileIsDetectedAndResumed) {
  TempFeedFile f("feed_trunc.csv");
  f.append("0,m/small,0.10\n");
  f.append("1000,m/small,0.20\n");

  FileTailFeed feed(f.path());
  EXPECT_EQ(feed.pump(), 2u);
  PriceUpdate u;
  ASSERT_EQ(feed.next("m/small", u), PriceFeed::Status::kReady);
  ASSERT_EQ(feed.next("m/small", u), PriceFeed::Status::kReady);

  // The file shrinks, then the writer emits one fresh row.
  f.truncate();
  f.append("2000,m/small,0.30\n");
  EXPECT_EQ(feed.pump(), 1u);
  EXPECT_EQ(feed.truncations(), 1u);
  EXPECT_EQ(feed.rejected_lines(), 0u);
  ASSERT_EQ(feed.next("m/small", u), PriceFeed::Status::kReady);
  EXPECT_EQ(u.time, 2000);
  EXPECT_DOUBLE_EQ(u.price, 0.30);
  EXPECT_EQ(feed.next("m/small", u), PriceFeed::Status::kWouldBlock);
}

TEST(FileTailFeed, RewriteGrowingPastOldOffsetRejectsStaleRows) {
  // The nasty rotation: the replacement file is *longer* than the consumed
  // offset, so a size check alone would resume mid-file on unrelated bytes.
  // The head-bytes signature catches it; replayed stale rows are rejected
  // as out-of-order (position reported), the genuinely new row flows.
  TempFeedFile f("feed_rewrite.csv");
  f.append("0,m/small,0.10\n");
  f.append("1000,m/small,0.20\n");

  FileTailFeed feed(f.path());
  EXPECT_EQ(feed.pump(), 2u);
  PriceUpdate u;
  ASSERT_EQ(feed.next("m/small", u), PriceFeed::Status::kReady);
  ASSERT_EQ(feed.next("m/small", u), PriceFeed::Status::kReady);

  f.truncate();
  f.append("500,m/small,0.05\n");   // stale: before delivered 1000
  f.append("1000,m/small,0.20\n");  // stale: equal to delivered 1000
  f.append("2000,m/small,0.30\n");  // new
  EXPECT_EQ(feed.pump(), 1u);
  EXPECT_EQ(feed.truncations(), 1u);
  EXPECT_EQ(feed.rejected_lines(), 2u);
  ASSERT_EQ(feed.errors().size(), 2u);
  EXPECT_EQ(feed.errors()[0].line, 1u);
  ASSERT_EQ(feed.next("m/small", u), PriceFeed::Status::kReady);
  EXPECT_EQ(u.time, 2000);
  EXPECT_EQ(feed.next("m/small", u), PriceFeed::Status::kWouldBlock);
}

TEST(FileTailFeed, ByteIdenticalRotationResumesSeamlessly) {
  // Rotation that re-emits the identical history: the head signature
  // matches, so the feed resumes at its old offset — no replay, no spurious
  // truncation, just the appended row.
  TempFeedFile f("feed_rotate.csv");
  f.append("0,m/small,0.10\n");
  f.append("1000,m/small,0.20\n");

  FileTailFeed feed(f.path());
  EXPECT_EQ(feed.pump(), 2u);
  PriceUpdate u;
  ASSERT_EQ(feed.next("m/small", u), PriceFeed::Status::kReady);
  ASSERT_EQ(feed.next("m/small", u), PriceFeed::Status::kReady);

  f.truncate();
  f.append("0,m/small,0.10\n");
  f.append("1000,m/small,0.20\n");
  f.append("2000,m/small,0.30\n");
  EXPECT_EQ(feed.pump(), 1u);
  EXPECT_EQ(feed.truncations(), 0u);
  EXPECT_EQ(feed.rejected_lines(), 0u);
  ASSERT_EQ(feed.next("m/small", u), PriceFeed::Status::kReady);
  EXPECT_EQ(u.time, 2000);
}

TEST(FileTailFeed, MissingFileIsWouldBlockUntilCreated) {
  TempFeedFile f("feed_late.csv");
  FileTailFeed feed(f.path());
  EXPECT_EQ(feed.pump(), 0u);
  PriceUpdate u;
  EXPECT_EQ(feed.next("m/small", u), PriceFeed::Status::kWouldBlock);
  f.append("0,m/small,0.10\n");
  EXPECT_EQ(feed.pump(), 1u);
  EXPECT_EQ(feed.next("m/small", u), PriceFeed::Status::kReady);
}

TEST(FeedDriver, TailedUpdatesReachTheMarketWithBoundedLatency) {
  // End-to-end tail path: a writer thread grows the file while the serve
  // loop pumps; every update must reach the market, and the read-to-deliver
  // latency stays within a generous CI-safe bound.
  TempFeedFile f("feed_latency.csv");
  f.append("0,us-east-1a/small,0.10\n");

  live::WallClock::Options o;
  o.speed = 10000.0;  // virtual time outruns the feed timestamps
  live::WallClock clock(o);
  sim::RngFactory rng(1);
  cloud::CloudProvider provider(clock, rng);
  provider.add_live_market({"us-east-1a", cloud::InstanceSize::kSmall}, 0.25);
  provider.start();

  FileTailFeed feed(f.path());
  live::FeedDriver driver(clock, provider, feed);
  std::chrono::nanoseconds max_latency{0};
  std::size_t delivered = 0;
  driver.set_delivery_hook([&](const PriceUpdate& u) {
    ++delivered;
    max_latency = std::max(
        max_latency, std::chrono::steady_clock::now() - u.read_at);
  });
  driver.start();
  EXPECT_EQ(driver.primed_markets(), 1u);

  std::thread writer([&f] {
    for (int i = 1; i <= 5; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds{2});
      f.append(std::to_string(i * 10) + ",us-east-1a/small,0." +
               std::to_string(10 + i) + "\n");
    }
    f.append("end,60\n");
  });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds{30};
  while (!feed.ended() || delivered < 5) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "feed stalled";
    driver.pump();
    clock.poll();
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  writer.join();
  driver.pump();
  clock.poll();

  EXPECT_EQ(delivered, 5u);
  EXPECT_DOUBLE_EQ(provider.market({"us-east-1a", cloud::InstanceSize::kSmall}).price(),
                   0.15);
  // Bounded decision latency: with a 1 ms pump cadence, delivery should be
  // near-instant; 5 s absorbs the worst CI scheduling hiccup.
  EXPECT_LT(max_latency, std::chrono::seconds{5});
}

}  // namespace
}  // namespace spothost
