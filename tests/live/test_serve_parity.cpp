// The two-clocks parity contract: replaying a recorded price stream through
// live::WallClock in fast-replay mode produces the *byte-identical* decision
// trace the simulation produces from the same prices.
//
// This is the license for serving live with the simulated policy layer — any
// behavioural drift between the sim path (trace-fed SpotMarkets replaying
// clock events) and the live path (FeedDriver pushing a PriceFeed) shows up
// here as a one-byte diff.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "live/feed_driver.hpp"
#include "live/hosting_session.hpp"
#include "live/price_feed.hpp"
#include "live/wall_clock.hpp"
#include "metrics/experiment.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/sink.hpp"
#include "sched/baselines.hpp"
#include "sched/market_traces.hpp"

namespace spothost {
namespace {

using cloud::InstanceSize;
using sim::kDay;

sched::Scenario parity_scenario(std::uint64_t seed) {
  sched::Scenario s;
  s.seed = seed;
  s.horizon = 5 * kDay;
  s.regions = {"us-east-1a", "us-east-1b"};
  s.sizes = {InstanceSize::kSmall, InstanceSize::kLarge};
  return s;
}

std::string sim_trace(const sched::Scenario& scenario,
                      const sched::SchedulerConfig& config,
                      std::shared_ptr<const sched::MarketTraceSet> traces) {
  std::ostringstream os;
  obs::Tracer tracer;
  obs::JsonlSink sink(os);
  tracer.add_sink(&sink);
  (void)metrics::run_hosting_scenario(scenario, config, std::move(traces),
                                      &tracer, nullptr);
  return os.str();
}

std::string live_replay_trace(const sched::Scenario& scenario,
                              const sched::SchedulerConfig& config,
                              const sched::MarketTraceSet& traces) {
  std::ostringstream os;
  obs::Tracer tracer;
  obs::JsonlSink sink(os);
  tracer.add_sink(&sink);

  live::WallClock clock(
      live::WallClock::Options{live::WallClock::kMaxSpeed, 0,
                               sim::default_queue_backend()});
  live::SessionSpec spec;
  spec.seed = scenario.seed;
  spec.grace_period = scenario.grace_period;
  spec.config = config;
  for (const auto& entry : traces.markets()) {
    spec.markets.push_back(live::SessionMarket{entry.id, entry.on_demand, nullptr});
  }
  live::HostingSession session(clock, spec);
  session.attach_tracer(&tracer);

  live::TraceReplayFeed feed;
  for (const auto& entry : traces.markets()) {
    feed.add_market(entry.id.str(), &entry.prices);
  }
  live::FeedDriver driver(clock, session.provider(), feed);
  driver.start();
  session.start();
  clock.run_until(scenario.horizon);
  session.finalize(scenario.horizon);
  tracer.flush();
  return os.str();
}

TEST(ServeParity, FastReplayMatchesSimulationByteForByte) {
  const auto scenario =
      sched::normalized_scenario(parity_scenario(/*seed=*/7));
  auto cfg = sched::proactive_config({"us-east-1a", InstanceSize::kSmall});
  cfg.scope = sched::MarketScope::kMultiMarket;
  const auto traces = sched::MarketTraceSet::generate(scenario);

  const std::string sim = sim_trace(scenario, cfg, traces);
  const std::string live = live_replay_trace(scenario, cfg, *traces);

  ASSERT_FALSE(sim.empty());
  EXPECT_EQ(sim.size(), live.size());
  EXPECT_EQ(sim, live) << "sim and fast-replay decision streams diverged";
}

TEST(ServeParity, ParityHoldsAcrossSeedsAndPolicies) {
  for (const std::uint64_t seed : {1u, 4242u}) {
    const auto scenario = sched::normalized_scenario(parity_scenario(seed));
    auto cfg = sched::reactive_config({"us-east-1b", InstanceSize::kLarge});
    const auto traces = sched::MarketTraceSet::generate(scenario);
    EXPECT_EQ(sim_trace(scenario, cfg, traces),
              live_replay_trace(scenario, cfg, *traces))
        << "seed " << seed;
  }
}

TEST(ServeParity, ParityHoldsOnHeapBackend) {
  // The parity contract is backend-independent: both engines honour the
  // (time, schedule-seq) determinism contract on either queue.
  const auto scenario = sched::normalized_scenario(parity_scenario(11));
  auto cfg = sched::proactive_config({"us-east-1a", InstanceSize::kSmall});
  const auto traces = sched::MarketTraceSet::generate(scenario);

  std::ostringstream os;
  obs::Tracer tracer;
  obs::JsonlSink sink(os);
  tracer.add_sink(&sink);
  live::WallClock clock(live::WallClock::Options{
      live::WallClock::kMaxSpeed, 0, sim::QueueBackend::kBinaryHeap});
  live::SessionSpec spec;
  spec.seed = scenario.seed;
  spec.grace_period = scenario.grace_period;
  spec.config = cfg;
  for (const auto& entry : traces->markets()) {
    spec.markets.push_back(live::SessionMarket{entry.id, entry.on_demand, nullptr});
  }
  live::HostingSession session(clock, spec);
  session.attach_tracer(&tracer);
  live::TraceReplayFeed feed;
  for (const auto& entry : traces->markets()) {
    feed.add_market(entry.id.str(), &entry.prices);
  }
  live::FeedDriver driver(clock, session.provider(), feed);
  driver.start();
  session.start();
  clock.run_until(scenario.horizon);
  session.finalize(scenario.horizon);
  tracer.flush();

  EXPECT_EQ(sim_trace(scenario, cfg, traces), os.str());
}

TEST(ServeParity, LiveBillingMatchesSimulation) {
  // Costs come from the push-fed markets' accumulated billing traces; they
  // must integrate to the same dollars the pre-loaded traces give.
  const auto scenario = sched::normalized_scenario(parity_scenario(3));
  auto cfg = sched::proactive_config({"us-east-1a", InstanceSize::kSmall});
  const auto traces = sched::MarketTraceSet::generate(scenario);
  const auto sim_metrics = metrics::run_hosting_scenario(scenario, cfg, traces,
                                                         nullptr, nullptr);

  live::WallClock clock(live::WallClock::Options{
      live::WallClock::kMaxSpeed, 0, sim::default_queue_backend()});
  live::SessionSpec spec;
  spec.seed = scenario.seed;
  spec.grace_period = scenario.grace_period;
  spec.config = cfg;
  for (const auto& entry : traces->markets()) {
    spec.markets.push_back(live::SessionMarket{entry.id, entry.on_demand, nullptr});
  }
  live::HostingSession session(clock, spec);
  live::TraceReplayFeed feed;
  for (const auto& entry : traces->markets()) {
    feed.add_market(entry.id.str(), &entry.prices);
  }
  live::FeedDriver driver(clock, session.provider(), feed);
  driver.start();
  session.start();
  clock.run_until(scenario.horizon);
  session.finalize(scenario.horizon);

  EXPECT_DOUBLE_EQ(session.provider().ledger().total_cost(),
                   sim_metrics.total_cost);
}

}  // namespace
}  // namespace spothost
